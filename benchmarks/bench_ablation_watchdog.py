"""Extension: prefetch watchdog under adversarial phase shifts.

The paper's scheme deoptimizes wholesale at the end of each hibernation
(Figure 1); nothing in it notices *mid-cycle* that an installed stream went
stale.  The phaseshift workload is built to exploit exactly that: each hot
stream's head stays phase-invariant while the tail it predicts rotates
through three disjoint working sets, so every installed DFSM keeps matching
— and keeps prefetching the wrong blocks — until the next profiling phase.

This bench compares, on that workload and the resilience-ablation machine
(small caches, costly prefetch issue):

* ``nopref``       — full pipeline, prefetches suppressed (the floor)
* ``dyn``          — the paper's scheme, unguarded
* ``dyn+watchdog`` — per-stream scoreboard + targeted rollback
  (:mod:`repro.resilience.watchdog`)

and asserts the watchdog's value: fewer cycles than unguarded dyn, within
5% of no-pref, with at least one ``StreamDeoptimized`` rollback.  Set
``REPRO_FAULT_SEED`` to add a fault-injected variant that must still
complete (graceful degradation).
"""

from __future__ import annotations

import os

from repro.bench import figures
from repro.bench.reporting import format_table
from repro.workloads.phaseshift import PhaseShiftParams


def test_watchdog_phase_shift_ablation(benchmark):
    scale = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
    passes = None if scale == 1.0 else max(2, int(PhaseShiftParams().passes * scale))
    fault_seed = int(os.environ.get("REPRO_FAULT_SEED", "0")) or None

    def measure():
        return figures.ablation_watchdog(passes=passes, fault_seed=fault_seed)

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    print("\n" + format_table(
        ["variant", "cycles", "vs no-pref %", "#opt", "deopts", "wakes",
         "errors", "faults", "issued", "useful", "wasted"],
        [[r["variant"], r["cycles"], r["vs_nopref_pct"], r["opt_cycles"],
          r["deopts"], r["early_wakes"], r["errors"], r["faults"],
          r["issued"], r["useful"], r["wasted"]] for r in rows],
        title="Ablation (extension): prefetch watchdog under phase shifts",
    ))
    by = {r["variant"]: r for r in rows}
    nopref, dyn, wd = by["nopref"], by["dyn"], by["dyn+watchdog"]
    # The watchdog noticed and rolled back stale streams.
    assert wd["deopts"] >= 1
    assert wd["deopt_events"] >= 1
    if scale >= 1.0:
        # The headline relations need the full-length run: at reduced scale
        # the phases rotate too few times for the costs to separate cleanly.
        assert wd["cycles"] < dyn["cycles"]
        assert wd["cycles"] <= 1.05 * nopref["cycles"]
    if fault_seed is not None:
        faulted = by["dyn+watchdog+faults"]
        # Graceful degradation: faults fired, yet the run completed.
        assert faulted["faults"] >= 1
        assert faulted["cycles"] > 0
