"""Figure 12: performance impact of dynamic prefetching.

Reproduces the No-pref / Seq-pref / Dyn-pref bars for all six benchmarks and
checks the paper's headline claims:

* No-pref (all machinery, no prefetches) costs a handful of percent,
* Dyn-pref produces a net speedup on every benchmark, strongest for vpr and
  weakest for vortex (paper: 5% - 19%),
* Seq-pref *degrades* every benchmark except parser, whose hot data streams
  are sequentially allocated (paper: parser ~5% faster, others 7% - 12%
  slower).
"""

from __future__ import annotations

from repro.bench.figures import figure12_rows
from repro.bench.reporting import format_table


def test_figure12_prefetching_bars(benchmark, cache, bench_workloads):
    rows = benchmark.pedantic(
        figure12_rows, args=(cache, bench_workloads), rounds=1, iterations=1
    )
    print("\n" + format_table(
        ["benchmark", "No-pref %", "Seq-pref %", "Dyn-pref %"],
        [[r["benchmark"], r["nopref_pct"], r["seqpref_pct"], r["dynpref_pct"]] for r in rows],
        title="Figure 12 (reproduced): performance impact (negative = speedup)",
    ))
    by_name = {r["benchmark"]: r for r in rows}
    for name, row in by_name.items():
        # No-pref: pure overhead, single digits (paper: ~4-8%).
        assert 0 < row["nopref_pct"] < 12, f"{name}: no-pref overhead out of band"
        # Dyn-pref: net win everywhere (paper: 5-19% improvements).
        assert row["dynpref_pct"] < 0, f"{name}: dynamic prefetching must win"
        if name == "parser":
            # The one benchmark with sequentially-allocated hot streams:
            # Seq-pref wins too, and is "equivalent to our dynamic
            # prefetching scheme" (paper, Section 4.3).
            assert row["seqpref_pct"] < 0, "parser: seq-pref should win"
            assert abs(row["seqpref_pct"] - row["dynpref_pct"]) < 1.0, (
                "parser: seq and dyn should be near-equivalent"
            )
        else:
            # Everywhere else, sequential prefetching pollutes the cache
            # and dynamic prefetching must beat it.
            assert row["dynpref_pct"] < row["seqpref_pct"], f"{name}: dyn must beat seq"
            assert row["seqpref_pct"] > 0, f"{name}: seq-pref should degrade"

    if {"vpr", "vortex"} <= set(by_name):
        # Paper: vpr is the strongest winner, vortex the weakest.
        dyn = {n: by_name[n]["dynpref_pct"] for n in by_name}
        assert dyn["vpr"] == min(dyn.values()), "vpr should benefit most"
        assert dyn["vortex"] == max(dyn.values()), "vortex should benefit least"


def test_dyn_prefetches_are_accurate(cache, bench_workloads):
    """The hot-stream addresses are the right targets: high accuracy."""
    for name in bench_workloads:
        prefetch = cache.get(name, "dyn").hierarchy.prefetch
        assert prefetch.accuracy > 0.9, f"{name}: dyn accuracy {prefetch.accuracy:.2f}"


def test_seq_prefetches_waste_cache(cache, bench_workloads):
    """Sequential prefetches on shuffled heaps mostly miss their mark."""
    for name in bench_workloads:
        if name == "parser":
            continue
        seq = cache.get(name, "seq").hierarchy.prefetch
        dyn = cache.get(name, "dyn").hierarchy.prefetch
        assert seq.accuracy < dyn.accuracy, f"{name}: seq should be less accurate"
