"""Figure 4: Sequitur grammar inference (worked example + throughput).

Regenerates the paper's example grammar and benchmarks online grammar
construction throughput on a repetitive reference stream (the operation that
runs inside every profiling burst).
"""

from __future__ import annotations

import random

from repro.bench.figures import EXAMPLE_STRING, figure4_grammar
from repro.sequitur import Sequitur


def test_figure4_grammar_matches_paper(benchmark):
    text = benchmark(figure4_grammar)
    assert text == "S -> R1 a R3 R3\nR1 -> a b\nR2 -> R1 c\nR3 -> R2 R2"
    print("\nFigure 4: Sequitur grammar for w=" + EXAMPLE_STRING)
    print(text)


def test_sequitur_throughput_repetitive_trace(benchmark):
    """Online compression of a hot-stream-like trace (32k symbols)."""
    rng = random.Random(1)
    chains = [[rng.randrange(1000) for _ in range(40)] for _ in range(20)]
    trace: list[int] = []
    while len(trace) < 32_000:
        trace.extend(rng.choice(chains))

    def build() -> int:
        seq = Sequitur()
        seq.extend(trace)
        return seq.grammar_size()

    grammar_size = benchmark(build)
    # Heavily repetitive input must compress well.
    assert grammar_size < len(trace) / 10


def test_sequitur_throughput_random_trace(benchmark):
    """Worst-case-ish input: little structure to exploit."""
    rng = random.Random(2)
    trace = [rng.randrange(4000) for _ in range(32_000)]

    def build() -> int:
        seq = Sequitur()
        seq.extend(trace)
        return seq.length

    assert benchmark(build) == len(trace)
