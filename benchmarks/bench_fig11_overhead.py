"""Figure 11: overhead of online profiling and analysis.

Reproduces the Base / Prof / Hds bars for all six benchmarks and checks the
paper's qualitative claims:

* the Base (dynamic-check) overhead is low single digits,
* data-reference profiling at the sampled rate adds very little on top, and
* online hot-data-stream analysis adds very little on top of that —
  the total stays in the single digits ("around 3% for mcf to 7% for parser
  and vortex" in the paper; the shape, not the exact decimals, is the target).
"""

from __future__ import annotations

from repro.bench.figures import figure11_rows
from repro.bench.reporting import format_table


def test_figure11_overhead_bars(benchmark, cache, bench_workloads):
    rows = benchmark.pedantic(
        figure11_rows, args=(cache, bench_workloads), rounds=1, iterations=1
    )
    print("\n" + format_table(
        ["benchmark", "Base %", "Prof %", "Hds %"],
        [[r["benchmark"], r["base_pct"], r["prof_pct"], r["hds_pct"]] for r in rows],
        title="Figure 11 (reproduced): overhead of online profiling and analysis",
    ))
    for row in rows:
        name = row["benchmark"]
        # Base overhead: small and positive (paper: 2.5% - 6%).
        assert 0.5 < row["base_pct"] < 8.0, f"{name}: base overhead out of band"
        # Profiling adds little (paper: <= 1.6% additional).
        assert row["prof_pct"] - row["base_pct"] < 3.0, f"{name}: profiling too costly"
        # Analysis adds little (paper: <= 1.4% additional).
        assert row["hds_pct"] - row["prof_pct"] < 2.5, f"{name}: analysis too costly"
        # Total stays in the single digits (paper: 3% - 7%).
        assert row["hds_pct"] < 9.0, f"{name}: total profiling overhead out of band"


def test_profiling_overhead_is_mostly_checks(cache, bench_workloads):
    """Paper: "at the current sampling rate most of the overhead arises from
    the dynamic checks"."""
    rows = figure11_rows(cache, bench_workloads)
    for row in rows:
        check_part = row["base_pct"]
        added = row["hds_pct"] - row["base_pct"]
        assert check_part > added, f"{row['benchmark']}: checks should dominate"
