"""Table 2: detailed dynamic prefetching characterization.

Per-benchmark, per-optimization-cycle averages: traced references, detected
hot data streams, DFSM size (states / injected checks), and procedures
modified.  The paper's shape to reproduce:

* stream counts span roughly 14 - 41 with vpr highest and vortex lowest,
* DFSM states land near ``headLen * n + 1`` and injected checks near ``2n``,
* a handful of procedures are patched per cycle (6 - 12), and
* traced references per cycle are in the tens of thousands (scaled here).
"""

from __future__ import annotations

from repro.bench.figures import table2_rows
from repro.bench.reporting import format_table


def test_table2_characterization(benchmark, cache, bench_workloads):
    rows = benchmark.pedantic(
        table2_rows, args=(cache, bench_workloads), rounds=1, iterations=1
    )
    print("\n" + format_table(
        ["benchmark", "#opt cycles", "#traced refs", "#hds", "DFSM states",
         "checks", "#procs modified"],
        [[r["benchmark"], r["opt_cycles"], r["traced_refs_per_cycle"],
          r["hds_per_cycle"], r["dfsm_states"], r["dfsm_checks"],
          r["procs_modified"]] for r in rows],
        title="Table 2 (reproduced): per-cycle averages",
    ))
    by_name = {r["benchmark"]: r for r in rows}
    for name, row in by_name.items():
        assert row["opt_cycles"] >= 1, f"{name}: no optimization cycle completed"
        assert row["traced_refs_per_cycle"] > 1000, f"{name}: trace too thin"
        assert 5 <= row["hds_per_cycle"] <= 60, f"{name}: stream count out of band"
        # DFSM states ~ headLen*n + 1, checks ~ 2n (paper's consistent shape).
        n = row["hds_per_cycle"]
        assert row["dfsm_states"] <= 2.6 * n + 4, f"{name}: DFSM blow-up"
        assert row["dfsm_checks"] <= 2.6 * n + 4, f"{name}: too many checks"
        assert 2 <= row["procs_modified"] <= 14, f"{name}: procs modified out of band"

    if {"vpr", "vortex"} <= set(by_name):
        assert by_name["vpr"]["hds_per_cycle"] > by_name["vortex"]["hds_per_cycle"], (
            "vpr should detect the most streams, vortex the fewest (Table 2)"
        )


def test_stream_lengths_justify_prefetching(cache, bench_workloads):
    """Section 2: streams are long enough to prefetch ahead of use."""
    for name in bench_workloads:
        summary = cache.get(name, "dyn").summary
        assert summary is not None
        for cycle in summary.cycles:
            if cycle.stream_lengths:
                assert cycle.mean_stream_length >= 10, (
                    f"{name}: streams too short to be worth prefetching"
                )
