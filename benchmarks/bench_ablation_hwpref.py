"""Section 4.3 / 5.1 ablation: hardware prefetcher baselines.

The paper argues that "many [hot data stream addresses] will not be
successfully prefetched using a simple stride-based prefetching scheme", and
positions its software scheme against correlation (Markov) prefetchers.

The hardware models here are *cost-free* (no instruction overhead), so any
benefit they show is an optimistic upper bound — and stride prefetching still
cannot cover shuffled pointer chains.
"""

from __future__ import annotations

from repro.bench.figures import ablation_hwpref
from repro.bench.reporting import format_table

ABLATION_WORKLOADS = ("vpr", "mcf")


def test_hw_prefetcher_comparison(benchmark, cache):
    def sweep():
        return {
            name: ablation_hwpref(name, passes=cache.passes_for(name))
            for name in ABLATION_WORKLOADS
        }

    all_rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for name, rows in all_rows.items():
        print("\n" + format_table(
            ["scheme", "overhead %", "accuracy", "useful", "wasted"],
            [[r["scheme"], r["overhead_pct"], r["prefetch_accuracy"], r["useful"], r["wasted"]]
             for r in rows],
            title=f"Hardware baseline ablation, {name}",
        ))
        by_scheme = {r["scheme"]: r for r in rows}
        # Stride prefetching barely covers shuffled pointer chains: its
        # useful-prefetch count is far below dyn's.
        assert by_scheme["stride"]["useful"] < by_scheme["dyn"]["useful"] / 2, (
            f"{name}: stride should cover far less than dyn"
        )
        # Dynamic hot-data-stream prefetching wins overall despite paying
        # software overheads the hardware models do not.
        assert by_scheme["dyn"]["overhead_pct"] < 0, f"{name}: dyn must win"
        # Markov (correlation) prefetching is the closest hardware relative
        # (Section 5.1) and does cover some of the pointer traffic.
        assert by_scheme["markov"]["useful"] > by_scheme["stride"]["useful"], (
            f"{name}: markov should cover more than stride"
        )
