"""Extension: hot-data-stream stability across inputs (ref [10]).

The paper's premise for considering a static scheme at all is that "hot
data streams have been shown to be fairly stable across program inputs".
This bench measures the heat-weighted overlap of the detected streams' *pc
shapes* across runs with different seeds (different heap layouts and visit
orders) of the same program — and confirms that a *phase change* (a
different hot working set, not just a different input) breaks that
stability, which is what the dynamic scheme exploits.
"""

from __future__ import annotations

import dataclasses

from repro.analysis.hotstreams import find_hot_streams
from repro.analysis.stability import address_overlap, stream_overlap
from repro.bench.reporting import format_table
from repro.core.config import OptimizerConfig
from repro.core.optimizer import DynamicPrefetcher
from repro.interp.interpreter import Interpreter
from repro.vulcan.static_edit import instrument_program
from repro.workloads import presets
from repro.workloads.chainmix import build_chainmix


def _first_cycle_streams(params, opt):
    """Run until the first optimization and capture its streams."""
    wl = build_chainmix(params, passes=6)
    program, _ = instrument_program(wl.program)
    interp = Interpreter(program, wl.memory)
    optimizer = DynamicPrefetcher(program, interp, interp.config, opt)
    captured = {}
    original = optimizer._optimize

    def capture():
        captured.setdefault(
            "streams", find_hot_streams(optimizer.profiler.sequitur, opt.analysis)
        )
        return original()

    optimizer._optimize = capture
    interp.run(wl.args)
    return captured["streams"], optimizer.profiler.symbols


def test_stream_stability_across_inputs(benchmark):
    opt = OptimizerConfig()
    base = dataclasses.replace(presets.MCF, name="mcf-stab")

    def measure():
        a, ta = _first_cycle_streams(dataclasses.replace(base, seed=101), opt)
        b, tb = _first_cycle_streams(dataclasses.replace(base, seed=202), opt)
        # A different *phase*'s hot set: same program shape, but the hot
        # chains the profile sees belong to a disjoint population.
        shifted = dataclasses.replace(base, seed=101, phases=2, passes=6)
        c, tc = _first_cycle_streams(shifted, opt)
        return {
            "same input, re-profiled": (
                stream_overlap(a, ta, a, ta), address_overlap(a, ta, a, ta)),
            "same program, different input": (
                stream_overlap(a, ta, b, tb), address_overlap(a, ta, b, tb)),
            "different phase's hot set": (
                stream_overlap(a, ta, c, tc), address_overlap(a, ta, c, tc)),
        }

    overlaps = benchmark.pedantic(measure, rounds=1, iterations=1)
    print("\n" + format_table(
        ["comparison", "pc-shape overlap", "address overlap"],
        [[k, round(pc, 3), round(addr, 3)] for k, (pc, addr) in overlaps.items()],
        title="Extension: stream stability (ref [10])",
    ))
    assert overlaps["same input, re-profiled"] == (1.0, 1.0)
    pc_cross, addr_cross = overlaps["same program, different input"]
    # Different inputs, same behaviour: the *code shapes* are substantially
    # stable (the paper's [10] claim) even though the concrete addresses —
    # what an injected prefetch targets — share almost nothing.
    assert pc_cross > 0.5
    assert addr_cross < 0.2
    pc_phase, addr_phase = overlaps["different phase's hot set"]
    # A phase change keeps the code shape but invalidates the addresses:
    # exactly why the static scheme's injected streams go stale.
    assert pc_phase > 0.5
    assert addr_phase < 0.2
