"""Shared state for the benchmark suite.

All figure/table benches share one :class:`ResultCache`, so each
(workload, level) pair executes exactly once per session no matter how many
benches consume it.  Set ``REPRO_BENCH_SCALE`` (e.g. ``0.25``) to shrink
every workload's pass count for quick smoke runs.
"""

from __future__ import annotations

import os

import pytest

from repro.bench.figures import ResultCache


@pytest.fixture(scope="session")
def cache() -> ResultCache:
    scale = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
    return ResultCache(passes_scale=scale)


@pytest.fixture(scope="session")
def bench_workloads() -> list[str]:
    """Benchmarks to sweep; override with REPRO_BENCH_WORKLOADS=vpr,mcf."""
    names = os.environ.get("REPRO_BENCH_WORKLOADS", "")
    from repro.workloads import presets

    return [n for n in names.split(",") if n] or presets.names()
