"""Section 4.3 ablation: the prefix-match length (headLen).

The paper: "The hot data stream prefix length that must match before
prefetching is initiated needs to be set carefully.  A prefix that is too
short may hurt prefetching accuracy, and too large a prefix reduces the
prefetching opportunity and incurs additional stream matching overhead."
They settled on 2; 1 lowered overhead but cost accuracy, 3 added overhead
with no accuracy gain.

The sweep runs on two contrasting benchmarks to keep the suite fast.
"""

from __future__ import annotations

from repro.bench.figures import ablation_headlen
from repro.bench.reporting import format_table

ABLATION_WORKLOADS = ("mcf", "twolf")


def _passes_for(cache, name):
    return cache.passes_for(name)


def test_headlen_sweep(benchmark, cache):
    all_rows = {}

    def sweep():
        return {
            name: ablation_headlen(name, head_lens=(1, 2, 3), passes=_passes_for(cache, name))
            for name in ABLATION_WORKLOADS
        }

    all_rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for name, rows in all_rows.items():
        print("\n" + format_table(
            ["headLen", "Dyn-pref %", "accuracy", "issued"],
            [[r["head_len"], r["dynpref_pct"], r["prefetch_accuracy"], r["prefetches_issued"]]
             for r in rows],
            title=f"Section 4.3 ablation: prefix length, {name}",
        ))
        by_len = {r["head_len"]: r for r in rows}
        # headLen=2 is a net win (the paper's operating point).
        assert by_len[2]["dynpref_pct"] < 0, f"{name}: headLen=2 must win"
        # headLen=1 fires on a single reference: more (speculative)
        # prefetches issued, lower accuracy.
        assert by_len[1]["prefetch_accuracy"] <= by_len[2]["prefetch_accuracy"] + 0.02, (
            f"{name}: headLen=1 should not be more accurate than 2"
        )
        # headLen=3 gains no accuracy over 2 but prefetches less of the tail.
        assert by_len[3]["prefetch_accuracy"] <= by_len[2]["prefetch_accuracy"] + 0.02, (
            f"{name}: headLen=3 should not be more accurate than 2"
        )
        assert by_len[3]["dynpref_pct"] >= by_len[2]["dynpref_pct"] - 0.5, (
            f"{name}: headLen=3 should not beat headLen=2 meaningfully"
        )
