"""Figure 8 / Section 3.1: prefix-match DFSM construction.

Asserts the paper's example DFSM shape and benchmarks construction at the
scale Table 2 reports (tens of streams -> ~2n+1 states).
"""

from __future__ import annotations

import random

from repro.analysis.stream import HotDataStream
from repro.bench.figures import figure8_dfsm
from repro.dfsm import build_dfsm


def test_figure8_shape_matches_paper(benchmark):
    dfsm = benchmark(figure8_dfsm)
    # headLen * n + 1 = 3*2 + 1 states, exactly as the paper reports.
    assert dfsm.num_states == 7
    completed = sorted(v for c in dfsm.completions.values() for v in c)
    assert completed == [0, 1]
    print(f"\nFigure 8: {dfsm.num_states} states, {dfsm.num_transitions} transitions")
    for state in range(dfsm.num_states):
        print(f"  {state}: {dfsm.describe(state)}")


def test_construction_at_table2_scale(benchmark):
    """41 streams (vpr's count): states stay near headLen*n+1."""
    rng = random.Random(4)
    streams = []
    for i in range(41):
        symbols = tuple(rng.sample(range(10_000), 40))
        streams.append(HotDataStream(symbols, heat=1000 - i, rule_id=i))

    dfsm = benchmark(build_dfsm, streams, 2)
    assert dfsm.num_states <= 2 * 41 + 2


def test_construction_with_shared_prefixes(benchmark):
    """Adversarial sharing: many streams with a common first symbol."""
    streams = []
    for i in range(32):
        symbols = (7, 100 + i, 200 + i, 300 + i, 400 + i)
        streams.append(HotDataStream(symbols, heat=100 - i, rule_id=i))

    dfsm = benchmark(build_dfsm, streams, 2)
    assert dfsm.num_states <= 2 * 32 + 2
