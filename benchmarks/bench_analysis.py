"""Analysis hot-path benchmark: flat-core Sequitur + batched feed vs PR 9.

Three tiers, each identity-checked while it is timed:

``sequitur_micro``   grammar construction throughput (tokens/sec): the flat
                     array-backed engine fed in batches vs the demoted
                     linked reference fed per token, on the same stream.
``incremental``      hot-stream analysis across optimizer-style epochs:
                     the dirty-tracking :class:`HotStreamAnalyzer` vs the
                     one-shot full re-walk, identical facts demanded.
``figures_dyn``      the real ``dyn`` experiment cells end-to-end under the
                     compiled kernel: the current hot path (flat engine,
                     ``ref_buffer`` batching, incremental analysis) vs a
                     faithful legacy profiler (linked engine, one Python
                     call per traced reference, full re-analysis) swapped
                     into the optimizer — results bit-compared.

As in ``bench_fastpath.py``, hard floors fail the run (the CI regression
signal); aspirational targets only warn.  The figures floor is the honest
headline: the refactor's claim is >=2x wall-clock on the dyn grid against
the pre-refactor hot path, with zero observable drift.

Usage:
    python benchmarks/bench_analysis.py            # full run, writes BENCH_analysis.json
    python benchmarks/bench_analysis.py --quick    # CI-sized run
    python benchmarks/bench_analysis.py --out PATH # write elsewhere
"""

from __future__ import annotations

import argparse
import json
import platform
import random
import sys
import time
from pathlib import Path

import repro.core.optimizer as optimizer_mod
from repro.analysis.hotstreams import (
    AnalysisConfig,
    HotStreamAnalyzer,
    analyze_grammar,
    find_hot_streams,
)
from repro.engine.levels import execute_workload
from repro.oracle.fuzz import grammar_state_diff
from repro.oracle.refsequitur import RefSequitur
from repro.profiling.trace import SymbolTable
from repro.sequitur import Sequitur
from repro.workloads import build_named, names

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_analysis.json"

#: Hard floors fail the run; targets are aspirational and only warn.
#: ``figures_dyn`` is the refactor's acceptance gate: the whole dyn grid,
#: same bytes out, at least twice as fast as the faithful PR 9 hot path.
#: The micro floors are set from the structural wins (no per-symbol object
#: allocation; no full re-walk per epoch) with headroom for slow CI boxes.
GATES = {
    "sequitur_micro": {"fail_below": 1.15, "target": 3.0},
    "incremental": {"fail_below": 1.2, "target": 3.0},
    "figures_dyn": {"fail_below": 2.0, "target": 5.0},
}


def _token_stream(n: int) -> list[int]:
    """A profiler-shaped stream: hot motifs with occasional cold noise."""
    rng = random.Random(7)
    motifs = [[rng.randrange(64) for _ in range(12)] for _ in range(4)]
    tokens: list[int] = []
    while len(tokens) < n:
        tokens.extend(motifs[rng.randrange(4)])
        if rng.random() < 0.2:
            tokens.append(64 + rng.randrange(512))
    return tokens[:n]


def _time_sequitur_micro(n_tokens: int, repeats: int) -> dict:
    """Flat batched construction vs linked per-token, identical grammars."""
    tokens = _token_stream(n_tokens)
    flat_times, ref_times = [], []
    flat = ref = None
    for _ in range(repeats):
        flat = Sequitur()
        t0 = time.perf_counter()
        flat.extend_batch(tokens)
        flat_times.append(time.perf_counter() - t0)

        ref = RefSequitur()
        append = ref.append
        t0 = time.perf_counter()
        for token in tokens:
            append(token)
        ref_times.append(time.perf_counter() - t0)
    delta = grammar_state_diff(flat.__getstate__(), ref.__getstate__())
    if delta:
        raise SystemExit(f"identity violation in sequitur micro: {delta}")
    ref_t, flat_t = min(ref_times), min(flat_times)
    return {
        "tokens": n_tokens,
        "reference_s": round(ref_t, 4),
        "flat_s": round(flat_t, 4),
        "reference_tokens_per_s": round(n_tokens / ref_t),
        "flat_tokens_per_s": round(n_tokens / flat_t),
        "speedup": round(ref_t / flat_t, 2),
    }


def _motif_stream(n: int) -> list[int]:
    """A stable-working-set stream: many distinct recurring motifs, no noise.

    This is the paper's hot-data-stream regime — once the grammar has seen
    the motif vocabulary, later epochs mostly touch existing rules, which is
    exactly what incremental analysis exploits.  The noisy ``_token_stream``
    (kept for the construction micro) churns transient rules every epoch and
    is the analyzer's worst case, not its operating point.
    """
    rng = random.Random(7)
    motifs = [[rng.randrange(4096) for _ in range(16)] for _ in range(300)]
    tokens: list[int] = []
    while len(tokens) < n:
        tokens.extend(motifs[rng.randrange(300)])
    return tokens[:n]


def _time_incremental(n_tokens: int, epochs: int, repeats: int) -> dict:
    """Per-epoch analysis cost: dirty-tracking analyzer vs full re-walk."""
    tokens = _motif_stream(n_tokens)
    config = AnalysisConfig(heat_ratio=0.002, min_length=2, max_length=64, min_unique=3)
    chunk = len(tokens) // epochs
    inc_times, full_times = [], []
    for _ in range(repeats):
        seq = Sequitur()
        analyzer = HotStreamAnalyzer(seq)
        inc = full = 0.0
        for e in range(epochs):
            seq.extend_batch(tokens[e * chunk:(e + 1) * chunk])
            t0 = time.perf_counter()
            got = analyzer.analyze(config)
            inc += time.perf_counter() - t0
            t0 = time.perf_counter()
            want = analyze_grammar(seq, config)
            full += time.perf_counter() - t0
            if got != want:
                raise SystemExit(f"identity violation in incremental analysis, epoch {e}")
        inc_times.append(inc)
        full_times.append(full)
    full_t, inc_t = min(full_times), min(inc_times)
    return {
        "tokens": n_tokens,
        "epochs": epochs,
        "full_s": round(full_t, 4),
        "incremental_s": round(inc_t, 4),
        "speedup": round(full_t / inc_t, 2),
    }


class LegacyProfiler:
    """The PR 9 analysis hot path, faithfully: linked-object Sequitur, one
    Python call per traced reference (no ``ref_buffer``, so both kernels
    fall back to the per-call sink), full re-analysis every epoch."""

    def __init__(self) -> None:
        self.symbols = SymbolTable()
        self.sequitur = RefSequitur()
        self.total_recorded = 0

    def record(self, pc, addr) -> None:
        self.sequitur.append(self.symbols.intern(pc, addr))
        self.total_recorded += 1

    __call__ = record

    def flush(self) -> None:
        pass

    @property
    def trace_length(self) -> int:
        return self.sequitur.length

    def hot_streams(self, config):
        return find_hot_streams(self.sequitur, config)

    def reset(self) -> None:
        self.sequitur = RefSequitur()


def _time_figures_dyn(passes: int, repeats: int) -> dict:
    """The dyn grid end-to-end, current hot path vs the legacy profiler.

    Workload construction is identical input prep on both sides (and
    execution does not mutate the built objects), so it happens outside
    the timed region; the clock covers run + profile + analyze + patch.
    """
    grid = names()

    def one_pass():
        built = [build_named(workload, passes=passes) for workload in grid]
        t0 = time.perf_counter()
        docs = [execute_workload(b, "dyn", fast=True).to_dict() for b in built]
        return time.perf_counter() - t0, docs

    legacy_times, legacy_docs = [], None
    real = optimizer_mod.TemporalProfiler
    optimizer_mod.TemporalProfiler = LegacyProfiler
    try:
        for _ in range(repeats):
            dt, legacy_docs = one_pass()
            legacy_times.append(dt)
    finally:
        optimizer_mod.TemporalProfiler = real

    new_times, new_docs = [], None
    for _ in range(repeats):
        dt, new_docs = one_pass()
        new_times.append(dt)
    if new_docs != legacy_docs:
        raise SystemExit("identity violation in figures dyn grid — aborting")
    legacy, new = min(legacy_times), min(new_times)
    return {
        "grid": [f"{w}/dyn" for w in grid],
        "passes": passes,
        "legacy_s": round(legacy, 3),
        "new_s": round(new, 3),
        "speedup": round(legacy / new, 2),
    }


def run_benchmark(quick=False):
    micro_tokens = 40_000 if quick else 120_000
    repeats = 2 if quick else 3
    sections = {
        "sequitur_micro": _time_sequitur_micro(micro_tokens, repeats),
        "incremental": _time_incremental(
            micro_tokens // 2, epochs=10 if quick else 20, repeats=repeats
        ),
        # passes=1 keeps every timed cycle in the profiling/analysis regime;
        # later passes run mostly patched code with the profiler hibernating,
        # which is identical on both sides and only dilutes the signal.
        "figures_dyn": _time_figures_dyn(passes=1, repeats=repeats),
    }
    speedups = {key: sections[key]["speedup"] for key in GATES}
    failures, warnings = [], []
    for key, gate in GATES.items():
        got = speedups[key]
        if got < gate["fail_below"]:
            failures.append(f"{key}: {got}x < hard floor {gate['fail_below']}x")
        elif got < gate["target"]:
            warnings.append(f"{key}: {got}x below aspirational {gate['target']}x")
    return {
        "schema": 1,
        "quick": quick,
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "machine": platform.machine(),
        "gates": GATES,
        "speedups": speedups,
        "sections": sections,
        "warnings": warnings,
        "failures": failures,
        "status": "fail" if failures else "pass",
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI-sized run")
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT,
                        help=f"output JSON path (default: {DEFAULT_OUT})")
    parser.add_argument("--no-write", action="store_true",
                        help="measure and gate without touching the JSON")
    args = parser.parse_args(argv)
    doc = run_benchmark(quick=args.quick)
    for key, value in doc["speedups"].items():
        print(f"{key:<16} {value:>6.2f}x")
    for line in doc["warnings"]:
        print(f"warning: {line}")
    for line in doc["failures"]:
        print(f"FAIL: {line}")
    if not args.no_write:
        args.out.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
        print(f"wrote {args.out}")
    print(f"status: {doc['status']}")
    return 1 if doc["failures"] else 0


if __name__ == "__main__":
    sys.exit(main())
