"""Table 1 / Figure 6: the hot-data-stream analysis worked example.

Asserts every cell of the paper's Table 1 and benchmarks the Figure 5
algorithm on a realistic profiling-phase grammar.
"""

from __future__ import annotations

import random

from repro.analysis import AnalysisConfig, find_hot_streams
from repro.bench.figures import table1_rows
from repro.bench.reporting import format_table
from repro.sequitur import Sequitur


def test_table1_values_match_paper(benchmark):
    rows = benchmark(table1_rows)
    by_word = {r["word"]: r for r in rows}
    # Table 1, row by row (S, B, C, A).
    s = by_word["abaabcabcabcabc"]
    assert (s["length"], s["index"], s["uses"], s["coldUses"], s["heat"], s["hot"]) == (
        15, 0, 1, 1, 15, False)
    b = by_word["abcabc"]
    assert (b["length"], b["index"], b["uses"], b["coldUses"], b["heat"], b["hot"]) == (
        6, 1, 2, 2, 12, True)
    c = by_word["abc"]
    assert (c["length"], c["index"], c["uses"], c["coldUses"], c["heat"], c["hot"]) == (
        3, 2, 4, 0, 0, False)
    a = by_word["ab"]
    assert (a["length"], a["index"], a["uses"], a["coldUses"], a["heat"], a["hot"]) == (
        2, 3, 5, 1, 2, False)
    print("\n" + format_table(
        ["rule", "word", "length", "index", "uses", "coldUses", "heat", "hot"],
        [[r[k] for k in ("rule", "word", "length", "index", "uses", "coldUses", "heat", "hot")]
         for r in rows],
        title="Table 1 (reproduced)",
    ))


def test_analysis_speed_on_profiling_scale_grammar(benchmark):
    """Figure 5's algorithm is linear in grammar size; measure at 32k refs."""
    rng = random.Random(3)
    chains = [[rng.randrange(2000) for _ in range(40)] for _ in range(30)]
    seq = Sequitur()
    count = 0
    while count < 32_000:
        chain = rng.choice(chains)
        seq.extend(chain)
        count += len(chain)
    config = AnalysisConfig(heat_ratio=0.002, min_length=10, max_length=200, min_unique=5)

    streams = benchmark(find_hot_streams, seq, config)
    assert streams, "profiling-scale grammar must yield hot streams"
    assert all(st.length >= 10 for st in streams)
