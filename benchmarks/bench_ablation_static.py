"""Extension: static (profile-once) vs. dynamic prefetching.

The paper leaves this comparison for future work (Section 1): hot data
streams are stable enough across inputs for an offline scheme [10], but
"for programs with distinct phase behavior, a dynamic prefetching scheme
that adapts to program phase transitions may perform better".

Two experiments on the mcf analogue:

* **single phase** — static should be at least competitive (it skips the
  recurring profiling/analysis cost);
* **two phases** (the hot chain population changes halfway) — the static
  scheme's streams go stale at the transition and its injected checks keep
  running without matching, while the dynamic scheme re-profiles and keeps
  most of its win.
"""

from __future__ import annotations

import dataclasses

from repro.bench.reporting import format_table
from repro.bench.runner import run_workload
from repro.workloads import presets
from repro.workloads.chainmix import build_chainmix


def _ladder(params, levels=("orig", "dyn", "static")):
    results = {}
    for level in levels:
        workload = build_chainmix(params)
        results[level] = run_workload(workload, level)
    return results


def test_static_vs_dynamic(benchmark):
    single = dataclasses.replace(presets.MCF, name="mcf-single", phases=1, passes=45)
    phased = dataclasses.replace(presets.MCF, name="mcf-phased", phases=2, passes=100)

    def run_both():
        return _ladder(single), _ladder(phased)

    single_res, phased_res = benchmark.pedantic(run_both, rounds=1, iterations=1)

    rows = []
    for tag, res in (("single-phase", single_res), ("two-phase", phased_res)):
        orig = res["orig"]
        rows.append([
            tag,
            res["dyn"].overhead_vs(orig),
            res["static"].overhead_vs(orig),
            res["dyn"].summary.num_cycles,
            res["static"].summary.num_cycles,
        ])
    print("\n" + format_table(
        ["workload", "Dyn-pref %", "Static-pref %", "dyn cycles", "static cycles"],
        rows,
        title="Extension: static (profile-once) vs dynamic prefetching",
    ))

    s_orig = single_res["orig"]
    p_orig = phased_res["orig"]
    dyn_single = single_res["dyn"].overhead_vs(s_orig)
    static_single = single_res["static"].overhead_vs(s_orig)
    dyn_phased = phased_res["dyn"].overhead_vs(p_orig)
    static_phased = phased_res["static"].overhead_vs(p_orig)

    # Both schemes win on the stable workload; static may edge dyn out
    # because it pays the profiling cost only once.
    assert dyn_single < 0 and static_single < 0
    # The static scheme optimizes exactly once; the dynamic one re-profiles.
    assert single_res["static"].summary.num_cycles == 1
    assert single_res["dyn"].summary.num_cycles > 1
    # On the phased workload the dynamic scheme adapts and wins clearly.
    assert dyn_phased < 0
    assert dyn_phased < static_phased - 2.0, (
        "dynamic must beat static by a clear margin once phases shift"
    )
    # The phase shift hurts static much more than dynamic.
    assert (static_single - static_phased) < (static_single - dyn_phased)
    # Mechanism check: static covers roughly half the phased run (phase 1).
    assert (
        phased_res["static"].hierarchy.prefetch.useful
        < 0.75 * phased_res["dyn"].hierarchy.prefetch.useful
    )
