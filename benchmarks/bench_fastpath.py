"""Fastpath speedup benchmark: the compiled kernel vs the reference loop.

Three tiers, each bit-identity-checked while it is timed:

``dispatch_micro``   an ALU/branch-dominated loop — pure dispatch overhead,
                     the fastpath's best case (no memory-system work).
``cache_micro``      a cache-resident pointer ring — dispatch plus the
                     inlined L1-hit path.
``figures``          the real experiment grid (6 workloads x orig/dyn,
                     one pass), cold (first compile included) and warm.

The hard gates are deliberately honest rather than aspirational.  The
end-to-end figures grid is Amdahl-bound: the paper's pipeline spends most
of its time in grammar construction, stream analysis and cache-miss
modelling — Python that the kernel does not (and must not) touch — so the
whole-run speedup sits well below the kernel-only speedup.  The aspirational
targets (10x dispatch, 5x end-to-end) are recorded in the JSON and produce a
soft warning when missed; dropping below the hard floor fails the run, which
is the regression signal CI acts on.

Usage:
    python benchmarks/bench_fastpath.py            # full run, writes BENCH_fastpath.json
    python benchmarks/bench_fastpath.py --quick    # CI-sized run
    python benchmarks/bench_fastpath.py --out PATH # write elsewhere
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

from repro.engine.levels import execute_workload
from repro.fastpath.compiler import clear_cache
from repro.interp.interpreter import Interpreter
from repro.ir.builder import ProcedureBuilder, build_program
from repro.machine.memory import Memory
from repro.workloads import build_named, names

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_fastpath.json"

#: Hard floors fail the run; targets are aspirational and only warn.
#: The micro floors are the real regression gates (the kernel controls that
#: time).  The figures floors only assert "no material end-to-end regression"
#: (0.9 absorbs timer noise): at small pass counts the dyn cells spend most
#: of their time in sequitur/stream analysis plus per-reinjection codegen,
#: so whole-grid speedup is structurally ~1.1-1.2x, not 5x.
GATES = {
    "dispatch_micro": {"fail_below": 2.5, "target": 10.0},
    "cache_micro": {"fail_below": 1.8, "target": 5.0},
    "figures_cold": {"fail_below": 0.85, "target": 5.0},
    "figures_warm": {"fail_below": 0.85, "target": 5.0},
}

FIGURES_LEVELS = ("orig", "dyn")


def _ring_memory(nodes=64, stride=32):
    mem = Memory()
    base = mem.allocate(nodes * stride)
    for i in range(nodes):
        mem.store(base + i * stride, base + ((i + 1) % nodes) * stride)
        mem.store(base + i * stride + 4, i)
    return mem, base


def _dispatch_program():
    """ALU soup over a pointer ring; values masked so ints stay small."""
    b = ProcedureBuilder("alumix", params=("head", "iters"))
    total, node, i = b.reg("total"), b.reg("node"), b.reg("i")
    a, c, m = b.reg("a"), b.reg("c"), b.reg("m")
    b.const(total, 0)
    b.const(a, 7)
    b.const(c, 3)
    b.const(m, 0xFFFFFF)
    b.mov(node, b.param("head"))
    b.mov(i, b.param("iters"))
    b.label("loop")
    v = b.load(None, node, 4)
    b.add(total, total, v)
    b.alu("xor", a, a, total)
    b.alui("shl", c, a, 1)
    b.alu("and", c, c, m)
    b.alui("add", a, a, 13)
    b.alu("sub", total, total, c)
    b.alui("shr", c, total, 2)
    b.alu("or", a, a, c)
    b.alu("and", a, a, m)
    b.alu("and", total, total, m)
    b.load(node, node, 0)
    b.alui("sub", i, i, 1)
    b.bnz(i, "loop")
    b.ret(total)
    return build_program([b.build()], entry="alumix")


def _cache_program():
    """Minimal pointer-chase: every other instruction is a (hitting) load."""
    b = ProcedureBuilder("hotloop", params=("head", "iters"))
    total, node, i = b.reg("total"), b.reg("node"), b.reg("i")
    b.const(total, 0)
    b.mov(node, b.param("head"))
    b.mov(i, b.param("iters"))
    b.label("loop")
    v = b.load(None, node, 4)
    b.add(total, total, v)
    b.load(node, node, 0)
    b.alui("sub", i, i, 1)
    b.bnz(i, "loop")
    b.ret(total)
    return build_program([b.build()], entry="hotloop")


def _time_micro(program, iters, repeats):
    """Best-of-N for each kernel on fresh memory; asserts identical stats."""
    times = {False: [], True: []}
    stats = {}
    for fast in (False, True):
        clear_cache()
        for _ in range(repeats):
            mem, base = _ring_memory()
            interp = Interpreter(program, mem)
            t0 = time.perf_counter()
            out = interp.run((base, iters), fast=fast)
            times[fast].append(time.perf_counter() - t0)
            stats[fast] = out.to_dict()
    if stats[True] != stats[False]:
        raise SystemExit("identity violation in microbenchmark — aborting")
    ref, fast_t = min(times[False]), min(times[True])
    return {
        "reference_s": round(ref, 4),
        "fastpath_s": round(fast_t, 4),
        "speedup": round(ref / fast_t, 2),
        "instructions": stats[True]["instructions"],
    }


def _time_figures(passes, repeats):
    """The experiment grid under each kernel; cold includes first compile."""
    grid = [(w, lv) for w in names() for lv in FIGURES_LEVELS]

    def one_pass(fast):
        t0 = time.perf_counter()
        docs = []
        for workload, level in grid:
            result = execute_workload(build_named(workload, passes=passes), level, fast=fast)
            docs.append(result.to_dict())
        return time.perf_counter() - t0, docs

    ref_times, ref_docs = [], None
    for _ in range(repeats):
        dt, docs = one_pass(False)
        ref_times.append(dt)
        ref_docs = docs

    clear_cache()
    cold, cold_docs = one_pass(True)  # includes compiling every procedure
    warm_times = []
    for _ in range(repeats):
        dt, warm_docs = one_pass(True)
        warm_times.append(dt)
    if cold_docs != ref_docs or warm_docs != ref_docs:
        raise SystemExit("identity violation in figures grid — aborting")
    ref = min(ref_times)
    return {
        "grid": [f"{w}/{lv}" for w, lv in grid],
        "passes": passes,
        "reference_s": round(ref, 3),
        "fastpath_cold_s": round(cold, 3),
        "fastpath_warm_s": round(min(warm_times), 3),
        "speedup_cold": round(ref / cold, 2),
        "speedup_warm": round(ref / min(warm_times), 2),
    }


def run_benchmark(quick=False):
    micro_iters = 60_000 if quick else 200_000
    repeats = 2 if quick else 3
    sections = {
        "dispatch_micro": _time_micro(_dispatch_program(), micro_iters, repeats),
        "cache_micro": _time_micro(_cache_program(), micro_iters, repeats),
        "figures": _time_figures(passes=1 if quick else 2, repeats=repeats),
    }
    speedups = {
        "dispatch_micro": sections["dispatch_micro"]["speedup"],
        "cache_micro": sections["cache_micro"]["speedup"],
        "figures_cold": sections["figures"]["speedup_cold"],
        "figures_warm": sections["figures"]["speedup_warm"],
    }
    failures, warnings = [], []
    for key, gate in GATES.items():
        got = speedups[key]
        if got < gate["fail_below"]:
            failures.append(f"{key}: {got}x < hard floor {gate['fail_below']}x")
        elif got < gate["target"]:
            warnings.append(
                f"{key}: {got}x below aspirational {gate['target']}x "
                "(Amdahl-bound: analysis/miss-path Python dominates)"
            )
    return {
        "schema": 1,
        "quick": quick,
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "machine": platform.machine(),
        "gates": GATES,
        "speedups": speedups,
        "sections": sections,
        "warnings": warnings,
        "failures": failures,
        "status": "fail" if failures else "pass",
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI-sized run")
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT,
                        help=f"output JSON path (default: {DEFAULT_OUT})")
    parser.add_argument("--no-write", action="store_true",
                        help="measure and gate without touching the JSON")
    args = parser.parse_args(argv)
    doc = run_benchmark(quick=args.quick)
    for key, value in doc["speedups"].items():
        print(f"{key:<16} {value:>6.2f}x")
    for line in doc["warnings"]:
        print(f"warning: {line}")
    for line in doc["failures"]:
        print(f"FAIL: {line}")
    if not args.no_write:
        args.out.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
        print(f"wrote {args.out}")
    print(f"status: {doc['status']}")
    return 1 if doc["failures"] else 0


if __name__ == "__main__":
    sys.exit(main())
