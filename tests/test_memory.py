"""Tests for the flat simulated memory and bump allocator."""

import pytest

from repro.errors import MemoryFault
from repro.machine.memory import HEAP_BASE, STATIC_BASE, WORD_BYTES, Memory


class TestAllocation:
    def test_heap_starts_at_base(self):
        mem = Memory()
        assert mem.allocate(8) == HEAP_BASE

    def test_allocations_do_not_overlap(self):
        mem = Memory()
        a = mem.allocate(12)
        b = mem.allocate(8)
        assert b >= a + 12

    def test_alignment(self):
        mem = Memory()
        mem.allocate(4)
        addr = mem.allocate(8, align=32)
        assert addr % 32 == 0

    def test_size_rounded_to_words(self):
        mem = Memory()
        a = mem.allocate(5)
        b = mem.allocate(4)
        assert (b - a) % WORD_BYTES == 0

    def test_rejects_zero_size(self):
        with pytest.raises(MemoryFault):
            Memory().allocate(0)

    def test_rejects_bad_alignment(self):
        with pytest.raises(MemoryFault):
            Memory().allocate(8, align=3)

    def test_static_region_below_heap(self):
        mem = Memory()
        addr = mem.allocate_static(64)
        assert STATIC_BASE <= addr < HEAP_BASE

    def test_static_overflow_detected(self):
        mem = Memory()
        with pytest.raises(MemoryFault):
            mem.allocate_static(HEAP_BASE)  # larger than the whole region


class TestLoadStore:
    def test_default_value_is_zero(self):
        assert Memory().load(HEAP_BASE) == 0

    def test_store_then_load(self):
        mem = Memory()
        mem.store(HEAP_BASE, 42)
        assert mem.load(HEAP_BASE) == 42

    def test_unaligned_load_faults(self):
        with pytest.raises(MemoryFault):
            Memory().load(HEAP_BASE + 2)

    def test_unaligned_store_faults(self):
        with pytest.raises(MemoryFault):
            Memory().store(HEAP_BASE + 1, 1)

    def test_negative_address_faults(self):
        with pytest.raises(MemoryFault):
            Memory().load(-4)

    def test_bulk_roundtrip(self):
        mem = Memory()
        base = mem.allocate(16)
        mem.store_words(base, [1, 2, 3, 4])
        assert mem.load_words(base, 4) == [1, 2, 3, 4]

    def test_footprint_counts_written_words(self):
        mem = Memory()
        mem.store(HEAP_BASE, 1)
        mem.store(HEAP_BASE, 2)  # overwrite: still one word
        mem.store(HEAP_BASE + 4, 3)
        assert mem.footprint_words == 2
