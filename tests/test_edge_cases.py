"""Edge-case tests across modules: frame isolation, tiny workloads, bounds.

The workload-shape sweeps are property-based: hypothesis draws small valid
(or deliberately invalid) :class:`ChainMixParams` from explicit strategies
and shrinks any failure to a minimal parameter set.
"""


import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.interp.interpreter import Interpreter
from repro.ir import ProcedureBuilder, build_program
from repro.machine.config import CacheGeometry, MachineConfig
from repro.machine.memory import Memory
from repro.workloads.chainmix import ChainMixParams, build_chainmix

SMALL_MACHINE = MachineConfig(
    l1=CacheGeometry(512, 2), l2=CacheGeometry(4096, 4), l2_latency=10, memory_latency=100
)


class TestFrameIsolation:
    def test_callee_registers_do_not_leak(self):
        callee = ProcedureBuilder("clobber", params=("x",))
        r = callee.const(None, 999)
        callee.ret(r)
        main = ProcedureBuilder("main")
        a = main.const(None, 7)
        out = main.reg("out")
        main.call(out, "clobber", (a,))
        # `a` must still be 7 after the call even though the callee wrote
        # its own registers with the same indices.
        total = main.add(None, a, a)
        main.ret(total)
        program = build_program([main, callee], entry="main")
        assert Interpreter(program, Memory(), SMALL_MACHINE).run().return_value == 14

    def test_deep_call_chain(self):
        down = ProcedureBuilder("down", params=("n",))
        zero = down.const(None, 0)
        cond = down.cmp("le", None, down.param("n"), zero)
        down.bnz(cond, "base")
        n1 = down.addi(None, down.param("n"), -1)
        sub = down.reg("sub")
        down.call(sub, "down", (n1,))
        out = down.addi(None, sub, 1)
        down.ret(out)
        down.label("base")
        down.ret(zero)
        main = ProcedureBuilder("main")
        n = main.const(None, 400)
        r = main.reg("r")
        main.call(r, "down", (n,))
        main.ret(r)
        program = build_program([main, down], entry="main")
        assert Interpreter(program, Memory(), SMALL_MACHINE).run().return_value == 400

    def test_void_call_discards_value(self):
        callee = ProcedureBuilder("noisy")
        r = callee.const(None, 5)
        callee.ret(r)
        main = ProcedureBuilder("main")
        keep = main.const(None, 3)
        main.call(None, "noisy", ())
        main.ret(keep)
        program = build_program([main, callee], entry="main")
        assert Interpreter(program, Memory(), SMALL_MACHINE).run().return_value == 3


class TestTinyWorkloads:
    def test_single_group(self):
        params = ChainMixParams(
            name="t", groups=1, hot_chains=2, cold_chains=2, chain_len=5,
            hot_fraction=0.75, schedule_len=8, passes=2, cold_refs_per_step=4,
            cold_array_blocks=16, node_compute=0, unroll=4, seed=1,
        )
        wl = build_chainmix(params)
        stats = Interpreter(wl.program, wl.memory, SMALL_MACHINE).run(wl.args)
        assert stats.memory_refs > 0

    def test_all_hot_no_cold_chains(self):
        params = ChainMixParams(
            name="t", groups=2, hot_chains=4, cold_chains=0, chain_len=5,
            hot_fraction=1.0, schedule_len=8, passes=2, cold_refs_per_step=4,
            cold_array_blocks=16, node_compute=0, unroll=4, seed=1,
        )
        wl = build_chainmix(params)
        stats = Interpreter(wl.program, wl.memory, SMALL_MACHINE).run(wl.args)
        assert stats.return_value != 0

    def test_zero_passes_runs_nothing(self):
        params = ChainMixParams(
            name="t", groups=1, hot_chains=1, cold_chains=1, chain_len=5,
            hot_fraction=0.75, schedule_len=4, passes=0, cold_refs_per_step=4,
            cold_array_blocks=16, unroll=4,
        )
        wl = build_chainmix(params)
        stats = Interpreter(wl.program, wl.memory, SMALL_MACHINE).run(wl.args)
        assert stats.memory_refs == 0

    def test_minimal_chain_length(self):
        params = ChainMixParams(
            name="t", groups=1, hot_chains=1, cold_chains=1, chain_len=5,
            hot_fraction=0.75, schedule_len=4, passes=1, cold_refs_per_step=4,
            cold_array_blocks=16, unroll=4,
        )
        wl = build_chainmix(params)
        Interpreter(wl.program, wl.memory, SMALL_MACHINE).run(wl.args)

    def test_unroll_one(self):
        params = ChainMixParams(
            name="t", groups=1, hot_chains=1, cold_chains=1, chain_len=3,
            hot_fraction=0.75, schedule_len=4, passes=1, cold_refs_per_step=4,
            cold_array_blocks=16, unroll=1,
        )
        wl = build_chainmix(params)
        Interpreter(wl.program, wl.memory, SMALL_MACHINE).run(wl.args)

    def test_phases_with_tiny_run(self):
        params = ChainMixParams(
            name="t", groups=1, hot_chains=2, cold_chains=2, chain_len=5,
            hot_fraction=0.75, schedule_len=4, passes=1, cold_refs_per_step=4,
            cold_array_blocks=16, unroll=4, phases=4,
        )
        wl = build_chainmix(params)
        Interpreter(wl.program, wl.memory, SMALL_MACHINE).run(wl.args)


class TestParamBounds:
    def test_more_groups_than_hot_chains_rejected(self):
        with pytest.raises(ConfigError):
            ChainMixParams(name="t", groups=4, hot_chains=3)

    def test_chain_len_one_rejected(self):
        with pytest.raises(ConfigError):
            ChainMixParams(name="t", chain_len=1, unroll=1)


# ------------------------------------------------------- property-based sweeps


@st.composite
def small_chainmix_params(draw) -> ChainMixParams:
    """Valid, deliberately tiny chain-mix shapes (runs stay under ~50k refs)."""
    groups = draw(st.integers(min_value=1, max_value=3))
    unroll = draw(st.sampled_from([1, 2, 4]))
    chain_len = 1 + unroll * draw(st.integers(min_value=1, max_value=4))
    cold_chains = draw(st.integers(min_value=0, max_value=4))
    hot_fraction = (
        1.0 if cold_chains == 0 else draw(st.sampled_from([0.5, 0.75, 0.875, 1.0]))
    )
    return ChainMixParams(
        name="prop",
        groups=groups,
        hot_chains=draw(st.integers(min_value=groups, max_value=groups + 4)),
        cold_chains=cold_chains,
        chain_len=chain_len,
        hot_fraction=hot_fraction,
        schedule_len=draw(st.integers(min_value=2, max_value=16)),
        passes=draw(st.integers(min_value=1, max_value=2)),
        cold_refs_per_step=draw(st.integers(min_value=0, max_value=4)),
        cold_array_blocks=draw(st.sampled_from([8, 16, 32])),
        node_compute=draw(st.integers(min_value=0, max_value=2)),
        unroll=unroll,
        seed=draw(st.integers(min_value=0, max_value=999)),
        phases=draw(st.integers(min_value=1, max_value=3)),
    )


class TestWorkloadProperties:
    @given(params=small_chainmix_params())
    @settings(deadline=None, max_examples=25, derandomize=True)
    def test_any_valid_shape_builds_and_runs(self, params):
        wl = build_chainmix(params)
        stats = Interpreter(wl.program, wl.memory, SMALL_MACHINE).run(wl.args)
        assert stats.instructions > 0
        assert stats.cycles >= stats.instructions
        assert stats.mem_stall_cycles <= stats.cycles
        if params.passes and params.schedule_len:
            assert stats.memory_refs > 0

    @given(params=small_chainmix_params())
    @settings(deadline=None, max_examples=10, derandomize=True)
    def test_runs_are_deterministic(self, params):
        """Two fresh builds of the same shape execute bit-identically."""
        outcomes = []
        for _ in range(2):
            wl = build_chainmix(params)
            stats = Interpreter(wl.program, wl.memory, SMALL_MACHINE).run(wl.args)
            outcomes.append(
                (stats.cycles, stats.instructions, stats.memory_refs,
                 stats.mem_stall_cycles, stats.return_value)
            )
        assert outcomes[0] == outcomes[1]

    @given(
        chain_len=st.integers(min_value=2, max_value=40),
        unroll=st.integers(min_value=1, max_value=8),
    )
    @settings(deadline=None, derandomize=True)
    def test_chain_len_unroll_compatibility(self, chain_len, unroll):
        """Exactly the (chain_len - 1) % unroll == 0 shapes are accepted."""
        build = lambda: ChainMixParams(
            name="prop", groups=1, hot_chains=1, cold_chains=1, chain_len=chain_len,
            hot_fraction=0.75, schedule_len=4, passes=1, cold_refs_per_step=1,
            cold_array_blocks=8, unroll=unroll,
        )
        if (chain_len - 1) % unroll == 0:
            build()
        else:
            with pytest.raises(ConfigError):
                build()
