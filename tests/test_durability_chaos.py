"""Chaos harness: deterministic decisions, bounded damage, typed telemetry.

Mirrors the :mod:`repro.resilience.faults` determinism contract at the
engine level: per-kind PRNG streams, draws consumed even when disabled or
capped, reproducible filesystem sabotage.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.durability.chaos import CHAOS_KINDS, ChaosInjector, ChaosPlan
from repro.engine.cache import ResultStore
from repro.engine.executor import run_spec
from repro.engine.spec import RunSpec
from repro.errors import ConfigError
from repro.telemetry.events import EventBus
from repro.telemetry.sinks import ListSink


class TestPlan:
    def test_round_trip(self):
        plan = ChaosPlan(seed=7, rate=0.5, kinds=("kill_worker",), max_per_kind=3)
        assert ChaosPlan.from_dict(plan.to_dict()) == plan

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"kinds": ("explode",)},
            {"rate": 1.5},
            {"rate": -0.1},
            {"max_per_kind": 0},
        ],
    )
    def test_bad_plan_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            ChaosPlan(**kwargs)


class TestDeterminism:
    def test_equal_plans_fire_identically(self):
        a = ChaosInjector(ChaosPlan(seed=3, rate=0.5, max_per_kind=100))
        b = ChaosInjector(ChaosPlan(seed=3, rate=0.5, max_per_kind=100))
        for _ in range(50):
            for kind in CHAOS_KINDS:
                assert a.fire(kind) == b.fire(kind)
        assert a.fired == b.fired

    def test_kinds_draw_independently(self):
        # Consuming opportunities for one kind must not shift another's.
        solo = ChaosInjector(ChaosPlan(seed=5, rate=0.5, max_per_kind=100))
        mixed = ChaosInjector(ChaosPlan(seed=5, rate=0.5, max_per_kind=100))
        solo_decisions = [solo.fire("stall_worker") for _ in range(20)]
        mixed_decisions = []
        for _ in range(20):
            mixed.fire("kill_worker")
            mixed_decisions.append(mixed.fire("stall_worker"))
        assert solo_decisions == mixed_decisions

    def test_disabled_kind_consumes_draw(self):
        enabled = ChaosInjector(ChaosPlan(seed=9, rate=0.5, max_per_kind=100))
        limited = ChaosInjector(
            ChaosPlan(seed=9, rate=0.5, kinds=("stall_worker",), max_per_kind=100)
        )
        for _ in range(20):
            enabled.fire("kill_worker")
            limited.fire("kill_worker")  # disabled: draw still consumed
            assert enabled.fire("stall_worker") == limited.fire("stall_worker")

    def test_cap_bounds_firings(self):
        injector = ChaosInjector(ChaosPlan(seed=0, rate=1.0, max_per_kind=2))
        fired = sum(injector.fire("kill_worker") for _ in range(10))
        assert fired == 2
        assert injector.counts["kill_worker"] == 2

    def test_fired_emits_events(self):
        events = ListSink()
        bus = EventBus()
        bus.attach(events)
        injector = ChaosInjector(ChaosPlan(seed=0), bus=bus)
        assert injector.fire("kill_worker", "vpr/dyn")
        chaos_events = [e for e in events.events if e.kind == "ChaosInjected"]
        assert len(chaos_events) == 1
        assert chaos_events[0].fault == "kill_worker"
        assert chaos_events[0].detail == "vpr/dyn"


class TestSabotage:
    def test_corrupt_file_flips_one_byte_deterministically(self, tmp_path):
        target = tmp_path / "victim.bin"
        payload = bytes(range(256)) * 4
        offsets = []
        for _ in range(2):
            target.write_bytes(payload)
            injector = ChaosInjector(ChaosPlan(seed=11))
            offsets.append(injector.corrupt_file(target, "corrupt_cache_entry"))
            mutated = target.read_bytes()
            assert len(mutated) == len(payload)
            diff = [i for i in range(len(payload)) if mutated[i] != payload[i]]
            assert diff == [offsets[-1]]
        assert offsets[0] == offsets[1]

    def test_corrupt_missing_file_returns_none(self, tmp_path):
        injector = ChaosInjector(ChaosPlan(seed=0))
        assert injector.corrupt_file(tmp_path / "absent", "corrupt_cache_entry") is None

    def test_truncate_file_halves(self, tmp_path):
        target = tmp_path / "victim.bin"
        target.write_bytes(b"x" * 100)
        injector = ChaosInjector(ChaosPlan(seed=0))
        assert injector.truncate_file(target) == 50
        assert target.stat().st_size == 50

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**16))
    def test_any_seed_keeps_decisions_reproducible(self, seed):
        a = ChaosInjector(ChaosPlan(seed=seed, rate=0.3, max_per_kind=5))
        b = ChaosInjector(ChaosPlan(seed=seed, rate=0.3, max_per_kind=5))
        pattern = [(k, a.fire(k)) for _ in range(10) for k in CHAOS_KINDS]
        assert pattern == [(k, b.fire(k)) for _ in range(10) for k in CHAOS_KINDS]


class TestStoreDegradation:
    def test_corrupt_entry_degrades_to_miss_and_counts(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = RunSpec("vortex", "orig", passes=1)
        run_spec(spec, store=store)
        injector = ChaosInjector(ChaosPlan(seed=1))
        assert injector.corrupt_file(store.path_for(spec.fingerprint()),
                                     "corrupt_cache_entry") is not None
        fresh = ResultStore(tmp_path)
        assert fresh.load(spec) is None
        assert fresh.corrupt == 1 and fresh.misses == 1
        assert fresh.scan()["corrupt"] == 1
        # Recompute repairs the entry in place.
        result = run_spec(spec, store=fresh)
        assert not result.from_cache
        assert fresh.scan()["corrupt"] == 0
