"""Tests for the pre-install stream guard (repro.resilience.guards)."""

import pytest

from repro.analysis.stream import HotDataStream
from repro.dfsm.build import build_dfsm
from repro.errors import AnalysisError, ConfigError
from repro.resilience.guards import (
    REASON_DEGENERATE,
    REASON_DUPLICATE,
    REASON_NO_HEAT,
    REASON_NO_TAIL,
    REASON_OVERSIZED,
    REASON_QUARANTINED,
    REASON_UNKNOWN_SYMBOL,
    GuardConfig,
    StreamGuard,
    stream_key,
)

#: admit() only calls len() on the symbol table.
SYMBOLS = list(range(16))
HEAD_LEN = 2


def stream(symbols, heat=10, rule_id=0):
    return HotDataStream(tuple(symbols), heat, rule_id)


def reasons(rejections):
    return [r.reason for r in rejections]


class TestAdmission:
    def test_healthy_stream_admitted(self):
        guard = StreamGuard()
        accepted, rejected = guard.admit([stream([0, 1, 2, 3])], HEAD_LEN, SYMBOLS, cycle=1)
        assert len(accepted) == 1
        assert rejected == []
        assert guard.rejections_total == 0

    def test_no_tail(self):
        guard = StreamGuard()
        accepted, rejected = guard.admit([stream([0, 1])], HEAD_LEN, SYMBOLS, cycle=1)
        assert accepted == []
        assert reasons(rejected) == [REASON_NO_TAIL]

    def test_degenerate_single_address(self):
        guard = StreamGuard()
        accepted, rejected = guard.admit([stream([3, 3, 3, 3])], HEAD_LEN, SYMBOLS, cycle=1)
        assert accepted == []
        assert reasons(rejected) == [REASON_DEGENERATE]

    def test_no_heat(self):
        guard = StreamGuard()
        accepted, rejected = guard.admit([stream([0, 1, 2], heat=0)], HEAD_LEN, SYMBOLS, cycle=1)
        assert reasons(rejected) == [REASON_NO_HEAT]

    def test_oversized(self):
        guard = StreamGuard(GuardConfig(max_stream_length=4))
        accepted, rejected = guard.admit([stream(range(6))], HEAD_LEN, SYMBOLS, cycle=1)
        assert reasons(rejected) == [REASON_OVERSIZED]

    def test_unknown_symbol(self):
        guard = StreamGuard()
        bad = stream([0, 1, len(SYMBOLS)])
        accepted, rejected = guard.admit([bad], HEAD_LEN, SYMBOLS, cycle=1)
        assert reasons(rejected) == [REASON_UNKNOWN_SYMBOL]

    def test_duplicate_within_batch(self):
        guard = StreamGuard()
        batch = [stream([0, 1, 2, 3], rule_id=0), stream([0, 1, 2, 3], rule_id=9)]
        accepted, rejected = guard.admit(batch, HEAD_LEN, SYMBOLS, cycle=1)
        assert len(accepted) == 1
        assert reasons(rejected) == [REASON_DUPLICATE]

    def test_mixed_batch_splits(self):
        guard = StreamGuard()
        batch = [stream([0, 1, 2, 3]), stream([4, 4, 4]), stream([5, 6, 7, 8])]
        accepted, rejected = guard.admit(batch, HEAD_LEN, SYMBOLS, cycle=1)
        assert [s.symbols for s in accepted] == [(0, 1, 2, 3), (5, 6, 7, 8)]
        assert reasons(rejected) == [REASON_DEGENERATE]
        assert guard.rejections_total == 1


class TestQuarantine:
    def test_rejected_identity_is_quarantined(self):
        guard = StreamGuard(GuardConfig(quarantine_cycles=3))
        bad = stream([3, 3, 3])
        guard.admit([bad], HEAD_LEN, SYMBOLS, cycle=1)
        _, rejected = guard.admit([bad], HEAD_LEN, SYMBOLS, cycle=2)
        assert reasons(rejected) == [REASON_QUARANTINED]
        assert guard.is_quarantined(stream_key(bad), 2)

    def test_quarantine_expires(self):
        guard = StreamGuard(GuardConfig(quarantine_cycles=2))
        bad = stream([3, 3, 3])
        guard.admit([bad], HEAD_LEN, SYMBOLS, cycle=1)
        # After expiry the stream is re-vetted on the merits again.
        _, rejected = guard.admit([bad], HEAD_LEN, SYMBOLS, cycle=3)
        assert reasons(rejected) == [REASON_DEGENERATE]

    def test_duplicates_do_not_quarantine_the_identity(self):
        guard = StreamGuard()
        batch = [stream([0, 1, 2, 3]), stream([0, 1, 2, 3])]
        guard.admit(batch, HEAD_LEN, SYMBOLS, cycle=1)
        accepted, rejected = guard.admit([stream([0, 1, 2, 3])], HEAD_LEN, SYMBOLS, cycle=2)
        assert len(accepted) == 1
        assert rejected == []

    def test_explicit_quarantine(self):
        guard = StreamGuard(GuardConfig(quarantine_cycles=2))
        good = stream([0, 1, 2, 3])
        guard.quarantine(stream_key(good), cycle=1)
        _, rejected = guard.admit([good], HEAD_LEN, SYMBOLS, cycle=2)
        assert reasons(rejected) == [REASON_QUARANTINED]


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"min_unique_refs": 0},
            {"max_stream_length": 1},
            {"quarantine_cycles": -1},
        ],
    )
    def test_bad_config_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            GuardConfig(**kwargs)


class FakeDfsm:
    def __init__(self, states, edges, completions):
        self.states = states
        self.edges = edges
        self.completions = completions


class TestDfsmSanity:
    def test_real_dfsm_passes(self):
        streams = [stream([0, 1, 2, 3]), stream([0, 1, 4, 5], rule_id=1)]
        dfsm = build_dfsm(streams, head_len=HEAD_LEN)
        StreamGuard().check_dfsm(dfsm, streams)

    def test_empty_dfsm_raises(self):
        with pytest.raises(AnalysisError):
            StreamGuard().check_dfsm(FakeDfsm([], {}, {}), [])

    def test_completion_for_unknown_state(self):
        dfsm = FakeDfsm([0, 1], {}, {5: (0,)})
        with pytest.raises(AnalysisError):
            StreamGuard().check_dfsm(dfsm, [stream([0, 1, 2])])

    def test_completion_of_unknown_stream(self):
        dfsm = FakeDfsm([0, 1], {}, {1: (3,)})
        with pytest.raises(AnalysisError):
            StreamGuard().check_dfsm(dfsm, [stream([0, 1, 2])])

    def test_edge_to_unknown_state(self):
        dfsm = FakeDfsm([0, 1], {(0, 7): 9}, {})
        with pytest.raises(AnalysisError):
            StreamGuard().check_dfsm(dfsm, [stream([0, 1, 2])])
