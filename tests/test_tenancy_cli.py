"""CLI coverage: ``repro-bench tenancy`` and ``repro-bench cache gc``."""

import pytest

from repro.bench.cli import main

TENANCY_ARGS = [
    "tenancy",
    "--tenants", "vortex:dyn,vpr:orig",
    "--scale", "0.1",
    "--quantum", "2048",
]


class TestTenancyArtifact:
    def test_scorecard_and_exit_code(self, capsys):
        assert main(TENANCY_ARGS) == 0
        out = capsys.readouterr().out
        assert "Tenancy scorecard" in out
        assert "pollution matrix total" in out
        assert "reconciles exactly" in out
        # Both tenants show up by their derived names.
        assert "t0:vortex" in out and "t1:vpr" in out

    def test_warm_rerun_replays_identical_stdout(self, capsys):
        assert main(TENANCY_ARGS) == 0
        cold = capsys.readouterr()
        assert main(TENANCY_ARGS) == 0
        warm = capsys.readouterr()
        assert warm.out == cold.out
        assert "1 hits" in warm.err

    def test_sharing_flag_changes_the_run(self, capsys):
        assert main([*TENANCY_ARGS, "--sharing", "shared"]) == 0
        shared = capsys.readouterr().out
        assert main([*TENANCY_ARGS, "--sharing", "private-l1"]) == 0
        private = capsys.readouterr().out
        assert shared != private


class TestTenantParsing:
    @pytest.mark.parametrize(
        "tenants",
        [
            "vpr",                 # missing :level
            "nosuchworkload:dyn",  # unknown workload
            "vpr:nosuchlevel",     # unknown level
            ",",                   # empty list
        ],
    )
    def test_bad_tenants_are_usage_errors(self, tenants, capsys):
        with pytest.raises(SystemExit) as err:
            main(["tenancy", "--tenants", tenants])
        assert err.value.code == 2


class TestCacheGcSubcommand:
    def test_gc_without_bounds_is_a_usage_error(self, capsys):
        with pytest.raises(SystemExit) as err:
            main(["cache", "gc"])
        assert err.value.code == 2
        assert "--max-age-days" in capsys.readouterr().err

    def test_unknown_subcommand_is_a_usage_error(self, capsys):
        with pytest.raises(SystemExit) as err:
            main(["cache", "defrag"])
        assert err.value.code == 2

    def test_gc_evicts_what_tenancy_stored(self, capsys):
        assert main(TENANCY_ARGS) == 0
        capsys.readouterr()
        assert main(["cache", "gc", "--max-size-mb", "0"]) == 0
        out = capsys.readouterr().out
        assert "1 entries evicted" in out
        # The next tenancy run is a genuine miss again.
        assert main(TENANCY_ARGS) == 0
        assert "1 misses" in capsys.readouterr().err

    def test_gc_on_empty_cache_reports_zero(self, capsys):
        assert main(["cache", "gc", "--max-age-days", "7"]) == 0
        assert "0 entries evicted" in capsys.readouterr().out
