"""Smoke tests: the example scripts must run and show the headline effects.

The heavyweight examples (quickstart, custom_workload, phase_adaptation)
are exercised at reduced scale by importing their pieces rather than
executing the full scripts; the two instant examples run whole.
"""

import pathlib
import subprocess
import sys


EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_script(name: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


class TestInstantExamples:
    def test_sequitur_demo(self):
        out = run_script("sequitur_demo.py")
        assert "S -> R1 a R3 R3" in out
        assert "abcabc  heat=12  covers 80%" in out

    def test_dfsm_demo(self):
        out = run_script("dfsm_demo.py")
        assert "7 states" in out
        assert "prefetch" in out

    def test_telemetry_demo(self):
        out = run_script("telemetry_demo.py")
        assert "JSONL round-trip" in out
        assert "observer effect: 0" in out


class TestHeavyExamplePieces:
    def test_custom_workload_builds_and_wins(self):
        sys.path.insert(0, str(EXAMPLES))
        try:
            import custom_workload  # noqa: F401  (imported for its builder)
        finally:
            sys.path.pop(0)
        program, memory = custom_workload.build_workload()
        assert set(program.procedures) == {"main", "pick", "scan", "noise"}

    def test_quickstart_module_parses(self):
        source = (EXAMPLES / "quickstart.py").read_text()
        compile(source, "quickstart.py", "exec")

    def test_phase_adaptation_module_parses(self):
        source = (EXAMPLES / "phase_adaptation.py").read_text()
        compile(source, "phase_adaptation.py", "exec")
