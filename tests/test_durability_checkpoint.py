"""Checkpoint format: round trips, integrity gates, graceful skips.

The checkpoint file is one JSON header line plus a pickle payload; every
gate (format version, spec/code fingerprint, payload length, sha256) must
reject with a typed :class:`CheckpointError` and a ``CheckpointRejected``
event — never load damaged state.
"""

import json
import pickle

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.durability.checkpoint import (
    CHECKPOINT_FORMAT,
    CheckpointError,
    load_checkpoint,
    read_header,
    save_checkpoint,
)
from repro.engine.levels import prepare_workload
from repro.sequitur.sequitur import Sequitur
from repro.telemetry.events import EventBus
from repro.telemetry.sinks import ListSink
from repro.workloads.chainmix import build_chainmix

FINGERPRINT = "f" * 64


def _mid_run(small_params, tiny_machine, budget=2000):
    """An interpreter parked mid-run, plus its optimizer summary."""
    prepared = prepare_workload(build_chainmix(small_params), "dyn", tiny_machine)
    prepared.interp.start(prepared.args)
    assert prepared.interp.run_slice(budget) is None
    return prepared


def _bus():
    events = ListSink()
    bus = EventBus()
    bus.attach(events)
    return bus, events


class TestRoundTrip:
    def test_save_load_round_trip(self, small_params, tiny_machine, tmp_path):
        prepared = _mid_run(small_params, tiny_machine)
        path = tmp_path / "run.ckpt"
        bus, events = _bus()
        written = save_checkpoint(
            path, prepared.interp, prepared.summary,
            workload="small", level="dyn", fingerprint=FINGERPRINT, bus=bus,
        )
        assert written == path and path.is_file()
        cp = load_checkpoint(path, fingerprint=FINGERPRINT, bus=bus)
        assert cp.workload == "small" and cp.level == "dyn"
        assert cp.fingerprint == FINGERPRINT
        assert cp.icount == prepared.interp.exec_state.icount
        # The restored interpreter finishes exactly like the original.
        original = prepared.interp.run_slice(1 << 40)
        restored = cp.interp.run_slice(1 << 40)
        assert restored.to_dict() == original.to_dict()
        counts = events.counts()
        assert counts.get("CheckpointSaved") == 1

    def test_header_readable_without_payload(self, small_params, tiny_machine, tmp_path):
        prepared = _mid_run(small_params, tiny_machine)
        path = tmp_path / "run.ckpt"
        save_checkpoint(
            path, prepared.interp, prepared.summary,
            workload="small", level="dyn", fingerprint=FINGERPRINT,
        )
        header = read_header(path)
        assert header["format"] == CHECKPOINT_FORMAT
        assert header["workload"] == "small"
        assert header["payload_bytes"] > 0

    def test_sequitur_pickle_round_trip(self):
        # The grammar's circular linked lists forced an iterative
        # __getstate__; the round trip must preserve digram/rule structure.
        seq = Sequitur()
        seq.extend([0, 1, 0, 0, 1, 2, 0, 1, 2, 0, 1, 2, 0, 1, 2])
        clone = pickle.loads(pickle.dumps(seq, pickle.HIGHEST_PROTOCOL))
        names = {i: ch for i, ch in enumerate("abc")}
        assert clone.to_text(names) == seq.to_text(names)
        clone.extend([0, 1, 2])
        seq.extend([0, 1, 2])
        assert clone.to_text(names) == seq.to_text(names)


class TestRejection:
    @pytest.fixture
    def saved(self, small_params, tiny_machine, tmp_path):
        prepared = _mid_run(small_params, tiny_machine)
        path = tmp_path / "run.ckpt"
        save_checkpoint(
            path, prepared.interp, prepared.summary,
            workload="small", level="dyn", fingerprint=FINGERPRINT,
        )
        return path

    def _expect_rejection(self, path, reason, fingerprint=FINGERPRINT):
        bus, events = _bus()
        with pytest.raises(CheckpointError) as exc:
            load_checkpoint(path, fingerprint=fingerprint, bus=bus)
        assert exc.value.reason == reason
        rejected = [e for e in events.events if e.kind == "CheckpointRejected"]
        assert len(rejected) == 1 and rejected[0].reason == reason

    def test_version_bump_rejected(self, saved):
        header_line, _, payload = saved.read_bytes().partition(b"\n")
        header = json.loads(header_line)
        header["format"] = CHECKPOINT_FORMAT + 1
        saved.write_bytes(json.dumps(header).encode() + b"\n" + payload)
        self._expect_rejection(saved, "format")

    def test_foreign_fingerprint_rejected(self, saved):
        self._expect_rejection(saved, "fingerprint", fingerprint="0" * 64)

    def test_truncation_rejected(self, saved):
        data = saved.read_bytes()
        saved.write_bytes(data[: len(data) // 2])
        self._expect_rejection(saved, "truncated")

    def test_flipped_payload_byte_rejected(self, saved):
        data = bytearray(saved.read_bytes())
        data[-10] ^= 0x01
        saved.write_bytes(bytes(data))
        self._expect_rejection(saved, "digest")

    def test_garbage_header_rejected(self, saved):
        saved.write_bytes(b"not json at all\n" + b"x" * 32)
        self._expect_rejection(saved, "unreadable")

    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(offset_frac=st.floats(min_value=0.0, max_value=1.0, exclude_max=True))
    def test_any_flipped_payload_byte_rejected(
        self, small_params, tiny_machine, tmp_path_factory, offset_frac
    ):
        """Property: flip ANY single payload byte — the digest gate must
        reject it with a typed error, wherever the flip lands."""
        prepared = _mid_run(small_params, tiny_machine)
        path = tmp_path_factory.mktemp("ckpt") / "run.ckpt"
        save_checkpoint(
            path, prepared.interp, prepared.summary,
            workload="small", level="dyn", fingerprint=FINGERPRINT,
        )
        data = bytearray(path.read_bytes())
        payload_start = data.index(b"\n") + 1
        offset = payload_start + int(offset_frac * (len(data) - payload_start))
        data[min(offset, len(data) - 1)] ^= 0x01
        path.write_bytes(bytes(data))
        with pytest.raises(CheckpointError) as exc:
            load_checkpoint(path, fingerprint=FINGERPRINT)
        assert exc.value.reason == "digest"


class TestSkip:
    def test_unpicklable_state_skips_not_raises(self, small_params, tiny_machine, tmp_path):
        prepared = _mid_run(small_params, tiny_machine)
        path = tmp_path / "run.ckpt"
        bus, events = _bus()
        written = save_checkpoint(
            path, prepared.interp, lambda: None,  # lambdas cannot pickle
            workload="small", level="dyn", fingerprint=FINGERPRINT, bus=bus,
        )
        assert written is None
        assert not path.exists()
        assert events.counts().get("CheckpointSkipped") == 1
