"""The checked-in bench_tables.txt matches ``repro-bench tables`` output."""

from pathlib import Path

from repro.bench.cli import main

TABLES_FILE = Path(__file__).resolve().parents[1] / "bench_tables.txt"


def test_checked_in_tables_match_generator(capsys):
    assert main(["tables"]) == 0
    generated = capsys.readouterr().out
    assert TABLES_FILE.read_text() == generated, (
        "bench_tables.txt is stale; regenerate with "
        "`repro-bench tables > bench_tables.txt`"
    )
