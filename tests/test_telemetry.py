"""Tests for the repro.telemetry subsystem.

Covers the event model, sinks, metrics registry, exporters, the sampling
invariants, the zero-observer-effect guarantee, and the agreement between the
telemetry registry and the legacy simulation counters on full runs.
"""

from __future__ import annotations

import json

import pytest

from repro.bench.runner import run_level
from repro.errors import ConfigError
from repro.machine.config import CacheGeometry, MachineConfig
from repro.machine.hierarchy import MemoryHierarchy
from repro.telemetry.events import (
    EVENT_TYPES,
    BurstBegin,
    CacheFlushed,
    Event,
    EventBus,
    PrefetchIssued,
    RunBegin,
    from_record,
)
from repro.telemetry.export import (
    load_events_jsonl,
    load_metrics_json,
    summarize,
    write_events_jsonl,
    write_metrics_csv,
    write_metrics_json,
)
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.session import TelemetryRecorder, TelemetrySession
from repro.telemetry.sinks import NULL_SINK, JsonlSink, ListSink

TINY = MachineConfig(
    l1=CacheGeometry(512, 2), l2=CacheGeometry(4096, 4), l2_latency=10, memory_latency=100
)

#: one constructed instance per registered event kind, for round-trip tests
SAMPLE_EVENTS = {
    "RunBegin": lambda: EVENT_TYPES["RunBegin"](0, "vpr", "dyn"),
    "RunEnd": lambda: EVENT_TYPES["RunEnd"](100, 90, 3),
    "BurstBegin": lambda: EVENT_TYPES["BurstBegin"](10),
    "BurstEnd": lambda: EVENT_TYPES["BurstEnd"](20, 1),
    "PhaseTransition": lambda: EVENT_TYPES["PhaseTransition"](30, "AWAKE", "HIBERNATING"),
    "AnalysisCharged": lambda: EVENT_TYPES["AnalysisCharged"](40, 512, 1024),
    "OptimizeCycle": lambda: EVENT_TYPES["OptimizeCycle"](50, 1, 512, 4, 10, 20, 6, 2),
    "DfsmBuilt": lambda: EVENT_TYPES["DfsmBuilt"](60, 10, 20, 4),
    "DfsmBackoff": lambda: EVENT_TYPES["DfsmBackoff"](70, 8, 4),
    "PrefetchIssued": lambda: EVENT_TYPES["PrefetchIssued"](80, 0x40, "sw", False),
    "PrefetchUsed": lambda: EVENT_TYPES["PrefetchUsed"](90, 0x40, False, 25),
    "PrefetchEvicted": lambda: EVENT_TYPES["PrefetchEvicted"](95, 0x41, True),
    "CacheMiss": lambda: EVENT_TYPES["CacheMiss"](99, "L2", 0x42, 100),
    "CacheFlushed": lambda: EVENT_TYPES["CacheFlushed"](99, 16, 128),
    "GuardRejected": lambda: EVENT_TYPES["GuardRejected"](96, "no_tail", "walk0:3@0x40 (+0)", 2, 11),
    "StreamDeoptimized": lambda: EVENT_TYPES["StreamDeoptimized"](
        97, "walk0:3@0x40 (+8)", "pollution", 0.1, 0.9, 64, 1
    ),
    "FaultInjected": lambda: EVENT_TYPES["FaultInjected"](98, "drop_burst", "records discarded"),
    "OptimizerError": lambda: EVENT_TYPES["OptimizerError"](
        99, "optimize", "InjectedFault", "injected fault: analysis_error", 1, False
    ),
    "RecordSkipped": lambda: EVENT_TYPES["RecordSkipped"](0, 7, "invalid JSON", "{trunc"),
    "SpanBegin": lambda: EVENT_TYPES["SpanBegin"](5, 1, 0, "run:vpr/dyn", "run", ""),
    "SpanEnd": lambda: EVENT_TYPES["SpanEnd"](95, 1),
    "ResultCacheHit": lambda: EVENT_TYPES["ResultCacheHit"](0, "vpr", "dyn", "ab" * 32),
    "ResultCacheMiss": lambda: EVENT_TYPES["ResultCacheMiss"](0, "vpr", "dyn", "ab" * 32),
    "ResultCacheStored": lambda: EVENT_TYPES["ResultCacheStored"](
        0, "vpr", "dyn", "ab" * 32, 4096
    ),
    "ResultCacheEvicted": lambda: EVENT_TYPES["ResultCacheEvicted"](
        0, "ab" * 32, "age", 4096
    ),
    "CheckpointSaved": lambda: EVENT_TYPES["CheckpointSaved"](
        0, "vpr", "dyn", "/tmp/run.ckpt", 250000, 4096
    ),
    "CheckpointLoaded": lambda: EVENT_TYPES["CheckpointLoaded"](
        0, "vpr", "dyn", "/tmp/run.ckpt", 250000
    ),
    "CheckpointRejected": lambda: EVENT_TYPES["CheckpointRejected"](
        0, "/tmp/run.ckpt", "digest"
    ),
    "CheckpointSkipped": lambda: EVENT_TYPES["CheckpointSkipped"](
        0, "vpr", "dyn", "unpicklable state"
    ),
    "WorkerCrashed": lambda: EVENT_TYPES["WorkerCrashed"](0, "vpr", "dyn", 1),
    "WorkerTimedOut": lambda: EVENT_TYPES["WorkerTimedOut"](
        0, "vpr", "dyn", 1, 10.5, "stall"
    ),
    "WorkerSlow": lambda: EVENT_TYPES["WorkerSlow"](0, "vpr", "dyn", 1, 10.5, 250000),
    "TaskRetried": lambda: EVENT_TYPES["TaskRetried"](0, "vpr", "dyn", 2, 0.5),
    "JournalReplayed": lambda: EVENT_TYPES["JournalReplayed"](
        0, "/tmp/plan.jsonl", 3, 1
    ),
    "ChaosInjected": lambda: EVENT_TYPES["ChaosInjected"](
        0, "kill_worker", "vpr/dyn"
    ),
}


class TestEventModel:
    def test_every_kind_has_a_sample(self):
        assert set(SAMPLE_EVENTS) == set(EVENT_TYPES)

    @pytest.mark.parametrize("kind", sorted(SAMPLE_EVENTS))
    def test_record_round_trip(self, kind):
        event = SAMPLE_EVENTS[kind]()
        record = event.to_record()
        assert record["kind"] == kind
        assert from_record(json.loads(json.dumps(record))) == event

    def test_events_are_immutable(self):
        event = BurstBegin(5)
        with pytest.raises(Exception):
            event.cycle = 6

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError):
            from_record({"kind": "NoSuchEvent", "cycle": 0})

    def test_bus_disabled_without_sinks(self):
        bus = EventBus()
        assert not bus.enabled
        bus.emit(BurstBegin(0))  # must be a harmless no-op

    def test_bus_fans_out_to_sinks(self):
        bus = EventBus()
        a, b = ListSink(), ListSink()
        bus.attach(a)
        bus.attach(b)
        assert bus.enabled
        bus.emit(BurstBegin(1))
        assert a.events == b.events == [BurstBegin(1)]
        assert a.counts() == {"BurstBegin": 1}

    def test_null_sink_is_disabled(self):
        assert not NULL_SINK.enabled
        NULL_SINK.emit(BurstBegin(0))


class TestSinksAndExporters:
    def test_jsonl_sink_round_trip(self, tmp_path):
        path = tmp_path / "events.jsonl"
        sink = JsonlSink(path)
        events = [SAMPLE_EVENTS[k]() for k in sorted(SAMPLE_EVENTS)]
        for event in events:
            sink.handle(event)
        sink.close()
        assert load_events_jsonl(path) == events

    def test_jsonl_sink_appends_after_close(self, tmp_path):
        path = tmp_path / "events.jsonl"
        sink = JsonlSink(path)
        sink.handle(BurstBegin(1))
        sink.close()
        sink.handle(BurstBegin(2))
        sink.close()
        assert load_events_jsonl(path) == [BurstBegin(1), BurstBegin(2)]

    def test_write_events_jsonl_helper(self, tmp_path):
        path = tmp_path / "log.jsonl"
        events = [RunBegin(0, "vpr", "dyn"), PrefetchIssued(5, 1, "sw", False)]
        write_events_jsonl(events, path)
        assert load_events_jsonl(path) == events

    def test_metrics_json_round_trip(self, tmp_path):
        reg = MetricsRegistry()
        reg.inc("a.count", 3)
        reg.set_gauge("a.rate", 0.5, cycle=100)
        reg.observe("a.hist", 7, bounds=(4, 8, 16))
        path = tmp_path / "metrics.json"
        write_metrics_json(reg.snapshot(), path)
        assert load_metrics_json(path) == json.loads(json.dumps(reg.snapshot()))

    def test_metrics_csv_rows(self, tmp_path):
        reg = MetricsRegistry()
        reg.inc("a.count", 2)
        reg.observe("a.hist", 5, bounds=(4, 8))
        path = tmp_path / "metrics.csv"
        write_metrics_csv(reg.snapshot(), path)
        text = path.read_text()
        assert "counter,a.count,2" in text
        assert "a.hist[le=8]" in text

    def test_summarize_mentions_event_counts(self):
        events = [RunBegin(0, "vpr", "dyn"), BurstBegin(1), BurstBegin(2)]
        reg = MetricsRegistry()
        reg.inc("exec.cycles", 1234)
        report = summarize(events, reg.snapshot())
        assert "BurstBegin" in report and "2" in report
        assert "exec.cycles" in report


class TestMetricsRegistry:
    def test_counter_and_gauge(self):
        reg = MetricsRegistry()
        reg.inc("c")
        reg.inc("c", 4)
        reg.set_counter("d", 10)
        reg.set_gauge("g", 0.25, cycle=7)
        snap = reg.snapshot()
        assert snap["counters"]["c"] == 5
        assert snap["counters"]["d"] == 10
        assert snap["gauges"]["g"] == {"value": 0.25, "cycle": 7}

    def test_histogram_buckets(self):
        reg = MetricsRegistry()
        hist = reg.histogram("h", (10, 100))
        for value in (5, 50, 500, 7):
            hist.observe(value)
        snap = reg.snapshot()["histograms"]["h"]
        assert snap["count"] == 4
        assert snap["total"] == 562
        assert snap["counts"] == [2, 1, 1]
        assert hist.mean == pytest.approx(562 / 4)


class TestRunAgreement:
    """Satellite: telemetry counters agree with the legacy counters."""

    @pytest.mark.parametrize("name,passes", [("vpr", 2), ("mcf", 2)])
    def test_dyn_run_counters_agree(self, name, passes):
        session = TelemetrySession.recording(miss_sample_every=1, prefetch_sample_every=1)
        result = run_level(name, "dyn", passes=passes, telemetry=session)
        counters = session.registry.snapshot()["counters"]
        stats, hier = result.stats, result.hierarchy
        assert counters["exec.cycles"] == stats.cycles
        assert counters["exec.instructions"] == stats.instructions
        assert counters["exec.bursts"] == stats.bursts
        assert counters["cache.l1.hits"] == hier.l1.hits
        assert counters["cache.l1.misses"] == hier.l1.misses
        assert counters["cache.l2.hits"] == hier.l2.hits
        assert counters["cache.l2.misses"] == hier.l2.misses
        assert counters["prefetch.issued"] == hier.prefetch.issued
        assert counters["prefetch.useful"] == hier.prefetch.useful
        assert counters["optimizer.opt_cycles"] == result.summary.num_cycles
        # Event-derived counts (period 1 = exhaustive) match the same totals.
        assert counters["events.BurstEnd"] == stats.bursts
        assert counters["events.CacheMiss"] == hier.l1.misses
        assert counters["events.PrefetchIssued"] == hier.prefetch.issued
        used = hier.prefetch.useful + hier.prefetch.late
        assert counters["events.PrefetchUsed"] == used
        assert counters["events.OptimizeCycle"] == result.summary.num_cycles
        assert session.registry.snapshot()["histograms"]["prefetch.lead_time"]["count"] == used

    def test_optimizer_summary_to_dict(self):
        result = run_level("vpr", "dyn", passes=2)
        summary = result.summary.to_dict()
        assert summary["num_cycles"] == result.summary.num_cycles
        assert summary["mean_dfsm_transitions"] == result.summary.mean_dfsm_transitions
        assert len(summary["cycles"]) == result.summary.num_cycles
        assert all("dfsm_transitions" in c for c in summary["cycles"])


class TestObserverEffect:
    """Satellite: simulated cycle counts are identical telemetry on vs off."""

    @pytest.mark.parametrize("name", ["vpr", "mcf"])
    def test_cycles_identical_on_vs_off(self, name, tmp_path):
        plain = run_level(name, "dyn", passes=2)
        session = TelemetrySession.to_jsonl(
            tmp_path / "t.jsonl", miss_sample_every=1, prefetch_sample_every=1
        )
        traced = run_level(name, "dyn", passes=2, telemetry=session)
        session.close()
        assert traced.stats.cycles == plain.stats.cycles
        assert traced.stats.instructions == plain.stats.instructions
        assert traced.hierarchy.l1.misses == plain.hierarchy.l1.misses


class TestSamplingInvariants:
    def test_emitted_equals_occurrences_floor_div_period(self):
        session = TelemetrySession.recording(miss_sample_every=16, prefetch_sample_every=8)
        result = run_level("vpr", "dyn", passes=2, telemetry=session)
        counts: dict[str, int] = {}
        for event in session.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        pf = result.hierarchy.prefetch
        assert counts["CacheMiss"] == result.hierarchy.l1.misses // 16
        assert counts["PrefetchIssued"] == pf.issued // 8
        assert counts["PrefetchUsed"] == (pf.useful + pf.late) // 8
        assert counts.get("PrefetchEvicted", 0) == pf.wasted // 8


class TestRecorder:
    def test_recorder_round_trips_jsonl_and_json(self, tmp_path):
        events_path = tmp_path / "events.jsonl"
        metrics_path = tmp_path / "metrics.json"
        recorder = TelemetryRecorder(events_path=events_path, metrics_path=metrics_path)
        for level in ("orig", "dyn"):
            session = recorder.session_for("vpr", level)
            run_level("vpr", level, passes=2, telemetry=session)
            recorder.record("vpr", level, session)
        recorder.close()
        events = load_events_jsonl(events_path)
        kinds = {event.kind for event in events}
        assert {"RunBegin", "RunEnd"} <= kinds
        assert all(isinstance(event, Event) for event in events)
        snapshots = load_metrics_json(metrics_path)
        assert set(snapshots) == {"vpr/orig", "vpr/dyn"}
        assert snapshots["vpr/dyn"]["context"] == {"workload": "vpr", "level": "dyn"}
        assert snapshots["vpr/dyn"]["optimizer"]["num_cycles"] >= 1
        assert snapshots["vpr/orig"]["counters"]["exec.cycles"] > 0

    def test_disabled_recorder_yields_no_session(self):
        recorder = TelemetryRecorder()
        assert not recorder.enabled
        assert recorder.session_for("vpr", "dyn") is None


class TestFlushRegression:
    """Satellite: counters and prefetch stats survive a flush."""

    def _hierarchy_with_bus(self):
        hier = MemoryHierarchy(TINY)
        sink = ListSink()
        bus = EventBus()
        bus.attach(sink)
        hier.telemetry = bus
        hier.miss_sample_every = 1
        hier.prefetch_sample_every = 1
        return hier, sink

    def test_flush_preserves_counters_and_emits_event(self):
        hier, sink = self._hierarchy_with_bus()
        hier.access(0x1000, now=0)
        hier.access(0x1000, now=10)  # hit
        hier.issue_prefetch(0x8000, now=20)
        hier.issue_prefetch(0x9000, now=20)
        hier.access(0x8000, now=500)  # one prefetch used
        hits, misses = hier.l1.hits, hier.l1.misses
        hier.flush(now=600)
        assert hier.l1.hits == hits and hier.l1.misses == misses
        assert hier.prefetch.issued == 2
        assert hier.prefetch.useful == 1
        # The unused prefetched block became wasted at flush time, so the
        # life-cycle invariant holds without waiting for finalize().
        pf = hier.prefetch
        assert pf.issued == pf.redundant + pf.useful + pf.late + pf.wasted
        flushes = [event for event in sink.events if isinstance(event, CacheFlushed)]
        assert len(flushes) == 1
        assert flushes[0].cycle == 600
        assert flushes[0].l1_blocks > 0

    def test_flush_then_finalize_does_not_double_count(self):
        hier, _ = self._hierarchy_with_bus()
        hier.issue_prefetch(0x8000, now=0)
        hier.flush(now=10)
        wasted = hier.prefetch.wasted
        hier.finalize(now=20)
        assert hier.prefetch.wasted == wasted == 1
