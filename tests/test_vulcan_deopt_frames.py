"""Per-stream deoptimization and stale activation records (Section 3.2).

The dynamic editor models "overwrite the first instruction with a jump" via
the program's patch table: *new* calls resolve to the optimized copy, while
frames already executing a copy run it to completion — the paper's
stale-return-address caveat.  These tests pin that behaviour down for the
watchdog's *targeted* rollback (:func:`deoptimize_procedures` /
:func:`reinject_detection`), including an edit performed *while a frame is
live inside the patched copy*.
"""

from repro.interp.interpreter import Interpreter
from repro.ir import Load, ProcedureBuilder, build_program
from repro.machine.memory import Memory
from repro.vulcan.dynamic_edit import (
    deoptimize_procedures,
    inject_detection,
    reinject_detection,
)

WALK_ITERS = 6
DATA_BASE = 0x1000


def walk_proc(name="walk", iters=WALK_ITERS):
    """Loop with one load per iteration (one handler site)."""
    b = ProcedureBuilder(name)
    base = b.const(None, DATA_BASE)
    i = b.const(None, 0)
    n = b.const(None, iters)
    total = b.const(None, 0)
    b.label("loop")
    cond = b.lt(None, i, n)
    b.bz(cond, "end")
    v = b.load(None, base, 0)
    b.add(total, total, v)
    b.addi(i, i, 1)
    b.jmp("loop")
    b.label("end")
    b.ret(total)
    return b.build()


def main_calls_walk_twice():
    b = ProcedureBuilder("main")
    first = b.reg("first")
    second = b.reg("second")
    b.call(first, "walk", ())
    b.call(second, "walk", ())
    out = b.add(None, first, second)
    b.ret(out)
    return b.build()


def build():
    return build_program([main_calls_walk_twice(), walk_proc()], entry="main")


def memory():
    mem = Memory()
    mem.store(DATA_BASE, 7)
    return mem


def load_pcs(proc):
    return [ins.pc for ins in proc.body if isinstance(ins, Load)]


class CountingHandler:
    def __init__(self):
        self.calls = 0

    def step(self, state, addr):
        self.calls += 1
        return state, (), 1


class RollbackHandler(CountingHandler):
    """Rolls back its own procedure's patch at the first detection."""

    def __init__(self, program, names):
        super().__init__()
        self.program = program
        self.names = names

    def step(self, state, addr):
        if self.calls == 0:
            deoptimize_procedures(self.program, self.names)
        return super().step(state, addr)


class TestTargetedRollback:
    def test_removes_only_named_patches(self):
        program = build_program(
            [main_calls_walk_twice(), walk_proc(), walk_proc(name="other")], entry="main"
        )
        handlers = {pc: CountingHandler() for proc in ("walk", "other") for pc in load_pcs(program.procedures[proc])}
        inject_detection(program, handlers)
        assert program.patched_names == {"walk", "other"}
        removed = deoptimize_procedures(program, ["other", "nonexistent"])
        assert removed == ["other"]
        assert program.patched_names == {"walk"}
        # Rollback is idempotent.
        assert deoptimize_procedures(program, ["other"]) == []

    def test_reinject_narrows_to_needed_set(self):
        program = build_program(
            [main_calls_walk_twice(), walk_proc(), walk_proc(name="other")], entry="main"
        )
        all_handlers = {
            pc: CountingHandler()
            for proc in ("walk", "other")
            for pc in load_pcs(program.procedures[proc])
        }
        inject_detection(program, all_handlers)
        surviving = {pc: CountingHandler() for pc in load_pcs(program.procedures["walk"])}
        _, removed = reinject_detection(program, surviving)
        assert removed == ["other"]
        assert program.patched_names == {"walk"}
        # Re-patching starts from the registered original: handlers never stack.
        attached = [ins for ins in program.resolve("walk").body if getattr(ins, "detect", None)]
        assert len(attached) == 1
        assert program.resolve("other") is program.procedures["other"]

    def test_repeated_reinject_does_not_stack(self):
        program = build()
        for _ in range(3):
            handlers = {pc: CountingHandler() for pc in load_pcs(program.procedures["walk"])}
            reinject_detection(program, handlers)
        attached = [ins for ins in program.resolve("walk").body if getattr(ins, "detect", None)]
        assert len(attached) == 1


class TestStaleFrames:
    def test_frame_in_patched_copy_completes_after_rollback(self):
        """A live frame survives the rollback of its own procedure.

        The handler removes walk's patch at the first detection — while
        main's first call is still executing the optimized copy.  That frame
        must keep running the copy (handler keeps firing) and return the
        correct value; the *second* call resolves to the original and never
        detects.
        """
        expected = Interpreter(build(), memory()).run().return_value

        program = build()
        handler = RollbackHandler(program, ["walk"])
        handlers = {pc: handler for pc in load_pcs(program.procedures["walk"])}
        inject_detection(program, handlers)
        assert program.patched_names == {"walk"}

        result = Interpreter(program, memory()).run()
        assert result.return_value == expected
        # First call ran the copy end to end; second call saw the original.
        assert handler.calls == WALK_ITERS
        assert not program.patched_names
        assert result.detects_executed == WALK_ITERS

    def test_full_deopt_equivalence_without_rollback(self):
        """Baseline: handlers on both calls when nothing rolls back."""
        expected = Interpreter(build(), memory()).run().return_value
        program = build()
        handler = CountingHandler()
        inject_detection(program, {pc: handler for pc in load_pcs(program.procedures["walk"])})
        result = Interpreter(program, memory()).run()
        assert result.return_value == expected
        assert handler.calls == 2 * WALK_ITERS
