"""Tests for cache geometry and the machine cost model."""

import pytest

from repro.errors import ConfigError
from repro.machine.config import PAPER_MACHINE, CacheGeometry, MachineConfig


class TestCacheGeometry:
    def test_paper_l1_geometry(self):
        l1 = PAPER_MACHINE.l1
        assert l1.size_bytes == 16 * 1024
        assert l1.associativity == 4
        assert l1.block_bytes == 32
        assert l1.num_sets == 128
        assert l1.num_blocks == 512

    def test_paper_l2_geometry(self):
        l2 = PAPER_MACHINE.l2
        assert l2.size_bytes == 256 * 1024
        assert l2.associativity == 8
        assert l2.num_sets == 1024
        assert l2.num_blocks == 8192

    def test_num_sets_times_ways_times_block_is_size(self):
        geo = CacheGeometry(8192, 2, 64)
        assert geo.num_sets * geo.associativity * geo.block_bytes == geo.size_bytes

    def test_rejects_non_power_of_two_block(self):
        with pytest.raises(ConfigError):
            CacheGeometry(1024, 2, 48)

    def test_rejects_zero_associativity(self):
        with pytest.raises(ConfigError):
            CacheGeometry(1024, 0)

    def test_rejects_indivisible_size(self):
        with pytest.raises(ConfigError):
            CacheGeometry(1000, 4, 32)

    def test_rejects_non_power_of_two_sets(self):
        with pytest.raises(ConfigError):
            CacheGeometry(3 * 32 * 2, 2, 32)


class TestMachineConfig:
    def test_defaults_are_valid(self):
        config = MachineConfig()
        assert config.block_bytes == 32

    def test_rejects_mismatched_block_sizes(self):
        with pytest.raises(ConfigError):
            MachineConfig(l1=CacheGeometry(1024, 2, 32), l2=CacheGeometry(4096, 4, 64))

    def test_rejects_negative_costs(self):
        with pytest.raises(ConfigError):
            MachineConfig(check_cost=-1)

    def test_rejects_memory_faster_than_l2(self):
        with pytest.raises(ConfigError):
            MachineConfig(l2_latency=50, memory_latency=20)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            PAPER_MACHINE.check_cost = 5  # type: ignore[misc]
