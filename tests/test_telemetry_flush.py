"""Telemetry sink flushing: buffered events survive SIGTERM and atexit.

The in-process pieces are tested directly (``flush()``, ``flush_all_sinks``);
the actual SIGTERM delivery runs in a subprocess so the handler fires for
real and the -15 exit status is preserved.
"""

import json
import signal
import subprocess
import sys
import textwrap

from repro.telemetry.events import EventBus, RunBegin
from repro.telemetry.sinks import JsonlSink, flush_all_sinks


def _emit(bus, n):
    for i in range(n):
        bus.emit(RunBegin(cycle=i, workload=f"w{i}", level="dyn"))


class TestFlush:
    def test_flush_writes_buffered_events(self, tmp_path):
        path = tmp_path / "events.jsonl"
        sink = JsonlSink(path, flush_every=10_000)
        bus = EventBus()
        bus.attach(sink)
        _emit(bus, 7)
        sink.flush()
        lines = path.read_text().splitlines()
        assert len(lines) == 7
        assert all(json.loads(line)["kind"] == "RunBegin" for line in lines)
        sink.close()

    def test_flush_all_sinks_covers_live_sinks(self, tmp_path):
        paths = [tmp_path / f"{i}.jsonl" for i in range(2)]
        sinks = [JsonlSink(p, flush_every=10_000) for p in paths]
        bus = EventBus()
        for sink in sinks:
            bus.attach(sink)
        _emit(bus, 3)
        assert flush_all_sinks() >= 2
        for path in paths:
            assert len(path.read_text().splitlines()) == 3
        for sink in sinks:
            sink.close()

    def test_closed_sink_flushes_harmlessly(self, tmp_path):
        sink = JsonlSink(tmp_path / "events.jsonl", flush_every=10_000)
        sink.close()
        sink.flush()
        assert flush_all_sinks() >= 0


class TestSigterm:
    def test_sigterm_flushes_and_preserves_exit_status(self, tmp_path):
        path = tmp_path / "events.jsonl"
        script = textwrap.dedent(
            f"""
            import os, signal
            from repro.telemetry.events import EventBus, RunBegin
            from repro.telemetry.sinks import JsonlSink

            sink = JsonlSink({str(path)!r}, flush_every=10_000)
            bus = EventBus()
            bus.attach(sink)
            for i in range(7):
                bus.emit(RunBegin(cycle=i, workload=f"w{{i}}", level="dyn"))
            os.kill(os.getpid(), signal.SIGTERM)
            raise SystemExit("unreachable: SIGTERM must terminate")
            """
        )
        proc = subprocess.run(
            [sys.executable, "-c", script], capture_output=True, text=True,
            env={**__import__("os").environ, "PYTHONPATH": "src"},
            cwd="/root/repo",
        )
        assert proc.returncode == -signal.SIGTERM
        lines = path.read_text().splitlines()
        assert len(lines) == 7
        assert all(json.loads(line) for line in lines)

    def test_sigterm_flushes_recorder_jsonl_and_stream_chunks(self, tmp_path):
        """The recorder path (--telemetry/--stream) flushes on SIGTERM too:
        a large flush_every buffer still reaches disk, and the streaming
        sink seals its open chunk so the directory holds a valid prefix."""
        events_path = tmp_path / "events.jsonl"
        chunk_dir = tmp_path / "chunks"
        script = textwrap.dedent(
            f"""
            import os, signal
            from repro.telemetry.events import RunBegin
            from repro.telemetry.session import TelemetryRecorder

            recorder = TelemetryRecorder(
                events_path={str(events_path)!r},
                flush_every=10_000,
                stream_dir={str(chunk_dir)!r},
            )
            session = recorder.session_for("vpr", "dyn")
            for i in range(1, 6):
                session.bus.emit(RunBegin(cycle=i, workload="vpr", level="dyn"))
            os.kill(os.getpid(), signal.SIGTERM)
            raise SystemExit("unreachable: SIGTERM must terminate")
            """
        )
        proc = subprocess.run(
            [sys.executable, "-c", script], capture_output=True, text=True,
            env={**__import__("os").environ, "PYTHONPATH": "src"},
            cwd="/root/repo",
        )
        assert proc.returncode == -signal.SIGTERM
        lines = events_path.read_text().splitlines()
        assert len(lines) == 6  # begin_run + 5 emitted events
        from repro.obs.chunks import load_chunks

        load = load_chunks(chunk_dir)
        assert load.ok and len(load.records) == 6
        assert b"".join(
            p.read_bytes() for p in sorted(chunk_dir.glob("chunk-*.jsonl"))
        ) == events_path.read_bytes()
