"""Telemetry sink flushing: buffered events survive SIGTERM and atexit.

The in-process pieces are tested directly (``flush()``, ``flush_all_sinks``);
the actual SIGTERM delivery runs in a subprocess so the handler fires for
real and the -15 exit status is preserved.
"""

import json
import signal
import subprocess
import sys
import textwrap

from repro.telemetry.events import EventBus, RunBegin
from repro.telemetry.sinks import JsonlSink, flush_all_sinks


def _emit(bus, n):
    for i in range(n):
        bus.emit(RunBegin(cycle=i, workload=f"w{i}", level="dyn"))


class TestFlush:
    def test_flush_writes_buffered_events(self, tmp_path):
        path = tmp_path / "events.jsonl"
        sink = JsonlSink(path, flush_every=10_000)
        bus = EventBus()
        bus.attach(sink)
        _emit(bus, 7)
        sink.flush()
        lines = path.read_text().splitlines()
        assert len(lines) == 7
        assert all(json.loads(line)["kind"] == "RunBegin" for line in lines)
        sink.close()

    def test_flush_all_sinks_covers_live_sinks(self, tmp_path):
        paths = [tmp_path / f"{i}.jsonl" for i in range(2)]
        sinks = [JsonlSink(p, flush_every=10_000) for p in paths]
        bus = EventBus()
        for sink in sinks:
            bus.attach(sink)
        _emit(bus, 3)
        assert flush_all_sinks() >= 2
        for path in paths:
            assert len(path.read_text().splitlines()) == 3
        for sink in sinks:
            sink.close()

    def test_closed_sink_flushes_harmlessly(self, tmp_path):
        sink = JsonlSink(tmp_path / "events.jsonl", flush_every=10_000)
        sink.close()
        sink.flush()
        assert flush_all_sinks() >= 0


class TestSigterm:
    def test_sigterm_flushes_and_preserves_exit_status(self, tmp_path):
        path = tmp_path / "events.jsonl"
        script = textwrap.dedent(
            f"""
            import os, signal
            from repro.telemetry.events import EventBus, RunBegin
            from repro.telemetry.sinks import JsonlSink

            sink = JsonlSink({str(path)!r}, flush_every=10_000)
            bus = EventBus()
            bus.attach(sink)
            for i in range(7):
                bus.emit(RunBegin(cycle=i, workload=f"w{{i}}", level="dyn"))
            os.kill(os.getpid(), signal.SIGTERM)
            raise SystemExit("unreachable: SIGTERM must terminate")
            """
        )
        proc = subprocess.run(
            [sys.executable, "-c", script], capture_output=True, text=True,
            env={**__import__("os").environ, "PYTHONPATH": "src"},
            cwd="/root/repo",
        )
        assert proc.returncode == -signal.SIGTERM
        lines = path.read_text().splitlines()
        assert len(lines) == 7
        assert all(json.loads(line) for line in lines)
