"""End-to-end tests of the dynamic prefetching optimizer (Figure 1 cycle)."""

import dataclasses

import pytest

from repro.analysis.stream import HotDataStream
from repro.core.config import OptimizerConfig, paper_scale
from repro.core.optimizer import AWAKE, HIBERNATING, DynamicPrefetcher, _dedupe_streams
from repro.errors import ConfigError
from repro.interp.interpreter import Interpreter
from repro.machine.config import CacheGeometry, MachineConfig
from repro.vulcan.static_edit import instrument_program
from repro.workloads.chainmix import build_chainmix

#: A small hierarchy so the small workload actually misses (and prefetching
#: has something to hide).
SMALL_MACHINE = MachineConfig(
    l1=CacheGeometry(512, 2), l2=CacheGeometry(4096, 4), l2_latency=10, memory_latency=100
)


def attach(small_params, small_opt, passes=None, **overrides):
    wl = build_chainmix(small_params, passes=passes)
    program, _ = instrument_program(wl.program)
    interp = Interpreter(program, wl.memory, SMALL_MACHINE)
    opt = dataclasses.replace(small_opt, **overrides)
    optimizer = DynamicPrefetcher(program, interp, SMALL_MACHINE, opt)
    return wl, program, interp, optimizer


class TestConfig:
    def test_defaults_valid(self):
        OptimizerConfig()

    def test_rejects_bad_mode(self):
        with pytest.raises(ConfigError):
            OptimizerConfig(mode="wishful")

    def test_rejects_inject_without_analyze(self):
        with pytest.raises(ConfigError):
            OptimizerConfig(analyze=False, inject=True)

    def test_rejects_bad_head_len(self):
        with pytest.raises(ConfigError):
            OptimizerConfig(head_len=0)

    def test_paper_scale_matches_section_41(self):
        config = paper_scale()
        assert config.counters.n_check0 == 11_940
        assert config.counters.n_instr0 == 60
        assert config.n_awake == 50
        assert config.n_hibernate == 2_450


class TestPhaseCycle:
    def test_completes_multiple_cycles(self, small_params, small_opt):
        wl, program, interp, optimizer = attach(small_params, small_opt, passes=16)
        interp.run(wl.args)
        assert optimizer.summary.num_cycles >= 2

    def test_cycle_stats_recorded(self, small_params, small_opt):
        wl, program, interp, optimizer = attach(small_params, small_opt, passes=16)
        interp.run(wl.args)
        first = optimizer.summary.cycles[0]
        assert first.traced_refs > 0
        assert first.num_streams > 0
        assert first.dfsm_states >= 2 * first.num_streams  # ~2n+1
        assert first.procs_modified > 0

    def test_streams_detected_are_hot_chains(self, small_params, small_opt):
        wl, program, interp, optimizer = attach(small_params, small_opt, passes=16)
        interp.run(wl.args)
        lengths = optimizer.summary.cycles[0].stream_lengths
        # A full chain stream: slot load + peel/loop refs (2/node) + store.
        assert any(length >= small_params.chain_len for length in lengths)

    def test_deopt_restores_program_after_wake(self, small_params, small_opt):
        wl, program, interp, optimizer = attach(small_params, small_opt, passes=16)
        interp.run(wl.args)
        if optimizer.phase == AWAKE:
            assert program.patched_names == set()
        else:
            assert len(program.patched_names) > 0

    def test_prefetches_issued_in_dyn_mode(self, small_params, small_opt):
        wl, program, interp, optimizer = attach(small_params, small_opt, passes=16)
        stats = interp.run(wl.args)
        assert stats.prefetches_issued > 0
        assert interp.hierarchy.prefetch.useful > 0

    def test_nopref_mode_never_prefetches(self, small_params, small_opt):
        wl, program, interp, optimizer = attach(small_params, small_opt, passes=16, mode="nopref")
        stats = interp.run(wl.args)
        assert stats.detects_executed > 0
        assert stats.prefetches_issued == 0

    def test_analysis_charge_billed(self, small_params, small_opt):
        wl, program, interp, optimizer = attach(small_params, small_opt, passes=16)
        stats = interp.run(wl.args)
        cycles = optimizer.summary.cycles
        expected = sum(SMALL_MACHINE.analysis_cost_per_symbol * c.traced_refs for c in cycles)
        assert stats.charged_cycles == expected

    def test_prof_level_traces_but_never_injects(self, small_params, small_opt):
        wl, program, interp, optimizer = attach(
            small_params, small_opt, passes=16, analyze=False, inject=False
        )
        stats = interp.run(wl.args)
        assert stats.traced_refs > 0
        assert stats.detects_executed == 0
        assert all(c.num_streams == 0 for c in optimizer.summary.cycles)

    def test_hibernation_pauses_tracing(self, small_params, small_opt):
        wl, program, interp, optimizer = attach(small_params, small_opt, passes=16)
        interp.run(wl.args)
        # During hibernation the profiler grammar is untouched; all recorded
        # references come from awake phases only.
        per_cycle = optimizer.summary.cycles[0].traced_refs
        assert optimizer.profiler.total_recorded <= per_cycle * (optimizer.summary.num_cycles + 1) * 1.5

    def test_phase_attribute_transitions(self, small_params, small_opt):
        wl, program, interp, optimizer = attach(small_params, small_opt, passes=16)
        assert optimizer.phase == AWAKE
        interp.run(wl.args)
        assert optimizer.phase in (AWAKE, HIBERNATING)

    def test_determinism(self, small_params, small_opt):
        def once():
            wl, program, interp, optimizer = attach(small_params, small_opt, passes=12)
            stats = interp.run(wl.args)
            return stats.cycles, optimizer.summary.num_cycles

        assert once() == once()


class TestDedupeStreams:
    def make(self, symbols, heat=10, rule_id=0):
        return HotDataStream(tuple(symbols), heat=heat, rule_id=rule_id)

    def test_same_head_keeps_longest(self):
        a = self.make([1, 2, 3, 4, 5], heat=50, rule_id=1)
        b = self.make([1, 2, 3], heat=90, rule_id=2)
        kept = _dedupe_streams([a, b], head_len=2)
        assert kept == [a]

    def test_contiguous_subsequence_dropped(self):
        full = self.make([1, 2, 3, 4, 5, 6], heat=50, rule_id=1)
        mid = self.make([3, 4, 5], heat=80, rule_id=2)
        kept = _dedupe_streams([full, mid], head_len=2)
        assert kept == [full]

    def test_non_subsequence_kept(self):
        a = self.make([1, 2, 3, 4], heat=50, rule_id=1)
        b = self.make([4, 3, 2, 1], heat=40, rule_id=2)
        kept = _dedupe_streams([a, b], head_len=2)
        assert len(kept) == 2

    def test_numeric_boundary_no_false_substring(self):
        # [1, 23] must not match inside [12, 3] via string concatenation.
        a = self.make([12, 3, 4, 5], heat=50, rule_id=1)
        b = self.make([1, 23], heat=40, rule_id=2)
        kept = _dedupe_streams([a, b], head_len=1)
        assert len(kept) == 2

    def test_result_sorted_by_heat(self):
        a = self.make([1, 2, 3], heat=10, rule_id=1)
        b = self.make([7, 8, 9], heat=99, rule_id=2)
        kept = _dedupe_streams([a, b], head_len=2)
        assert [s.heat for s in kept] == [99, 10]
