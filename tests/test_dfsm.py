"""Tests for the prefix-matching DFSM (Figure 8/9) and handler codegen."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.stream import HotDataStream
from repro.dfsm import DfsmTooLarge, build_dfsm, generate_handlers
from repro.errors import AnalysisError
from repro.ir.instructions import Pc
from repro.profiling.trace import SymbolTable


def make_streams(texts, heats=None):
    alphabet = sorted({ch for t in texts for ch in t})
    encode = {ch: i for i, ch in enumerate(alphabet)}
    streams = [
        HotDataStream(tuple(encode[c] for c in t), heat=(heats[i] if heats else 100 - i), rule_id=i)
        for i, t in enumerate(texts)
    ]
    return streams, encode


class TestFigure8:
    """v = abacadae, w = bbghij, headLen = 3 (the paper's example)."""

    @pytest.fixture
    def dfsm(self):
        streams, _ = make_streams(["abacadae", "bbghij"])
        return build_dfsm(streams, head_len=3)

    def test_state_count_is_headlen_n_plus_1(self, dfsm):
        assert dfsm.num_states == 3 * 2 + 1

    def test_exactly_two_completion_states(self, dfsm):
        assert sorted(v for c in dfsm.completions.values() for v in c) == [0, 1]

    def test_composite_states_exist(self, dfsm):
        # {[v,2],[w,1]} after seeing "ab": a shares nothing, b starts w.
        sets = [set(s) for s in dfsm.states]
        assert {(0, 2), (1, 1)} in sets
        # {[v,3],[v,1]} after "aba": the trailing a restarts v.
        assert {(0, 3), (0, 1)} in sets

    def test_full_head_match_reaches_completion(self, dfsm):
        streams, encode = make_streams(["abacadae", "bbghij"])
        state = 0
        for ch in "aba":
            state = dfsm.step(state, encode[ch])
        assert 0 in dfsm.completions.get(state, ())

    def test_failed_match_restarts(self, dfsm):
        streams, encode = make_streams(["abacadae", "bbghij"])
        state = dfsm.step(0, encode["a"])
        state = dfsm.step(state, encode["g"])  # g continues nothing, starts nothing
        assert state == 0

    def test_failed_match_can_start_other_stream(self, dfsm):
        streams, encode = make_streams(["abacadae", "bbghij"])
        state = dfsm.step(0, encode["a"])   # [v,1]
        state = dfsm.step(state, encode["a"])  # a again: restart [v,1]
        assert set(dfsm.states[state]) == {(0, 1)}

    def test_alphabet_is_head_symbols(self, dfsm):
        streams, encode = make_streams(["abacadae", "bbghij"])
        expected = {encode[c] for c in "ab"} | {encode[c] for c in "bbg"}
        assert dfsm.alphabet() == expected


class TestConstruction:
    def test_single_stream_linear_chain(self):
        streams, encode = make_streams(["abcdef"])
        dfsm = build_dfsm(streams, head_len=2)
        assert dfsm.num_states == 3

    def test_rejects_stream_with_no_tail(self):
        streams, _ = make_streams(["ab"])
        with pytest.raises(AnalysisError):
            build_dfsm(streams, head_len=2)

    def test_rejects_bad_head_len(self):
        streams, _ = make_streams(["abcdef"])
        with pytest.raises(AnalysisError):
            build_dfsm(streams, head_len=0)

    def test_max_states_guard(self):
        streams, _ = make_streams(["abcdef", "bcdefa", "cdefab"])
        with pytest.raises(DfsmTooLarge):
            build_dfsm(streams, head_len=3, max_states=2)

    def test_shared_prefix_streams(self):
        streams, encode = make_streams(["abx1", "aby2"])
        dfsm = build_dfsm(streams, head_len=2)
        state = dfsm.step(0, encode["a"])
        state = dfsm.step(state, encode["b"])
        # Both streams complete in the same state.
        assert set(dfsm.completions.get(state, ())) == {0, 1}

    def test_repeated_symbol_in_head(self):
        streams, encode = make_streams(["aaab"])
        dfsm = build_dfsm(streams, head_len=3)
        state = 0
        for _ in range(3):
            state = dfsm.step(state, encode["a"])
        assert 0 in dfsm.completions.get(state, ())
        # A fourth 'a' keeps the partial prefixes alive but cannot re-complete
        # more deeply than the construction allows.
        assert dfsm.step(state, encode["a"]) in range(dfsm.num_states)

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.text(alphabet="abcd", min_size=4, max_size=8),
            min_size=1,
            max_size=6,
            unique=True,
        )
    )
    def test_property_state_count_reasonable(self, texts):
        streams, _ = make_streams(texts)
        dfsm = build_dfsm(streams, head_len=2)
        # Paper: "we usually find close to headLen*n+1 states"; allow slack
        # for shared prefixes but demand no blow-up.
        assert dfsm.num_states <= 2 * len(texts) * 2 + 2

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.text(alphabet="abc", min_size=4, max_size=8), min_size=1, max_size=5, unique=True))
    def test_property_head_match_always_completes(self, texts):
        streams, encode = make_streams(texts)
        head_len = 2
        dfsm = build_dfsm(streams, head_len=head_len)
        for v, text in enumerate(texts):
            state = 0
            for ch in text[:head_len]:
                state = dfsm.step(state, encode[ch])
            assert v in dfsm.completions.get(state, ())


def interned_streams(table: SymbolTable, specs):
    """specs: list of (list[(pc_name, ordinal, addr)]).  Returns streams."""
    streams = []
    for i, refs in enumerate(specs):
        symbols = tuple(table.intern(Pc(p, o), a) for p, o, a in refs)
        streams.append(HotDataStream(symbols, heat=100 - i, rule_id=i))
    return streams


class TestCodegen:
    def setup_method(self):
        self.table = SymbolTable()

    def make(self, mode="dyn", head_len=2, **kwargs):
        # One stream: head at f:0/f:1, tail addresses spread over blocks.
        refs = [("f", 0, 0x1000), ("f", 1, 0x2000), ("f", 0, 0x3000),
                ("f", 1, 0x3010), ("f", 0, 0x4000), ("f", 1, 0x5000)]
        streams = interned_streams(self.table, [refs])
        dfsm = build_dfsm(streams, head_len=head_len)
        return generate_handlers(dfsm, self.table, mode=mode, **kwargs)

    def test_handlers_grouped_by_pc(self):
        handlers = self.make()
        assert set(handlers) == {Pc("f", 0), Pc("f", 1)}

    def test_dyn_prefetches_tail_blocks_deduped(self):
        handlers = self.make()
        state, prefetches, _ = handlers[Pc("f", 0)].step(0, 0x1000)
        assert prefetches == ()
        state, prefetches, _ = handlers[Pc("f", 1)].step(state, 0x2000)
        # Tail: 0x3000, 0x3010 (same block), 0x4000, 0x5000 -> 3 blocks.
        assert prefetches == (0x3000, 0x4000, 0x5000)

    def test_seq_prefetches_sequential_blocks(self):
        handlers = self.make(mode="seq")
        state, _, _ = handlers[Pc("f", 0)].step(0, 0x1000)
        _, prefetches, _ = handlers[Pc("f", 1)].step(state, 0x2000)
        assert prefetches == (0x2020, 0x2040, 0x2060)  # 3 blocks after match

    def test_nopref_prefetches_nothing(self):
        handlers = self.make(mode="nopref")
        state, _, _ = handlers[Pc("f", 0)].step(0, 0x1000)
        _, prefetches, _ = handlers[Pc("f", 1)].step(state, 0x2000)
        assert prefetches == ()

    def test_unknown_mode_rejected(self):
        with pytest.raises(AnalysisError):
            self.make(mode="magic")

    def test_max_prefetches_cap(self):
        refs = [("f", 0, 0x1000), ("f", 1, 0x2000)] + [
            ("f", 0, 0x10000 + 0x40 * k) for k in range(20)
        ]
        streams = interned_streams(self.table, [refs])
        dfsm = build_dfsm(streams, head_len=2)
        handlers = generate_handlers(dfsm, self.table, max_prefetches=5)
        state, _, _ = handlers[Pc("f", 0)].step(0, 0x1000)
        _, prefetches, _ = handlers[Pc("f", 1)].step(state, 0x2000)
        assert len(prefetches) == 5

    def test_failed_match_resets_state(self):
        handlers = self.make()
        state, prefetches, cost = handlers[Pc("f", 0)].step(0, 0xDEAD00)
        assert (state, prefetches) == (0, ())
        assert cost >= 1

    def test_cost_counts_arms_examined(self):
        handlers = self.make()
        handler = handlers[Pc("f", 0)]
        _, _, cost_match = handler.step(0, 0x1000)
        _, _, cost_miss = handler.step(0, 0xDEAD00)
        assert cost_match == handler.num_cases + 1 or cost_match <= handler.num_cases + 1
        assert cost_miss == handler.num_cases

    def test_head_blocks_excluded_from_prefetch(self):
        # Tail revisits the head's block: it must not be prefetched.
        refs = [("f", 0, 0x1000), ("f", 1, 0x2000), ("f", 0, 0x1010), ("f", 1, 0x7000)]
        streams = interned_streams(self.table, [refs])
        dfsm = build_dfsm(streams, head_len=2)
        handlers = generate_handlers(dfsm, self.table)
        state, _, _ = handlers[Pc("f", 0)].step(0, 0x1000)
        _, prefetches, _ = handlers[Pc("f", 1)].step(state, 0x2000)
        assert prefetches == (0x7000,)

    def test_arms_sorted_hottest_first(self):
        refs_hot = [("f", 0, 0x1000), ("f", 1, 0x2000), ("f", 0, 0x9000)]
        refs_cold = [("f", 0, 0x3000), ("f", 1, 0x4000), ("f", 0, 0xA000)]
        streams = []
        for i, (refs, heat) in enumerate([(refs_cold, 10), (refs_hot, 999)]):
            symbols = tuple(self.table.intern(Pc(p, o), a) for p, o, a in refs)
            streams.append(HotDataStream(symbols, heat=heat, rule_id=i))
        dfsm = build_dfsm(streams, head_len=2)
        handlers = generate_handlers(dfsm, self.table)
        arms = handlers[Pc("f", 0)].arms
        assert arms[0][0] == 0x1000  # the hot stream's head address first
