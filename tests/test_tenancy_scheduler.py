"""Scheduler determinism, N=1 equivalence and quantum invariance."""

import pytest

from repro.bench.runner import run_workload
from repro.errors import ConfigError
from repro.machine.config import CacheGeometry, MachineConfig
from repro.tenancy import TenantPlan, TenantSpec, run_tenant_plan
from repro.workloads import build_named

SMALL_MACHINE = MachineConfig(
    l1=CacheGeometry(512, 2),
    l2=CacheGeometry(4096, 4),
    l2_latency=10,
    memory_latency=100,
)

TWO_TENANTS = (
    TenantSpec("vortex", "dyn", passes=1),
    TenantSpec("vpr", "orig", passes=1),
)


def small_plan(quantum=2048, sharing="private-l1", tenants=TWO_TENANTS):
    return TenantPlan(
        tenants=tenants, quantum=quantum, sharing=sharing, machine=SMALL_MACHINE
    )


class TestDeterminism:
    def test_same_plan_twice_byte_identical(self):
        a = run_tenant_plan(small_plan())
        b = run_tenant_plan(small_plan())
        assert a.to_dict() == b.to_dict()

    def test_shared_mode_deterministic(self):
        a = run_tenant_plan(small_plan(sharing="shared"))
        b = run_tenant_plan(small_plan(sharing="shared"))
        assert a.to_dict() == b.to_dict()


class TestSingleTenantEquivalence:
    @pytest.mark.parametrize("sharing", ["shared", "private-l1"])
    @pytest.mark.parametrize("level", ["orig", "dyn"])
    def test_n1_equals_run_workload(self, sharing, level):
        plan = TenantPlan(
            tenants=(TenantSpec("vortex", level, passes=1),),
            quantum=2048,
            sharing=sharing,
        )
        tenancy = run_tenant_plan(plan).as_single_run_result()
        single = run_workload(build_named("vortex", passes=1), level)
        assert tenancy.to_dict() == single.to_dict()

    def test_as_single_run_result_rejects_multi(self):
        result = run_tenant_plan(small_plan())
        with pytest.raises(ConfigError, match="exactly one tenant"):
            result.as_single_run_result()


class TestQuantumInvariance:
    def test_instruction_counts_survive_quantum_sweep(self):
        reference = None
        for quantum in (256, 2048, 65536):
            result = run_tenant_plan(small_plan(quantum=quantum))
            facts = [
                (t.stats.instructions, t.stats.memory_refs, t.stats.return_value)
                for t in result.tenants
            ]
            if reference is None:
                reference = facts
            assert facts == reference

    def test_occupancy_sums_to_global_clock(self):
        for quantum in (512, 4096):
            result = run_tenant_plan(small_plan(quantum=quantum))
            assert sum(t.stats.cycles for t in result.tenants) == result.global_cycles
            assert all(t.slices >= 1 for t in result.tenants)


class TestPlanValidation:
    def test_empty_plan_rejected(self):
        with pytest.raises(ConfigError, match="at least one tenant"):
            TenantPlan(tenants=())

    def test_bad_quantum_rejected(self):
        with pytest.raises(ConfigError, match="quantum"):
            TenantPlan(tenants=TWO_TENANTS, quantum=0)

    def test_bad_sharing_rejected(self):
        with pytest.raises(ConfigError, match="sharing"):
            TenantPlan(tenants=TWO_TENANTS, sharing="numa")

    def test_session_count_mismatch_rejected(self):
        from repro.telemetry.session import TelemetrySession

        with pytest.raises(ConfigError, match="per tenant"):
            run_tenant_plan(small_plan(), sessions=[TelemetrySession()])
