"""Exact hot-stream enumerator and the conservativeness cross-check."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.exact import enumerate_hot_substrings
from repro.analysis.hotstreams import AnalysisConfig, find_hot_streams
from repro.analysis.stream import HotDataStream
from repro.errors import OracleError
from repro.oracle import (
    check_hot_streams,
    ref_heat,
    ref_hot_substrings,
    ref_nonoverlapping_count,
)
from repro.oracle.fuzz import diff_streams, gen_trace
from repro.oracle.verify import FUZZ_ANALYSIS
from repro.sequitur.sequitur import Sequitur


class TestRefCounting:
    def test_non_overlapping_count(self):
        assert ref_nonoverlapping_count([0, 0], [0, 0, 0, 0, 0]) == 2
        assert ref_nonoverlapping_count([1, 2], [1, 2, 1, 2, 1]) == 2
        assert ref_nonoverlapping_count([3], [3, 3, 3]) == 3
        assert ref_nonoverlapping_count([9], [1, 2]) == 0

    def test_needle_longer_than_trace(self):
        assert ref_nonoverlapping_count([1, 2, 3], [1, 2]) == 0

    def test_empty_needle_rejected(self):
        with pytest.raises(OracleError):
            ref_nonoverlapping_count([], [1, 2])

    def test_heat(self):
        assert ref_heat([1, 2], [1, 2, 1, 2, 1, 2]) == 6

    def test_hot_substrings_tiny(self):
        # abcabc: "abc" occurs twice non-overlapping -> heat 6.
        hot = ref_hot_substrings([0, 1, 2, 0, 1, 2], heat_threshold=6, min_length=2, max_length=6)
        assert hot[(0, 1, 2)] == 6
        assert (0, 1, 2, 0, 1, 2) in hot  # whole string, heat 6
        assert (1, 2) not in hot  # heat 4 < 6

    @given(
        trace=st.lists(st.integers(min_value=0, max_value=4), min_size=2, max_size=60),
        threshold=st.integers(min_value=1, max_value=12),
    )
    @settings(deadline=None, max_examples=60, derandomize=True)
    def test_property_enumerators_agree(self, trace, threshold):
        """The two independently written brute forces are interchangeable."""
        assert ref_hot_substrings(trace, threshold, 2, 10) == enumerate_hot_substrings(
            trace, threshold, 2, 10
        )


class TestCheckHotStreams:
    def _streams_for(self, trace, config):
        seq = Sequitur()
        seq.extend(trace)
        return seq, find_hot_streams(seq, config)

    def test_accepts_production_output(self):
        trace = [0, 1, 2, 0, 1, 2, 0, 1, 2, 3, 0, 1, 2]
        config = AnalysisConfig(heat_threshold=6, min_length=2, max_length=10)
        _, streams = self._streams_for(trace, config)
        assert streams  # sanity: the analysis did find something
        check_hot_streams(trace, config, streams)

    def test_rejects_inflated_heat(self):
        trace = [0, 1, 2, 0, 1, 2, 0, 1, 2, 3, 0, 1, 2]
        config = AnalysisConfig(heat_threshold=6, min_length=2, max_length=10)
        _, streams = self._streams_for(trace, config)
        inflated = [
            HotDataStream(symbols=s.symbols, heat=s.heat + 1000, rule_id=s.rule_id)
            for s in streams
        ]
        with pytest.raises(OracleError, match="conservative|exact"):
            check_hot_streams(trace, config, inflated)

    def test_rejects_fabricated_stream(self):
        trace = [0, 1, 2, 0, 1, 2]
        config = AnalysisConfig(heat_threshold=4, min_length=2, max_length=10)
        fake = [HotDataStream(symbols=(7, 8), heat=40, rule_id=99)]
        with pytest.raises(OracleError):
            check_hot_streams(trace, config, fake)

    def test_rejects_unsorted_ranking(self):
        trace = [0, 1, 2, 0, 1, 2]
        config = AnalysisConfig(heat_threshold=4, min_length=2, max_length=10)
        streams = [
            HotDataStream(symbols=(0, 1), heat=4, rule_id=1),
            HotDataStream(symbols=(1, 2), heat=5, rule_id=2),
        ]
        with pytest.raises(OracleError, match="ranked"):
            check_hot_streams(trace, config, streams)

    @pytest.mark.parametrize("seed", [0, 5, 9])
    def test_random_traces_pass_differential(self, seed):
        rng = random.Random(seed)
        for _ in range(6):
            trace = gen_trace(rng, rng.randint(10, 120), alphabet=rng.randint(2, 6))
            diff_streams(trace, FUZZ_ANALYSIS)
