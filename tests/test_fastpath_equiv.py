"""Differential suite: compiled fastpath kernel vs reference dispatch loop.

The fastpath contract (DESIGN.md §5h) is *bit-identity*, not approximate
agreement: for any workload, level, fault plan, slice partition, or limit,
executing through :mod:`repro.fastpath` must leave every observable —
ExecStats, hierarchy counters, per-stream prefetch attribution, telemetry
metrics, the serialized result — exactly equal to the reference interpreter.
These tests state that as data: the full (workload × level) grid, the
adversarial fault-injection configurations, error paths, and a hypothesis
property over arbitrary slice partitions.
"""

from dataclasses import replace

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.engine.levels import execute_workload
from repro.errors import MemoryFault
from repro.fastpath import FASTPATH_ENV, fastpath_enabled, set_fastpath
from repro.fastpath.compiler import clear_cache
from repro.interp.interpreter import Interpreter
from repro.machine.config import CacheGeometry, MachineConfig
from repro.resilience import FaultPlan, WatchdogConfig
from repro.workloads import build_named, names
from repro.workloads.chainmix import build_chainmix

MACHINE = MachineConfig(
    l1=CacheGeometry(512, 2),
    l2=CacheGeometry(4096, 4),
    l2_latency=10,
    memory_latency=100,
)

ALL_WORKLOADS = (*names(), "phaseshift")
GRID_LEVELS = ("orig", "base", "stride", "markov", "dyn")
#: The remaining ladder levels, exercised on one representative workload.
EXTRA_LEVELS = ("prof", "hds", "nopref", "seq", "static")


def hierarchy_snapshot(hier):
    """Every hierarchy observable the run can influence, as plain data."""
    return {
        "l1": (hier.l1.hits, hier.l1.misses, hier.l1.evictions),
        "l2": (hier.l2.hits, hier.l2.misses, hier.l2.evictions),
        "demand": hier.demand_accesses,
        "prefetch": (
            hier.prefetch.issued,
            hier.prefetch.useful,
            hier.prefetch.late,
            hier.prefetch.wasted,
            hier.prefetch.redundant,
            dict(hier.prefetch.by_source),
        ),
        "streams": {
            key: (s.issued, s.useful, s.late, s.wasted, s.redundant)
            for key, s in hier.stream_stats.items()
        },
    }


def result_snapshot(result):
    return (result.to_dict(), hierarchy_snapshot(result.hierarchy))


def both_ways(workload_name, level, passes=1, opt=None, machine=None):
    """Execute one cell fresh under each kernel; return both snapshots."""
    kwargs = {}
    if opt is not None:
        kwargs["opt"] = opt
    if machine is not None:
        kwargs["machine"] = machine
    reference = execute_workload(
        build_named(workload_name, passes=passes), level, fast=False, **kwargs
    )
    compiled = execute_workload(
        build_named(workload_name, passes=passes), level, fast=True, **kwargs
    )
    return result_snapshot(reference), result_snapshot(compiled)


class TestGridEquivalence:
    @pytest.mark.parametrize("workload", ALL_WORKLOADS)
    @pytest.mark.parametrize("level", GRID_LEVELS)
    def test_workload_level_cell(self, workload, level):
        reference, compiled = both_ways(workload, level)
        assert compiled == reference

    @pytest.mark.parametrize("level", EXTRA_LEVELS)
    def test_remaining_ladder_levels(self, level):
        reference, compiled = both_ways("vortex", level)
        assert compiled == reference


class TestFaultConfigEquivalence:
    """Adversarial resilience plans must not open a reference/fastpath gap."""

    @pytest.mark.parametrize("seed", (3, 11))
    def test_full_rate_fault_plan(self, small_params, small_opt, seed):
        opt = replace(small_opt, faults=FaultPlan(seed=seed, rate=1.0))
        runs = {}
        for fast in (False, True):
            workload = build_chainmix(small_params)
            runs[fast] = result_snapshot(
                execute_workload(workload, "dyn", MACHINE, opt, fast=fast)
            )
        assert runs[True] == runs[False]

    def test_fault_plan_with_watchdog(self, small_params, small_opt):
        opt = replace(
            small_opt,
            faults=FaultPlan(seed=5, rate=0.6, max_per_kind=3),
            watchdog=WatchdogConfig(),
        )
        runs = {}
        for fast in (False, True):
            workload = build_chainmix(small_params)
            runs[fast] = result_snapshot(
                execute_workload(workload, "dyn", MACHINE, opt, fast=fast)
            )
        assert runs[True] == runs[False]


def _fresh_interp(small_params):
    workload = build_chainmix(small_params)
    return Interpreter(workload.program, workload.memory, MACHINE), workload.args


class TestSliceComposition:
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        a=st.integers(min_value=1, max_value=4_000),
        b=st.integers(min_value=1, max_value=4_000),
    )
    def test_split_budget_equals_joint_budget_fast(self, small_params, a, b):
        """Under the fastpath, run_slice(a + b) parks exactly where
        run_slice(a); run_slice(b) does — icount, cycles, cache counters."""
        joint, args = _fresh_interp(small_params)
        joint.start(args)
        joint.run_slice(a + b, fast=True)
        split, args = _fresh_interp(small_params)
        split.start(args)
        split.run_slice(a, fast=True)
        split.run_slice(b, fast=True)
        js, ss = joint.exec_state, split.exec_state
        assert (js.icount, js.cycles, js.ip, js.regs) == (ss.icount, ss.cycles, ss.ip, ss.regs)
        assert hierarchy_snapshot(joint.hierarchy) == hierarchy_snapshot(split.hierarchy)

    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(budget=st.integers(min_value=1, max_value=3_000))
    def test_mixed_kernel_slices_compose(self, small_params, budget):
        """Alternating kernels *between* slices is still one exact run."""
        whole, args = _fresh_interp(small_params)
        stats_whole = whole.run(args, fast=False)
        mixed, args = _fresh_interp(small_params)
        mixed.start(args)
        fast = True
        out = None
        while out is None:
            out = mixed.run_slice(budget, fast=fast)
            fast = not fast
        assert out.to_dict() == stats_whole.to_dict()
        assert hierarchy_snapshot(mixed.hierarchy) == hierarchy_snapshot(whole.hierarchy)

    def test_single_instruction_slices(self, small_params):
        """budget=1 forces the kernel's reference single-step resync on
        every instruction — the hardest park/resume pattern there is."""
        params = replace(small_params, passes=1, schedule_len=8)
        whole, args = _fresh_interp(params)
        stats_whole = whole.run(args, fast=False)
        stepped, args = _fresh_interp(params)
        stepped.start(args)
        out = None
        while out is None:
            out = stepped.run_slice(1, fast=True)
        assert out.to_dict() == stats_whole.to_dict()


class TestErrorPathEquivalence:
    def test_memory_fault_message_and_state(self):
        from repro.ir.builder import ProcedureBuilder, build_program
        from repro.machine.memory import Memory

        def build():
            b = ProcedureBuilder("crash", params=("base",))
            v = b.reg("v")
            b.load(v, b.param("base"), 0)      # aligned: succeeds
            b.load(v, b.param("base"), 2)      # misaligned: faults
            b.ret(v)
            prog = build_program([b.build()], entry="crash")
            mem = Memory()
            base = mem.allocate(64)
            return Interpreter(prog, mem, MACHINE), base

        errors = {}
        counters = {}
        for fast in (False, True):
            interp, base = build()
            with pytest.raises(MemoryFault) as exc_info:
                interp.run((base,), fast=fast)
            errors[fast] = str(exc_info.value)
            counters[fast] = hierarchy_snapshot(interp.hierarchy)
        assert errors[True] == errors[False]
        assert counters[True] == counters[False]


class TestToggle:
    def test_explicit_flag_beats_environment(self, monkeypatch):
        monkeypatch.setenv(FASTPATH_ENV, "1")
        assert fastpath_enabled() is True
        assert fastpath_enabled(False) is False
        monkeypatch.delenv(FASTPATH_ENV)
        assert fastpath_enabled() is False
        assert fastpath_enabled(True) is True

    def test_set_fastpath_round_trip(self, monkeypatch):
        monkeypatch.delenv(FASTPATH_ENV, raising=False)
        set_fastpath(True)
        assert fastpath_enabled()
        set_fastpath(False)
        assert not fastpath_enabled()

    def test_env_toggle_drives_default_run(self, small_params, monkeypatch):
        """fast=None defers to REPRO_FASTPATH; results stay identical."""
        params = replace(small_params, passes=2)
        monkeypatch.delenv(FASTPATH_ENV, raising=False)
        interp, args = _fresh_interp(params)
        reference = interp.run(args)
        monkeypatch.setenv(FASTPATH_ENV, "1")
        interp, args = _fresh_interp(params)
        compiled = interp.run(args)
        assert compiled.to_dict() == reference.to_dict()

    def test_clear_cache_recompiles(self, small_params):
        interp, args = _fresh_interp(small_params)
        reference = interp.run(args, fast=False)
        clear_cache()
        interp, args = _fresh_interp(small_params)
        compiled = interp.run(args, fast=True)
        clear_cache()
        assert compiled.to_dict() == reference.to_dict()
