"""The experiment engine: specs, fingerprints, the result cache, the executor.

The load-bearing property throughout is *bit-identity*: a cached replay, a
pooled parallel run and a plain serial run must all produce byte-for-byte
equal serialized results.  The figures/verify layers lean on that to use the
cache and ``--jobs`` freely without changing any rendered output.
"""

from __future__ import annotations

import json
from concurrent.futures import Future
from dataclasses import replace

import pytest

from repro.core.config import OptimizerConfig
from repro.engine import (
    LEVELS,
    ResultStore,
    RunPlan,
    RunSpec,
    configure_level,
    execute_plan,
    get_level,
    level_names,
    register_level,
    run_spec,
)
from repro.engine.levels import LevelSpec
from repro.engine.spec import CACHE_SALT_ENV
from repro.errors import ConfigError
from repro.telemetry.session import TelemetrySession

#: The cheapest preset: every live run in this file uses it at one pass.
_WORKLOAD = "vortex"


def _spec(level: str = "dyn", **kwargs) -> RunSpec:
    return RunSpec(_WORKLOAD, level, passes=1, **kwargs)


# --------------------------------------------------------------------- specs


def test_runspec_roundtrip():
    spec = _spec(opt=replace(OptimizerConfig(), head_len=3))
    clone = RunSpec.from_dict(spec.to_dict())
    assert clone == spec
    assert clone.fingerprint() == spec.fingerprint()


def test_runspec_rejects_foreign_format():
    doc = _spec().to_dict()
    doc["format"] = 99
    with pytest.raises(ConfigError, match="format"):
        RunSpec.from_dict(doc)


def test_runspec_unknown_workload_is_config_error():
    with pytest.raises(ConfigError):
        RunSpec("warp-core", "dyn").build()


def test_fingerprint_is_deterministic_and_spec_sensitive():
    assert _spec().fingerprint() == _spec().fingerprint()
    assert _spec().fingerprint() != _spec(level="orig").fingerprint()
    assert _spec().fingerprint() != RunSpec(_WORKLOAD, "dyn", passes=2).fingerprint()


def test_fingerprint_normalizes_opt_for_levels_that_ignore_it():
    tuned = replace(OptimizerConfig(), head_len=3)
    # orig never consults the optimizer: sweeping it must share one entry.
    assert _spec("orig", opt=tuned).fingerprint() == _spec("orig").fingerprint()
    # dyn does consult it: the fingerprint must move.
    assert _spec("dyn", opt=tuned).fingerprint() != _spec("dyn").fingerprint()


def test_fingerprint_salt_env_forces_cold_cache(monkeypatch):
    before = _spec().fingerprint()
    monkeypatch.setenv(CACHE_SALT_ENV, "rotate-1")
    assert _spec().fingerprint() != before


def test_runplan_is_ordered_and_indexable():
    plan = RunPlan.of(_spec("orig"), _spec("dyn"))
    assert len(plan) == 2
    assert [s.level for s in plan] == ["orig", "dyn"]
    assert plan[1].level == "dyn"


# ------------------------------------------------------------ level registry


def test_level_registry_matches_ladder():
    assert tuple(level_names()) == LEVELS
    assert get_level("dyn").uses_opt
    assert not get_level("orig").uses_opt


def test_unknown_level_raises():
    with pytest.raises(ConfigError, match="unknown level"):
        get_level("warp9")


def test_duplicate_registration_raises():
    with pytest.raises(ConfigError, match="already registered"):
        register_level(LevelSpec(name="dyn"))


def test_configure_level_semantics():
    opt = OptimizerConfig()
    assert configure_level("prof", opt) == replace(opt, analyze=False, inject=False)
    assert configure_level("hds", opt) == replace(opt, analyze=True, inject=False)
    assert configure_level("nopref", opt).mode == "nopref"
    assert configure_level("seq", opt).mode == "seq"
    assert configure_level("dyn", opt).mode == "dyn"
    with pytest.raises(ConfigError, match="does not use an optimizer config"):
        configure_level("orig", opt)


# ---------------------------------------------------------------- the cache


def test_cache_replay_is_bit_identical(tmp_path):
    store = ResultStore(tmp_path / "cache")
    spec = _spec()
    live = run_spec(spec, store=store)
    replay = run_spec(spec, store=store)
    assert not live.from_cache
    assert replay.from_cache
    assert replay.to_dict() == live.to_dict()
    assert (store.hits, store.misses, store.stored) == (1, 1, 1)


def test_cache_corrupt_entry_degrades_to_miss(tmp_path):
    store = ResultStore(tmp_path / "cache")
    spec = _spec()
    path = store.store(spec, run_spec(spec))
    path.write_text("{ truncated")
    assert store.load(spec) is None

    doc = json.loads(store.store(spec, run_spec(spec)).read_text())
    doc["format"] = 99
    path.write_text(json.dumps(doc))
    assert store.load(spec) is None


def test_cache_stats_and_clear(tmp_path):
    store = ResultStore(tmp_path / "cache")
    result = run_spec(_spec("orig"))
    store.store(_spec("orig"), result)
    stats = store.stats()
    assert stats["entries"] == 1
    assert stats["bytes"] > 0
    assert store.clear() == 1
    assert store.entries() == []


def test_telemetry_session_bypasses_cache(tmp_path):
    store = ResultStore(tmp_path / "cache")
    result = run_spec(_spec(), store=store, telemetry=TelemetrySession())
    assert not result.from_cache
    assert store.entries() == []
    assert (store.hits, store.misses, store.stored) == (0, 0, 0)


# -------------------------------------------------------------- the executor


def _plan() -> RunPlan:
    return RunPlan.of(_spec("orig"), _spec("base"), _spec("dyn"))


def test_execute_plan_parallel_matches_serial():
    serial = execute_plan(_plan(), jobs=1)
    parallel = execute_plan(_plan(), jobs=4)
    assert [r.to_dict() for r in parallel] == [r.to_dict() for r in serial]


def test_execute_plan_warm_store_replays_in_order(tmp_path):
    store = ResultStore(tmp_path / "cache")
    cold = execute_plan(_plan(), jobs=1, store=store)
    warm = execute_plan(_plan(), jobs=4, store=store)
    assert all(not r.from_cache for r in cold)
    assert all(r.from_cache for r in warm)
    assert [r.to_dict() for r in warm] == [r.to_dict() for r in cold]


class _BrokenPool:
    """A pool whose workers all 'crash': futures resolve to an exception."""

    def __init__(self, workers: int):
        self.workers = workers

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False

    def submit(self, fn, *args):
        future = Future()
        future.set_exception(RuntimeError("worker crashed"))
        return future


def test_crashed_workers_retry_serially():
    expected = [r.to_dict() for r in execute_plan(_plan(), jobs=1)]
    results = execute_plan(_plan(), jobs=4, pool_factory=_BrokenPool)
    assert [r.to_dict() for r in results] == expected


def test_pool_creation_failure_degrades_to_serial():
    def factory(workers):
        raise OSError("no processes for you")

    expected = [r.to_dict() for r in execute_plan(_plan(), jobs=1)]
    results = execute_plan(_plan(), jobs=4, pool_factory=factory)
    assert [r.to_dict() for r in results] == expected


def test_progress_hook_fires_in_plan_order(tmp_path):
    store = ResultStore(tmp_path / "cache")
    execute_plan(_plan(), store=store)
    seen = []
    execute_plan(_plan(), store=store, progress=lambda spec, result: seen.append(spec.level))
    assert seen == ["orig", "base", "dyn"]


# ------------------------------------------------------------------- results


def test_overhead_vs_zero_cycle_baseline_raises():
    results = execute_plan(RunPlan.of(_spec("orig"), _spec("dyn")))
    baseline, treatment = results
    assert treatment.overhead_vs(baseline) == pytest.approx(
        100.0 * (treatment.cycles - baseline.cycles) / baseline.cycles
    )
    hollow = replace_cycles_with_zero(baseline)
    with pytest.raises(ConfigError, match="0 cycles"):
        treatment.overhead_vs(hollow)


def replace_cycles_with_zero(result):
    """A deserialized clone of ``result`` whose cycle count is zeroed."""
    doc = result.to_dict()
    doc["stats"]["cycles"] = 0
    from repro.engine.result import RunResult

    return RunResult.from_dict(doc)


# ----------------------------------------------------------- level diffing


def test_diff_levels_replays_both_sides_from_cache(tmp_path):
    from repro.tracing.explain import diff_levels, render_level_diff

    store = ResultStore(tmp_path / "cache")
    cold = diff_levels(_WORKLOAD, "dyn", against="orig", passes=1, store=store)
    warm = diff_levels(_WORKLOAD, "dyn", against="orig", passes=1, store=store)
    assert not cold.from_cache_a and not cold.from_cache_b
    assert warm.from_cache_a and warm.from_cache_b
    assert warm.cycles_a == cold.cycles_a
    assert warm.cycles_b == cold.cycles_b
    text = render_level_diff(warm)
    assert "cached" in text
    assert "prefetch fates" in text
