"""Tests for the per-stream prefetch watchdog (repro.resilience.watchdog)."""

from dataclasses import replace

import pytest

from repro.bench.figures import (
    ABLATION_WATCHDOG_MACHINE,
    ABLATION_WATCHDOG_OPT,
)
from repro.bench.runner import run_workload
from repro.core.config import OptimizerConfig
from repro.errors import ConfigError
from repro.machine.hierarchy import StreamPrefetchStats
from repro.resilience.watchdog import PrefetchWatchdog, StreamScore, WatchdogConfig
from repro.telemetry.session import TelemetrySession
from repro.workloads import presets
from repro.workloads.phaseshift import build_phaseshift

KEY_A = (0, 1, 2)
KEY_B = (3, 4, 5)


def stats(useful=0, late=0, wasted=0):
    s = StreamPrefetchStats()
    s.useful, s.late, s.wasted = useful, late, wasted
    return s


class TestStreamScore:
    def test_first_window_sets_scores_exactly(self):
        score = StreamScore(key=KEY_A)
        score.update(useful=3, late=1, wasted=4, alpha=0.5)
        assert score.accuracy == pytest.approx(0.5)
        assert score.pollution == pytest.approx(0.5)
        assert score.samples == 8

    def test_ewma_blends_later_windows(self):
        score = StreamScore(key=KEY_A)
        score.update(useful=4, late=0, wasted=0, alpha=0.5)  # window: 1.0 / 0.0
        score.update(useful=4, late=0, wasted=4, alpha=0.5)  # window: 0.0 / 1.0
        assert score.accuracy == pytest.approx(0.5)
        assert score.pollution == pytest.approx(0.5)
        assert score.samples == 8

    def test_empty_window_changes_nothing(self):
        score = StreamScore(key=KEY_A)
        score.update(useful=4, late=0, wasted=0, alpha=0.5)
        before = (score.accuracy, score.pollution, score.samples)
        score.update(useful=4, late=0, wasted=0, alpha=0.5)
        assert (score.accuracy, score.pollution, score.samples) == before

    def test_late_counts_toward_accuracy_not_pollution(self):
        score = StreamScore(key=KEY_A)
        score.update(useful=0, late=4, wasted=0, alpha=0.5)
        assert score.accuracy == pytest.approx(1.0)
        assert score.pollution == pytest.approx(0.0)


class TestPolling:
    def config(self, **kwargs):
        defaults = dict(min_samples=4, ewma_alpha=1.0, accuracy_floor=0.25, pollution_ceiling=0.75)
        defaults.update(kwargs)
        return WatchdogConfig(**defaults)

    def test_no_verdict_before_min_samples(self):
        dog = PrefetchWatchdog(self.config(min_samples=100))
        dog.begin_install([KEY_A], {})
        assert dog.poll({KEY_A: stats(wasted=50)}) == []

    def test_condemns_accuracy_collapse(self):
        dog = PrefetchWatchdog(self.config())
        dog.begin_install([KEY_A, KEY_B], {})
        verdicts = dog.poll({KEY_A: stats(useful=1, wasted=9), KEY_B: stats(useful=9, wasted=1)})
        assert [v.key for v in verdicts] == [KEY_A]
        assert verdicts[0].reason == "accuracy"
        # Condemned streams leave the scoreboard; survivors stay.
        assert set(dog.scores) == {KEY_B}

    def test_condemns_pollution_even_with_floor_zero(self):
        # accuracy 0.6 clears any floor; pollution 0.4 breaches the ceiling
        # alone, so the verdict's auto-reason names pollution.
        dog = PrefetchWatchdog(self.config(accuracy_floor=0.0, pollution_ceiling=0.3))
        dog.begin_install([KEY_A], {})
        (verdict,) = dog.poll({KEY_A: stats(useful=6, wasted=4)})
        assert verdict.reason == "pollution"

    def test_begin_install_snapshots_cumulative_counters(self):
        dog = PrefetchWatchdog(self.config())
        # The hierarchy's counters accumulate across installs: history from a
        # previous install must not count against the fresh one.
        old = {KEY_A: stats(useful=0, wasted=100)}
        dog.begin_install([KEY_A], old)
        assert dog.poll({KEY_A: stats(useful=0, wasted=100)}) == []
        (verdict,) = dog.poll({KEY_A: stats(useful=0, wasted=110)})
        assert verdict.samples == 10

    def test_retain_keeps_survivor_history(self):
        dog = PrefetchWatchdog(self.config(min_samples=20))
        dog.begin_install([KEY_A, KEY_B], {})
        dog.poll({KEY_A: stats(useful=10), KEY_B: stats(useful=10)})
        dog.retain([KEY_A], {KEY_A: stats(useful=10)})
        assert set(dog.scores) == {KEY_A}
        assert dog.scores[KEY_A].samples == 10

    def test_retain_fresh_snapshot_for_new_keys(self):
        dog = PrefetchWatchdog(self.config())
        dog.begin_install([KEY_A], {})
        dog.retain([KEY_A, KEY_B], {KEY_B: stats(wasted=50)})
        assert dog.scores[KEY_B].last == (0, 0, 50)
        assert dog.scores[KEY_B].samples == 0

    def test_missing_stats_are_skipped(self):
        dog = PrefetchWatchdog(self.config())
        dog.begin_install([KEY_A], {})
        assert dog.poll({}) == []


class TestBlacklist:
    def test_condemn_blacklists_until_expiry(self):
        dog = PrefetchWatchdog(WatchdogConfig(blacklist_cycles=2))
        dog.condemn(KEY_A, cycle=5)
        assert dog.deopts_total == 1
        assert dog.is_blacklisted(KEY_A, 5)
        assert dog.is_blacklisted(KEY_A, 6)
        assert not dog.is_blacklisted(KEY_A, 7)
        # Expiry removes the entry entirely.
        assert KEY_A not in dog.blacklist

    def test_zero_blacklist_cycles_never_bars(self):
        dog = PrefetchWatchdog(WatchdogConfig(blacklist_cycles=0))
        dog.condemn(KEY_A, cycle=5)
        assert not dog.is_blacklisted(KEY_A, 5)


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"check_every": 0},
            {"min_samples": 0},
            {"ewma_alpha": 0.0},
            {"ewma_alpha": 1.5},
            {"accuracy_floor": -0.1},
            {"pollution_ceiling": 1.1},
            {"blacklist_cycles": -1},
        ],
    )
    def test_bad_config_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            WatchdogConfig(**kwargs)


class TestEndToEnd:
    def test_idle_watchdog_is_cycle_identical(self):
        """Attribution + polling are host-side only: same simulated cycles.

        A watchdog that never condemns (astronomical min_samples) still
        polls the scoreboard and keeps the per-stream attribution map
        installed; the run must be bit-identical to one without a watchdog.
        """
        base = OptimizerConfig()
        idle = replace(base, watchdog=WatchdogConfig(min_samples=1 << 40))
        plain = run_workload(presets.build("vpr", passes=3), "dyn", opt=base)
        guarded = run_workload(presets.build("vpr", passes=3), "dyn", opt=idle)
        assert guarded.cycles == plain.cycles
        assert guarded.summary.stream_deopts == 0

    def test_condemns_stale_streams_under_phase_shift(self):
        """On the adversarial workload the watchdog rolls back stale streams."""
        opt = replace(
            ABLATION_WATCHDOG_OPT,
            watchdog=WatchdogConfig(check_every=2, min_samples=8, wake_on_empty=False),
        )
        session = TelemetrySession.recording()
        result = run_workload(
            build_phaseshift(passes=10),
            "dyn",
            machine=ABLATION_WATCHDOG_MACHINE,
            opt=opt,
            telemetry=session,
        )
        assert result.summary.stream_deopts >= 1
        deopts = [e for e in session.events if e.kind == "StreamDeoptimized"]
        assert len(deopts) == result.summary.stream_deopts
        assert all(e.reason in ("accuracy", "pollution") for e in deopts)
        assert result.summary.optimizer_errors == 0
