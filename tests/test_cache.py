"""Tests for the set-associative LRU cache."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine.cache import Cache
from repro.machine.config import CacheGeometry


def make_cache(size=512, ways=2, block=32) -> Cache:
    return Cache(CacheGeometry(size, ways, block))


class TestBasics:
    def test_cold_miss_then_hit(self):
        cache = make_cache()
        assert not cache.lookup(5)
        cache.install(5)
        assert cache.lookup(5)
        assert cache.hits == 1
        assert cache.misses == 1

    def test_contains_does_not_count(self):
        cache = make_cache()
        cache.install(3)
        assert cache.contains(3)
        assert not cache.contains(4)
        assert cache.accesses == 0

    def test_install_returns_victim_when_set_full(self):
        cache = make_cache(size=128, ways=2, block=32)  # 2 sets, 2 ways
        # blocks 0, 2, 4 all map to set 0
        assert cache.install(0) is None
        assert cache.install(2) is None
        victim = cache.install(4)
        assert victim == 0  # LRU
        assert cache.evictions == 1

    def test_lru_order_updated_by_lookup(self):
        cache = make_cache(size=128, ways=2, block=32)
        cache.install(0)
        cache.install(2)
        cache.lookup(0)  # 0 becomes MRU, 2 is now LRU
        assert cache.install(4) == 2

    def test_reinstall_promotes_no_eviction(self):
        cache = make_cache(size=128, ways=2, block=32)
        cache.install(0)
        cache.install(2)
        assert cache.install(0) is None  # already present: promote
        assert cache.install(4) == 2

    def test_invalidate(self):
        cache = make_cache()
        cache.install(7)
        assert cache.invalidate(7)
        assert not cache.invalidate(7)
        assert not cache.contains(7)

    def test_flush_preserves_counters(self):
        cache = make_cache()
        cache.install(1)
        cache.lookup(1)
        cache.flush()
        assert not cache.contains(1)
        assert cache.hits == 1

    def test_blocks_in_different_sets_do_not_conflict(self):
        cache = make_cache(size=128, ways=2, block=32)  # 2 sets
        for block in (0, 1, 2, 3):  # sets 0,1,0,1
            cache.install(block)
        assert all(cache.contains(b) for b in (0, 1, 2, 3))

    def test_resident_blocks(self):
        cache = make_cache()
        for block in (1, 2, 3):
            cache.install(block)
        assert cache.resident_blocks() == {1, 2, 3}


class TestCapacity:
    def test_never_exceeds_capacity(self):
        cache = make_cache(size=256, ways=4, block=32)  # 8 blocks total
        for block in range(100):
            cache.install(block)
        assert len(cache.resident_blocks()) <= 8

    def test_direct_mapped_conflicts(self):
        cache = Cache(CacheGeometry(128, 1, 32))  # 4 sets, direct-mapped
        cache.install(0)
        cache.install(4)  # same set
        assert not cache.contains(0)
        assert cache.contains(4)

    def test_fully_scanned_working_set_evicts_everything(self):
        cache = make_cache(size=512, ways=2, block=32)  # 16 blocks
        for block in range(16):
            cache.install(block)
        for block in range(100, 132):  # 2x capacity of new blocks
            cache.install(block)
        assert not any(cache.contains(b) for b in range(16))


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=63), min_size=1, max_size=300))
def test_property_capacity_and_determinism(blocks):
    """Capacity invariant holds and behaviour is deterministic."""
    results = []
    for _ in range(2):
        cache = make_cache(size=256, ways=2, block=32)  # 8 blocks
        hits = []
        for block in blocks:
            if not cache.lookup(block):
                cache.install(block)
            hits.append(cache.hits)
        assert len(cache.resident_blocks()) <= 8
        results.append(hits)
    assert results[0] == results[1]


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=15), min_size=1, max_size=100))
def test_property_repeat_access_hits(blocks):
    """Accessing the same block twice in a row always hits the second time."""
    cache = make_cache(size=512, ways=4, block=32)
    for block in blocks:
        if not cache.lookup(block):
            cache.install(block)
        assert cache.lookup(block)
