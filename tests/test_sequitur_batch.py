"""Property tests: batched feeding is byte-identical to per-token feeding.

``extend_batch`` is the flat core's one-call-frame-per-batch entry point;
these tests pin that for *any* token sequence and *any* partition of it
into batches, the resulting grammar — rules, refcounts, digram index
insertion order, the full serialized state — equals the grammar built by
per-token ``append``, and equals the demoted linked reference engine.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AnalysisError
from repro.oracle.fuzz import grammar_state_diff
from repro.oracle.refsequitur import RefSequitur
from repro.sequitur import MAX_TERMINAL, Sequitur

tokens_strategy = st.lists(st.integers(min_value=0, max_value=5), max_size=120)


def partition(tokens: list[int], cuts: list[int]) -> list[list[int]]:
    """Split ``tokens`` at the (possibly duplicated, unsorted) cut offsets."""
    bounds = sorted({min(c, len(tokens)) for c in cuts} | {0, len(tokens)})
    return [tokens[a:b] for a, b in zip(bounds, bounds[1:])]


@given(
    tokens=tokens_strategy,
    cuts=st.lists(st.integers(min_value=0, max_value=120), max_size=8),
)
@settings(max_examples=200, deadline=None)
def test_any_partition_matches_per_token_append(tokens, cuts):
    batched = Sequitur()
    for batch in partition(tokens, cuts):
        batched.extend_batch(batch)
    single = Sequitur()
    for token in tokens:
        single.append(token)
    assert grammar_state_diff(batched.__getstate__(), single.__getstate__()) == ""
    batched.verify_invariants()


@given(tokens=tokens_strategy)
@settings(max_examples=200, deadline=None)
def test_one_batch_matches_linked_reference(tokens):
    flat = Sequitur()
    flat.extend_batch(tokens)
    ref = RefSequitur()
    for token in tokens:
        ref.append(token)
    assert grammar_state_diff(flat.__getstate__(), ref.__getstate__()) == ""


@given(
    prefix=st.lists(st.integers(min_value=0, max_value=4), max_size=40),
    suffix=st.lists(st.integers(min_value=0, max_value=4), max_size=10),
    bad=st.integers(min_value=-(2**40), max_value=-1),
)
@settings(max_examples=100, deadline=None)
def test_negative_token_raises_at_exact_position(prefix, suffix, bad):
    seq = Sequitur()
    with pytest.raises(AnalysisError, match=f"got {bad}"):
        seq.extend_batch(prefix + [bad] + suffix)
    # Everything before the offending token is applied; nothing after is.
    want = Sequitur()
    want.extend_batch(prefix)
    assert seq.length == len(prefix)
    assert grammar_state_diff(seq.__getstate__(), want.__getstate__()) == ""
    seq.verify_invariants()


def test_overflow_token_raises_and_preserves_prefix():
    seq = Sequitur()
    with pytest.raises(AnalysisError, match="terminal"):
        seq.extend_batch([1, 2, 1, 2, MAX_TERMINAL, 7])
    want = Sequitur()
    want.extend_batch([1, 2, 1, 2])
    assert grammar_state_diff(seq.__getstate__(), want.__getstate__()) == ""


def test_max_terminal_minus_one_is_accepted():
    seq = Sequitur()
    big = MAX_TERMINAL - 1
    seq.extend_batch([big, 0, big, 0, big, 0])
    assert seq.expand() == [big, 0, big, 0, big, 0]
    seq.verify_invariants()


@given(tokens=tokens_strategy)
@settings(max_examples=100, deadline=None)
def test_serialize_roundtrip_preserves_batched_state(tokens):
    seq = Sequitur()
    seq.extend_batch(tokens)
    clone = Sequitur.__new__(Sequitur)
    clone.__setstate__(seq.__getstate__())
    assert grammar_state_diff(clone.__getstate__(), seq.__getstate__()) == ""
    clone.verify_invariants()
    assert clone.expand() == tokens

    # The restored grammar keeps growing identically to the original.
    more = [t + 1 for t in tokens[:17]]
    seq.extend_batch(more)
    clone.extend_batch(more)
    assert grammar_state_diff(clone.__getstate__(), seq.__getstate__()) == ""
