"""Per-tenant fault-seed derivation: adding a tenant never perturbs another."""

from repro.machine.config import CacheGeometry, MachineConfig
from repro.resilience.faults import FaultInjector, FaultPlan, derive_tenant_seed
from repro.tenancy import TenantPlan, TenantSpec, run_tenant_plan

SMALL_MACHINE = MachineConfig(
    l1=CacheGeometry(512, 2),
    l2=CacheGeometry(4096, 4),
    l2_latency=10,
    memory_latency=100,
)


class TestSeedDerivation:
    def test_tenant_zero_keeps_base_seed(self):
        for seed in (0, 7, 123456789):
            assert derive_tenant_seed(seed, 0) == seed
            assert FaultPlan(seed=seed).for_tenant(0) == FaultPlan(seed=seed)

    def test_derivation_is_stable_and_distinct(self):
        seen = set()
        for tid in range(6):
            derived = derive_tenant_seed(42, tid)
            assert derived == derive_tenant_seed(42, tid)
            seen.add(derived)
        assert len(seen) == 6

    def test_derivation_is_a_hash_not_an_offset(self):
        # seed+1 at tenant t must not collide with seed at tenant t+1 (an
        # additive scheme would); check a window of combinations.
        values = {
            (seed, tid): derive_tenant_seed(seed, tid)
            for seed in range(5)
            for tid in range(1, 5)
        }
        assert len(set(values.values())) == len(values)

    def test_for_tenant_only_changes_seed(self):
        plan = FaultPlan(seed=9, rate=0.5, kinds=("drop_burst",), max_per_kind=2)
        derived = plan.for_tenant(3)
        assert derived.seed == derive_tenant_seed(9, 3)
        assert derived.rate == plan.rate
        assert derived.kinds == plan.kinds
        assert derived.max_per_kind == plan.max_per_kind


class TestInjectorStreamIndependence:
    def test_equal_plans_equal_draws(self):
        a = FaultInjector(FaultPlan(seed=5).for_tenant(2))
        b = FaultInjector(FaultPlan(seed=5).for_tenant(2))
        draws_a = [a.fire(kind) for kind in FaultPlan().kinds for _ in range(20)]
        draws_b = [b.fire(kind) for kind in FaultPlan().kinds for _ in range(20)]
        assert draws_a == draws_b

    def test_different_tenants_draw_differently(self):
        a = FaultInjector(FaultPlan(seed=5).for_tenant(1))
        b = FaultInjector(FaultPlan(seed=5).for_tenant(2))
        draws_a = [a.fire("drop_burst") for _ in range(64)]
        draws_b = [b.fire("drop_burst") for _ in range(64)]
        assert draws_a != draws_b


class TestCoRunFaultIsolation:
    def _tenant_zero_faults(self, tenants):
        plan = TenantPlan(
            tenants=tenants, quantum=2048, sharing="private-l1", machine=SMALL_MACHINE
        )
        result = run_tenant_plan(plan)
        summary = result.tenants[0].summary
        return summary.faults_injected, result.tenants[0].stats.to_dict()

    def test_adding_a_tenant_preserves_tenant_zero_fault_sequence(self):
        faulty = TenantSpec(
            "vortex", "dyn", passes=1, opt=_opt_with_faults(seed=11)
        )
        solo_faults, _ = self._tenant_zero_faults((faulty,))
        duo_faults, _ = self._tenant_zero_faults(
            (faulty, TenantSpec("vpr", "orig", passes=1))
        )
        assert solo_faults == duo_faults


def _opt_with_faults(seed: int):
    from dataclasses import replace

    from repro.core.config import OptimizerConfig

    return replace(OptimizerConfig(), faults=FaultPlan(seed=seed, rate=0.5))
