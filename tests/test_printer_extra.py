"""Printer coverage for the remaining instruction shapes and whole programs."""

import pytest

from repro.ir import (
    Alloc,
    Alu,
    AluImm,
    Bnz,
    Call,
    Cmp,
    Const,
    Halt,
    Mov,
    Nop,
    Prefetch,
    ProcedureBuilder,
    Ret,
    build_program,
    format_instr,
    format_program,
)
from repro.ir.printer import format_procedure


class TestFormatInstr:
    @pytest.mark.parametrize(
        "instr,expected",
        [
            (Const(1, 42), "r1 = 42"),
            (Mov(1, 2), "r1 = r2"),
            (Alu("add", 0, 1, 2), "r0 = r1 add r2"),
            (AluImm("mul", 0, 1, 3), "r0 = r1 mul 3"),
            (Cmp("lt", 0, 1, 2), "r0 = r1 lt r2"),
            (Bnz(3, "loop"), "bnz r3, loop"),
            (Call(0, "f", (1, 2)), "r0 = call f(r1, r2)"),
            (Call(None, "f", ()), "call f()"),
            (Ret(None), "ret"),
            (Ret(5), "ret r5"),
            (Alloc(0, 1), "r0 = alloc r1"),
            (Halt(), "halt"),
            (Nop(), "nop"),
        ],
    )
    def test_rendering(self, instr, expected):
        assert format_instr(instr) == expected

    def test_prefetch_renders_hex(self):
        text = format_instr(Prefetch((0x1000, 0x2000)))
        assert text == "prefetch 0x1000, 0x2000"


class TestFormatProgram:
    def test_renders_all_procedures_sorted(self):
        a = ProcedureBuilder("alpha")
        a.ret()
        b = ProcedureBuilder("beta")
        b.ret()
        program = build_program([b, a], entry="alpha")
        text = format_program(program)
        assert text.index("proc alpha") < text.index("proc beta")

    def test_instrumented_view_requires_instrumentation(self):
        a = ProcedureBuilder("alpha")
        a.ret()
        with pytest.raises(ValueError):
            format_procedure(a.build(), instrumented=True)

    def test_instrumented_view_marks_traced(self):
        from repro.vulcan.static_edit import instrument_procedure

        b = ProcedureBuilder("f", params=("p",))
        b.load(None, b.param("p"), 0)
        b.ret()
        proc, _, _ = instrument_procedure(b.build())
        assert "[traced]" in format_procedure(proc, instrumented=True)
        assert "[traced]" not in format_procedure(proc)
