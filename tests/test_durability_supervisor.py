"""Supervised plan execution: identity, recovery, resume.

Everything here pins one claim: whatever the supervisor survives — crashes,
stalls, torn checkpoints, corrupt journals — its results are bit-identical
to plain serial execution.
"""

import pytest

from repro.durability import ChaosPlan, DurabilityPolicy, SupervisorConfig
from repro.durability.journal import RunJournal, journal_path, plan_fingerprint
from repro.durability.runner import run_spec_durable
from repro.durability.supervisor import execute_plan_supervised
from repro.engine.cache import ResultStore
from repro.engine.executor import execute_plan
from repro.engine.spec import RunPlan, RunSpec
from repro.telemetry.events import EventBus
from repro.telemetry.sinks import ListSink

#: Small but real plan: two levels of one workload plus a second workload.
PLAN = RunPlan.of(
    RunSpec("vortex", "orig", passes=1),
    RunSpec("vortex", "dyn", passes=1),
    RunSpec("mcf", "orig", passes=1),
)

#: Fast supervisor: tight deadlines so failure paths resolve in seconds.
FAST = SupervisorConfig(task_timeout=120.0, stall_timeout=2.0, backoff_base=0.05)


def _docs(results):
    return [r.to_dict() for r in results]


def _bus():
    events = ListSink()
    bus = EventBus()
    bus.attach(events)
    return bus, events


@pytest.fixture(scope="module")
def plain_docs():
    return _docs(execute_plan(PLAN))


class TestIdentity:
    def test_supervised_equals_plain(self, tmp_path, plain_docs):
        policy = DurabilityPolicy(journal_root=tmp_path / "journal", supervisor=FAST)
        supervised = execute_plan_supervised(PLAN, jobs=2, policy=policy)
        assert _docs(supervised) == plain_docs

    def test_journal_and_checkpoints_retire_on_success(self, tmp_path, plain_docs):
        root = tmp_path / "journal"
        policy = DurabilityPolicy(journal_root=root, supervisor=FAST)
        execute_plan_supervised(PLAN, jobs=2, policy=policy)
        assert not journal_path(root, plan_fingerprint(PLAN)).exists()
        assert not list((root / "checkpoints").glob("*.ckpt"))

    def test_results_store_and_progress(self, tmp_path, plain_docs):
        store = ResultStore(tmp_path / "cache")
        policy = DurabilityPolicy(journal_root=tmp_path / "journal", supervisor=FAST)
        seen = []
        results = execute_plan_supervised(
            PLAN, jobs=2, store=store,
            progress=lambda spec, result: seen.append(spec.label),
            policy=policy,
        )
        assert _docs(results) == plain_docs
        assert sorted(seen) == sorted(spec.label for spec in PLAN)
        # A second supervised execution resolves everything from the store.
        again = execute_plan_supervised(PLAN, jobs=2, store=store, policy=policy)
        assert all(r.from_cache for r in again)
        assert _docs(again) == plain_docs


class TestChaosRecovery:
    def test_kill_and_stall_recover_bit_identical(self, tmp_path, plain_docs):
        bus, events = _bus()
        policy = DurabilityPolicy(
            journal_root=tmp_path / "journal",
            supervisor=FAST,
            chaos=ChaosPlan(seed=1, kinds=("kill_worker", "stall_worker")),
            bus=bus,
        )
        results = execute_plan_supervised(PLAN, jobs=2, policy=policy)
        assert _docs(results) == plain_docs
        counts = events.counts()
        assert counts.get("ChaosInjected", 0) == 2
        assert counts.get("TaskRetried", 0) >= 1
        # One kill -> WorkerCrashed, one stall -> WorkerTimedOut(stall).
        assert counts.get("WorkerCrashed", 0) >= 1
        assert counts.get("WorkerTimedOut", 0) >= 1

    def test_truncated_checkpoint_recovers(self, tmp_path, plain_docs):
        bus, events = _bus()
        policy = DurabilityPolicy(
            journal_root=tmp_path / "journal",
            supervisor=FAST,
            chaos=ChaosPlan(seed=1, kinds=("kill_worker", "truncate_checkpoint")),
            bus=bus,
        )
        results = execute_plan_supervised(PLAN, jobs=2, policy=policy)
        assert _docs(results) == plain_docs

    def test_corrupt_cache_entry_recovers(self, tmp_path, plain_docs):
        store = ResultStore(tmp_path / "cache")
        policy = DurabilityPolicy(
            journal_root=tmp_path / "journal",
            supervisor=FAST,
            chaos=ChaosPlan(seed=1, kinds=("corrupt_cache_entry",)),
        )
        execute_plan_supervised(PLAN, jobs=2, store=store, policy=policy)
        # Exactly one entry was sabotaged post-store; a later session detects
        # it, degrades to a miss, recomputes and still matches.
        fresh = ResultStore(tmp_path / "cache")
        assert fresh.scan()["corrupt"] == 1
        again = execute_plan_supervised(
            PLAN, jobs=2, store=fresh,
            policy=DurabilityPolicy(journal_root=tmp_path / "journal", supervisor=FAST),
        )
        assert _docs(again) == plain_docs
        assert fresh.corrupt == 1


class TestResume:
    def test_journal_resume_skips_finished_tasks(self, tmp_path, plain_docs):
        root = tmp_path / "journal"
        plan_fp = plan_fingerprint(PLAN)
        # Simulate an interrupted run: tasks 0 and 2 journaled, then death.
        journal = RunJournal(journal_path(root, plan_fp))
        journal.plan_begin(plan_fp, len(PLAN))
        journal.task_done(0, PLAN[0].fingerprint(), plain_docs[0])
        journal.task_done(2, PLAN[2].fingerprint(), plain_docs[2])
        bus, events = _bus()
        policy = DurabilityPolicy(
            journal_root=root, resume=True, supervisor=FAST, bus=bus,
        )
        results = execute_plan_supervised(PLAN, jobs=2, policy=policy)
        assert _docs(results) == plain_docs
        replayed = [e for e in events.events if e.kind == "JournalReplayed"]
        assert len(replayed) == 1 and replayed[0].replayed == 2
        assert not journal.path.exists()

    def test_flipped_journal_byte_recomputes(self, tmp_path, plain_docs):
        root = tmp_path / "journal"
        plan_fp = plan_fingerprint(PLAN)
        journal = RunJournal(journal_path(root, plan_fp))
        journal.task_done(0, PLAN[0].fingerprint(), plain_docs[0])
        data = bytearray(journal.path.read_bytes())
        data[len(data) // 2] ^= 0x01
        journal.path.write_bytes(bytes(data))
        bus, events = _bus()
        policy = DurabilityPolicy(
            journal_root=root, resume=True, supervisor=FAST, bus=bus,
        )
        results = execute_plan_supervised(PLAN, jobs=2, policy=policy)
        assert _docs(results) == plain_docs
        replayed = [e for e in events.events if e.kind == "JournalReplayed"]
        assert len(replayed) == 1
        assert replayed[0].corrupt == 1 and replayed[0].replayed == 0

    def test_resume_without_journal_is_fresh_run(self, tmp_path, plain_docs):
        policy = DurabilityPolicy(
            journal_root=tmp_path / "journal", resume=True, supervisor=FAST,
        )
        assert _docs(execute_plan_supervised(PLAN, jobs=2, policy=policy)) == plain_docs


class TestDurableRunner:
    def test_interrupt_resume_identity(self, tmp_path, plain_docs):
        spec = PLAN[1]  # vortex/dyn: long enough to cross checkpoints
        ckpt = tmp_path / "run.ckpt"
        interrupted = run_spec_durable(
            spec, ckpt, checkpoint_every=60_000, stop_after_checkpoints=1
        )
        assert interrupted is None and ckpt.is_file()
        resumed = run_spec_durable(spec, ckpt, checkpoint_every=60_000)
        assert resumed.to_dict() == plain_docs[1]
        assert not ckpt.exists()

    def test_no_checkpoint_path_is_plain_sliced_run(self, plain_docs):
        result = run_spec_durable(PLAN[0], checkpoint_every=10_000)
        assert result.to_dict() == plain_docs[0]

    def test_execute_plan_durability_param_routes(self, tmp_path, plain_docs):
        policy = DurabilityPolicy(journal_root=tmp_path / "journal", supervisor=FAST)
        results = execute_plan(PLAN, jobs=2, durability=policy)
        assert _docs(results) == plain_docs


class TestStatusAndStallDistinction:
    def test_status_file_tracks_the_run_to_done(self, tmp_path, plain_docs):
        from repro.obs.status import read_status

        root = tmp_path / "journal"
        policy = DurabilityPolicy(journal_root=root, supervisor=FAST)
        execute_plan_supervised(PLAN, jobs=2, policy=policy)
        doc = read_status(root)
        assert doc["done"] is True
        assert doc["plan"] == plan_fingerprint(PLAN)
        states = [task["state"] for task in doc["tasks"]]
        assert len(states) == len(PLAN) and set(states) <= {"done", "cached"}
        assert all(task["icount"] > 0 for task in doc["tasks"])

    def test_slow_but_progressing_worker_is_spared(self, tmp_path, plain_docs):
        """Missed heartbeats with advancing slice stamps must not kill the
        worker: huge heartbeat_every makes every worker look quiet, but the
        simulation progresses, so the supervisor logs WorkerSlow and waits."""
        bus, events = _bus()
        policy = DurabilityPolicy(
            journal_root=tmp_path / "journal",
            checkpoint_every=2000,
            supervisor=SupervisorConfig(
                task_timeout=120.0,
                stall_timeout=0.3,
                heartbeat_every=60.0,
                backoff_base=0.05,
            ),
            bus=bus,
        )
        supervised = execute_plan_supervised(PLAN, jobs=2, policy=policy)
        assert _docs(supervised) == plain_docs
        counts = events.counts()
        assert counts.get("WorkerSlow", 0) >= 1
        assert counts.get("WorkerTimedOut", 0) == 0
        assert counts.get("WorkerCrashed", 0) == 0
