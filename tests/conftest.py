"""Shared fixtures: small machines, workloads and optimizer configs.

Tests run against deliberately tiny configurations so the whole suite stays
fast; the full-size presets are exercised by the benchmark harness.
"""

from __future__ import annotations

import pytest

from repro.analysis.hotstreams import AnalysisConfig
from repro.core.config import OptimizerConfig
from repro.machine.config import CacheGeometry, MachineConfig
from repro.profiling.sampling import BurstyCounters
from repro.workloads.chainmix import ChainMixParams


@pytest.fixture(autouse=True)
def _isolated_result_cache(tmp_path, monkeypatch):
    """Point the engine's result cache at a per-test directory.

    Keeps tests from seeding (or reading) a ``.repro-cache/`` in the repo or
    in each other's working directories; tests that want a specific store
    still construct ``ResultStore(path)`` explicitly.
    """
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "repro-cache"))


@pytest.fixture
def tiny_machine() -> MachineConfig:
    """A very small cache hierarchy: easy to overflow in tests."""
    return MachineConfig(
        l1=CacheGeometry(512, 2),       # 16 blocks
        l2=CacheGeometry(4096, 4),      # 128 blocks
        l2_latency=10,
        memory_latency=100,
    )


@pytest.fixture
def small_params() -> ChainMixParams:
    """A chain-mix workload that runs in well under a second."""
    return ChainMixParams(
        name="small",
        groups=2,
        hot_chains=6,
        cold_chains=20,
        chain_len=9,
        hot_fraction=0.75,
        schedule_len=32,
        passes=8,
        cold_refs_per_step=4,
        cold_array_blocks=64,
        node_compute=1,
        unroll=4,
        seed=7,
    )


@pytest.fixture
def small_opt() -> OptimizerConfig:
    """An optimizer that completes several cycles on the small workload."""
    return OptimizerConfig(
        counters=BurstyCounters(16, 16),
        n_awake=12,
        n_hibernate=48,
        head_len=2,
        analysis=AnalysisConfig(
            heat_ratio=0.002, min_length=4, max_length=64, min_unique=3, max_streams=16
        ),
        max_prefetches=32,
        max_dfsm_states=512,
    )
