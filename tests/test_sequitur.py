"""Tests for incremental Sequitur: Figure 4, invariants, round-trips."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AnalysisError
from repro.sequitur import Sequitur


def encode(text: str) -> list[int]:
    return [ord(ch) - ord("a") for ch in text]


def build(text: str) -> Sequitur:
    seq = Sequitur()
    seq.extend(encode(text))
    return seq


class TestFigure4:
    """The paper's worked example: w = abaabcabcabcabc."""

    def test_grammar_structure(self):
        seq = build("abaabcabcabcabc")
        names = {0: "a", 1: "b", 2: "c"}
        text = seq.to_text(names)
        assert text == "S -> R1 a R3 R3\nR1 -> a b\nR2 -> R1 c\nR3 -> R2 R2"

    def test_expansion_lengths_match_figure6(self):
        seq = build("abaabcabcabcabc")
        lengths = seq.expansion_lengths()
        by_len = sorted(lengths.values())
        assert by_len == [2, 3, 6, 15]

    def test_roundtrip(self):
        seq = build("abaabcabcabcabc")
        assert seq.expand() == encode("abaabcabcabcabc")

    def test_invariants_hold(self):
        build("abaabcabcabcabc").verify_invariants()


class TestBasics:
    def test_empty_grammar(self):
        seq = Sequitur()
        assert seq.length == 0
        assert seq.expand() == []
        assert seq.grammar_size() == 0

    def test_single_symbol(self):
        seq = Sequitur()
        seq.append(5)
        assert seq.expand() == [5]
        assert seq.length == 1

    def test_negative_terminal_rejected(self):
        with pytest.raises(AnalysisError):
            Sequitur().append(-1)

    def test_no_rule_for_unique_symbols(self):
        seq = Sequitur()
        seq.extend([1, 2, 3, 4, 5])
        assert len(seq.rules) == 1  # just the start rule

    def test_repeated_pair_creates_rule(self):
        seq = Sequitur()
        seq.extend([1, 2, 3, 1, 2])
        assert len(seq.rules) == 2
        seq.verify_invariants()

    def test_rule_reuse_not_duplicate(self):
        seq = build("abcdbc")
        # digram bc appears twice -> one rule
        assert len(seq.rules) == 2

    @pytest.mark.parametrize("text", ["aa", "aaa", "aaaa", "aaaaaaaa", "aaaaaaaaa"])
    def test_runs_of_one_symbol(self, text):
        seq = build(text)
        assert seq.expand() == encode(text)
        seq.verify_invariants()

    @pytest.mark.parametrize(
        "text",
        ["abab", "ababab", "abcabcabc", "aabbaabb", "abcddcba", "xyxyxyxyzz"
         .replace("x", "a").replace("y", "b").replace("z", "c")],
    )
    def test_repetitive_patterns_roundtrip(self, text):
        seq = build(text)
        assert seq.expand() == encode(text)
        seq.verify_invariants()

    def test_compression_on_repetitive_input(self):
        seq = build("abcabc" * 32)
        assert seq.grammar_size() < len("abcabc" * 32) // 4

    def test_incremental_matches_batch(self):
        text = encode("abaabcabcabcabc")
        batch = Sequitur()
        batch.extend(text)
        incremental = Sequitur()
        for token in text:
            incremental.append(token)
        assert batch.to_text() == incremental.to_text()

    def test_children_with_repetition(self):
        seq = build("abaabcabcabcabc")
        # B -> C C: the same child twice
        by_len = {seq.expansion_lengths()[r.id]: r for r in seq.rules.values()}
        rule_b = by_len[6]
        assert len(seq.children(rule_b)) == 2

    def test_expand_with_limit(self):
        seq = build("abcabcabcabc")
        assert seq.expand(limit=5) == encode("abcab")


class TestInvariantChecker:
    def test_detects_manual_corruption(self):
        seq = build("abcabcabc")
        # Manually corrupt a refcount.
        victim = next(r for r in seq.rules.values() if r is not seq.start)
        victim.refcount += 1
        with pytest.raises(AnalysisError):
            seq.verify_invariants()


@settings(max_examples=200, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=3), min_size=0, max_size=200))
def test_property_roundtrip_small_alphabet(tokens):
    """Grammar expansion always reproduces the input exactly."""
    seq = Sequitur()
    seq.extend(tokens)
    assert seq.expand() == tokens
    assert seq.length == len(tokens)


@settings(max_examples=100, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=3), min_size=0, max_size=150))
def test_property_invariants_small_alphabet(tokens):
    """Digram uniqueness, rule utility and refcounts always hold."""
    seq = Sequitur()
    seq.extend(tokens)
    seq.verify_invariants()


@settings(max_examples=100, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=1000), min_size=0, max_size=150))
def test_property_roundtrip_large_alphabet(tokens):
    seq = Sequitur()
    seq.extend(tokens)
    assert seq.expand() == tokens
    seq.verify_invariants()


@settings(max_examples=100, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=2), min_size=1, max_size=120))
def test_property_grammar_never_larger_than_input_plus_constant(tokens):
    """Sequitur never inflates: grammar size <= input length + small slack."""
    seq = Sequitur()
    seq.extend(tokens)
    assert seq.grammar_size() <= len(tokens) + 2


@settings(max_examples=100, deadline=None)
@given(
    st.lists(st.integers(min_value=0, max_value=2), min_size=1, max_size=60),
    st.integers(min_value=2, max_value=8),
)
def test_property_repetition_compresses(unit, reps):
    """Repeating a unit many times yields a grammar sub-linear in reps."""
    seq = Sequitur()
    seq.extend(unit * reps)
    assert seq.expand() == unit * reps
    if reps >= 4 and len(unit) >= 2:
        assert seq.grammar_size() < len(unit) * reps


@settings(max_examples=60, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=5), min_size=0, max_size=100))
def test_property_expansion_lengths_consistent(tokens):
    """Every rule's recorded expansion length matches its actual expansion."""
    seq = Sequitur()
    seq.extend(tokens)
    lengths = seq.expansion_lengths()
    for rule_id, rule in seq.rules.items():
        assert lengths[rule_id] == len(seq.expand(rule))
