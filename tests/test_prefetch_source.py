"""Tests for the prefetch ``source`` tag: sw / static / stride / markov.

Every ``issue_prefetch`` carries a source tag; it must reach the telemetry
``PrefetchIssued`` events, the aggregate ``PrefetchStats.by_source``
breakdown, and the per-source metrics counters — and each measurement level
must tag with exactly its own scheme.
"""

from __future__ import annotations

import pytest

from repro.bench.runner import run_level
from repro.machine.config import CacheGeometry, MachineConfig
from repro.machine.hierarchy import MemoryHierarchy
from repro.telemetry.session import TelemetrySession
from repro.telemetry.sinks import ListSink

_EXPECTED_SOURCE = {"seq": "sw", "dyn": "sw", "static": "static",
                    "stride": "stride", "markov": "markov"}


def _tiny_hierarchy():
    machine = MachineConfig(l1=CacheGeometry(512, 2), l2=CacheGeometry(4096, 4))
    return MemoryHierarchy(machine)


class TestBySourceCounters:
    def test_counts_per_source(self):
        hier = _tiny_hierarchy()
        hier.issue_prefetch(0x100, now=0, source="sw")
        hier.issue_prefetch(0x200, now=1, source="sw")
        hier.issue_prefetch(0x300, now=2, source="stride")
        assert hier.prefetch.by_source == {"sw": 2, "stride": 1}

    def test_redundant_prefetches_still_tagged(self):
        hier = _tiny_hierarchy()
        hier.issue_prefetch(0x100, now=0, source="markov")
        hier.issue_prefetch(0x100, now=1, source="markov")  # already resident
        assert hier.prefetch.by_source == {"markov": 2}
        assert hier.prefetch.by_source["markov"] == hier.prefetch.issued

    def test_default_source_is_sw(self):
        hier = _tiny_hierarchy()
        hier.issue_prefetch(0x100, now=0)
        assert hier.prefetch.by_source == {"sw": 1}


@pytest.mark.parametrize("level", sorted(_EXPECTED_SOURCE))
def test_levels_tag_with_their_own_scheme(level):
    sink = ListSink()
    session = TelemetrySession(sinks=[sink], prefetch_sample_every=1, miss_sample_every=1)
    result = run_level("vortex", level, passes=2, telemetry=session)
    stats = result.hierarchy.prefetch
    assert stats.issued > 0, f"{level} should issue prefetches"
    expected = _EXPECTED_SOURCE[level]
    # All issues carry exactly the level's source tag ...
    assert stats.by_source == {expected: stats.issued}
    # ... the telemetry events agree ...
    sources = {e.source for e in sink.events if e.kind == "PrefetchIssued"}
    assert sources == {expected}
    # ... and the per-source metrics counter reconciles.
    snapshot = session.registry.snapshot()
    assert snapshot["counters"][f"prefetch.issued.{expected}"] == stats.issued


def test_levels_without_prefetching_have_empty_breakdown():
    result = run_level("vortex", "nopref", passes=2)
    assert result.hierarchy.prefetch.issued == 0
    assert result.hierarchy.prefetch.by_source == {}
