"""Loader robustness: empty sessions round-trip, malformed lines skip loudly."""

import pytest

from repro.errors import ConfigError
from repro.telemetry import (
    BurstBegin,
    MetricsRegistry,
    RecordSkipped,
    RunBegin,
    from_record,
    load_events_jsonl,
    load_metrics_json,
    write_events_jsonl,
    write_metrics_json,
)


class TestEmptySessionRoundTrip:
    def test_zero_events(self, tmp_path):
        path = tmp_path / "events.jsonl"
        assert write_events_jsonl([], path) == 0
        assert load_events_jsonl(path) == []
        assert load_events_jsonl(path, strict=True) == []

    def test_blank_lines_are_not_records(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text("\n\n  \n")
        assert load_events_jsonl(path) == []

    def test_empty_metrics_snapshot(self, tmp_path):
        path = tmp_path / "metrics.json"
        snapshot = MetricsRegistry().snapshot()
        write_metrics_json(snapshot, path)
        assert load_metrics_json(path) == snapshot


class TestMalformedLines:
    def _write_mixed_log(self, tmp_path):
        path = tmp_path / "events.jsonl"
        lines = [
            '{"kind":"BurstBegin","cycle":1}',  # good
            "{truncated",  # broken JSON
            '{"kind":"NoSuchEvent","cycle":2}',  # unknown discriminator
            '{"kind":"RunBegin","cycle":3}',  # missing fields
            "[1, 2, 3]",  # valid JSON but not an object
            '{"kind":"RunBegin","cycle":4,"workload":"vpr","level":"dyn"}',  # good
        ]
        path.write_text("\n".join(lines) + "\n")
        return path

    def test_bad_lines_become_record_skipped(self, tmp_path):
        events = load_events_jsonl(self._write_mixed_log(tmp_path))
        assert len(events) == 6
        assert events[0] == BurstBegin(1)
        assert events[5] == RunBegin(4, "vpr", "dyn")
        skipped = events[1:5]
        assert all(isinstance(e, RecordSkipped) for e in skipped)
        assert [e.line_no for e in skipped] == [2, 3, 4, 5]
        assert "NoSuchEvent" in skipped[1].reason
        assert "RunBegin" in skipped[2].reason
        assert "object" in skipped[3].reason
        assert skipped[0].snippet == "{truncated"
        assert all(e.cycle == 0 for e in skipped)

    def test_strict_mode_raises_on_first_bad_line(self, tmp_path):
        with pytest.raises(ConfigError, match="line 2|truncated|invalid JSON"):
            load_events_jsonl(self._write_mixed_log(tmp_path), strict=True)

    def test_long_bad_line_snippet_truncated(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text("{" + "x" * 500 + "\n")
        (event,) = load_events_jsonl(path)
        assert isinstance(event, RecordSkipped)
        assert len(event.snippet) == 120

    def test_record_skipped_round_trips_itself(self, tmp_path):
        original = RecordSkipped(cycle=0, line_no=7, reason="why", snippet="{bad")
        assert from_record(original.to_record()) == original
        path = tmp_path / "events.jsonl"
        write_events_jsonl([original], path)
        assert load_events_jsonl(path) == [original]
