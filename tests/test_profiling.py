"""Tests for symbol interning, the temporal profiler, and counter math."""

import pytest

from repro.errors import ConfigError
from repro.ir.instructions import Pc
from repro.profiling import (
    PAPER_COUNTERS,
    PAPER_N_AWAKE,
    PAPER_N_HIBERNATE,
    BurstyCounters,
    DataRef,
    SymbolTable,
    TemporalProfiler,
    overall_sampling_rate,
)


class TestSymbolTable:
    def test_intern_is_stable(self):
        table = SymbolTable()
        pc = Pc("f", 0)
        assert table.intern(pc, 0x10) == table.intern(pc, 0x10)

    def test_distinct_refs_distinct_ids(self):
        table = SymbolTable()
        a = table.intern(Pc("f", 0), 0x10)
        b = table.intern(Pc("f", 0), 0x14)
        c = table.intern(Pc("f", 1), 0x10)
        assert len({a, b, c}) == 3

    def test_lookup_roundtrip(self):
        table = SymbolTable()
        sid = table.intern(Pc("g", 2), 0x20)
        assert table.lookup(sid) == DataRef(Pc("g", 2), 0x20)

    def test_decode(self):
        table = SymbolTable()
        ids = [table.intern(Pc("f", i), i * 4) for i in range(3)]
        refs = table.decode(ids)
        assert [r.addr for r in refs] == [0, 4, 8]

    def test_len_and_contains(self):
        table = SymbolTable()
        table.intern(Pc("f", 0), 0)
        assert len(table) == 1
        assert DataRef(Pc("f", 0), 0) in table
        assert DataRef(Pc("f", 1), 0) not in table


class TestProfiler:
    def test_record_appends_to_grammar(self):
        profiler = TemporalProfiler()
        for k in range(4):
            profiler.record(Pc("f", 0), 0x100 + 4 * (k % 2))
        assert profiler.trace_length == 4
        assert profiler.total_recorded == 4

    def test_reset_keeps_symbols_drops_grammar(self):
        profiler = TemporalProfiler()
        profiler.record(Pc("f", 0), 0x100)
        profiler.reset()
        assert profiler.trace_length == 0
        assert len(profiler.symbols) == 1
        assert profiler.total_recorded == 1

    def test_repeating_pattern_forms_rules(self):
        profiler = TemporalProfiler()
        for _ in range(8):
            profiler.record(Pc("f", 0), 0x100)
            profiler.record(Pc("f", 1), 0x200)
        assert len(profiler.sequitur.rules) > 1


class TestCounters:
    def test_burst_period(self):
        counters = BurstyCounters(90, 10)
        assert counters.burst_period == 100
        assert counters.burst_sampling_rate == pytest.approx(0.1)

    def test_hibernating_preserves_burst_period(self):
        counters = BurstyCounters(90, 10)
        hibernating = counters.hibernating()
        assert hibernating.burst_period == counters.burst_period
        assert hibernating.n_instr0 == 1

    def test_rejects_zero(self):
        with pytest.raises(ConfigError):
            BurstyCounters(0, 10)

    def test_paper_settings_sampling_rate(self):
        """Section 4.1: 0.5% burst rate; 1s of profiling per 50s."""
        assert PAPER_COUNTERS.burst_sampling_rate == pytest.approx(0.005)
        overall = overall_sampling_rate(PAPER_COUNTERS, PAPER_N_AWAKE, PAPER_N_HIBERNATE)
        assert overall == pytest.approx(0.005 * 50 / 2500)

    def test_overall_rate_formula(self):
        counters = BurstyCounters(9900, 100)
        rate = overall_sampling_rate(counters, n_awake=1, n_hibernate=0)
        assert rate == pytest.approx(0.01)

    def test_overall_rate_validates(self):
        with pytest.raises(ConfigError):
            overall_sampling_rate(BurstyCounters(10, 10), 0, 5)
