"""Tests for repro.tracing.attribution: exact cycle accounting.

The headline invariant: at every measurement level, the seven attribution
categories sum *exactly* to the run's cycle count — no rounding, no slack
term.  This is Figure 11's decomposition held to conservation.
"""

from __future__ import annotations

import pytest

from repro.bench.runner import LEVELS, run_workload
from repro.machine.config import PAPER_MACHINE
from repro.tracing.attribution import CATEGORIES, CATEGORY_LABELS, CycleAttribution
from repro.workloads.chainmix import build_chainmix


# Module-scoped copies of the conftest fixtures so one run ladder is shared
# by every test in this file.
@pytest.fixture(scope="module")
def small_params():
    from repro.workloads.chainmix import ChainMixParams

    return ChainMixParams(
        name="small",
        groups=2,
        hot_chains=6,
        cold_chains=20,
        chain_len=9,
        hot_fraction=0.75,
        schedule_len=32,
        passes=8,
        cold_refs_per_step=4,
        cold_array_blocks=64,
        node_compute=1,
        unroll=4,
        seed=7,
    )


@pytest.fixture(scope="module")
def small_opt():
    from repro.analysis.hotstreams import AnalysisConfig
    from repro.core.config import OptimizerConfig
    from repro.profiling.sampling import BurstyCounters

    return OptimizerConfig(
        counters=BurstyCounters(16, 16),
        n_awake=12,
        n_hibernate=48,
        head_len=2,
        analysis=AnalysisConfig(
            heat_ratio=0.002, min_length=4, max_length=64, min_unique=3, max_streams=16
        ),
        max_prefetches=32,
        max_dfsm_states=512,
    )


@pytest.fixture(scope="module")
def runs(small_params, small_opt):
    results = {}
    for level in LEVELS:
        wl = build_chainmix(small_params, passes=8)
        results[level] = run_workload(wl, level, opt=small_opt)
    return results


@pytest.mark.parametrize("level", LEVELS)
def test_attribution_conserves_at_every_level(runs, level):
    result = runs[level]
    att = CycleAttribution.from_run(result.stats, PAPER_MACHINE)
    assert att.total == result.cycles
    assert att.attributed == att.total, (
        f"{level}: attributed {att.attributed} != total {att.total} "
        f"(unattributed {att.unattributed})"
    )
    assert att.conserved
    assert att.unattributed == 0
    # The exact sum, spelled out category by category.
    assert sum(getattr(att, c) for c in CATEGORIES) == result.cycles


def test_orig_charges_no_instrumentation(runs):
    att = CycleAttribution.from_run(runs["orig"].stats, PAPER_MACHINE)
    assert att.check_overhead == 0
    assert att.trace_record == 0
    assert att.dfsm_detect == 0
    assert att.analysis == 0
    assert att.prefetch_issue == 0
    assert att.user_work + att.mem_stall == att.total


def test_base_adds_only_checks(runs):
    att = CycleAttribution.from_run(runs["base"].stats, PAPER_MACHINE)
    assert att.check_overhead > 0
    assert att.trace_record == 0
    assert att.analysis == 0


def test_prof_adds_trace_recording(runs):
    att = CycleAttribution.from_run(runs["prof"].stats, PAPER_MACHINE)
    assert att.trace_record > 0
    assert att.check_overhead > 0


def test_dyn_populates_every_pipeline_category(runs):
    att = CycleAttribution.from_run(runs["dyn"].stats, PAPER_MACHINE)
    assert att.check_overhead > 0
    assert att.trace_record > 0
    assert att.analysis > 0
    assert att.prefetch_issue > 0


def test_trace_charges_counts_every_instrumented_reference(runs):
    # trace_charges is the exact multiplier behind the trace_record category;
    # traced_refs only counts records a telemetry sink consumed, so on a
    # sink-less run it stays 0 while trace_charges does not.
    stats = runs["prof"].stats
    assert stats.trace_charges > 0
    assert stats.traced_refs <= stats.trace_charges


def test_shares_sum_to_one(runs):
    att = CycleAttribution.from_run(runs["dyn"].stats, PAPER_MACHINE)
    assert att.total > 0
    assert sum(att.share(c) for c in CATEGORIES) == pytest.approx(1.0)
    rows = att.rows()
    assert len(rows) == len(CATEGORY_LABELS)
    assert sum(r[1] for r in rows) == att.total


def test_to_dict_round_trips_fields(runs):
    att = CycleAttribution.from_run(runs["dyn"].stats, PAPER_MACHINE)
    data = att.to_dict()
    assert data["total"] == att.total
    for category in CATEGORIES:
        assert data[category] == getattr(att, category)
