"""Tests for the CHECK counter machine and burst listener protocol."""

from repro.interp.interpreter import Interpreter
from repro.ir import ProcedureBuilder, build_program
from repro.machine.config import CacheGeometry, MachineConfig
from repro.machine.memory import Memory
from repro.vulcan.static_edit import instrument_program

MACHINE = MachineConfig(
    l1=CacheGeometry(512, 2), l2=CacheGeometry(4096, 4), l2_latency=10, memory_latency=100
)


def looping_program(iters=200):
    """A loop with one traced load per iteration."""
    b = ProcedureBuilder("main")
    base = b.const(None, 0x1000_0000)
    i = b.const(None, 0)
    n = b.const(None, iters)
    b.label("loop")
    cond = b.lt(None, i, n)
    b.bz(cond, "end")
    b.load(None, base, 0)
    b.addi(i, i, 1)
    b.jmp("loop")
    b.label("end")
    b.ret()
    program, _ = instrument_program(build_program([b], entry="main"))
    return program


class Recorder:
    """Listener that records burst boundaries and optionally mutates state."""

    def __init__(self, interp, charge=0):
        self.interp = interp
        self.charge = charge
        self.begins: list[int] = []
        self.ends: list[int] = []

    def burst_begin(self, now):
        self.begins.append(now)
        return 0

    def burst_end(self, now):
        self.ends.append(now)
        return self.charge


class TestCounterMachine:
    def test_bursts_counted(self):
        program = looping_program(iters=100)
        interp = Interpreter(program, Memory(), MACHINE)
        interp.set_counters(8, 2)  # burst period = 10 checks
        stats = interp.run()
        # ~101 loop checks + 1 entry check -> ~10 full burst periods
        assert stats.bursts >= 9

    def test_listener_sees_matching_boundaries(self):
        program = looping_program(iters=100)
        interp = Interpreter(program, Memory(), MACHINE)
        interp.set_counters(8, 2)
        recorder = Recorder(interp)
        interp.check_listener = recorder
        interp.run()
        assert len(recorder.begins) - len(recorder.ends) in (0, 1)
        assert all(b < e for b, e in zip(recorder.begins, recorder.ends))

    def test_charge_added_to_cycles(self):
        program = looping_program(iters=100)

        def run(charge):
            interp = Interpreter(program, Memory(), MACHINE)
            interp.set_counters(8, 2)
            recorder = Recorder(interp, charge=charge)
            interp.check_listener = recorder
            stats = interp.run()
            return stats, len(recorder.ends)

        base_stats, n_ends = run(0)
        charged_stats, n_ends2 = run(1000)
        assert n_ends == n_ends2
        assert charged_stats.cycles == base_stats.cycles + 1000 * n_ends
        assert charged_stats.charged_cycles == 1000 * n_ends

    def test_tracing_only_in_instrumented_mode(self):
        program = looping_program(iters=100)
        interp = Interpreter(program, Memory(), MACHINE)
        interp.set_counters(8, 2)
        refs = []
        interp.trace_sink = lambda pc, addr: refs.append((pc, addr))
        interp.tracing_enabled = True
        stats = interp.run()
        # 2 instrumented checks per 10-check period -> roughly 20% traced
        assert 0 < stats.traced_refs < stats.memory_refs
        assert len(refs) == stats.traced_refs

    def test_tracing_disabled_records_nothing(self):
        program = looping_program(iters=100)
        interp = Interpreter(program, Memory(), MACHINE)
        interp.set_counters(8, 2)
        refs = []
        interp.trace_sink = lambda pc, addr: refs.append(1)
        interp.tracing_enabled = False
        stats = interp.run()
        assert stats.traced_refs == 0
        assert refs == []

    def test_counter_change_at_burst_end_takes_effect(self):
        """A listener switching to hibernation counters shrinks tracing."""
        program = looping_program(iters=400)

        class Hibernator(Recorder):
            def burst_end(self, now):
                super().burst_end(now)
                # Hibernate: same burst period, nInstr = 1.
                self.interp.set_counters(9, 1)
                self.interp.tracing_enabled = False
                return 0

        interp = Interpreter(program, Memory(), MACHINE)
        interp.set_counters(8, 2)
        interp.tracing_enabled = True
        refs = []
        interp.trace_sink = lambda pc, addr: refs.append(1)
        interp.check_listener = Hibernator(interp)
        stats = interp.run()
        # Only the first burst traces (2 instrumented checks' worth).
        assert stats.traced_refs <= 4

    def test_huge_ncheck_means_base_level(self):
        program = looping_program(iters=100)
        interp = Interpreter(program, Memory(), MACHINE)
        interp.set_counters(1 << 40, 1)
        stats = interp.run()
        assert stats.bursts == 0
        assert stats.checks_executed > 0

    def test_check_cost_accounted(self):
        program = looping_program(iters=100)
        costly = MachineConfig(
            l1=CacheGeometry(512, 2), l2=CacheGeometry(4096, 4),
            l2_latency=10, memory_latency=100, check_cost=7,
        )
        cheap = MachineConfig(
            l1=CacheGeometry(512, 2), l2=CacheGeometry(4096, 4),
            l2_latency=10, memory_latency=100, check_cost=0,
        )
        run_costly = Interpreter(program, Memory(), costly)
        run_costly.set_counters(1 << 40, 1)
        run_cheap = Interpreter(program, Memory(), cheap)
        run_cheap.set_counters(1 << 40, 1)
        s1, s2 = run_costly.run(), run_cheap.run()
        assert s1.cycles - s2.cycles == 7 * s1.checks_executed
