"""Tests for the experiment runner and its measurement levels."""


import pytest

from repro.bench.runner import LEVELS, configure_level, run_workload
from repro.core.config import OptimizerConfig
from repro.errors import ConfigError
from repro.machine.config import CacheGeometry, MachineConfig
from repro.workloads.chainmix import build_chainmix

SMALL_MACHINE = MachineConfig(
    l1=CacheGeometry(512, 2), l2=CacheGeometry(4096, 4), l2_latency=10, memory_latency=100
)


@pytest.fixture
def ladder(small_params, small_opt):
    """Run the full measurement ladder once on the small workload."""
    results = {}
    for level in ("orig", "base", "prof", "hds", "nopref", "seq", "dyn"):
        wl = build_chainmix(small_params, passes=16)
        results[level] = run_workload(wl, level, SMALL_MACHINE, small_opt)
    return results


class TestConfigureLevel:
    def test_prof_disables_analysis(self):
        config = configure_level("prof", OptimizerConfig())
        assert not config.analyze and not config.inject

    def test_hds_analyzes_only(self):
        config = configure_level("hds", OptimizerConfig())
        assert config.analyze and not config.inject

    @pytest.mark.parametrize("level,mode", [("nopref", "nopref"), ("seq", "seq"), ("dyn", "dyn")])
    def test_injecting_levels(self, level, mode):
        config = configure_level(level, OptimizerConfig())
        assert config.inject and config.mode == mode

    def test_orig_has_no_optimizer_config(self):
        with pytest.raises(ConfigError):
            configure_level("orig", OptimizerConfig())


class TestLadder:
    def test_unknown_level_rejected(self, small_params):
        wl = build_chainmix(small_params, passes=2)
        with pytest.raises(ConfigError):
            run_workload(wl, "warp-speed")

    def test_all_levels_execute(self, ladder):
        assert set(ladder) == {"orig", "base", "prof", "hds", "nopref", "seq", "dyn"}
        for result in ladder.values():
            assert result.cycles > 0

    def test_instrumentation_never_changes_results(self, ladder):
        returns = {level: r.stats.return_value for level, r in ladder.items()}
        assert len(set(returns.values())) == 1

    def test_overhead_ladder_ordering(self, ladder):
        """base <= prof <= hds <= nopref in cycles (each adds work)."""
        assert ladder["orig"].cycles < ladder["base"].cycles
        assert ladder["base"].cycles <= ladder["prof"].cycles
        assert ladder["prof"].cycles <= ladder["hds"].cycles
        assert ladder["hds"].cycles <= ladder["nopref"].cycles

    def test_dyn_beats_nopref(self, ladder):
        """Prefetching must recover more than its own matching cost."""
        assert ladder["dyn"].cycles < ladder["nopref"].cycles

    def test_dyn_prefetches_accurately(self, ladder):
        prefetch = ladder["dyn"].hierarchy.prefetch
        assert prefetch.accuracy > 0.9

    def test_seq_prefetches_poorly_on_shuffled_heap(self, ladder):
        dyn = ladder["dyn"].hierarchy.prefetch
        seq = ladder["seq"].hierarchy.prefetch
        assert seq.useful < dyn.useful
        assert seq.wasted > dyn.wasted

    def test_summary_only_for_optimizer_levels(self, ladder):
        assert ladder["orig"].summary is None
        assert ladder["base"].summary is None
        assert ladder["dyn"].summary is not None

    def test_overhead_vs_is_percent(self, ladder):
        overhead = ladder["base"].overhead_vs(ladder["orig"])
        expected = 100 * (ladder["base"].cycles - ladder["orig"].cycles) / ladder["orig"].cycles
        assert overhead == pytest.approx(expected)


class TestHardwareLevels:
    def test_stride_level_runs(self, small_params):
        wl = build_chainmix(small_params, passes=4)
        result = run_workload(wl, "stride", SMALL_MACHINE)
        assert result.summary is None

    def test_markov_level_issues_prefetches(self, small_params):
        wl = build_chainmix(small_params, passes=4)
        result = run_workload(wl, "markov", SMALL_MACHINE)
        assert result.hierarchy.prefetch.issued > 0

    def test_levels_tuple_is_complete(self):
        assert "stride" in LEVELS and "markov" in LEVELS
