"""Live status file: atomic writes, throttling, reader validation, rendering."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigError
from repro.obs.status import (
    STALE_AFTER_S,
    STATUS_NAME,
    StatusWriter,
    read_status,
    render_status,
)


def _doc(state="running", done=False):
    return {
        "plan": "abc123",
        "done": done,
        "eta_s": 12.5,
        "tasks": [
            {
                "index": 0,
                "workload": "vpr",
                "level": "dyn",
                "state": state,
                "attempts": 1,
                "icount": 2_500_000,
                "cycles": 9_100_000,
                "epoch": 3,
                "hit_ewma": 0.84,
                "acc_ewma": 0.87,
            }
        ],
    }


class TestWriter:
    def test_write_and_read_round_trip(self, tmp_path):
        writer = StatusWriter(tmp_path / "run")
        assert writer.write(_doc(), force=True)
        doc = read_status(tmp_path / "run")
        assert doc["plan"] == "abc123"
        assert doc["tasks"][0]["workload"] == "vpr"
        assert "updated_at" in doc

    def test_throttle_skips_then_force_writes(self, tmp_path):
        writer = StatusWriter(tmp_path, min_interval=3600.0)
        assert writer.write(_doc(), force=True)
        assert not writer.write(_doc())  # throttled
        assert writer.write(_doc(done=True), force=True)
        assert read_status(tmp_path)["done"] is True

    def test_no_tmp_file_left_behind(self, tmp_path):
        StatusWriter(tmp_path).write(_doc(), force=True)
        assert [p.name for p in tmp_path.iterdir()] == [STATUS_NAME]

    def test_creates_missing_root(self, tmp_path):
        writer = StatusWriter(tmp_path / "a" / "b")
        writer.write(_doc(), force=True)
        assert read_status(tmp_path / "a" / "b")["plan"] == "abc123"


class TestReader:
    def test_missing_file_is_config_error(self, tmp_path):
        with pytest.raises(ConfigError, match="not a supervised run directory"):
            read_status(tmp_path)

    def test_wrong_format_rejected(self, tmp_path):
        (tmp_path / STATUS_NAME).write_text(json.dumps({"format": 99}))
        with pytest.raises(ConfigError, match="format-1"):
            read_status(tmp_path)

    def test_direct_file_path_accepted(self, tmp_path):
        StatusWriter(tmp_path).write(_doc(), force=True)
        assert read_status(tmp_path / STATUS_NAME)["plan"] == "abc123"


class TestRender:
    def test_running_recent(self, tmp_path):
        StatusWriter(tmp_path).write(_doc(), force=True)
        doc = read_status(tmp_path)
        text = render_status(doc, now=doc["updated_at"] + 1.0)
        assert "running" in text and "likely dead" not in text
        assert "vpr" in text and "2.5M" in text and "9.1M" in text
        assert "eta" in text

    def test_stale_renders_likely_dead(self, tmp_path):
        StatusWriter(tmp_path).write(_doc(), force=True)
        doc = read_status(tmp_path)
        text = render_status(doc, now=doc["updated_at"] + STALE_AFTER_S + 5)
        assert "likely dead" in text

    def test_finished_beats_staleness(self, tmp_path):
        StatusWriter(tmp_path).write(_doc(state="done", done=True), force=True)
        doc = read_status(tmp_path)
        text = render_status(doc, now=doc["updated_at"] + 10_000)
        assert "finished" in text and "likely dead" not in text
        assert "eta" not in text
