"""``ResultStore.gc`` bounds and the generic payload API."""

import os
import time

import pytest

from repro.engine.cache import ResultStore
from repro.errors import ConfigError
from repro.telemetry.events import ResultCacheEvicted
from repro.telemetry.sinks import ListSink


def _bus_with(sink):
    from repro.telemetry.events import EventBus

    bus = EventBus()
    bus.attach(sink)
    return bus


def _seed_entries(store, count, size=1000, mtime=None):
    """Write ``count`` payload entries of roughly ``size`` bytes each."""
    paths = []
    for i in range(count):
        fp = f"{i:02d}" + "ab" * 31
        path = store.store_payload(fp, "test", f"entry{i}", {"blob": "x" * size})
        if mtime is not None:
            os.utime(path, (mtime, mtime))
        paths.append(path)
    return paths


class TestPayloadApi:
    def test_payload_roundtrip(self, tmp_path):
        store = ResultStore(tmp_path)
        payload = {"hello": [1, 2, 3]}
        store.store_payload("ff" * 32, "tenancy", "demo", payload)
        assert store.load_payload("ff" * 32, "tenancy", "demo") == payload
        assert store.hits == 1 and store.stored == 1

    def test_kind_mismatch_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        store.store_payload("ff" * 32, "tenancy", "demo", {"a": 1})
        assert store.load_payload("ff" * 32, "other-kind", "demo") is None
        assert store.misses == 1

    def test_corrupt_payload_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        path = store.store_payload("ff" * 32, "tenancy", "demo", {"a": 1})
        path.write_text("{not json")
        assert store.load_payload("ff" * 32, "tenancy", "demo") is None


class TestGc:
    def test_gc_requires_a_bound(self, tmp_path):
        with pytest.raises(ConfigError, match="max-age-days"):
            ResultStore(tmp_path).gc()

    def test_age_bound_evicts_only_old_entries(self, tmp_path):
        store = ResultStore(tmp_path)
        now = time.time()
        _seed_entries(store, 3, mtime=now - 10 * 86400)  # 10 days old
        fresh = store.store_payload("aa" * 32, "test", "fresh", {"new": True})
        report = store.gc(max_age_days=7, now=now)
        assert report["evicted"] == 3
        assert report["entries"] == 1
        assert fresh.exists()
        assert store.evicted == 3

    def test_size_bound_evicts_oldest_first(self, tmp_path):
        store = ResultStore(tmp_path)
        now = time.time()
        paths = _seed_entries(store, 4, size=4000)
        # Stamp strictly increasing mtimes so "oldest" is well defined.
        for i, path in enumerate(paths):
            os.utime(path, (now - 1000 + i, now - 1000 + i))
        total = sum(p.stat().st_size for p in paths)
        budget_mb = (total - 1) / (1024 * 1024)  # force at least one eviction
        report = store.gc(max_size_mb=budget_mb, now=now)
        assert report["evicted"] == 1
        assert not paths[0].exists()  # the oldest went
        assert all(p.exists() for p in paths[1:])
        assert report["bytes"] <= budget_mb * 1024 * 1024

    def test_gc_emits_telemetry_events(self, tmp_path):
        sink = ListSink()
        store = ResultStore(tmp_path, bus=_bus_with(sink))
        now = time.time()
        _seed_entries(store, 2, mtime=now - 30 * 86400)
        store.gc(max_age_days=1, now=now)
        evicted = [e for e in sink.events if isinstance(e, ResultCacheEvicted)]
        assert len(evicted) == 2
        assert all(e.reason == "age" and e.bytes_freed > 0 for e in evicted)

    def test_gc_to_zero_then_stats_consistent(self, tmp_path):
        store = ResultStore(tmp_path)
        _seed_entries(store, 3)
        report = store.gc(max_size_mb=0)
        assert report["entries"] == 0 and report["bytes"] == 0
        assert store.stats()["entries"] == 0
        assert "evicted" in store.summary_line()

    def test_gc_preserves_replayability_of_survivors(self, tmp_path):
        store = ResultStore(tmp_path)
        now = time.time()
        _seed_entries(store, 2, mtime=now - 30 * 86400)
        keep_fp = "cc" * 32
        store.store_payload(keep_fp, "tenancy", "keep", {"kept": 1})
        store.gc(max_age_days=1, now=now)
        assert store.load_payload(keep_fp, "tenancy", "keep") == {"kept": 1}


class TestEventSerialization:
    def test_evicted_event_roundtrips(self):
        from repro.telemetry.events import from_record

        event = ResultCacheEvicted(cycle=0, fingerprint="ab" * 32, reason="size", bytes_freed=123)
        assert from_record(event.to_record()) == event
