"""Golden trace corpus: checked-in files match fresh runs bit-for-bit."""

import json
from pathlib import Path

import pytest

from repro.errors import OracleError
from repro.oracle import GOLDEN_RUNS, check_corpus, default_golden_dir
from repro.oracle.golden import (
    GoldenRun,
    execute_golden,
    golden_record,
    record_corpus,
    verify_corpus,
)

GOLDEN_DIR = Path(__file__).parent / "golden"


class TestCorpusShape:
    def test_covers_all_seven_workloads_at_both_levels(self):
        cells = {(r.workload, r.level) for r in GOLDEN_RUNS}
        workloads = {r.workload for r in GOLDEN_RUNS}
        assert len(workloads) == 7
        assert "phaseshift" in workloads
        assert all((w, "orig") in cells and (w, "dyn") in cells for w in workloads)

    def test_default_dir_is_this_repo(self):
        assert default_golden_dir() == GOLDEN_DIR

    def test_checked_in_files_are_wellformed_json(self):
        files = sorted(GOLDEN_DIR.glob("*.json"))
        assert len(files) == len(GOLDEN_RUNS)
        for path in files:
            record = json.loads(path.read_text())
            assert record["format"] == 1
            assert record["stats"]["cycles"] > 0


class TestCorpusVerification:
    # One full corpus re-run (~14 simulations); the single slowest oracle test.
    def test_checked_in_corpus_is_current(self):
        check_corpus(GOLDEN_DIR)

    def test_detects_drift(self, tmp_path):
        run = GoldenRun(workload="vortex", level="orig", passes=1)
        record_corpus(tmp_path, runs=(run,))
        path = tmp_path / f"{run.stem}.json"
        record = json.loads(path.read_text())
        record["stats"]["cycles"] += 1
        path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
        failures = verify_corpus(tmp_path, runs=(run,))
        assert len(failures) == 1
        assert "stats.cycles" in failures[0]
        with pytest.raises(OracleError, match="drift"):
            check_corpus(tmp_path, runs=(run,))

    def test_missing_file_reported_not_raised(self, tmp_path):
        run = GoldenRun(workload="vortex", level="orig", passes=1)
        failures = verify_corpus(tmp_path, runs=(run,))
        assert failures and "missing" in failures[0]

    def test_unreadable_file_reported(self, tmp_path):
        run = GoldenRun(workload="vortex", level="orig", passes=1)
        (tmp_path / f"{run.stem}.json").write_text("{not json")
        failures = verify_corpus(tmp_path, runs=(run,))
        assert failures and "unreadable" in failures[0]

    def test_records_are_reproducible(self):
        """Two fresh executions of one cell produce identical records."""
        run = GoldenRun(workload="vortex", level="dyn", passes=1)
        a = golden_record(run, execute_golden(run))
        b = golden_record(run, execute_golden(run))
        assert a == b
        assert "summary" in a  # dyn runs carry the optimizer summary
