"""TenantHierarchy: isolation, attribution, pollution reconciliation."""

import pytest

from repro.machine.config import CacheGeometry, MachineConfig
from repro.machine.hierarchy import MemoryHierarchy
from repro.tenancy import TenantHierarchy, TenantPlan, TenantSpec, run_tenant_plan

TINY = MachineConfig(
    l1=CacheGeometry(512, 2),
    l2=CacheGeometry(4096, 4),
    l2_latency=10,
    memory_latency=100,
)


class TestAddressIsolation:
    @pytest.mark.parametrize("sharing", ["shared", "private-l1"])
    def test_same_address_never_aliases_across_tenants(self, sharing):
        hier = TenantHierarchy(TINY, tenants=2, sharing=sharing)
        hier.activate(0)
        hier.access(0x1000, now=0)
        # Tenant 1 touching the same byte address must miss both levels:
        # the block translation gives it distinct tags.
        hier.activate(1)
        stall = hier.access(0x1000, now=500)
        assert stall == TINY.memory_latency
        assert hier.view(1).l1.hits == 0
        assert hier.view(1).l2.hits == 0

    def test_translation_preserves_set_index(self):
        hier = TenantHierarchy(TINY, tenants=2)
        shift = TINY.block_bytes.bit_length() - 1
        raw = 0x1234
        blocks = []
        for tid in (0, 1):
            hier.activate(tid)
            block = hier.block_of(raw)
            assert hier.owner_of(block) == tid
            # Low block bits (the set index at any power-of-two set count)
            # are untouched by the tenant offset.
            assert block % (1 << 20) == (raw >> shift) % (1 << 20)
            blocks.append(block)
        assert blocks[0] == raw >> shift
        assert blocks[1] == (raw >> shift) + (1 << 40)


class TestSingleTenantMirrors:
    def test_n1_counters_match_plain_hierarchy(self):
        plain = MemoryHierarchy(TINY)
        tenant = TenantHierarchy(TINY, tenants=1, sharing="private-l1")
        now = 0
        for i in range(400):
            addr = (i * 712) % 32768
            s1 = plain.access(addr, now)
            s2 = tenant.access(addr, now)
            assert s1 == s2
            if i % 7 == 0:
                plain.issue_prefetch(addr + 64, now)
                tenant.issue_prefetch(addr + 64, now)
            now += 1 + s1
        plain.finalize(now)
        tenant.finalize(now)
        view = tenant.view(0)
        assert (plain.l1.hits, plain.l1.misses, plain.l1.evictions) == (
            view.l1.hits, view.l1.misses, view.l1.evictions
        )
        assert (plain.l2.hits, plain.l2.misses, plain.l2.evictions) == (
            view.l2.hits, view.l2.misses, view.l2.evictions
        )
        assert plain.prefetch.to_dict() == view.prefetch.to_dict()
        assert plain.demand_accesses == view.demand_accesses


class TestPollutionAccounting:
    @pytest.mark.parametrize("sharing", ["shared", "private-l1"])
    def test_matrix_reconciles_on_real_corun(self, sharing):
        plan = TenantPlan(
            tenants=(
                TenantSpec("vortex", "dyn", passes=1),
                TenantSpec("vpr", "dyn", passes=1),
            ),
            quantum=1024,
            sharing=sharing,
            machine=TINY,
        )
        result = run_tenant_plan(plan)
        assert result.pollution.total() == result.prefetch_shared_evictions
        assert (
            result.demand_shared_evictions + result.prefetch_shared_evictions
            == result.shared_cache_evictions
        )
        # Non-vacuous: this co-run really does pollute across tenants.
        assert result.prefetch_shared_evictions > 0
        assert result.pollution.suffered_by(0) + result.pollution.suffered_by(1) > 0
        # Per-tenant slices sum to the aggregate hierarchy snapshot counts.
        assert sum(t.hierarchy.demand_accesses for t in result.tenants) == sum(
            t.stats.memory_refs for t in result.tenants
        )

    def test_matrix_helpers(self):
        from repro.tenancy import PollutionMatrix

        matrix = PollutionMatrix({(0, 0): 5, (0, 1): 3, (1, 0): 2})
        assert matrix.total() == 10
        assert matrix.self_inflicted(0) == 5
        assert matrix.inflicted_by(0) == 3
        assert matrix.suffered_by(0) == 2
        assert matrix.get(1, 1) == 0


class TestFlush:
    def test_flush_empties_every_tenant_working_set(self):
        hier = TenantHierarchy(TINY, tenants=2, sharing="private-l1")
        for tid in (0, 1):
            hier.activate(tid)
            for i in range(8):
                hier.access(i * 64, now=i)
        hier.flush(now=100)
        for tid in (0, 1):
            hier.activate(tid)
            stall = hier.access(0, now=200)
            assert stall == TINY.memory_latency
