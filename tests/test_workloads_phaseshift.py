"""Tests for the adversarial phase-shift workload (repro.workloads.phaseshift)."""

from dataclasses import replace

import pytest

from repro.bench.runner import run_workload
from repro.errors import ConfigError
from repro.workloads.phaseshift import PhaseShiftParams, build_phaseshift

#: Small-but-representative shape used by every execution test here.
SMALL = PhaseShiftParams(
    chains=6, tail_len=8, steps_per_pass=32, passes=4, flip_every=40, cold_refs_per_step=8,
    cold_array_blocks=256,
)


class TestParams:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"groups": 0},
            {"groups": 9},
            {"chains": 2, "groups": 3},
            {"tail_len": 10, "unroll": 4},
            {"tail_sets": 1},
            {"flip_every": 0},
            {"cold_array_blocks": 100},
        ],
    )
    def test_bad_params_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            PhaseShiftParams(**kwargs)

    def test_derived_sizes(self):
        p = PhaseShiftParams()
        assert p.total_steps == p.passes * p.steps_per_pass
        assert p.node_footprint_bytes == p.chains * (1 + p.tail_sets * p.tail_len) * 32


class TestBuild:
    def test_info_fields(self):
        wl = build_phaseshift(SMALL)
        assert wl.name == "phaseshift"
        for key in ("chains", "tail_len", "tail_sets", "flip_every", "total_steps",
                    "node_footprint_bytes", "cold_array_bytes"):
            assert key in wl.info
        assert wl.args == (SMALL.passes,)

    def test_passes_override(self):
        wl = build_phaseshift(SMALL, passes=2)
        assert wl.args == (2,)

    def test_runs_and_is_deterministic(self):
        a = run_workload(build_phaseshift(SMALL), "orig")
        b = run_workload(build_phaseshift(SMALL), "orig")
        assert a.cycles > 0
        assert a.cycles == b.cycles
        assert a.stats.return_value == b.stats.return_value

    def test_rotation_changes_traversed_values(self):
        """The in-ISA relink visibly rotates the tails the walkers read.

        Tail-set values are distinct per set, so a run that flips must
        accumulate a different total than one whose first flip lies beyond
        the end of the run.
        """
        flipping = run_workload(build_phaseshift(SMALL), "orig")
        static = run_workload(build_phaseshift(replace(SMALL, flip_every=10**9)), "orig")
        assert flipping.stats.return_value != static.stats.return_value

    def test_instrumented_run_matches_orig_result(self):
        """The optimizer must not change program semantics on this workload."""
        orig = run_workload(build_phaseshift(SMALL), "orig")
        dyn = run_workload(build_phaseshift(SMALL), "dyn")
        assert dyn.stats.return_value == orig.stats.return_value
