"""Reference-model unit behaviour and the cache/hierarchy differentials."""

import random

import pytest

from repro.errors import OracleError
from repro.machine.cache import Cache
from repro.machine.config import CacheGeometry, MachineConfig
from repro.machine.hierarchy import MemoryHierarchy
from repro.oracle import (
    RefCache,
    RefHierarchy,
    diff_cache,
    diff_hierarchy,
    gen_cache_ops,
    gen_hierarchy_ops,
)
from repro.oracle.verify import STRESS_GEOMETRY, STRESS_MACHINE

TINY = CacheGeometry(size_bytes=128, associativity=2, block_bytes=32)  # 2 sets


class TestRefCache:
    def test_lru_eviction_order(self):
        ref = RefCache(TINY)
        # Same set (set 0): blocks 0, 2, 4 with 2 ways.
        assert ref.install(0) is None
        assert ref.install(2) is None
        assert ref.install(4) == 0  # LRU victim
        assert ref.evictions == 1
        assert ref.resident_blocks() == {2, 4}

    def test_lookup_promotes_hit(self):
        ref = RefCache(TINY)
        ref.install(0)
        ref.install(2)
        assert ref.lookup(0)  # 0 becomes MRU
        assert ref.install(4) == 2
        assert ref.lru_order(0) == [0, 4]

    def test_lookup_miss_does_not_install(self):
        ref = RefCache(TINY)
        assert not ref.lookup(6)
        assert ref.misses == 1
        assert not ref.contains(6)

    def test_contains_is_silent(self):
        ref = RefCache(TINY)
        ref.install(0)
        ref.install(2)
        assert ref.contains(0)  # must NOT promote
        assert ref.install(4) == 0  # 0 still LRU
        assert ref.hits == 0 and ref.misses == 0

    def test_invalidate_does_not_count_eviction(self):
        ref = RefCache(TINY)
        ref.install(0)
        assert ref.invalidate(0)
        assert not ref.invalidate(0)
        assert ref.evictions == 0

    def test_flush_preserves_counters(self):
        ref = RefCache(TINY)
        ref.lookup(0)
        ref.install(0)
        ref.flush()
        assert ref.resident_blocks() == set()
        assert ref.misses == 1


class TestRefHierarchy:
    def test_prefetch_then_use_is_useful(self):
        hier = RefHierarchy(MachineConfig())
        hier.issue_prefetch(0, now=0)
        stall = hier.access(0, now=1000)  # long after arrival
        assert stall == 0
        assert hier.prefetch.useful == 1

    def test_early_access_is_late_with_residual_stall(self):
        cfg = MachineConfig()
        hier = RefHierarchy(cfg)
        hier.issue_prefetch(0, now=0)
        stall = hier.access(0, now=10)
        assert stall == cfg.memory_latency - 10
        assert hier.prefetch.late == 1

    def test_unused_prefetch_wasted_at_finalize(self):
        hier = RefHierarchy(MachineConfig())
        hier.issue_prefetch(0, now=0)
        hier.finalize()
        assert hier.prefetch.wasted == 1

    def test_resident_prefetch_is_redundant(self):
        hier = RefHierarchy(MachineConfig())
        hier.access(0, now=0)
        hier.issue_prefetch(0, now=1)
        assert hier.prefetch.redundant == 1


class TestDifferential:
    @pytest.mark.parametrize("seed", [0, 1, 2, 1337])
    def test_cache_agrees_on_random_ops(self, seed):
        rng = random.Random(seed)
        for geometry in (TINY, STRESS_GEOMETRY, MachineConfig().l1):
            diff_cache(geometry, gen_cache_ops(rng, 500, geometry))

    @pytest.mark.parametrize("seed", [0, 1, 2, 1337])
    def test_hierarchy_agrees_on_random_ops(self, seed):
        rng = random.Random(seed)
        diff_hierarchy(STRESS_MACHINE, gen_hierarchy_ops(rng, 500, STRESS_MACHINE))

    def test_hierarchy_agrees_with_flush_and_finalize_mixed(self):
        ops = [
            ("prefetch", 0), ("access", 0), ("prefetch", 64), ("flush", 0),
            ("access", 64), ("prefetch", 128), ("finalize", 0), ("access", 128),
        ]
        diff_hierarchy(STRESS_MACHINE, ops)

    def test_planted_cache_bug_is_caught(self):
        """A promoted-on-contains bug must not survive the differential."""

        class BuggyCache(Cache):
            def contains(self, block):
                way = self._sets[block & self._set_mask]
                if block in way:
                    way.remove(block)
                    way.append(block)
                    return True
                return False

        caught = False
        rng = random.Random(3)
        for _ in range(10):
            ops = gen_cache_ops(rng, 400, STRESS_GEOMETRY)
            prod, ref = BuggyCache(STRESS_GEOMETRY), RefCache(STRESS_GEOMETRY)
            try:
                for kind, block in ops:
                    if kind == "flush":
                        prod.flush(); ref.flush(); continue
                    if getattr(prod, kind)(block) != getattr(ref, kind)(block):
                        raise OracleError("return mismatch")
                for s in range(STRESS_GEOMETRY.num_sets):
                    if list(prod._sets[s]) != ref.lru_order(s):
                        raise OracleError("order mismatch")
            except OracleError:
                caught = True
                break
        assert caught, "differential failed to flag the planted LRU bug"

    def test_planted_hierarchy_bug_is_caught(self):
        """Mis-charging late prefetches as useful must be flagged."""

        class BuggyHierarchy(MemoryHierarchy):
            def access(self, addr, now):
                block = addr >> self._block_shift
                if block in self._inflight:
                    # Planted bug: pretend every in-flight block already arrived.
                    self._inflight[block] = now
                return super().access(addr, now)

        cfg = STRESS_MACHINE
        prod, ref = BuggyHierarchy(cfg), RefHierarchy(cfg)
        prod.issue_prefetch(0, 0)
        ref.issue_prefetch(0, 0)
        assert prod.access(0, 5) != ref.access(0, 5)
