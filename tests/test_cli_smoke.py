"""Smoke tests: every ``repro-bench`` subcommand starts, helps and exits 0.

Heavier artifacts run with one workload at tiny scale; the point is that the
wiring (argument parsing, dispatch, output plumbing) works for every entry
in the choices list, not that the numbers are interesting.
"""

from __future__ import annotations

import pytest

from repro.bench.cli import main as cli_main

ARTIFACTS = [
    "figure4",
    "table1",
    "figure8",
    "figure11",
    "figure12",
    "table2",
    "ablation-headlen",
    "ablation-hwpref",
    "ablation-watchdog",
    "tables",
    "figures",
    "trace",
    "explain",
    "verify",
    "cache",
    "all",
]

#: minimal invocation per artifact (beyond the artifact name itself)
_EXTRA_ARGS = {
    "figure11": ["--workloads", "vortex", "--scale", "0.05"],
    "figure12": ["--workloads", "vortex", "--scale", "0.05"],
    "table2": ["--workloads", "vortex", "--scale", "0.05"],
    "ablation-headlen": ["--workloads", "vortex", "--scale", "0.05"],
    "ablation-hwpref": ["--workloads", "vortex", "--scale", "0.05"],
    "ablation-watchdog": ["--scale", "0.05"],
    "figures": ["--workloads", "vortex", "--scale", "0.05"],
    "trace": ["--workloads", "vortex", "--scale", "0.05"],
    "explain": ["--workloads", "vortex", "--scale", "0.05"],
    "verify": ["--runs", "1", "--skip-golden"],
    "all": ["--workloads", "vortex", "--scale", "0.05"],
}


def test_parser_help_exits_zero(capsys):
    with pytest.raises(SystemExit) as excinfo:
        cli_main(["--help"])
    assert excinfo.value.code == 0
    out = capsys.readouterr().out
    for artifact in ARTIFACTS:
        assert artifact in out


@pytest.mark.parametrize("artifact", ARTIFACTS)
def test_minimal_invocation_exits_zero(artifact, tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)  # trace writes its default output file here
    args = [artifact] + _EXTRA_ARGS.get(artifact, [])
    assert cli_main(args) == 0
    assert capsys.readouterr().out


def test_unknown_artifact_rejected(capsys):
    with pytest.raises(SystemExit) as excinfo:
        cli_main(["figure99"])
    assert excinfo.value.code == 2


def test_trace_unknown_level_rejected(capsys):
    with pytest.raises(SystemExit) as excinfo:
        cli_main(["trace", "--level", "warp9"])
    assert excinfo.value.code == 2
    assert "unknown level" in capsys.readouterr().err


def test_explain_stream_needs_single_workload(capsys):
    with pytest.raises(SystemExit) as excinfo:
        cli_main(["explain", "--stream", "s1", "--scale", "0.05"])
    assert excinfo.value.code == 2
    assert "single workload" in capsys.readouterr().err
