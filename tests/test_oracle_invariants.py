"""Metamorphic whole-run invariants (conservation, observer effect, relabel)."""

import random

import pytest

from repro.bench.runner import run_workload
from repro.errors import OracleError
from repro.oracle import (
    check_architectural_state,
    check_conservation,
    check_cycle_attribution,
    check_disabled_resilience_identical,
    check_observer_effect,
    check_relabel_invariance,
    check_tracing_observer_effect,
    relabel_stride,
    run_fingerprint,
)
from repro.oracle.fuzz import gen_hierarchy_ops
from repro.oracle.verify import STRESS_MACHINE
from repro.workloads.chainmix import build_chainmix


@pytest.fixture
def factory(small_params):
    return lambda: build_chainmix(small_params)


class TestConservation:
    @pytest.mark.parametrize("level", ["orig", "prof", "dyn"])
    def test_holds_on_small_runs(self, factory, tiny_machine, small_opt, level):
        result = run_workload(factory(), level, machine=tiny_machine, opt=small_opt)
        check_conservation(result)

    def test_detects_tampered_counters(self, factory, tiny_machine, small_opt):
        result = run_workload(factory(), "dyn", machine=tiny_machine, opt=small_opt)
        result.hierarchy.prefetch.issued += 1
        with pytest.raises(OracleError, match="not conserved"):
            check_conservation(result)


class TestBitIdenticalToggles:
    def test_observer_effect(self, factory, tiny_machine, small_opt):
        check_observer_effect(factory, machine=tiny_machine, opt=small_opt)

    def test_inert_fault_plan(self, factory, tiny_machine, small_opt):
        check_disabled_resilience_identical(factory, machine=tiny_machine, opt=small_opt)

    def test_architectural_state_preserved(self, factory, tiny_machine, small_opt):
        check_architectural_state(factory, machine=tiny_machine, opt=small_opt)

    def test_fingerprint_covers_caches_and_prefetch(self, factory, tiny_machine, small_opt):
        fp = run_fingerprint(run_workload(factory(), "dyn", machine=tiny_machine, opt=small_opt))
        for key in ("cycles", "l1.hits", "l2.misses", "issued", "useful", "return_value"):
            assert key in fp

    def test_tracing_observer_effect(self, factory, tiny_machine, small_opt):
        check_tracing_observer_effect(factory, machine=tiny_machine, opt=small_opt)


class TestCycleAttribution:
    @pytest.mark.parametrize("level", ["orig", "base", "prof", "dyn"])
    def test_holds_on_small_runs(self, factory, tiny_machine, small_opt, level):
        result = run_workload(factory(), level, machine=tiny_machine, opt=small_opt)
        check_cycle_attribution(result, machine=tiny_machine)

    def test_detects_tampered_counters(self, factory, tiny_machine, small_opt):
        result = run_workload(factory(), "dyn", machine=tiny_machine, opt=small_opt)
        result.stats.trace_charges += 1
        with pytest.raises(OracleError, match="not conserved"):
            check_cycle_attribution(result, machine=tiny_machine)


class TestRelabelInvariance:
    def test_stride_preserves_both_set_mappings(self):
        stride = relabel_stride(STRESS_MACHINE)
        block = stride // STRESS_MACHINE.block_bytes
        assert block % STRESS_MACHINE.l1.num_sets == 0
        assert block % STRESS_MACHINE.l2.num_sets == 0

    @pytest.mark.parametrize("seed", [0, 11, 23])
    def test_random_traces_invariant(self, seed):
        rng = random.Random(seed)
        ops = gen_hierarchy_ops(rng, 300, STRESS_MACHINE)
        check_relabel_invariance(STRESS_MACHINE, ops)

    def test_non_stride_shift_actually_matters(self):
        """Sanity check that the invariant is not vacuous: a half-block shift
        re-partitions addresses into blocks and CAN change behaviour, so
        agreement under stride shifts is a real statement, not a tautology
        that holds for every offset."""
        rng = random.Random(4)
        misaligned = STRESS_MACHINE.block_bytes // 2
        found_difference = False
        for _ in range(20):
            ops = gen_hierarchy_ops(rng, 300, STRESS_MACHINE)

            def stalls(offset):
                from repro.machine.hierarchy import MemoryHierarchy

                hier = MemoryHierarchy(STRESS_MACHINE)
                now, out = 0, []
                for kind, addr in ops:
                    now += 1
                    if kind == "access":
                        s = hier.access(addr + offset, now)
                        out.append(s)
                        now += s
                    elif kind == "prefetch":
                        hier.issue_prefetch(addr + offset, now)
                    elif kind == "flush":
                        hier.flush(now)
                    else:
                        hier.finalize(now)
                return out

            if stalls(0) != stalls(misaligned):
                found_difference = True
                break
        assert found_difference, "half-block shifts never changed anything; invariant vacuous?"
