"""Tests for the chain-mix workload generator and the six presets."""

import pytest

from repro.errors import ConfigError
from repro.interp.interpreter import Interpreter
from repro.workloads import presets
from repro.workloads.chainmix import (
    NODE_BYTES,
    NODE_NEXT_OFF,
    NODE_VAL_OFF,
    SCHED_ENTRY_BYTES,
    ChainMixParams,
    build_chainmix,
)


class TestParamsValidation:
    def test_valid_defaults(self, small_params):
        assert small_params.total_chains == 26

    def test_chain_len_must_fit_peel_and_unroll(self):
        with pytest.raises(ConfigError):
            ChainMixParams(name="x", chain_len=10, unroll=4)

    def test_groups_bounded_by_pointer_bits(self):
        with pytest.raises(ConfigError):
            ChainMixParams(name="x", groups=64)

    def test_cold_array_power_of_two(self):
        with pytest.raises(ConfigError):
            ChainMixParams(name="x", cold_array_blocks=1000)

    def test_hot_fraction_range(self):
        with pytest.raises(ConfigError):
            ChainMixParams(name="x", hot_fraction=1.5)

    def test_no_cold_chains_requires_full_hot(self):
        with pytest.raises(ConfigError):
            ChainMixParams(name="x", cold_chains=0, hot_fraction=0.5)

    def test_hot_eighths_quantization(self):
        assert ChainMixParams(name="x", hot_fraction=0.75).hot_eighths == 6
        assert ChainMixParams(name="x", hot_fraction=1.0, cold_chains=0).hot_eighths == 8


class TestBuild:
    def test_build_is_deterministic(self, small_params):
        a = build_chainmix(small_params)
        b = build_chainmix(small_params)
        assert a.memory._words == b.memory._words
        assert a.args == b.args

    def test_info_footprints(self, small_params):
        wl = build_chainmix(small_params)
        expected = small_params.total_chains * small_params.chain_len * NODE_BYTES
        assert wl.info["node_footprint_bytes"] == expected

    def test_chains_linked_and_terminated(self, small_params):
        wl = build_chainmix(small_params)
        mem = wl.memory
        # Recover slot 0's head from the schedule (static region).
        from repro.machine.memory import STATIC_BASE
        tagged = mem.load(STATIC_BASE)
        head = tagged & ~(NODE_BYTES - 1)
        node, hops = head, 0
        while node and hops < small_params.chain_len + 1:
            node = mem.load(node + NODE_NEXT_OFF)
            hops += 1
        assert hops == small_params.chain_len

    def test_nodes_block_aligned(self, small_params):
        wl = build_chainmix(small_params)
        from repro.machine.memory import STATIC_BASE
        for slot in range(small_params.total_chains):
            tagged = wl.memory.load(STATIC_BASE + slot * SCHED_ENTRY_BYTES)
            head = tagged & ~(NODE_BYTES - 1)
            assert head % NODE_BYTES == 0

    def test_group_tags_valid(self, small_params):
        wl = build_chainmix(small_params)
        from repro.machine.memory import STATIC_BASE
        for slot in range(small_params.total_chains):
            tagged = wl.memory.load(STATIC_BASE + slot * SCHED_ENTRY_BYTES)
            assert 0 <= (tagged & (NODE_BYTES - 1)) < small_params.groups

    def test_sequential_alloc_orders_nodes(self, small_params):
        import dataclasses

        params = dataclasses.replace(small_params, sequential_alloc=True)
        wl = build_chainmix(params)
        from repro.machine.memory import STATIC_BASE
        tagged = wl.memory.load(STATIC_BASE)
        head = tagged & ~(NODE_BYTES - 1)
        nxt = wl.memory.load(head + NODE_NEXT_OFF)
        assert nxt == head + NODE_BYTES

    def test_shuffled_alloc_is_not_sequential(self, small_params):
        wl = build_chainmix(small_params)
        from repro.machine.memory import STATIC_BASE
        sequential = 0
        for slot in range(small_params.total_chains):
            tagged = wl.memory.load(STATIC_BASE + slot * SCHED_ENTRY_BYTES)
            head = tagged & ~(NODE_BYTES - 1)
            if wl.memory.load(head + NODE_NEXT_OFF) == head + NODE_BYTES:
                sequential += 1
        assert sequential < small_params.total_chains // 2

    def test_passes_override(self, small_params):
        wl = build_chainmix(small_params, passes=3)
        assert wl.args == (3,)

    def test_program_executes_and_touches_chains(self, small_params):
        wl = build_chainmix(small_params, passes=2)
        interp = Interpreter(wl.program, wl.memory)
        stats = interp.run(wl.args)
        steps = 2 * small_params.schedule_len
        # At least one chain traversal's worth of refs per step.
        assert stats.memory_refs > steps * small_params.chain_len

    def test_node_values_summed(self, small_params):
        wl = build_chainmix(small_params, passes=1)
        interp = Interpreter(wl.program, wl.memory)
        stats = interp.run(wl.args)
        assert stats.return_value != 0


class TestPresets:
    def test_names_match_paper_order(self):
        assert presets.names() == ["vpr", "mcf", "twolf", "parser", "vortex", "boxsim"]

    @pytest.mark.parametrize("name", ["vpr", "mcf", "twolf", "parser", "vortex", "boxsim"])
    def test_presets_build(self, name):
        wl = presets.build(name, passes=1)
        assert wl.name == name
        assert wl.program.resolve("main") is not None

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            presets.build("gcc")

    def test_parser_is_the_sequential_one(self):
        assert presets.PARSER.sequential_alloc
        assert not presets.VPR.sequential_alloc

    def test_hot_chain_counts_follow_table2(self):
        counts = {p.name: p.hot_chains for p in presets.ALL_PARAMS}
        assert counts == {
            "vpr": 41, "mcf": 37, "twolf": 25, "parser": 21, "vortex": 14, "boxsim": 23,
        }

    def test_footprints_exceed_l2(self):
        """Every preset's chain population overflows the 256 KB L2."""
        for params in presets.ALL_PARAMS:
            assert params.node_footprint_bytes > 256 * 1024
