"""Chunked streaming trace format: sealing, loading, crash tolerance.

The load-side contract is adversarial: flip or truncate ANY byte of the
last sealed chunk (or the manifest) and the loader must return the valid
prefix — never raise, never silently accept the corruption.  The property
tests below literally iterate every byte position of a small directory.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.obs.chunks import (
    ChunkWriter,
    MANIFEST_NAME,
    chunk_name,
    is_chunk_dir,
    load_chunk_events,
    load_chunks,
)
from repro.telemetry.events import RunBegin


def _records(n):
    return [{"kind": "RunBegin", "cycle": i, "workload": f"w{i}", "level": "dyn"} for i in range(n)]


def _write_dir(root, n=20, max_records=5, close=True, summary=None):
    writer = ChunkWriter(root, max_records=max_records)
    for record in _records(n):
        writer.append(record)
    if summary is not None:
        writer.note_summary(summary)
    if close:
        writer.close()
    return writer


class TestRoundTrip:
    def test_records_round_trip_in_order(self, tmp_path):
        _write_dir(tmp_path / "c", n=23, max_records=5)
        load = load_chunks(tmp_path / "c")
        assert load.records == _records(23)
        assert load.complete and load.ok
        assert load.chunks == 5  # 4 full seals + the tail seal on close

    def test_summary_documents_survive(self, tmp_path):
        doc = {"workload": "vpr", "level": "dyn", "cycles": 7}
        _write_dir(tmp_path / "c", n=3, summary=doc)
        load = load_chunks(tmp_path / "c")
        assert load.summaries == [doc]

    def test_typed_event_view(self, tmp_path):
        _write_dir(tmp_path / "c", n=4)
        events, load = load_chunk_events(tmp_path / "c")
        assert load.complete
        assert all(isinstance(e, RunBegin) for e in events)
        assert [e.cycle for e in events] == [0, 1, 2, 3]

    def test_append_once_refuses_existing_manifest(self, tmp_path):
        _write_dir(tmp_path / "c", n=1)
        with pytest.raises(ConfigError, match="already holds a manifest"):
            ChunkWriter(tmp_path / "c")

    def test_missing_manifest_is_a_usage_error(self, tmp_path):
        with pytest.raises(ConfigError, match="not a chunk directory"):
            load_chunks(tmp_path)
        assert not is_chunk_dir(tmp_path)

    def test_close_is_idempotent(self, tmp_path):
        writer = _write_dir(tmp_path / "c", n=2, close=False)
        writer.close()
        writer.close()
        assert load_chunks(tmp_path / "c").complete

    def test_concatenated_chunks_match_jsonl_serialization(self, tmp_path):
        _write_dir(tmp_path / "c", n=11, max_records=3)
        data = b"".join(
            path.read_bytes() for path in sorted((tmp_path / "c").glob("chunk-*.jsonl"))
        )
        expected = b"".join(
            (json.dumps(r, separators=(",", ":")) + "\n").encode() for r in _records(11)
        )
        assert data == expected


class TestCrashTolerance:
    """A SIGKILL leaves a valid prefix; tampering never loads silently."""

    def test_unsealed_buffer_is_simply_absent(self, tmp_path):
        writer = _write_dir(tmp_path / "c", n=13, max_records=5, close=False)
        # Simulate SIGKILL: drop the writer without seal/close.
        del writer
        load = load_chunks(tmp_path / "c")
        assert load.records == _records(10)  # two sealed chunks survive
        assert load.ok and not load.complete

    def test_torn_part_file_is_ignored(self, tmp_path):
        _write_dir(tmp_path / "c", n=10, max_records=5)
        (tmp_path / "c" / (chunk_name(99) + ".part")).write_bytes(b"torn garbage")
        load = load_chunks(tmp_path / "c")
        assert load.complete and load.records == _records(10)

    def test_flip_any_byte_of_last_chunk(self, tmp_path):
        _write_dir(tmp_path / "c", n=10, max_records=5)
        last = tmp_path / "c" / chunk_name(1)
        pristine = last.read_bytes()
        for pos in range(len(pristine)):
            corrupt = bytearray(pristine)
            corrupt[pos] ^= 0xFF
            last.write_bytes(bytes(corrupt))
            load = load_chunks(tmp_path / "c")  # must not raise
            assert load.records == _records(5), f"flip at byte {pos} not detected"
            assert load.dropped == 1 and not load.complete
            assert "chunk-00000001" in load.notes[0]
        last.write_bytes(pristine)
        assert load_chunks(tmp_path / "c").complete

    def test_truncate_last_chunk_at_any_length(self, tmp_path):
        _write_dir(tmp_path / "c", n=10, max_records=5)
        last = tmp_path / "c" / chunk_name(1)
        pristine = last.read_bytes()
        for cut in range(len(pristine)):
            last.write_bytes(pristine[:cut])
            load = load_chunks(tmp_path / "c")
            assert load.records == _records(5), f"truncation to {cut} bytes not detected"
            assert load.dropped == 1

    def test_truncate_manifest_at_any_length(self, tmp_path):
        _write_dir(tmp_path / "c", n=10, max_records=5)
        manifest = tmp_path / "c" / MANIFEST_NAME
        pristine = manifest.read_bytes()
        for cut in range(len(pristine)):
            manifest.write_bytes(pristine[:cut])
            load = load_chunks(tmp_path / "c")  # must not raise
            # Whatever loads must be a prefix of the written records.
            assert load.records == _records(len(load.records))
            assert len(load.records) in (0, 5, 10)
        manifest.write_bytes(pristine)

    def test_deleted_chunk_file_ends_prefix(self, tmp_path):
        _write_dir(tmp_path / "c", n=15, max_records=5)
        (tmp_path / "c" / chunk_name(1)).unlink()
        load = load_chunks(tmp_path / "c")
        assert load.records == _records(5)
        assert load.dropped == 1 and "missing" in load.notes[0]


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(min_value=0, max_value=60),
    max_records=st.integers(min_value=1, max_value=9),
    payload=st.text(max_size=12),
)
def test_round_trip_property(tmp_path_factory, n, max_records, payload):
    root = tmp_path_factory.mktemp("chunks") / "c"
    writer = ChunkWriter(root, max_records=max_records)
    records = [{"kind": "x", "i": i, "payload": payload} for i in range(n)]
    for record in records:
        writer.append(record)
    writer.close()
    load = load_chunks(root)
    assert load.records == records
    assert load.complete and load.ok
