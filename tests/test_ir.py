"""Tests for the instruction set, builder DSL, program containers."""

import pytest

from repro.errors import EditError, IRError
from repro.ir import (
    Alu,
    Check,
    Cmp,
    Jmp,
    Load,
    Pc,
    ProcedureBuilder,
    Program,
    Store,
    build_program,
    format_instr,
    format_procedure,
)


def simple_proc(name="f", ret_value=7):
    b = ProcedureBuilder(name)
    r = b.const(None, ret_value)
    b.ret(r)
    return b.build()


class TestInstructions:
    def test_alu_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            Alu("pow", 0, 1, 2)

    def test_cmp_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            Cmp("almost", 0, 1, 2)

    def test_structural_equality(self):
        pc = Pc("f", 0)
        assert Load(0, 1, 4, pc) == Load(0, 1, 4, pc)
        assert Load(0, 1, 4, pc) != Load(0, 1, 8, pc)
        assert Load(0, 1, 4, pc) != Store(0, 1, 4, pc)

    def test_pc_str(self):
        assert str(Pc("walk", 3)) == "walk:3"


class TestBuilder:
    def test_params_get_first_registers(self):
        b = ProcedureBuilder("f", params=("x", "y"))
        assert b.param("x") == 0
        assert b.param("y") == 1

    def test_param_lookup_rejects_non_params(self):
        b = ProcedureBuilder("f", params=("x",))
        b.reg("t")
        with pytest.raises(IRError):
            b.param("t")

    def test_auto_register_allocation(self):
        b = ProcedureBuilder("f")
        r1 = b.const(None, 1)
        r2 = b.const(None, 2)
        assert r1 != r2

    def test_named_register_reuse(self):
        b = ProcedureBuilder("f")
        assert b.reg("acc") == b.reg("acc")

    def test_pcs_assigned_in_emission_order(self):
        b = ProcedureBuilder("f", params=("p",))
        b.load(None, b.param("p"), 0)
        b.store(b.param("p"), b.param("p"), 4)
        b.load(None, b.param("p"), 8)
        b.ret()
        proc = b.build()
        assert proc.pcs() == [Pc("f", 0), Pc("f", 1), Pc("f", 2)]

    def test_duplicate_label_rejected(self):
        b = ProcedureBuilder("f")
        b.label("x")
        with pytest.raises(IRError):
            b.label("x")

    def test_build_finalizes(self):
        b = ProcedureBuilder("f")
        b.ret()
        b.build()
        with pytest.raises(IRError):
            b.ret()

    def test_convenience_ops_return_dst(self):
        b = ProcedureBuilder("f")
        a = b.const(None, 1)
        c = b.add(None, a, a)
        d = b.lt(None, a, c)
        assert c != d
        b.ret(d)
        proc = b.build()
        assert proc.num_regs == 3


class TestValidation:
    def test_undefined_label(self):
        b = ProcedureBuilder("f")
        b.jmp("nowhere")
        with pytest.raises(IRError, match="nowhere"):
            build_program([b], entry="f")

    def test_fall_off_end(self):
        b = ProcedureBuilder("f")
        b.const(None, 1)
        with pytest.raises(IRError, match="fall off"):
            build_program([b], entry="f")

    def test_call_to_undefined_procedure(self):
        b = ProcedureBuilder("f")
        b.call(None, "ghost", ())
        b.ret()
        with pytest.raises(IRError, match="ghost"):
            build_program([b], entry="f")

    def test_call_arity_mismatch(self):
        callee = ProcedureBuilder("g", params=("a", "b"))
        callee.ret(callee.param("a"))
        b = ProcedureBuilder("f")
        r = b.const(None, 1)
        b.call(None, "g", (r,))
        b.ret()
        with pytest.raises(IRError, match="takes 2 args"):
            build_program([b, callee], entry="f")

    def test_missing_entry(self):
        with pytest.raises(IRError, match="entry"):
            build_program([simple_proc("f")], entry="main")

    def test_duplicate_procedure_names(self):
        with pytest.raises(IRError, match="duplicate"):
            Program([simple_proc("f"), simple_proc("f")], entry="f")

    def test_empty_body_rejected(self):
        with pytest.raises(IRError, match="empty"):
            build_program([ProcedureBuilder("f")], entry="f")


class TestProgram:
    def test_resolve_follows_patch(self):
        prog = build_program([simple_proc("f", 1)], entry="f")
        replacement = simple_proc("f", 2)
        prog.patch("f", replacement)
        assert prog.resolve("f") is replacement
        assert prog.original("f") is not replacement

    def test_unpatch(self):
        prog = build_program([simple_proc("f")], entry="f")
        prog.patch("f", simple_proc("f", 9))
        prog.unpatch("f")
        assert prog.resolve("f") is prog.original("f")

    def test_patch_unknown_name_rejected(self):
        prog = build_program([simple_proc("f")], entry="f")
        with pytest.raises(EditError):
            prog.patch("ghost", simple_proc("ghost"))

    def test_resolve_unknown_raises(self):
        prog = build_program([simple_proc("f")], entry="f")
        with pytest.raises(IRError):
            prog.resolve("ghost")


class TestPrinter:
    def test_format_instr_covers_all_shapes(self):
        pc = Pc("f", 0)
        samples = [
            Load(0, 1, 4, pc),
            Store(0, 1, 4, pc, traced=True),
            Jmp("loop"),
            Check(backedge=True),
        ]
        rendered = [format_instr(i) for i in samples]
        assert "pc=f:0" in rendered[0]
        assert "[traced]" in rendered[1]
        assert rendered[2] == "jmp loop"
        assert "backedge" in rendered[3]

    def test_format_procedure_includes_labels(self):
        b = ProcedureBuilder("f")
        b.label("top")
        b.const(None, 0)
        b.jmp("top")
        proc = b.build()
        text = format_procedure(proc)
        assert "top:" in text
        assert "proc f" in text
