"""Per-procedure cycle attribution: exactness, engine parity, durability.

The per-proc split is held to the same standard as the 7-category totals:
column sums must equal :class:`CycleAttribution` exactly (no cycle lost or
double-charged), and the compiled fastpath kernel must produce the very
same rows as the reference dispatch loop.
"""

from __future__ import annotations

import pickle

import pytest

from repro.engine.levels import execute_workload
from repro.engine.spec import RunSpec
from repro.machine.config import PAPER_MACHINE
from repro.telemetry.session import TelemetrySession
from repro.telemetry.sinks import ListSink
from repro.tracing.attribution import (
    CycleAttribution,
    ProcAttrRecorder,
    ProcAttribution,
)


def _run(spec, fast=False):
    session = TelemetrySession(sinks=[ListSink()], proc_attribution=True)
    result = execute_workload(
        spec.build(), spec.level, spec.machine, spec.opt, telemetry=session, fast=fast
    )
    assert session.proc_attr is not None
    return result, ProcAttribution.from_recorder(session.proc_attr, spec.machine)


@pytest.mark.parametrize("level", ["orig", "base", "hds", "dyn"])
def test_per_proc_sums_equal_run_attribution(level):
    spec = RunSpec("vortex", level, passes=1)
    result, rows = _run(spec)
    totals = CycleAttribution.from_run(result.stats, spec.machine).to_dict()
    assert rows.totals() == totals


def test_reference_and_fastpath_rows_identical():
    spec = RunSpec("vortex", "dyn", passes=1)
    _, reference = _run(spec, fast=False)
    _, compiled = _run(spec, fast=True)
    assert reference.to_dict() == compiled.to_dict()


def test_rows_sorted_by_descending_cycles():
    _, rows = _run(RunSpec("vortex", "dyn", passes=1))
    cycles = [att.total for _, att in rows.rows]
    assert cycles == sorted(cycles, reverse=True)
    assert len(rows.rows) > 1  # the split is not vacuous


def test_attribution_round_trips_through_dict():
    _, rows = _run(RunSpec("vortex", "dyn", passes=1))
    assert ProcAttribution.from_dict(rows.to_dict()).to_dict() == rows.to_dict()


def test_recorder_survives_pickling():
    """Checkpointed interpreters carry the recorder across resume."""
    recorder = ProcAttrRecorder()
    recorder.charge("walk0", 10, 20, 1, 2, 3, 4, 5)
    recorder.charge("walk1", 15, 25, 2, 3, 4, 5, 6)
    clone = pickle.loads(pickle.dumps(recorder))
    assert clone.rows == recorder.rows
    rows = ProcAttribution.from_recorder(clone, PAPER_MACHINE)
    assert {name for name, _ in rows.rows} == {"walk0", "walk1"}


def test_disabled_session_records_nothing():
    spec = RunSpec("vortex", "dyn", passes=1)
    session = TelemetrySession(sinks=[ListSink()])
    execute_workload(spec.build(), spec.level, spec.machine, spec.opt, telemetry=session)
    assert session.proc_attr is None
