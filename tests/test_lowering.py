"""Tests for IR-to-tuple lowering and its caching behaviour."""

import pytest

from repro.errors import IRError
from repro.interp.lowering import (
    OP_CHECK,
    OP_JMP,
    OP_LOAD,
    lower_body,
    lower_procedure,
)
from repro.ir import ProcedureBuilder
from repro.ir.instructions import Instr
from repro.vulcan.static_edit import instrument_procedure


def sample_proc():
    b = ProcedureBuilder("f", params=("p",))
    b.label("top")
    v = b.load(None, b.param("p"), 4)
    b.add(v, v, v)
    b.jmp("top")
    return b.build()


class TestLowerBody:
    def test_labels_resolved_to_indices(self):
        proc = sample_proc()
        code = lower_body(proc.body, proc.labels, proc.name)
        jmp = code[-1]
        assert jmp[0] == OP_JMP
        assert jmp[1] == 0

    def test_load_tuple_shape(self):
        proc = sample_proc()
        code = lower_body(proc.body, proc.labels, proc.name)
        load = code[0]
        assert load[0] == OP_LOAD
        # (op, dst, base, offset, pc, traced, detect)
        assert load[3] == 4
        assert load[5] is False
        assert load[6] is None

    def test_alu_kinds_become_callables(self):
        proc = sample_proc()
        code = lower_body(proc.body, proc.labels, proc.name)
        alu = code[1]
        assert callable(alu[1])
        assert alu[1](2, 3) == 5

    def test_unknown_instruction_rejected(self):
        class Alien(Instr):
            op = "alien"

        with pytest.raises(IRError, match="cannot lower"):
            lower_body([Alien()], {}, "f")


class TestLowerProcedure:
    def test_cache_returns_same_object(self):
        proc = sample_proc()
        assert lower_procedure(proc) is lower_procedure(proc)

    def test_uninstrumented_shares_both_versions(self):
        proc = sample_proc()
        checking, instrumented = lower_procedure(proc)
        assert checking is instrumented

    def test_instrumented_versions_differ_only_in_tracing(self):
        proc, _, _ = instrument_procedure(sample_proc())
        checking, instrumented = lower_procedure(proc)
        assert checking is not instrumented
        assert len(checking) == len(instrumented)
        for a, b in zip(checking, instrumented):
            if a[0] == OP_LOAD:
                assert a[5] is False and b[5] is True
            elif a[0] == OP_CHECK:
                assert a == b

    def test_mismatched_version_lengths_rejected(self):
        proc = sample_proc()
        proc.instrumented_body = proc.body[:-1]
        with pytest.raises(IRError, match="differ in length"):
            lower_procedure(proc)
