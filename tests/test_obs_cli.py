"""CLI surface of the observability stack: status, --stream, --from, --by-proc.

Chunk directories and monolithic trace JSONs must be interchangeable inputs
to ``trace --from`` and ``explain --from``; ``status`` must work on live,
finished and dead runs (here: a synthetic status file).
"""

from __future__ import annotations

import json

import pytest

from repro.bench.cli import main as cli_main
from repro.obs.chunks import load_chunks
from repro.obs.status import StatusWriter

_FAST = ["--workloads", "vortex", "--scale", "0.05"]


def _task(state="done"):
    return {
        "index": 0,
        "workload": "vortex",
        "level": "dyn",
        "state": state,
        "attempts": 0,
        "icount": 1000,
        "cycles": 4000,
        "epoch": 1,
        "hit_ewma": 0.5,
        "acc_ewma": 0.5,
    }


class TestStatus:
    def test_status_renders_run_dir(self, tmp_path, capsys):
        StatusWriter(tmp_path).write(
            {"plan": "deadbeef", "done": True, "eta_s": None, "tasks": [_task()]},
            force=True,
        )
        assert cli_main(["status", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "deadbeef" in out and "finished" in out and "vortex" in out

    def test_status_without_run_is_a_plain_failure(self, tmp_path, capsys):
        assert cli_main(["status", str(tmp_path)]) == 1
        assert "not a supervised run" in capsys.readouterr().err

    def test_status_defaults_to_cache_journal_root(self, tmp_path, capsys):
        StatusWriter(tmp_path / "journal").write(
            {"plan": "cafe", "done": True, "eta_s": None, "tasks": []}, force=True
        )
        assert cli_main(["status", "--cache-dir", str(tmp_path)]) == 0
        assert "cafe" in capsys.readouterr().out

    def test_supervised_run_leaves_readable_status(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert cli_main(["figures", *_FAST, "--resume"]) == 0
        capsys.readouterr()
        assert cli_main(["status", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "finished" in out and "vortex" in out and "done" in out


class TestTraceStream:
    def test_stream_then_merge_is_byte_identical(self, tmp_path, capsys):
        live = tmp_path / "live.json"
        merged = tmp_path / "merged.json"
        chunks = tmp_path / "chunks"
        assert cli_main(["trace", *_FAST, "--out", str(live), "--stream", str(chunks)]) == 0
        load = load_chunks(chunks)
        assert load.complete and load.summaries
        assert cli_main(["trace", "--from", str(chunks), "--out", str(merged)]) == 0
        assert live.read_bytes() == merged.read_bytes()
        assert (chunks / "trace.pftrace").stat().st_size > 0

    def test_from_monolithic_validates_and_rewrites(self, tmp_path, capsys):
        live = tmp_path / "live.json"
        copy = tmp_path / "copy.json"
        assert cli_main(["trace", *_FAST, "--out", str(live)]) == 0
        assert cli_main(["trace", "--from", str(live), "--out", str(copy)]) == 0
        assert json.loads(copy.read_text())["traceEvents"]

    def test_from_bogus_path_rejected(self, tmp_path, capsys):
        (tmp_path / "junk.json").write_text("not json")
        with pytest.raises(SystemExit) as excinfo:
            cli_main(["trace", "--from", str(tmp_path / "junk.json"), "--out", "x.json"])
        assert excinfo.value.code == 2

    def test_stream_into_used_directory_rejected(self, tmp_path, capsys):
        chunks = tmp_path / "chunks"
        assert cli_main(["trace", *_FAST, "--out", str(tmp_path / "a.json"), "--stream", str(chunks)]) == 0
        with pytest.raises(SystemExit) as excinfo:
            cli_main(["trace", *_FAST, "--out", str(tmp_path / "b.json"), "--stream", str(chunks)])
        assert excinfo.value.code == 2
        assert "fresh directory" in capsys.readouterr().err


class TestExplain:
    def test_by_proc_renders_procedure_table(self, capsys):
        assert cli_main(["explain", *_FAST, "--by-proc"]) == 0
        out = capsys.readouterr().out
        assert "per-procedure attribution" in out and "procedure" in out

    def test_explain_from_chunk_dir(self, tmp_path, capsys):
        chunks = tmp_path / "chunks"
        assert cli_main(["trace", *_FAST, "--out", str(tmp_path / "t.json"), "--stream", str(chunks)]) == 0
        capsys.readouterr()
        assert cli_main(["explain", "--from", str(chunks)]) == 0
        out = capsys.readouterr().out
        assert "cycle attribution" in out
        assert "per-procedure attribution" in out  # streamed runs record by-proc
        assert "offline explanation" in out

    def test_explain_from_monolithic_trace(self, tmp_path, capsys):
        live = tmp_path / "t.json"
        assert cli_main(["trace", *_FAST, "--out", str(live)]) == 0
        capsys.readouterr()
        assert cli_main(["explain", "--from", str(live)]) == 0
        assert "cycle attribution" in capsys.readouterr().out

    def test_from_excludes_stream_and_against(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            cli_main(["explain", "--from", str(tmp_path), "--against", "orig"])
        assert excinfo.value.code == 2

    def test_trace_without_summaries_explains_nothing(self, tmp_path, capsys):
        # A pre-observability trace (no reproSummaries key) is a clear error.
        (tmp_path / "old.json").write_text(json.dumps({"traceEvents": [], "displayTimeUnit": "ms"}))
        with pytest.raises(SystemExit) as excinfo:
            cli_main(["explain", "--from", str(tmp_path / "old.json")])
        assert excinfo.value.code == 2


class TestFiguresStreaming:
    def test_figures_stream_matches_buffered_jsonl(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        chunks = tmp_path / "chunks"
        events = tmp_path / "events.jsonl"
        assert (
            cli_main(
                [
                    "figures",
                    *_FAST,
                    "--stream",
                    str(chunks),
                    "--telemetry",
                    str(events),
                    "--flush-every",
                    "1",
                ]
            )
            == 0
        )
        chunk_bytes = b"".join(p.read_bytes() for p in sorted(chunks.glob("chunk-*.jsonl")))
        assert chunk_bytes == events.read_bytes()
        load = load_chunks(chunks)
        # One summary per live (workload, level) run across the figures grid.
        assert load.complete and len(load.summaries) == 7
        assert all("by_proc" in doc for doc in load.summaries)
