"""Write-ahead journal: append/replay round trips and per-line degradation.

A journal line is ``{"sha256": <digest of canonical body>, "body": {...}}``;
replay must recover exactly the valid lines and count — never trust — the
rest.
"""

import json

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.durability.journal import (
    JOURNAL_FORMAT,
    RunJournal,
    journal_path,
    plan_fingerprint,
)
from repro.engine.spec import RunPlan, RunSpec
from repro.telemetry.events import EventBus
from repro.telemetry.sinks import ListSink


def _journal(tmp_path, bus=None):
    kwargs = {"bus": bus} if bus is not None else {}
    return RunJournal(tmp_path / "plan.jsonl", **kwargs)


class TestPlanFingerprint:
    def test_deterministic_and_order_sensitive(self):
        a = RunPlan.of(RunSpec("vpr", "orig"), RunSpec("vpr", "dyn"))
        b = RunPlan.of(RunSpec("vpr", "orig"), RunSpec("vpr", "dyn"))
        swapped = RunPlan.of(RunSpec("vpr", "dyn"), RunSpec("vpr", "orig"))
        assert plan_fingerprint(a) == plan_fingerprint(b)
        assert plan_fingerprint(a) != plan_fingerprint(swapped)

    def test_journal_path_is_per_plan(self, tmp_path):
        fp = plan_fingerprint(RunPlan.of(RunSpec("vpr", "orig")))
        assert journal_path(tmp_path, fp).name == f"{fp}.jsonl"


class TestAppendReplay:
    def test_round_trip(self, tmp_path):
        journal = _journal(tmp_path)
        journal.plan_begin("abc", 2)
        journal.task_done(0, "fp0", {"cycles": 100})
        journal.task_done(1, "fp1", {"cycles": 200})
        journal.plan_end()
        replay = RunJournal(journal.path).replay("abc")
        assert replay.entries == 4 and replay.corrupt == 0
        assert replay.completed
        assert replay.results == {"fp0": {"cycles": 100}, "fp1": {"cycles": 200}}

    def test_last_write_wins(self, tmp_path):
        journal = _journal(tmp_path)
        journal.task_done(0, "fp0", {"cycles": 1})
        journal.task_done(0, "fp0", {"cycles": 2})
        assert RunJournal(journal.path).replay().results == {"fp0": {"cycles": 2}}

    def test_task_failed_is_diagnostic_only(self, tmp_path):
        journal = _journal(tmp_path)
        journal.task_failed(0, "fp0", "worker crashed")
        journal.task_done(0, "fp0", {"cycles": 3})
        replay = RunJournal(journal.path).replay()
        assert replay.results == {"fp0": {"cycles": 3}}
        assert replay.entries == 2

    def test_missing_file_is_empty(self, tmp_path):
        replay = _journal(tmp_path).replay()
        assert replay.entries == 0 and replay.results == {}

    def test_foreign_plan_invalidates_whole_file(self, tmp_path):
        journal = _journal(tmp_path)
        journal.plan_begin("plan-a", 1)
        journal.task_done(0, "fp0", {"cycles": 9})
        replay = RunJournal(journal.path).replay("plan-b")
        assert replay.results == {} and not replay.completed

    def test_discard(self, tmp_path):
        journal = _journal(tmp_path)
        journal.plan_begin("abc", 1)
        assert journal.path.is_file()
        journal.discard()
        assert not journal.path.exists()
        journal.discard()  # idempotent


class TestDegradation:
    def test_torn_tail_skipped_and_counted(self, tmp_path):
        journal = _journal(tmp_path)
        journal.task_done(0, "fp0", {"cycles": 1})
        journal.task_done(1, "fp1", {"cycles": 2})
        text = journal.path.read_text()
        lines = text.splitlines()
        journal.path.write_text(lines[0] + "\n" + lines[1][: len(lines[1]) // 2])
        replay = RunJournal(journal.path).replay()
        assert replay.results == {"fp0": {"cycles": 1}}
        assert replay.corrupt == 1

    def test_wrong_format_version_skipped(self, tmp_path):
        journal = _journal(tmp_path)
        # Hand-craft a digest-valid line with a foreign format version.
        import hashlib

        body = {"format": JOURNAL_FORMAT + 1, "type": "task_done",
                "index": 0, "fingerprint": "fp0", "result": {"cycles": 1}}
        canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
        line = json.dumps(
            {"sha256": hashlib.sha256(canonical.encode()).hexdigest(), "body": body},
            sort_keys=True, separators=(",", ":"),
        )
        journal.path.parent.mkdir(parents=True, exist_ok=True)
        journal.path.write_text(line + "\n")
        replay = RunJournal(journal.path).replay()
        assert replay.results == {} and replay.corrupt == 1

    def test_replay_event_reports_counts(self, tmp_path):
        events = ListSink()
        bus = EventBus()
        bus.attach(events)
        journal = _journal(tmp_path, bus=bus)
        journal.task_done(0, "fp0", {"cycles": 1})
        data = bytearray(journal.path.read_bytes())
        data[len(data) // 2] ^= 0x01
        journal.path.write_bytes(bytes(data))
        RunJournal(journal.path, bus=bus).replay()
        replayed = [e for e in events.events if e.kind == "JournalReplayed"]
        assert len(replayed) == 1
        assert replayed[0].corrupt == 1 and replayed[0].replayed == 0

    @settings(
        max_examples=30,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(offset_frac=st.floats(min_value=0.0, max_value=1.0, exclude_max=True))
    def test_any_flipped_byte_never_yields_wrong_result(self, tmp_path_factory, offset_frac):
        """Property: flip ANY byte of a journal — replay returns either the
        original record or nothing, never a different result."""
        tmp = tmp_path_factory.mktemp("journal")
        journal = RunJournal(tmp / "plan.jsonl")
        journal.task_done(0, "fp0", {"cycles": 42})
        data = bytearray(journal.path.read_bytes())
        data[int(offset_frac * len(data))] ^= 0x01
        journal.path.write_bytes(bytes(data))
        replay = RunJournal(journal.path).replay()
        assert replay.results in ({}, {"fp0": {"cycles": 42}})
        assert replay.corrupt + replay.entries == 1
