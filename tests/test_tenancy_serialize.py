"""Round-trip properties for the tenancy serialization surface."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.interp.interpreter import ExecStats
from repro.machine.hierarchy import HierarchyStats
from repro.tenancy import PollutionMatrix, TenantPlan, TenantSpec, TenantStats
from repro.tenancy.plan import TENANCY_FORMAT
from repro.tenancy.stats import TENANCY_RESULT_FORMAT, TenancyResult

counters = st.integers(min_value=0, max_value=1 << 40)
tenant_ids = st.integers(min_value=0, max_value=7)


@st.composite
def pollution_matrices(draw):
    cells = draw(
        st.dictionaries(
            st.tuples(tenant_ids, tenant_ids),
            st.integers(min_value=1, max_value=1 << 30),
            max_size=16,
        )
    )
    return PollutionMatrix(cells)


@st.composite
def tenant_stats(draw):
    stats = ExecStats(
        cycles=draw(counters),
        instructions=draw(counters),
        memory_refs=draw(counters),
        return_value=draw(st.integers(min_value=0, max_value=1 << 60)),
    )
    return TenantStats(
        tenant_id=draw(tenant_ids),
        name=draw(st.text(min_size=1, max_size=12)),
        workload=draw(st.sampled_from(["vpr", "mcf", "phaseshift"])),
        level=draw(st.sampled_from(["orig", "dyn", "nopref"])),
        stats=stats,
        hierarchy=HierarchyStats(),
        slices=draw(st.integers(min_value=0, max_value=1 << 20)),
    )


class TestPollutionMatrixRoundTrip:
    @settings(max_examples=100, deadline=None)
    @given(pollution_matrices())
    def test_roundtrip_exact(self, matrix):
        again = PollutionMatrix.from_dict(matrix.to_dict())
        assert again.counts == matrix.counts
        assert again.to_dict() == matrix.to_dict()
        assert again.total() == matrix.total()

    @settings(max_examples=50, deadline=None)
    @given(pollution_matrices(), tenant_ids)
    def test_marginals_consistent(self, matrix, tid):
        assert (
            matrix.inflicted_by(tid)
            + matrix.self_inflicted(tid)
            == sum(n for (i, _v), n in matrix.counts.items() if i == tid)
        )

    def test_cells_are_sorted_for_stable_diffs(self):
        matrix = PollutionMatrix({(1, 0): 2, (0, 1): 3, (0, 0): 1})
        assert matrix.to_dict()["cells"] == [[0, 0, 1], [0, 1, 3], [1, 0, 2]]


class TestTenantStatsRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(tenant_stats())
    def test_roundtrip_exact(self, stats):
        again = TenantStats.from_dict(stats.to_dict())
        assert again.to_dict() == stats.to_dict()


class TestPlanRoundTrip:
    def test_plan_roundtrip_and_fingerprint_stability(self):
        plan = TenantPlan(
            tenants=(
                TenantSpec("vpr", "dyn", passes=3, name="alpha"),
                TenantSpec("phaseshift", "nopref"),
            ),
            quantum=512,
            sharing="shared",
        )
        again = TenantPlan.from_dict(plan.to_dict())
        assert again == plan
        assert again.fingerprint() == plan.fingerprint()

    def test_fingerprint_sensitive_to_plan_content(self):
        base = TenantPlan(tenants=(TenantSpec("vpr", "dyn"),))
        assert (
            TenantPlan(tenants=(TenantSpec("vpr", "dyn"),), quantum=8192).fingerprint()
            != base.fingerprint()
        )
        assert (
            TenantPlan(tenants=(TenantSpec("vpr", "dyn"),), sharing="shared").fingerprint()
            != base.fingerprint()
        )

    def test_fingerprint_normalizes_opt_for_opt_free_levels(self):
        from repro.core.config import OptimizerConfig

        a = TenantPlan(tenants=(TenantSpec("vpr", "orig"),))
        b = TenantPlan(
            tenants=(TenantSpec("vpr", "orig", opt=OptimizerConfig(n_awake=99)),)
        )
        assert a.fingerprint() == b.fingerprint()

    def test_foreign_format_rejected(self):
        doc = TenantPlan(tenants=(TenantSpec("vpr", "dyn"),)).to_dict()
        doc["format"] = TENANCY_FORMAT + 1
        with pytest.raises(ConfigError, match="format"):
            TenantPlan.from_dict(doc)


class TestTenancyResultRoundTrip:
    def test_result_roundtrip_from_real_corun(self):
        from repro.machine.config import CacheGeometry, MachineConfig
        from repro.tenancy import run_tenant_plan

        plan = TenantPlan(
            tenants=(
                TenantSpec("vortex", "dyn", passes=1),
                TenantSpec("vpr", "orig", passes=1),
            ),
            quantum=2048,
            machine=MachineConfig(
                l1=CacheGeometry(512, 2),
                l2=CacheGeometry(4096, 4),
                l2_latency=10,
                memory_latency=100,
            ),
        )
        result = run_tenant_plan(plan)
        again = TenancyResult.from_dict(result.to_dict())
        assert again.to_dict() == result.to_dict()

    def test_foreign_format_rejected(self):
        with pytest.raises(ConfigError, match="format"):
            TenancyResult.from_dict({"format": TENANCY_RESULT_FORMAT + 1})
