"""Tests for the interpreter: semantics, cycle accounting, faults."""

import pytest

from repro.errors import ExecutionError, MemoryFault
from repro.interp.interpreter import Interpreter
from repro.ir import ProcedureBuilder, build_program
from repro.machine.config import CacheGeometry, MachineConfig
from repro.machine.memory import HEAP_BASE, Memory

MACHINE = MachineConfig(
    l1=CacheGeometry(512, 2),
    l2=CacheGeometry(4096, 4),
    l2_latency=10,
    memory_latency=100,
)


def run_main(builders, args=(), memory=None, machine=MACHINE, **kwargs):
    program = build_program(builders, entry="main")
    interp = Interpreter(program, memory or Memory(), machine)
    return interp.run(args=args, **kwargs)


class TestArithmetic:
    @pytest.mark.parametrize(
        "kind,a,b,expected",
        [
            ("add", 5, 3, 8),
            ("sub", 5, 3, 2),
            ("mul", 5, 3, 15),
            ("div", 7, 2, 3),
            ("mod", 7, 2, 1),
            ("and", 6, 3, 2),
            ("or", 6, 3, 7),
            ("xor", 6, 3, 5),
            ("shl", 3, 2, 12),
            ("shr", 12, 2, 3),
        ],
    )
    def test_alu_semantics(self, kind, a, b, expected):
        m = ProcedureBuilder("main")
        ra = m.const(None, a)
        rb = m.const(None, b)
        rc = m.alu(kind, None, ra, rb)
        m.ret(rc)
        assert run_main([m]).return_value == expected

    @pytest.mark.parametrize(
        "kind,a,b,expected",
        [("lt", 1, 2, 1), ("lt", 2, 2, 0), ("le", 2, 2, 1), ("eq", 3, 3, 1),
         ("ne", 3, 3, 0), ("gt", 4, 3, 1), ("ge", 3, 4, 0)],
    )
    def test_compare_semantics(self, kind, a, b, expected):
        m = ProcedureBuilder("main")
        ra = m.const(None, a)
        rb = m.const(None, b)
        rc = m.cmp(kind, None, ra, rb)
        m.ret(rc)
        assert run_main([m]).return_value == expected

    def test_alui_immediate(self):
        m = ProcedureBuilder("main")
        r = m.const(None, 10)
        m.addi(r, r, -4)
        m.ret(r)
        assert run_main([m]).return_value == 6

    def test_division_by_zero_wrapped(self):
        m = ProcedureBuilder("main")
        a = m.const(None, 1)
        z = m.const(None, 0)
        m.alu("div", None, a, z)
        m.ret()
        with pytest.raises(ExecutionError, match="division"):
            run_main([m])


class TestControlFlow:
    def test_loop_sums(self):
        m = ProcedureBuilder("main", params=("n",))
        total = m.const(None, 0)
        i = m.const(None, 0)
        m.label("loop")
        cond = m.lt(None, i, m.param("n"))
        m.bz(cond, "end")
        m.add(total, total, i)
        m.addi(i, i, 1)
        m.jmp("loop")
        m.label("end")
        m.ret(total)
        assert run_main([m], args=(10,)).return_value == 45

    def test_call_and_return_value(self):
        g = ProcedureBuilder("double", params=("x",))
        r = g.add(None, g.param("x"), g.param("x"))
        g.ret(r)
        m = ProcedureBuilder("main")
        v = m.const(None, 21)
        out = m.reg("out")
        m.call(out, "double", (v,))
        m.ret(out)
        assert run_main([m, g]).return_value == 42

    def test_recursion(self):
        f = ProcedureBuilder("fact", params=("n",))
        one = f.const(None, 1)
        cond = f.cmp("le", None, f.param("n"), one)
        f.bnz(cond, "base")
        n1 = f.addi(None, f.param("n"), -1)
        sub = f.reg("sub")
        f.call(sub, "fact", (n1,))
        out = f.mul(None, f.param("n"), sub)
        f.ret(out)
        f.label("base")
        f.ret(one)
        m = ProcedureBuilder("main")
        n = m.const(None, 6)
        r = m.reg("r")
        m.call(r, "fact", (n,))
        m.ret(r)
        assert run_main([m, f]).return_value == 720

    def test_halt_stops(self):
        m = ProcedureBuilder("main")
        m.const(None, 1)
        m.halt()
        stats = run_main([m])
        assert stats.return_value == 0
        assert stats.instructions == 2

    def test_entry_arity_checked(self):
        m = ProcedureBuilder("main", params=("a",))
        m.ret(m.param("a"))
        with pytest.raises(ExecutionError, match="takes 1 args"):
            run_main([m], args=())

    def test_instruction_limit(self):
        m = ProcedureBuilder("main")
        m.label("spin")
        m.jmp("spin")
        with pytest.raises(ExecutionError, match="limit"):
            run_main([m], max_instructions=100)


class TestMemoryOps:
    def test_load_store_roundtrip(self):
        mem = Memory()
        base = mem.allocate(8)
        m = ProcedureBuilder("main")
        b = m.const(None, base)
        v = m.const(None, 99)
        m.store(v, b, 4)
        out = m.load(None, b, 4)
        m.ret(out)
        assert run_main([m], memory=mem).return_value == 99

    def test_alloc_returns_fresh_memory(self):
        m = ProcedureBuilder("main")
        size = m.const(None, 16)
        p1 = m.alloc(None, size)
        p2 = m.alloc(None, size)
        diff = m.sub(None, p2, p1)
        m.ret(diff)
        assert run_main([m]).return_value == 16

    def test_unaligned_access_faults(self):
        m = ProcedureBuilder("main")
        b = m.const(None, HEAP_BASE + 2)
        m.load(None, b, 0)
        m.ret()
        with pytest.raises(MemoryFault):
            run_main([m])

    def test_negative_address_faults(self):
        m = ProcedureBuilder("main")
        b = m.const(None, -8)
        m.load(None, b, 0)
        m.ret()
        with pytest.raises(MemoryFault):
            run_main([m])


class TestCycleAccounting:
    def test_pure_compute_is_one_cycle_per_instruction(self):
        m = ProcedureBuilder("main")
        r = m.const(None, 0)
        for _ in range(10):
            m.addi(r, r, 1)
        m.ret(r)
        stats = run_main([m])
        assert stats.cycles == stats.instructions

    def test_cold_miss_adds_memory_latency(self):
        m = ProcedureBuilder("main")
        b = m.const(None, HEAP_BASE)
        m.load(None, b, 0)
        m.ret()
        stats = run_main([m])
        assert stats.mem_stall_cycles == 100
        assert stats.cycles == stats.instructions + 100

    def test_second_access_hits(self):
        m = ProcedureBuilder("main")
        b = m.const(None, HEAP_BASE)
        m.load(None, b, 0)
        m.load(None, b, 0)
        m.ret()
        stats = run_main([m])
        assert stats.mem_stall_cycles == 100
        assert stats.memory_refs == 2

    def test_prefetch_instruction_issues_and_costs(self):
        from repro.ir.instructions import Prefetch
        m = ProcedureBuilder("main")
        m._emit(Prefetch((HEAP_BASE, HEAP_BASE + 64)))
        b = m.const(None, HEAP_BASE)
        m.ret(b)
        program = build_program([m], entry="main")
        interp = Interpreter(program, Memory(), MACHINE)
        stats = interp.run()
        assert stats.prefetches_issued == 2
        assert interp.hierarchy.prefetch.issued == 2

    def test_deterministic(self):
        def once():
            mem = Memory()
            base = mem.allocate(256)
            m = ProcedureBuilder("main")
            b = m.const(None, base)
            i = m.const(None, 0)
            n = m.const(None, 32)
            m.label("loop")
            c = m.lt(None, i, n)
            m.bz(c, "end")
            off = m.muli(None, i, 4)
            addr = m.add(None, b, off)
            m.load(None, addr, 0)
            m.addi(i, i, 1)
            m.jmp("loop")
            m.label("end")
            m.ret()
            return run_main([m], memory=mem).cycles

        assert once() == once()
