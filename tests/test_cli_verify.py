"""The ``repro-bench verify`` subcommand and the verify driver's report."""

import pytest

from repro.bench.cli import main
from repro.oracle.golden import GoldenRun
from repro.oracle.verify import run_verify


@pytest.fixture(scope="module")
def quick_report():
    # One shared driver run for the report-shape assertions (runs=2 keeps the
    # randomized sections fast; golden is covered by test_oracle_golden).
    return run_verify(seed=0, runs=2, include_golden=False)


class TestRunVerify:
    def test_all_sections_pass(self, quick_report):
        assert quick_report.ok
        assert [s.name for s in quick_report.sections] == [
            "cache", "hierarchy", "sequitur", "streams", "invariants", "tenancy",
            "fastpath", "obs",
        ]
        assert all(s.cases > 0 for s in quick_report.sections)

    def test_report_format(self, quick_report):
        text = quick_report.format()
        assert "VERIFY PASSED" in text
        assert "seed=0" in text
        for name in (
            "cache", "hierarchy", "sequitur", "streams", "invariants",
            "tenancy", "fastpath", "obs",
        ):
            assert name in text

    def test_verdict_line_echoes_seed_and_runs(self, quick_report):
        # The last line alone must be enough to reproduce a failure report:
        # it carries the seed and the per-section run count.
        last = quick_report.format().splitlines()[-1]
        assert last == "VERIFY PASSED (seed=0, runs=2)"

    def test_seeds_are_reproducible(self):
        a = run_verify(seed=7, runs=1, include_golden=False)
        b = run_verify(seed=7, runs=1, include_golden=False)
        assert a.format() == b.format()

    def test_golden_section_failure_fails_report(self, tmp_path):
        # Empty golden dir -> every corpus entry is "missing" -> not ok.
        report = run_verify(seed=0, runs=1, golden_dir=tmp_path, include_golden=True)
        assert not report.ok
        golden = next(s for s in report.sections if s.name == "golden")
        assert golden.failures
        assert "VERIFY FAILED" in report.format()


class TestCliVerify:
    def test_exit_zero_on_pass(self, capsys):
        code = main(["verify", "--seed", "0", "--runs", "1", "--skip-golden"])
        out = capsys.readouterr().out
        assert code == 0
        assert "VERIFY PASSED" in out

    def test_cli_summary_echoes_seed(self, capsys):
        code = main(["verify", "--seed", "11", "--runs", "1", "--skip-golden"])
        out = capsys.readouterr().out
        assert code == 0
        assert "VERIFY PASSED (seed=11, runs=1)" in out

    def test_exit_one_on_golden_failure(self, tmp_path, capsys):
        code = main(
            ["verify", "--seed", "0", "--runs", "1", "--golden-dir", str(tmp_path)]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "VERIFY FAILED" in out

    def test_update_golden_records_corpus(self, tmp_path, capsys, monkeypatch):
        import repro.oracle.golden as golden_mod

        # Restrict the corpus to one tiny cell so --update-golden stays fast.
        monkeypatch.setattr(
            golden_mod,
            "GOLDEN_RUNS",
            (GoldenRun(workload="vortex", level="orig", passes=1),),
        )
        code = main(["verify", "--update-golden", "--golden-dir", str(tmp_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "golden corpus updated" in out
        assert (tmp_path / "vortex-orig.json").is_file()
        # And the freshly recorded corpus verifies clean.
        code = main(["verify", "--seed", "0", "--runs", "1", "--golden-dir", str(tmp_path)])
        assert code == 0
