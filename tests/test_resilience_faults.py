"""Deterministic fault injection and fuzzing (repro.resilience.faults).

The fuzz and full-run injection tests honour ``REPRO_FAULT_SEED`` so CI can
sweep seeds; any seed must satisfy the same invariants (runs complete, only
typed :class:`~repro.errors.ReproError` subclasses surface).
"""

from __future__ import annotations

import os
from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.hotstreams import AnalysisConfig, find_hot_streams
from repro.analysis.stream import HotDataStream
from repro.bench.runner import run_workload
from repro.dfsm.build import build_dfsm
from repro.dfsm.codegen import generate_handlers
from repro.errors import AnalysisError, ConfigError, ReproError
from repro.ir.instructions import Pc
from repro.profiling.profiler import TemporalProfiler
from repro.resilience.faults import (
    CORRUPT_PROC,
    FAULT_KINDS,
    FaultInjector,
    FaultPlan,
    InjectedFault,
)
from repro.resilience.guards import StreamGuard
from repro.telemetry.session import TelemetrySession
from repro.workloads.chainmix import build_chainmix

FAULT_SEED = int(os.environ.get("REPRO_FAULT_SEED", "0"))


def fire_pattern(injector: FaultInjector, kind: str, opportunities: int) -> list[bool]:
    return [injector.fire(kind) for _ in range(opportunities)]


class TestInjectorDeterminism:
    def test_equal_plans_fire_identically(self):
        plan = FaultPlan(seed=FAULT_SEED, rate=0.5)
        a, b = FaultInjector(plan), FaultInjector(plan)
        for kind in FAULT_KINDS:
            assert fire_pattern(a, kind, 64) == fire_pattern(b, kind, 64)
        assert a.counts == b.counts

    def test_kinds_draw_independently(self):
        """A kind's decision sequence depends only on its opportunity index.

        Interleaving opportunities for *other* kinds (or disabling them in
        the plan) must not perturb drop_burst's firing pattern.
        """
        interleaved = FaultInjector(FaultPlan(seed=FAULT_SEED, rate=0.5))
        solo = FaultInjector(FaultPlan(seed=FAULT_SEED, rate=0.5, kinds=("drop_burst",)))
        pattern = []
        for _ in range(64):
            for kind in FAULT_KINDS:
                fired = interleaved.fire(kind)
                if kind == "drop_burst":
                    pattern.append(fired)
        assert pattern == fire_pattern(solo, "drop_burst", 64)

    def test_cap_consumes_draws(self):
        a = FaultInjector(FaultPlan(seed=FAULT_SEED, rate=0.5, max_per_kind=2))
        b = FaultInjector(FaultPlan(seed=FAULT_SEED, rate=0.5, max_per_kind=2))
        # Exhaust a's cache_flush cap; b never sees a cache_flush opportunity.
        fire_pattern(a, "cache_flush", 40)
        assert a.counts["cache_flush"] <= 2
        # Draws are consumed past the cap, and kinds draw from independent
        # streams, so drop_burst's pattern is identical either way.
        assert fire_pattern(a, "drop_burst", 40) == fire_pattern(b, "drop_burst", 40)

    def test_corrupt_record_deterministic(self):
        plan = FaultPlan(seed=FAULT_SEED, record_corrupt_rate=1.0)
        a, b = FaultInjector(plan), FaultInjector(plan)
        pc = Pc("main", 3)
        outs_a = [a.corrupt_record(pc, 0x1000 + 4 * i) for i in range(32)]
        outs_b = [b.corrupt_record(pc, 0x1000 + 4 * i) for i in range(32)]
        assert outs_a == outs_b
        assert any(out != (pc, 0x1000 + 4 * i) for i, out in enumerate(outs_a))

    def test_injected_fault_is_typed(self):
        exc = InjectedFault("analysis_error")
        assert isinstance(exc, AnalysisError)
        assert isinstance(exc, ReproError)
        assert exc.kind == "analysis_error"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"kinds": ("no_such_fault",)},
            {"rate": 1.5},
            {"record_corrupt_rate": -0.1},
            {"max_per_kind": 0},
            {"patch_delay_bursts": 0},
        ],
    )
    def test_bad_plan_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            FaultPlan(**kwargs)


@pytest.mark.faultinject
class TestInjectedRuns:
    @pytest.mark.parametrize("fault_kind", FAULT_KINDS)
    def test_every_kind_is_contained(self, fault_kind, small_params, tiny_machine, small_opt):
        """Each fault class fires, is reported, and the run still completes."""
        opt = replace(
            small_opt, faults=FaultPlan(seed=FAULT_SEED + 1, rate=1.0, kinds=(fault_kind,))
        )
        session = TelemetrySession.recording()
        result = run_workload(
            build_chainmix(small_params), "dyn", machine=tiny_machine, opt=opt, telemetry=session
        )
        assert result.cycles > 0
        assert result.summary.faults_injected >= 1
        injected = [e for e in session.events if e.kind == "FaultInjected"]
        assert injected and all(e.fault == fault_kind for e in injected)
        if fault_kind == "analysis_error":
            errors = [e for e in session.events if e.kind == "OptimizerError"]
            assert result.summary.optimizer_errors >= 1
            assert errors and all(e.error == "InjectedFault" for e in errors)

    def test_all_kinds_together_complete(self, small_params, tiny_machine, small_opt):
        opt = replace(small_opt, faults=FaultPlan(seed=FAULT_SEED, rate=0.6, max_per_kind=3))
        result = run_workload(build_chainmix(small_params), "dyn", machine=tiny_machine, opt=opt)
        assert result.cycles > 0

    def test_injected_runs_are_reproducible(self, small_params, tiny_machine, small_opt):
        opt = replace(small_opt, faults=FaultPlan(seed=FAULT_SEED + 2, rate=0.6))
        a = run_workload(build_chainmix(small_params), "dyn", machine=tiny_machine, opt=opt)
        b = run_workload(build_chainmix(small_params), "dyn", machine=tiny_machine, opt=opt)
        assert a.cycles == b.cycles
        assert a.summary.faults_injected == b.summary.faults_injected


class TestErrorContainment:
    def test_analysis_failure_hibernates_then_disables(
        self, small_params, tiny_machine, small_opt, monkeypatch
    ):
        """Regression: a raising analysis must never crash the program.

        Every optimize attempt fails, so the optimizer hibernates after each
        and disables itself after ``max_optimizer_errors`` consecutive
        failures — the workload still runs to completion, unoptimized.
        """

        def broken(profiler, config):
            raise AnalysisError("synthetic analysis corruption")

        monkeypatch.setattr("repro.profiling.profiler.TemporalProfiler.hot_streams", broken)
        # Short phases so the run fits several failing optimize attempts.
        opt = replace(small_opt, max_optimizer_errors=2, n_awake=4, n_hibernate=8)
        session = TelemetrySession.recording()
        result = run_workload(
            build_chainmix(small_params), "dyn", machine=tiny_machine, opt=opt, telemetry=session
        )
        assert result.cycles > 0
        assert result.summary.optimizer_errors == 2
        assert result.summary.num_cycles == 0
        errors = [e for e in session.events if e.kind == "OptimizerError"]
        assert [e.consecutive for e in errors] == [1, 2]
        assert [e.disabled for e in errors] == [False, True]
        assert all(e.error == "AnalysisError" and e.phase == "optimize" for e in errors)


@pytest.mark.faultinject
class TestFuzzPipeline:
    def test_symbol_table_rejects_corrupt_ids_typed(self):
        profiler = TemporalProfiler()
        profiler.record(Pc("main", 0), 0x1000)
        with pytest.raises(AnalysisError):
            profiler.symbols.lookup(10**9)
        with pytest.raises(AnalysisError):
            profiler.symbols.decode([0, -1])

    @given(
        records=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=3),  # procedure index
                st.integers(min_value=0, max_value=31),  # pc offset
                st.integers(min_value=0, max_value=(1 << 20) - 1),  # word address
                st.booleans(),  # run this record through the corruptor?
            ),
            min_size=20,
            max_size=400,
        ),
        fault_seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(deadline=None, max_examples=30, derandomize=True)
    def test_corrupt_records_and_malformed_candidates(self, records, fault_seed):
        """Garbage traces + hostile candidates surface only typed errors.

        Drives the whole analyze-side pipeline — Sequitur, hot-stream
        analysis, guard admission, DFSM construction, handler generation —
        with hypothesis-generated junk.  Anything other than a ReproError
        subclass escaping (KeyError, IndexError, ...) fails the test, and
        hypothesis shrinks the record list to a minimal offender.
        """
        corruptor = FaultInjector(FaultPlan(seed=fault_seed, record_corrupt_rate=0.3))
        profiler = TemporalProfiler()
        try:
            for proc_idx, offset, word_addr, corrupt in records:
                pc = Pc(f"proc{proc_idx}", offset)
                addr = word_addr * 4
                if corrupt:
                    pc, addr = corruptor.corrupt_record(pc, addr)
                profiler.record(pc, addr)
            config = AnalysisConfig(
                heat_ratio=0.002, min_length=3, max_length=64, min_unique=2, max_streams=16
            )
            streams = find_hot_streams(profiler.sequitur, config)
            # Adversarial extras: ids outside the table, no tail, no heat.
            num_syms = len(profiler.symbols)
            streams = list(streams) + [
                HotDataStream((num_syms + 5, 0, 1), heat=9, rule_id=900),
                HotDataStream((0,), heat=9, rule_id=901),
                HotDataStream((0, 0, 0), heat=0, rule_id=902),
            ]
            guard = StreamGuard()
            accepted, _ = guard.admit(streams, 2, profiler.symbols, cycle=0)
            accepted = [s for s in accepted if s.length > 2]
            if not accepted:
                return
            dfsm = build_dfsm(accepted, head_len=2)
            guard.check_dfsm(dfsm, accepted)
            handlers = generate_handlers(
                dfsm, profiler.symbols, mode="dyn", block_bytes=32, max_prefetches=8
            )
            assert all(isinstance(pc, Pc) for pc in handlers)
        except ReproError:
            pass  # a typed, contained failure is an acceptable outcome

    def test_corrupt_pc_detonates_in_editor_not_interpreter(
        self, small_params, tiny_machine, small_opt
    ):
        """The corrupt-pc flavour names CORRUPT_PROC; the run must survive it."""
        opt = replace(
            small_opt,
            faults=FaultPlan(
                seed=FAULT_SEED + 3,
                rate=1.0,
                kinds=("corrupt_record",),
                max_per_kind=4,
                record_corrupt_rate=0.5,
            ),
        )
        result = run_workload(build_chainmix(small_params), "dyn", machine=tiny_machine, opt=opt)
        assert result.cycles > 0
        assert CORRUPT_PROC not in build_chainmix(small_params).program.procedures
