"""CLI durability flags: supervised runs, resume, cache gc --dry-run.

The contract surfaced to users: durability flags never change stdout (tables
stay byte-identical), ``--resume`` on a clean slate is just a fresh run, and
``cache gc --dry-run`` reports without deleting.
"""

import os
from pathlib import Path

import pytest

from repro.bench.cli import main as cli_main

TINY = ["--workloads", "vortex", "--scale", "0.05"]


def _cache_dir():
    return Path(os.environ["REPRO_CACHE_DIR"])


class TestSupervisedFigures:
    def test_chaos_run_output_matches_plain(self, capsys):
        assert cli_main(["figures", *TINY]) == 0
        plain = capsys.readouterr().out
        # Fresh store so the chaos run actually executes (REPRO_CACHE_DIR is
        # per-test; point the second run at a sibling directory).
        chaos_cache = str(_cache_dir() / "chaos")
        assert cli_main([
            "figures", *TINY, "--cache-dir", chaos_cache,
            "--jobs", "2", "--chaos-seed", "1", "--task-timeout", "4",
        ]) == 0
        assert capsys.readouterr().out == plain

    def test_resume_without_prior_run_is_fresh(self, capsys):
        assert cli_main(["figures", *TINY]) == 0
        plain = capsys.readouterr().out
        resumed_cache = str(_cache_dir() / "resumed")
        assert cli_main([
            "figures", *TINY, "--cache-dir", resumed_cache, "--resume",
        ]) == 0
        assert capsys.readouterr().out == plain
        # A completed supervised run retires its journal.
        journals = list((Path(resumed_cache) / "journal").glob("*.jsonl"))
        assert journals == []

    def test_checkpoint_every_engages_supervisor(self, capsys):
        assert cli_main([
            "figures", *TINY, "--checkpoint-every", "50000",
        ]) == 0
        assert capsys.readouterr().out


class TestFlagValidation:
    @pytest.mark.parametrize(
        "flags",
        [
            ["--task-timeout", "0"],
            ["--task-timeout", "-1"],
            ["--checkpoint-every", "0"],
        ],
    )
    def test_bad_durability_flags_rejected(self, flags, capsys):
        with pytest.raises(SystemExit) as excinfo:
            cli_main(["figures", *TINY, *flags])
        assert excinfo.value.code == 2


class TestCacheDryRun:
    def test_dry_run_reports_without_deleting(self, capsys):
        assert cli_main(["figure11", *TINY]) == 0
        capsys.readouterr()
        before = sorted(_cache_dir().glob("objects/*/*.json"))
        assert before
        assert cli_main(["cache", "gc", "--max-size-mb", "0", "--dry-run"]) == 0
        out = capsys.readouterr().out
        assert "would evict" in out and "would remain" in out
        assert sorted(_cache_dir().glob("objects/*/*.json")) == before
        # The real gc then deletes what the dry run promised.
        assert cli_main(["cache", "gc", "--max-size-mb", "0"]) == 0
        assert "evicted" in capsys.readouterr().out
        assert sorted(_cache_dir().glob("objects/*/*.json")) == []

    def test_stats_reports_corrupt_entries(self, capsys):
        assert cli_main(["figure11", *TINY]) == 0
        capsys.readouterr()
        victim = sorted(_cache_dir().glob("objects/*/*.json"))[0]
        victim.write_text(victim.read_text()[:40])
        assert cli_main(["cache"]) == 0
        out = capsys.readouterr().out
        assert "corrupt 1" in out
