"""Incremental hot-stream analysis == one-shot Figure 5, epoch after epoch."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.hotstreams import (
    AnalysisConfig,
    HotStreamAnalyzer,
    analyze_grammar,
    find_hot_streams,
)
from repro.sequitur import Sequitur

CONFIGS = (
    AnalysisConfig(),
    AnalysisConfig(heat_ratio=0.002, min_length=2, max_length=64, min_unique=3),
    AnalysisConfig(heat_threshold=4, min_length=2, max_length=8),
)


def assert_same_facts(analyzer: HotStreamAnalyzer, seq: Sequitur) -> None:
    for config in CONFIGS:
        assert analyzer.analyze(config) == analyze_grammar(seq, config)


@given(
    epochs=st.lists(
        st.lists(st.integers(min_value=0, max_value=4), max_size=60),
        min_size=1,
        max_size=6,
    )
)
@settings(max_examples=100, deadline=None)
def test_incremental_equals_oneshot_after_every_epoch(epochs):
    seq = Sequitur()
    analyzer = HotStreamAnalyzer(seq)
    for tokens in epochs:
        seq.extend_batch(tokens)
        assert_same_facts(analyzer, seq)


def test_streams_equal_oneshot_on_repetitive_trace():
    motif = [3, 1, 4, 1, 5, 9, 2, 6]
    seq = Sequitur()
    analyzer = HotStreamAnalyzer(seq)
    for rep in range(12):
        seq.extend_batch(motif + [50 + rep])
        for config in CONFIGS:
            got = analyzer.find_hot_streams(config)
            want = find_hot_streams(seq, config)
            assert got == want
    assert analyzer.find_hot_streams(CONFIGS[1])  # non-vacuous: streams exist


def test_second_analyze_walks_no_rule_bodies(monkeypatch):
    """With no grammar change between epochs, no rule body is re-walked."""
    seq = Sequitur()
    analyzer = HotStreamAnalyzer(seq)
    seq.extend_batch([3, 1, 4, 1, 5, 9, 2, 6] * 8)
    analyzer.analyze(CONFIGS[0])

    walks = []
    real_walk = HotStreamAnalyzer._walk_body
    monkeypatch.setattr(
        HotStreamAnalyzer,
        "_walk_body",
        lambda self, rule_id: walks.append(rule_id) or real_walk(self, rule_id),
    )
    assert analyzer.analyze(CONFIGS[0]) == analyze_grammar(seq, CONFIGS[0])
    assert walks == []

    # A small append dirties a bounded set of rules, not the whole grammar.
    seq.append(7)
    analyzer.analyze(CONFIGS[0])
    assert 0 < len(set(walks)) < len(seq.rules)


def test_analyzer_on_restored_checkpoint_matches_oneshot():
    seq = Sequitur()
    seq.extend_batch([3, 1, 4, 1, 5, 9, 2, 6] * 6)
    clone = Sequitur.__new__(Sequitur)
    clone.__setstate__(seq.__getstate__())
    analyzer = HotStreamAnalyzer(clone)
    assert_same_facts(analyzer, clone)
    clone.extend_batch([3, 1, 4, 1])
    assert_same_facts(analyzer, clone)


def test_rule_deletion_is_tracked():
    """Epochs that delete rules (utility rule) keep the caches consistent."""
    seq = Sequitur()
    analyzer = HotStreamAnalyzer(seq)
    # abab -> rule; then abcabcabc restructures and retires intermediates.
    for tokens in ([0, 1, 0, 1], [2, 0, 1, 2], [0, 1, 2, 0, 1, 2], [0, 1, 2]):
        seq.extend_batch(tokens)
        assert_same_facts(analyzer, seq)
        assert set(analyzer._lengths) == set(seq.rules)
        assert set(analyzer._children) == set(seq.rules)
