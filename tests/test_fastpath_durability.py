"""Fastpath × durability: checkpoints are kernel-agnostic.

A checkpoint written mid-run must not care which kernel produced it or which
kernel resumes it: compiled code is cached outside the pickled interpreter
(weak-keyed on procedure objects) and rebuilt on first use after a restore.
So every kernel combination — checkpoint fast / resume reference, checkpoint
reference / resume fast, chaos-supervised plans with ``REPRO_FASTPATH=1`` —
must land on results byte-identical to a plain serial reference run.
"""

import json

import pytest

from repro.durability import ChaosPlan, DurabilityPolicy, SupervisorConfig
from repro.durability.checkpoint import save_checkpoint
from repro.durability.runner import run_spec_durable
from repro.durability.supervisor import execute_plan_supervised
from repro.engine.executor import execute_plan
from repro.engine.levels import prepare_workload
from repro.engine.spec import RunPlan, RunSpec
from repro.fastpath import FASTPATH_ENV
from repro.workloads.chainmix import build_chainmix

#: vortex/dyn is long enough to cross several 60k-instruction checkpoints.
SPEC = RunSpec("vortex", "dyn", passes=1)
PLAN = RunPlan.of(
    RunSpec("vortex", "orig", passes=1),
    RunSpec("vortex", "dyn", passes=1),
    RunSpec("mcf", "orig", passes=1),
)
FAST_SUPERVISOR = SupervisorConfig(task_timeout=120.0, stall_timeout=2.0, backoff_base=0.05)
EVERY = 60_000


@pytest.fixture(scope="module")
def reference_doc():
    return run_spec_durable(SPEC, checkpoint_every=EVERY, fast=False).to_dict()


@pytest.fixture(scope="module")
def plain_docs():
    return [r.to_dict() for r in execute_plan(PLAN)]


class TestKernelCrossResume:
    @pytest.mark.parametrize(
        "save_fast,resume_fast",
        [(True, False), (False, True), (True, True)],
        ids=["fast-then-reference", "reference-then-fast", "fast-then-fast"],
    )
    def test_interrupt_under_one_kernel_resume_under_other(
        self, tmp_path, reference_doc, save_fast, resume_fast
    ):
        ckpt = tmp_path / "run.ckpt"
        interrupted = run_spec_durable(
            SPEC, ckpt, checkpoint_every=EVERY, stop_after_checkpoints=1, fast=save_fast
        )
        assert interrupted is None and ckpt.is_file()
        resumed = run_spec_durable(SPEC, ckpt, checkpoint_every=EVERY, fast=resume_fast)
        assert resumed.to_dict() == reference_doc
        assert not ckpt.exists()

    def test_sliced_fast_run_without_checkpoint_path(self, reference_doc):
        result = run_spec_durable(SPEC, checkpoint_every=10_000, fast=True)
        assert result.to_dict() == reference_doc


class TestCheckpointBytes:
    def test_same_park_point_same_payload_digest(self, small_params, tiny_machine, tmp_path):
        """Parking at the same instruction under either kernel must pickle
        to the *same* checkpoint payload: the fastpath leaves no residue in
        the architectural or statistical state it snapshots."""
        digests = {}
        for fast in (False, True):
            prepared = prepare_workload(build_chainmix(small_params), "dyn", tiny_machine)
            prepared.interp.start(prepared.args)
            assert prepared.interp.run_slice(2_000, fast=fast) is None
            path = tmp_path / f"park-{fast}.ckpt"
            save_checkpoint(
                path, prepared.interp, prepared.summary,
                workload="small", level="dyn", fingerprint="f" * 64,
            )
            header_line, _, payload = path.read_bytes().partition(b"\n")
            header = json.loads(header_line)
            digests[fast] = (header["icount"], header["sha256"], payload)
        assert digests[True] == digests[False]


class TestSupervisedFastpath:
    def test_supervised_plan_with_fastpath_env(self, tmp_path, plain_docs, monkeypatch):
        monkeypatch.setenv(FASTPATH_ENV, "1")
        policy = DurabilityPolicy(journal_root=tmp_path / "journal", supervisor=FAST_SUPERVISOR)
        supervised = execute_plan_supervised(PLAN, jobs=2, policy=policy)
        assert [r.to_dict() for r in supervised] == plain_docs

    def test_chaos_with_fastpath_env(self, tmp_path, plain_docs, monkeypatch):
        """Worker SIGKILLs + torn checkpoints, workers executing through the
        compiled kernel: results still match the plain serial reference."""
        monkeypatch.setenv(FASTPATH_ENV, "1")
        policy = DurabilityPolicy(
            journal_root=tmp_path / "journal",
            supervisor=FAST_SUPERVISOR,
            chaos=ChaosPlan(seed=1, kinds=("kill_worker", "truncate_checkpoint")),
        )
        supervised = execute_plan_supervised(PLAN, jobs=2, policy=policy)
        assert [r.to_dict() for r in supervised] == plain_docs
