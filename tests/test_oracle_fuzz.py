"""The fuzz driver's shrinker: minimal reproducers from planted bugs."""

import random

import pytest

from repro.errors import OracleError
from repro.machine.cache import Cache
from repro.oracle import RefCache, check_with_shrinking, shrink_ops
from repro.oracle.fuzz import gen_cache_ops
from repro.oracle.verify import STRESS_GEOMETRY


class PromotingContainsCache(Cache):
    """Planted bug: the silent membership probe promotes to MRU."""

    def contains(self, block):
        way = self._sets[block & self._set_mask]
        if block in way:
            way.remove(block)
            way.append(block)
            return True
        return False


def diff_against_buggy(ops):
    prod = PromotingContainsCache(STRESS_GEOMETRY, "buggy")
    ref = RefCache(STRESS_GEOMETRY)
    for i, (kind, block) in enumerate(ops):
        if kind == "flush":
            prod.flush()
            ref.flush()
            continue
        if getattr(prod, kind)(block) != getattr(ref, kind)(block):
            raise OracleError(f"op #{i} {kind}({block}) return mismatch")
    for s in range(STRESS_GEOMETRY.num_sets):
        if list(prod._sets[s]) != ref.lru_order(s):
            raise OracleError(f"set {s} LRU order mismatch")


class TestShrinkOps:
    def test_shrinks_to_exact_witness_pair(self):
        """Predicate needs {3, 7} as a subsequence; ddmin must find exactly it."""
        ops = [("x", v) for v in [9, 3, 1, 4, 7, 5, 3, 8]]

        def fails(seq):
            values = [v for _, v in seq]
            return 3 in values and 7 in values

        minimal = shrink_ops(ops, fails)
        assert sorted(v for _, v in minimal) == [3, 7]

    def test_rejects_passing_input(self):
        with pytest.raises(OracleError, match="does not fail"):
            shrink_ops([("x", 1)], lambda seq: False)

    def test_result_is_one_minimal(self):
        """No single op of the shrunk sequence can be removed and still fail."""
        rng = random.Random(3)
        ops = None
        for _ in range(10):
            candidate = gen_cache_ops(rng, 400, STRESS_GEOMETRY)
            try:
                diff_against_buggy(candidate)
            except OracleError:
                ops = candidate
                break
        assert ops is not None, "planted bug never triggered; generator too tame?"

        def fails(seq):
            try:
                diff_against_buggy(seq)
            except OracleError:
                return True
            return False

        minimal = shrink_ops(ops, fails)
        assert fails(minimal)
        for i in range(len(minimal)):
            assert not fails(minimal[:i] + minimal[i + 1 :]), (
                f"dropping op {i} of {minimal} still fails: not 1-minimal"
            )
        # The planted bug needs an install/install/contains triangle at least.
        assert len(minimal) <= 5


class TestCheckWithShrinking:
    def test_passes_silently_on_correct_code(self):
        rng = random.Random(0)
        ops = gen_cache_ops(rng, 200, STRESS_GEOMETRY)
        check_with_shrinking(
            ops,
            lambda seq: None,  # a check that never fails
            "noop",
        )

    def test_reports_minimal_reproducer(self):
        rng = random.Random(3)
        for _ in range(10):
            ops = gen_cache_ops(rng, 400, STRESS_GEOMETRY)
            try:
                diff_against_buggy(ops)
            except OracleError:
                break
        with pytest.raises(OracleError, match="minimal reproducer") as exc_info:
            check_with_shrinking(ops, diff_against_buggy, "planted bug")
        message = str(exc_info.value)
        assert "planted bug" in message
        assert "ops = [" in message  # replayable literal embedded
        # The chained original failure is preserved for context.
        assert isinstance(exc_info.value.__cause__, OracleError)
