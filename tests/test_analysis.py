"""Tests for hot-data-stream detection (Figure 5 / Table 1) and exact checks."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    AnalysisConfig,
    analyze_grammar,
    enumerate_hot_substrings,
    exact_heat,
    find_hot_streams,
    non_overlapping_frequency,
)
from repro.analysis.stream import HotDataStream
from repro.sequitur import Sequitur


def build(tokens) -> Sequitur:
    seq = Sequitur()
    seq.extend(tokens)
    return seq


def encode(text: str) -> list[int]:
    return [ord(ch) - ord("a") for ch in text]


EXAMPLE = encode("abaabcabcabcabc")
EXAMPLE_CONFIG = AnalysisConfig(heat_threshold=8, min_length=2, max_length=7)


class TestTable1:
    """The paper's worked example, value by value."""

    @pytest.fixture
    def facts(self):
        return analyze_grammar(build(EXAMPLE), EXAMPLE_CONFIG)

    def by_length(self, facts, length):
        return next(f for f in facts.values() if f.length == length)

    def test_start_rule_values(self, facts):
        s = self.by_length(facts, 15)
        assert (s.index, s.uses, s.cold_uses, s.heat, s.hot) == (0, 1, 1, 15, False)

    def test_hot_rule_b(self, facts):
        b = self.by_length(facts, 6)
        assert (b.index, b.uses, b.cold_uses, b.heat, b.hot) == (1, 2, 2, 12, True)

    def test_subsumed_rule_c(self, facts):
        c = self.by_length(facts, 3)
        assert (c.index, c.uses, c.cold_uses, c.heat, c.hot) == (2, 4, 0, 0, False)

    def test_cold_rule_a(self, facts):
        a = self.by_length(facts, 2)
        assert (a.index, a.uses, a.cold_uses, a.heat, a.hot) == (3, 5, 1, 2, False)

    def test_single_stream_abcabc(self):
        streams = find_hot_streams(build(EXAMPLE), EXAMPLE_CONFIG)
        assert len(streams) == 1
        assert streams[0].symbols == tuple(encode("abcabc"))
        assert streams[0].heat == 12

    def test_stream_covers_80_percent(self):
        streams = find_hot_streams(build(EXAMPLE), EXAMPLE_CONFIG)
        assert streams[0].heat / len(EXAMPLE) == pytest.approx(0.8)


class TestConfig:
    def test_resolved_threshold_from_ratio(self):
        config = AnalysisConfig(heat_ratio=0.01)
        assert config.resolved_threshold(1000) == 10
        assert config.resolved_threshold(50) == 1

    def test_absolute_threshold_wins(self):
        config = AnalysisConfig(heat_ratio=0.01, heat_threshold=77)
        assert config.resolved_threshold(10_000) == 77

    def test_higher_threshold_fewer_streams(self):
        seq = build(EXAMPLE)
        low = find_hot_streams(seq, AnalysisConfig(heat_threshold=8, min_length=2, max_length=7))
        high = find_hot_streams(seq, AnalysisConfig(heat_threshold=13, min_length=2, max_length=7))
        assert len(high) < len(low) or not high

    def test_length_window_shifts_hotness_to_children(self):
        # With maxLen=5 the length-6 rule (abcabc) is excluded, so its child
        # abc is no longer subsumed: coldUses stays 4 and abc becomes hot.
        seq = build(EXAMPLE)
        narrow = find_hot_streams(seq, AnalysisConfig(heat_threshold=8, min_length=2, max_length=5))
        assert [s.symbols for s in narrow] == [tuple(encode("abc"))]
        assert narrow[0].heat == 12

    def test_length_window_can_exclude_everything(self):
        seq = build(EXAMPLE)
        none = find_hot_streams(seq, AnalysisConfig(heat_threshold=8, min_length=4, max_length=5))
        assert none == []

    def test_min_unique_filter(self):
        seq = build(EXAMPLE)
        config = AnalysisConfig(heat_threshold=8, min_length=2, max_length=7, min_unique=3)
        # abcabc has only 3 unique symbols; min_unique=3 demands strictly more
        assert find_hot_streams(seq, config) == []

    def test_max_streams_cap(self):
        tokens = encode("ababab" + "cdcdcd" + "ababab" + "cdcdcd")
        seq = build(tokens)
        config = AnalysisConfig(heat_threshold=4, min_length=2, max_length=30, max_streams=1)
        streams = find_hot_streams(seq, config)
        assert len(streams) == 1


class TestStreamType:
    def test_head_tail_split(self):
        stream = HotDataStream(symbols=(1, 2, 3, 4, 5), heat=10, rule_id=1)
        assert stream.head(2) == (1, 2)
        assert stream.tail(2) == (3, 4, 5)
        assert stream.length == 5
        assert stream.unique_refs == 5

    def test_unique_refs_counts_distinct(self):
        stream = HotDataStream(symbols=(1, 2, 1, 2), heat=8, rule_id=1)
        assert stream.unique_refs == 2


class TestExact:
    def test_non_overlapping_frequency(self):
        assert non_overlapping_frequency([1, 1], [1, 1, 1]) == 1
        assert non_overlapping_frequency([1, 1], [1, 1, 1, 1]) == 2
        assert non_overlapping_frequency([1, 2], [1, 2, 3, 1, 2]) == 2
        assert non_overlapping_frequency([9], [1, 2, 3]) == 0

    def test_empty_needle_rejected(self):
        with pytest.raises(ValueError):
            non_overlapping_frequency([], [1])

    def test_exact_heat(self):
        assert exact_heat(encode("abc"), EXAMPLE) == 3 * 4

    def test_enumerate_hot_substrings(self):
        hot = enumerate_hot_substrings(EXAMPLE, heat_threshold=8, min_length=2, max_length=7)
        assert tuple(encode("abcabc")) in hot
        assert hot[tuple(encode("abcabc"))] == 12
        # "ab" occurs 5 times non-overlapping: heat 10, also (exactly) hot —
        # the grammar-based algorithm misses it (A.coldUses=1), showing it is
        # a conservative approximation of the exhaustive enumeration.
        assert hot[tuple(encode("ab"))] == 10
        assert tuple(encode("ba")) not in hot  # 2 occurrences: heat 4 < 8


class TestConservativeness:
    """The fast algorithm never overestimates a stream's true heat."""

    @settings(max_examples=120, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=3), min_size=4, max_size=120))
    def test_reported_heat_never_exceeds_exact(self, tokens):
        seq = build(tokens)
        config = AnalysisConfig(heat_ratio=0.05, min_length=2, max_length=40)
        for stream in find_hot_streams(seq, config):
            assert stream.heat <= exact_heat(stream.symbols, tokens)

    @settings(max_examples=120, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=3), min_size=4, max_size=120))
    def test_reported_streams_occur_in_trace(self, tokens):
        seq = build(tokens)
        config = AnalysisConfig(heat_ratio=0.05, min_length=2, max_length=40)
        for stream in find_hot_streams(seq, config):
            assert non_overlapping_frequency(stream.symbols, tokens) >= 1

    @settings(max_examples=80, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=2), min_size=4, max_size=80))
    def test_streams_are_deduplicated(self, tokens):
        seq = build(tokens)
        config = AnalysisConfig(heat_ratio=0.02, min_length=2, max_length=40)
        streams = find_hot_streams(seq, config)
        assert len({s.symbols for s in streams}) == len(streams)

    @settings(max_examples=80, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=2), min_size=4, max_size=80))
    def test_ranking_is_by_heat(self, tokens):
        seq = build(tokens)
        config = AnalysisConfig(heat_ratio=0.02, min_length=2, max_length=40)
        heats = [s.heat for s in find_hot_streams(seq, config)]
        assert heats == sorted(heats, reverse=True)
