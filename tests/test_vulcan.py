"""Tests for static instrumentation and dynamic injection (the Vulcan layer)."""

import pytest

from repro.errors import EditError
from repro.interp.interpreter import Interpreter
from repro.ir import Check, Load, ProcedureBuilder, build_program, validate_procedure
from repro.machine.memory import Memory
from repro.vulcan.dynamic_edit import deoptimize, inject_detection, optimized_copy
from repro.vulcan.static_edit import find_backedges, instrument_procedure, instrument_program


def loop_proc(name="main", iters=5):
    """A procedure with one loop (one back-edge) and two memory refs."""
    b = ProcedureBuilder(name)
    base = b.const(None, 0x1000_0000)
    i = b.const(None, 0)
    n = b.const(None, iters)
    total = b.const(None, 0)
    b.label("loop")
    cond = b.lt(None, i, n)
    b.bz(cond, "end")
    v = b.load(None, base, 0)
    b.add(total, total, v)
    b.store(total, base, 4)
    b.addi(i, i, 1)
    b.jmp("loop")
    b.label("end")
    b.ret(total)
    return b.build()


class TestBackedges:
    def test_finds_loop_backedge(self):
        proc = loop_proc()
        backedges = find_backedges(proc)
        assert len(backedges) == 1

    def test_straightline_has_none(self):
        b = ProcedureBuilder("f")
        b.const(None, 1)
        b.ret()
        assert find_backedges(b.build()) == []

    def test_forward_branch_not_backedge(self):
        b = ProcedureBuilder("f")
        r = b.const(None, 1)
        b.bz(r, "skip")
        b.const(None, 2)
        b.label("skip")
        b.ret()
        assert find_backedges(b.build()) == []


class TestStaticInstrumentation:
    def test_check_at_entry_and_backedge(self):
        proc, entries, backs = instrument_procedure(loop_proc())
        assert entries == 1
        assert backs == 1
        assert isinstance(proc.body[0], Check)
        checks = [i for i, ins in enumerate(proc.body) if isinstance(ins, Check)]
        assert len(checks) == 2

    def test_bodies_structurally_identical(self):
        proc, _, _ = instrument_procedure(loop_proc())
        assert proc.instrumented_body is not None
        assert len(proc.instrumented_body) == len(proc.body)
        for a, b in zip(proc.body, proc.instrumented_body):
            assert type(a) is type(b)

    def test_only_instrumented_version_traces(self):
        proc, _, _ = instrument_procedure(loop_proc())
        plain = [i for i in proc.body if isinstance(i, Load)]
        traced = [i for i in proc.instrumented_body if isinstance(i, Load)]
        assert all(not i.traced for i in plain)
        assert all(i.traced for i in traced)

    def test_pcs_preserved(self):
        original = loop_proc()
        proc, _, _ = instrument_procedure(original)
        assert proc.pcs() == original.pcs()

    def test_labels_remapped_and_valid(self):
        proc, _, _ = instrument_procedure(loop_proc())
        validate_procedure(proc)

    def test_double_instrumentation_rejected(self):
        proc, _, _ = instrument_procedure(loop_proc())
        with pytest.raises(EditError):
            instrument_procedure(proc)

    def test_program_report(self):
        program = build_program([loop_proc()], entry="main")
        instrumented, report = instrument_program(program)
        assert report.procedures == 1
        assert report.entry_checks == 1
        assert report.backedge_checks == 1
        assert report.total_checks == 2

    def test_execution_equivalence(self):
        """Instrumentation must not change program results."""
        program = build_program([loop_proc(iters=7)], entry="main")
        plain = Interpreter(program, Memory()).run()
        instrumented, _ = instrument_program(build_program([loop_proc(iters=7)], entry="main"))
        interp = Interpreter(instrumented, Memory())
        interp.set_counters(3, 2)  # force frequent version switching
        result = interp.run()
        assert result.return_value == plain.return_value
        assert result.checks_executed > 0


class FakeHandler:
    """Minimal detect payload for injection tests."""

    def step(self, state, addr):
        return state, (), 1


class TestDynamicInjection:
    def test_inject_patches_and_attaches(self):
        program = build_program([loop_proc()], entry="main")
        pc = program.original("main").pcs()[0]
        result = inject_detection(program, {pc: FakeHandler()})
        assert result.patched_procedures == ["main"]
        assert result.instrumented_pcs == 1
        patched = program.resolve("main")
        attached = [i for i in patched.body if isinstance(i, Load) and i.detect is not None]
        assert len(attached) == 1

    def test_original_untouched(self):
        program = build_program([loop_proc()], entry="main")
        pc = program.original("main").pcs()[0]
        inject_detection(program, {pc: FakeHandler()})
        original = program.original("main")
        assert all(
            i.detect is None for i in original.body if isinstance(i, Load)
        )

    def test_inject_both_versions(self):
        program, _ = instrument_program(build_program([loop_proc()], entry="main"))
        pc = program.original("main").pcs()[0]
        inject_detection(program, {pc: FakeHandler()})
        patched = program.resolve("main")
        assert patched.instrumented_body is not None
        attached = [
            i for i in patched.instrumented_body if isinstance(i, Load) and i.detect is not None
        ]
        assert len(attached) == 1

    def test_unknown_pc_procedure_rejected(self):
        from repro.ir.instructions import Pc

        program = build_program([loop_proc()], entry="main")
        with pytest.raises(EditError):
            inject_detection(program, {Pc("ghost", 0): FakeHandler()})

    def test_handler_must_match_a_memory_op(self):
        from repro.ir.instructions import Pc

        program = build_program([loop_proc()], entry="main")
        with pytest.raises(EditError):
            optimized_copy(program.original("main"), {Pc("main", 99): FakeHandler()})

    def test_deoptimize_removes_patches(self):
        program = build_program([loop_proc()], entry="main")
        pc = program.original("main").pcs()[0]
        inject_detection(program, {pc: FakeHandler()})
        removed = deoptimize(program)
        assert removed == ["main"]
        assert program.resolve("main") is program.original("main")

    def test_empty_handlers_noop(self):
        program = build_program([loop_proc()], entry="main")
        result = inject_detection(program, {})
        assert result.num_procedures == 0

    def test_repeated_cycles_do_not_stack(self):
        program = build_program([loop_proc()], entry="main")
        pc = program.original("main").pcs()[0]
        for _ in range(3):
            inject_detection(program, {pc: FakeHandler()})
            deoptimize(program)
        inject_detection(program, {pc: FakeHandler()})
        patched = program.resolve("main")
        attached = [i for i in patched.body if isinstance(i, Load) and i.detect is not None]
        assert len(attached) == 1
