"""Property tests: optimizer summary serialization round-trips exactly.

``OptimizerSummary.to_dict`` is the shape the telemetry metrics exporter
embeds; hypothesis drives arbitrary summaries (including the cycle
attribution fields ``analysis_charged``/``at_cycle``) through a
JSON-serialize/parse/``from_dict`` cycle and requires loss-free recovery.
"""

from __future__ import annotations

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.stats import OptCycleStats, OptimizerSummary

counters = st.integers(min_value=0, max_value=2**40)

opt_cycle_stats = st.builds(
    OptCycleStats,
    cycle=st.integers(min_value=1, max_value=100),
    traced_refs=counters,
    num_streams=st.integers(min_value=0, max_value=200),
    dfsm_states=counters,
    dfsm_transitions=counters,
    injected_checks=counters,
    procs_modified=st.integers(min_value=0, max_value=500),
    stream_lengths=st.lists(st.integers(min_value=2, max_value=100), max_size=20),
    analysis_charged=counters,
    at_cycle=counters,
)

summaries = st.builds(
    OptimizerSummary,
    cycles=st.lists(opt_cycle_stats, max_size=8),
    guard_rejections=counters,
    stream_deopts=counters,
    early_wakes=counters,
    optimizer_errors=counters,
    faults_injected=counters,
)


@settings(max_examples=100, deadline=None)
@given(stats=opt_cycle_stats)
def test_opt_cycle_stats_round_trip(stats):
    through_json = json.loads(json.dumps(stats.to_dict()))
    assert OptCycleStats.from_dict(through_json) == stats


@settings(max_examples=100, deadline=None)
@given(summary=summaries)
def test_optimizer_summary_round_trip(summary):
    through_json = json.loads(json.dumps(summary.to_dict()))
    recovered = OptimizerSummary.from_dict(through_json)
    assert recovered == summary
    # Derived aggregates recompute identically from the recovered cycles.
    assert recovered.to_dict() == summary.to_dict()
    assert recovered.analysis_charged == summary.analysis_charged


@settings(max_examples=50, deadline=None)
@given(summary=summaries)
def test_to_dict_is_json_serializable_and_complete(summary):
    data = summary.to_dict()
    json.dumps(data)  # no TypeError
    assert data["num_cycles"] == len(summary.cycles)
    assert data["analysis_charged"] == sum(c.analysis_charged for c in summary.cycles)
    for record, stats in zip(data["cycles"], summary.cycles):
        assert record["analysis_charged"] == stats.analysis_charged
        assert record["at_cycle"] == stats.at_cycle


def test_from_dict_tolerates_pre_attribution_records():
    # Metrics snapshots written before the attribution fields existed load
    # with zero defaults rather than KeyError.
    legacy = {
        "cycle": 1,
        "traced_refs": 10,
        "num_streams": 2,
        "dfsm_states": 3,
        "dfsm_transitions": 4,
        "injected_checks": 5,
        "procs_modified": 1,
        "stream_lengths": [2, 3],
    }
    stats = OptCycleStats.from_dict(legacy)
    assert stats.analysis_charged == 0
    assert stats.at_cycle == 0
    summary = OptimizerSummary.from_dict({"cycles": [legacy]})
    assert summary.analysis_charged == 0
