"""Tests for the stride and Markov hardware-prefetcher baselines."""

from repro.core.hwpref import MarkovPrefetcher, StridePrefetcher
from repro.ir.instructions import Pc
from repro.machine.config import CacheGeometry, MachineConfig
from repro.machine.hierarchy import MemoryHierarchy


def make_hierarchy():
    return MemoryHierarchy(
        MachineConfig(l1=CacheGeometry(512, 2), l2=CacheGeometry(4096, 4))
    )


class TestStride:
    def test_constant_stride_triggers_prefetch(self):
        h = make_hierarchy()
        pf = StridePrefetcher(degree=1, min_confidence=2)
        pc = Pc("f", 0)
        for k in range(5):
            pf.observe(pc, 0x1000 + 128 * k, now=k, hierarchy=h)
        assert h.prefetch.issued > 0
        # The next-in-stride block is resident before the demand access.
        assert h.access(0x1000 + 128 * 5, now=1000) == 0

    def test_random_addresses_never_trigger(self):
        h = make_hierarchy()
        pf = StridePrefetcher(min_confidence=2)
        pc = Pc("f", 0)
        for addr in (0x1000, 0x9000, 0x2000, 0x7000, 0x100):
            pf.observe(pc, addr, now=0, hierarchy=h)
        assert h.prefetch.issued == 0

    def test_per_pc_tables_independent(self):
        h = make_hierarchy()
        pf = StridePrefetcher(degree=1, min_confidence=1)
        # Interleaved streams at two pcs, each with its own stride.
        for k in range(4):
            pf.observe(Pc("f", 0), 0x1000 + 64 * k, now=0, hierarchy=h)
            pf.observe(Pc("f", 1), 0x8000 + 96 * k, now=0, hierarchy=h)
        assert h.prefetch.issued > 0

    def test_zero_stride_ignored(self):
        h = make_hierarchy()
        pf = StridePrefetcher(min_confidence=1)
        pc = Pc("f", 0)
        for _ in range(5):
            pf.observe(pc, 0x1000, now=0, hierarchy=h)
        assert h.prefetch.issued == 0

    def test_table_eviction_bounds_size(self):
        h = make_hierarchy()
        pf = StridePrefetcher(table_size=4)
        for k in range(16):
            pf.observe(Pc("f", k), 0x1000, now=0, hierarchy=h)
        assert len(pf._table) <= 4

    def test_sub_block_stride_rounded_to_block(self):
        h = make_hierarchy()
        pf = StridePrefetcher(degree=1, min_confidence=1)
        pc = Pc("f", 0)
        for k in range(4):
            pf.observe(pc, 0x1000 + 4 * k, now=0, hierarchy=h)
        # Prefetches land on following blocks, not the same block.
        assert h.prefetch.issued > 0


class TestMarkov:
    def test_learned_digram_prefetched(self):
        h = make_hierarchy()
        pf = MarkovPrefetcher(fanout=1)
        pc = Pc("f", 0)
        # Teach A -> B twice, then revisit A.  Addresses are chosen to land
        # in different L1 sets so the prefetched blocks cannot alias.
        for _ in range(2):
            pf.observe(pc, 0x1000, now=0, hierarchy=h)
            pf.observe(pc, 0x8020, now=0, hierarchy=h)
            pf.observe(pc, 0x20040, now=0, hierarchy=h)  # break the pair
        issued_before = h.prefetch.issued
        pf.observe(pc, 0x1000, now=0, hierarchy=h)
        assert h.prefetch.issued > issued_before
        assert h.l1.contains(0x8020 >> 5)

    def test_fanout_limits_predictions(self):
        h = make_hierarchy()
        pf = MarkovPrefetcher(fanout=1)
        pc = Pc("f", 0)
        # A followed by many different successors.
        for successor in (0x8000, 0x9000, 0xA000):
            pf.observe(pc, 0x1000, now=0, hierarchy=h)
            pf.observe(pc, successor, now=0, hierarchy=h)
        before = h.prefetch.issued
        pf.observe(pc, 0x1000, now=0, hierarchy=h)
        assert h.prefetch.issued - before <= 1

    def test_same_block_repeat_not_a_transition(self):
        h = make_hierarchy()
        pf = MarkovPrefetcher()
        pc = Pc("f", 0)
        for _ in range(5):
            pf.observe(pc, 0x1000, now=0, hierarchy=h)
        assert h.prefetch.issued == 0

    def test_table_bounded(self):
        h = make_hierarchy()
        pf = MarkovPrefetcher(table_size=8)
        pc = Pc("f", 0)
        for k in range(64):
            pf.observe(pc, k * 0x1000, now=0, hierarchy=h)
        assert len(pf._table) <= 8
