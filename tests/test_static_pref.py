"""Tests for the static (profile-once) prefetching extension."""

import dataclasses

import pytest

from repro.bench.runner import run_workload
from repro.core.static_pref import StaticPrefetcher
from repro.core.optimizer import HIBERNATING
from repro.interp.interpreter import Interpreter
from repro.machine.config import CacheGeometry, MachineConfig
from repro.vulcan.static_edit import instrument_program
from repro.workloads.chainmix import ChainMixParams, build_chainmix

SMALL_MACHINE = MachineConfig(
    l1=CacheGeometry(512, 2), l2=CacheGeometry(4096, 4), l2_latency=10, memory_latency=100
)


def run_static(params, opt, passes=None):
    wl = build_chainmix(params, passes=passes)
    program, _ = instrument_program(wl.program)
    interp = Interpreter(program, wl.memory, SMALL_MACHINE)
    optimizer = StaticPrefetcher(program, interp, SMALL_MACHINE, opt)
    stats = interp.run(wl.args)
    return stats, optimizer, program


class TestStaticPrefetcher:
    def test_optimizes_exactly_once(self, small_params, small_opt):
        stats, optimizer, _ = run_static(small_params, small_opt, passes=16)
        assert optimizer.summary.num_cycles == 1
        assert optimizer.phase == HIBERNATING

    def test_never_deoptimizes(self, small_params, small_opt):
        _, optimizer, program = run_static(small_params, small_opt, passes=16)
        assert program.patched_names, "injected code should remain patched"

    def test_prefetches_whole_run(self, small_params, small_opt):
        stats, optimizer, _ = run_static(small_params, small_opt, passes=16)
        assert stats.prefetches_issued > 0

    def test_runner_level(self, small_params, small_opt):
        wl = build_chainmix(small_params, passes=16)
        result = run_workload(wl, "static", SMALL_MACHINE, small_opt)
        assert result.summary is not None
        assert result.summary.num_cycles == 1


class TestPhasedWorkload:
    def test_phases_param_validated(self):
        with pytest.raises(Exception):
            ChainMixParams(name="x", phases=0)

    def test_phased_build_has_more_chains(self, small_params):
        phased = dataclasses.replace(small_params, phases=3)
        assert phased.total_chains == 3 * small_params.hot_chains + small_params.cold_chains
        wl = build_chainmix(phased, passes=2)
        interp = Interpreter(wl.program, wl.memory, SMALL_MACHINE)
        stats = interp.run(wl.args)
        assert stats.memory_refs > 0

    def test_phase_shift_changes_touched_chains(self, small_params):
        """Different phases touch different hot node sets."""
        phased = dataclasses.replace(small_params, phases=2, cold_chains=0,
                                     hot_fraction=1.0, passes=8)
        wl = build_chainmix(phased)
        program, _ = instrument_program(wl.program)
        interp = Interpreter(program, wl.memory, SMALL_MACHINE)
        interp.set_counters(1, 1)  # trace everything
        first_half: set[int] = set()
        second_half: set[int] = set()
        refs = []
        interp.trace_sink = lambda pc, addr: refs.append(addr)
        interp.tracing_enabled = True
        interp.run(wl.args)
        heap_refs = [a for a in refs if a >= 0x1000_0000]
        mid = len(heap_refs) // 2
        first_half = {a >> 5 for a in heap_refs[: mid // 2]}   # early quarter
        second_half = {a >> 5 for a in heap_refs[-mid // 2 :]}  # late quarter
        overlap = len(first_half & second_half) / max(1, len(first_half))
        assert overlap < 0.5, "phases should touch mostly different chains"

    def test_dynamic_adapts_better_than_static_on_phased(self, small_params, small_opt):
        phased = dataclasses.replace(
            small_params, phases=2, hot_fraction=0.875, passes=48
        )
        results = {}
        for level in ("dyn", "static"):
            wl = build_chainmix(phased)
            results[level] = run_workload(wl, level, SMALL_MACHINE, small_opt)
        assert results["dyn"].cycles < results["static"].cycles
        assert (
            results["dyn"].hierarchy.prefetch.useful
            > results["static"].hierarchy.prefetch.useful
        )
