"""Tests for statistics containers (optimizer summaries, exec stats)."""

import pytest

from repro.core.stats import OptCycleStats, OptimizerSummary
from repro.interp.interpreter import ExecStats
from repro.machine.hierarchy import PrefetchStats


def cycle(n, traced=1000, streams=10, states=21, checks=20, procs=3, lengths=()):
    return OptCycleStats(
        cycle=n,
        traced_refs=traced,
        num_streams=streams,
        dfsm_states=states,
        dfsm_transitions=states - 1,
        injected_checks=checks,
        procs_modified=procs,
        stream_lengths=list(lengths),
    )


class TestOptCycleStats:
    def test_mean_stream_length(self):
        assert cycle(1, lengths=[10, 20, 30]).mean_stream_length == 20
        assert cycle(1).mean_stream_length == 0.0


class TestOptimizerSummary:
    def test_empty_summary_means_are_zero(self):
        summary = OptimizerSummary()
        assert summary.num_cycles == 0
        assert summary.mean_traced_refs == 0.0
        assert summary.mean_streams == 0.0
        assert summary.mean_dfsm_states == 0.0
        assert summary.mean_injected_checks == 0.0
        assert summary.mean_procs_modified == 0.0

    def test_means_over_cycles(self):
        summary = OptimizerSummary(cycles=[cycle(1, traced=100), cycle(2, traced=300)])
        assert summary.num_cycles == 2
        assert summary.mean_traced_refs == 200

    def test_mixed_values(self):
        summary = OptimizerSummary(
            cycles=[cycle(1, streams=10, procs=4), cycle(2, streams=20, procs=6)]
        )
        assert summary.mean_streams == 15
        assert summary.mean_procs_modified == 5


class TestExecStats:
    def test_cpi(self):
        stats = ExecStats(cycles=500, instructions=100)
        assert stats.cpi == 5.0

    def test_cpi_zero_instructions(self):
        assert ExecStats().cpi == 0.0


class TestPrefetchStats:
    def test_accuracy_counts_useful_and_late(self):
        stats = PrefetchStats(issued=10, useful=6, late=2, wasted=2)
        assert stats.accuracy == pytest.approx(0.8)

    def test_accuracy_without_outcomes(self):
        assert PrefetchStats(issued=5, redundant=5).accuracy == 0.0
