"""Tests for repro.tracing.spans: the tracer, the null tracer, the collector.

Covers the zero-overhead disabled path, auto-parenting, close-out ordering,
the collector's tree reconstruction (including synthetic burst spans), and
the span tree produced by a real traced run.
"""

from __future__ import annotations

import pytest

from repro.bench.runner import run_level
from repro.telemetry.events import BurstBegin, BurstEnd, EventBus, SpanBegin, SpanEnd
from repro.telemetry.session import TelemetrySession
from repro.telemetry.sinks import ListSink
from repro.tracing.spans import (
    NULL_TRACER,
    SPAN_CATEGORIES,
    SpanCollector,
    SpanTracer,
)


def _traced_bus():
    bus = EventBus()
    sink = ListSink()
    collector = SpanCollector()
    bus.attach(sink)
    bus.attach(collector)
    return bus, sink, collector


class TestSpanTracer:
    def test_disabled_bus_returns_zero_ids(self):
        tracer = SpanTracer(EventBus())  # no sinks -> disabled
        assert not tracer.enabled
        assert tracer.begin(0, "run", "run") == 0
        tracer.end(10, 0)  # must be a no-op, not an error

    def test_null_tracer_is_inert(self):
        assert not NULL_TRACER.enabled
        assert NULL_TRACER.begin(5, "x", "run") == 0
        NULL_TRACER.end(9, 0)
        NULL_TRACER.close_all(9)

    def test_ids_are_unique_and_nonzero(self):
        bus, _, _ = _traced_bus()
        tracer = SpanTracer(bus)
        ids = [tracer.begin(i, f"s{i}", "epoch") for i in range(5)]
        assert 0 not in ids
        assert len(set(ids)) == 5

    def test_auto_parenting_uses_innermost_open_span(self):
        bus, sink, _ = _traced_bus()
        tracer = SpanTracer(bus)
        outer = tracer.begin(0, "run", "run")
        inner = tracer.begin(10, "epoch-1", "epoch")
        leaf = tracer.begin(20, "analysis", "analysis")
        begins = {e.span_id: e for e in sink.events if isinstance(e, SpanBegin)}
        assert begins[outer].parent_id == 0
        assert begins[inner].parent_id == outer
        assert begins[leaf].parent_id == inner

    def test_explicit_parent_wins_over_stack(self):
        bus, sink, _ = _traced_bus()
        tracer = SpanTracer(bus)
        outer = tracer.begin(0, "run", "run")
        tracer.begin(5, "epoch", "epoch")
        pinned = tracer.begin(7, "aside", "analysis", parent=outer)
        begins = {e.span_id: e for e in sink.events if isinstance(e, SpanBegin)}
        assert begins[pinned].parent_id == outer

    def test_end_removes_from_open_stack(self):
        bus, sink, _ = _traced_bus()
        tracer = SpanTracer(bus)
        outer = tracer.begin(0, "run", "run")
        inner = tracer.begin(5, "epoch", "epoch")
        tracer.end(9, inner)
        sibling = tracer.begin(10, "epoch-2", "epoch")
        begins = {e.span_id: e for e in sink.events if isinstance(e, SpanBegin)}
        assert begins[sibling].parent_id == outer

    def test_close_all_closes_innermost_first(self):
        bus, sink, _ = _traced_bus()
        tracer = SpanTracer(bus)
        a = tracer.begin(0, "a", "run")
        b = tracer.begin(1, "b", "epoch")
        c = tracer.begin(2, "c", "analysis")
        tracer.close_all(50)
        ends = [e.span_id for e in sink.events if isinstance(e, SpanEnd)]
        assert ends == [c, b, a]
        assert all(e.cycle == 50 for e in sink.events if isinstance(e, SpanEnd))


class TestSpanCollector:
    def test_builds_tree(self):
        bus, _, collector = _traced_bus()
        tracer = SpanTracer(bus)
        run = tracer.begin(0, "run", "run")
        epoch = tracer.begin(1, "e1", "epoch")
        tracer.end(90, epoch)
        tracer.end(100, run)
        roots = collector.roots()
        assert len(roots) == 1
        root = roots[0]
        assert root.name == "run" and root.begin == 0 and root.end == 100
        assert root.duration == 100
        assert [c.name for c in root.children] == ["e1"]
        assert root.children[0].duration == 89

    def test_synthesizes_burst_spans_under_open_epoch(self):
        bus, _, collector = _traced_bus()
        tracer = SpanTracer(bus)
        tracer.begin(0, "run", "run")
        epoch = tracer.begin(1, "e1", "epoch")
        bus.emit(BurstBegin(cycle=10))
        bus.emit(BurstEnd(cycle=30, index=0))
        tracer.end(90, epoch)
        tracer.close_all(100)
        (root,) = collector.roots()
        epoch_span = root.children[0]
        burst = epoch_span.children[0]
        assert burst.category == "burst"
        assert (burst.begin, burst.end) == (10, 30)
        assert burst.span_id < 0  # synthetic ids never collide with real ones

    def test_tree_lines_render_and_elide(self):
        bus, _, collector = _traced_bus()
        tracer = SpanTracer(bus)
        run = tracer.begin(0, "run", "run")
        for i in range(12):
            sid = tracer.begin(i, f"e{i}", "epoch", parent=run)
            tracer.end(i + 1, sid)
        tracer.close_all(20)
        lines = collector.tree_lines(max_children=8)
        assert lines[0].startswith("run:run")
        assert any("more" in line for line in lines)


class TestTracedRun:
    def test_real_run_produces_well_formed_tree(self):
        session = TelemetrySession(sinks=[ListSink()], tracing=True)
        result = run_level("vortex", "dyn", passes=2, telemetry=session)
        roots = session.spans.roots()
        assert len(roots) == 1
        root = roots[0]
        assert root.category == "run"
        assert root.name == "vortex/dyn"
        assert root.begin == 0 and root.end == result.cycles
        categories = set()

        def walk(span):
            categories.add(span.category)
            assert span.category in SPAN_CATEGORIES
            assert span.end is not None, "close_all must close every span"
            assert span.begin <= span.end
            for child in span.children:
                assert span.begin <= child.begin
                walk(child)

        walk(root)
        # A dyn run must show epochs, profiling bursts and analyses.
        assert {"run", "epoch", "burst", "analysis"} <= categories

    def test_tracing_off_emits_no_span_events(self):
        sink = ListSink()
        session = TelemetrySession(sinks=[sink])
        run_level("vortex", "dyn", passes=2, telemetry=session)
        kinds = {e.kind for e in sink.events}
        assert "SpanBegin" not in kinds and "SpanEnd" not in kinds
        assert session.spans is None

    def test_injection_spans_present_when_optimizing(self):
        session = TelemetrySession(sinks=[ListSink()], tracing=True)
        run_level("vortex", "dyn", passes=2, telemetry=session)

        found = []

        def walk(span):
            if span.category == "injection":
                found.append(span)
            for child in span.children:
                walk(child)

        for root in session.spans.roots():
            walk(root)
        assert found, "dyn run with injection should record injection spans"
        assert all(s.duration == 0 for s in found), "injection spans are instants"


@pytest.mark.parametrize("category", SPAN_CATEGORIES)
def test_categories_are_known_strings(category):
    assert isinstance(category, str) and category
