"""Resumable execution: ``start()``/``run_slice()`` vs. one-shot ``run()``.

Slicing is the substrate the tenancy scheduler stands on, so its contract is
tested independently of tenancy: any sequence of slice budgets must be
observationally identical to a single uninterrupted run.
"""

import pytest

from repro.errors import ExecutionError
from repro.interp.interpreter import Interpreter
from repro.machine.config import CacheGeometry, MachineConfig
from repro.workloads.chainmix import build_chainmix

MACHINE = MachineConfig(
    l1=CacheGeometry(512, 2),
    l2=CacheGeometry(4096, 4),
    l2_latency=10,
    memory_latency=100,
)


def _fresh(small_params):
    workload = build_chainmix(small_params)
    return Interpreter(workload.program, workload.memory, MACHINE), workload.args


def _run_sliced(interp, args, budget):
    interp.start(args)
    slices = 0
    while True:
        out = interp.run_slice(budget)
        slices += 1
        if out is not None:
            return out, slices


class TestSliceEquivalence:
    def test_sliced_equals_oneshot(self, small_params):
        interp, args = _fresh(small_params)
        whole = interp.run(args)
        for budget in (1, 7, 256, 100_000_000):
            interp, args = _fresh(small_params)
            sliced, slices = _run_sliced(interp, args, budget)
            assert sliced.to_dict() == whole.to_dict()
            if budget == 1:
                assert slices == whole.instructions
            if budget == 100_000_000:
                assert slices == 1

    def test_hierarchy_counters_identical(self, small_params):
        interp_a, args = _fresh(small_params)
        interp_a.run(args)
        interp_b, args = _fresh(small_params)
        _run_sliced(interp_b, args, 64)
        for attr in ("hits", "misses", "evictions"):
            assert getattr(interp_a.hierarchy.l1, attr) == getattr(interp_b.hierarchy.l1, attr)
            assert getattr(interp_a.hierarchy.l2, attr) == getattr(interp_b.hierarchy.l2, attr)

    def test_clock_advance_between_slices(self, small_params):
        # A scheduler may move the parked clock forward; the final stats
        # must report the advanced clock, not the tenant's own cycle sum.
        interp, args = _fresh(small_params)
        whole = interp.run(args)
        interp, args = _fresh(small_params)
        interp.start(args)
        advanced = 0
        out = interp.run_slice(1024)
        while out is None:
            interp.exec_state.cycles += 1000
            advanced += 1000
            out = interp.run_slice(1024)
        assert out.cycles == whole.cycles + advanced
        assert out.instructions == whole.instructions
        assert out.return_value == whole.return_value


class TestSliceGuards:
    def test_run_slice_before_start(self, small_params):
        interp, _args = _fresh(small_params)
        with pytest.raises(ExecutionError, match="before start"):
            interp.run_slice(10)

    def test_run_slice_after_finish(self, small_params):
        interp, args = _fresh(small_params)
        _run_sliced(interp, args, 1 << 40)
        with pytest.raises(ExecutionError, match="finished"):
            interp.run_slice(10)

    def test_bad_budget(self, small_params):
        interp, args = _fresh(small_params)
        interp.start(args)
        with pytest.raises(ExecutionError, match="budget"):
            interp.run_slice(0)

    def test_run_still_enforces_limit(self, small_params):
        interp, args = _fresh(small_params)
        with pytest.raises(ExecutionError, match="instruction limit"):
            interp.run(args, max_instructions=100)
