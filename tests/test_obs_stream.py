"""StreamingTraceSink: dual-sink byte identity, Perfetto sidecar, run splits.

The sink's contract is that streaming is a pure re-packaging of the buffered
export: same serialization, same order, chunked.  The heavyweight end-to-end
version of this (full workload, Chrome render comparison) lives in the
``obs`` verify section; these tests pin the mechanism on synthetic events.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.obs.chunks import load_chunk_events, load_chunks
from repro.obs.perfetto import parse_packet_count
from repro.obs.stream import (
    PFTRACE_NAME,
    StreamingTraceSink,
    run_summary_doc,
    split_runs,
)
from repro.telemetry.events import (
    BurstBegin,
    BurstEnd,
    CacheMiss,
    EventBus,
    RunBegin,
    RunEnd,
    SpanBegin,
    SpanEnd,
)
from repro.telemetry.sinks import JsonlSink


def _sample_run(bus, workload="vpr", base=0):
    bus.emit(RunBegin(cycle=base, workload=workload, level="dyn"))
    bus.emit(SpanBegin(cycle=base + 1, span_id=1, parent_id=0, name="run", category="run", detail=""))
    bus.emit(BurstBegin(cycle=base + 2))
    bus.emit(CacheMiss(cycle=base + 3, level="L1", block=2, stall=18))
    bus.emit(BurstEnd(cycle=base + 5, index=0))
    bus.emit(SpanEnd(cycle=base + 6, span_id=1))
    bus.emit(RunEnd(cycle=base + 9, instructions=5, bursts=1))


class TestDualSinkIdentity:
    def test_chunks_byte_identical_to_buffered_jsonl(self, tmp_path):
        jsonl_path = tmp_path / "buffered.jsonl"
        bus = EventBus()
        jsonl = JsonlSink(jsonl_path, flush_every=10_000)
        stream = StreamingTraceSink(tmp_path / "chunks", max_records=3)
        bus.attach(jsonl)
        bus.attach(stream)
        _sample_run(bus)
        _sample_run(bus, workload="mcf", base=100)
        jsonl.close()
        stream.close()
        chunk_bytes = b"".join(
            p.read_bytes() for p in sorted((tmp_path / "chunks").glob("chunk-*.jsonl"))
        )
        assert chunk_bytes == jsonl_path.read_bytes()
        events, load = load_chunk_events(tmp_path / "chunks")
        assert load.complete and len(events) == 14

    def test_existing_manifest_refused(self, tmp_path):
        StreamingTraceSink(tmp_path / "c").close()
        with pytest.raises(ConfigError, match="already holds a manifest"):
            StreamingTraceSink(tmp_path / "c")

    def test_flush_seals_partial_buffer(self, tmp_path):
        stream = StreamingTraceSink(tmp_path / "c", max_records=1000)
        bus = EventBus()
        bus.attach(stream)
        _sample_run(bus)
        stream.flush()
        # Sealed without close: the events are already durable on disk.
        load = load_chunks(tmp_path / "c")
        assert len(load.records) == 7 and not load.complete


class TestPerfettoSidecar:
    def test_sidecar_parses_and_tolerates_torn_tail(self, tmp_path):
        stream = StreamingTraceSink(tmp_path / "c", max_records=3)
        bus = EventBus()
        bus.attach(stream)
        _sample_run(bus)
        stream.close()
        data = (tmp_path / "c" / PFTRACE_NAME).read_bytes()
        packets = parse_packet_count(data)
        assert packets > 0
        # A torn tail only shortens the packet count, never errors.
        assert parse_packet_count(data[: len(data) // 2]) <= packets

    def test_perfetto_disabled(self, tmp_path):
        stream = StreamingTraceSink(tmp_path / "c", perfetto=False)
        bus = EventBus()
        bus.attach(stream)
        _sample_run(bus)
        stream.close()
        assert not (tmp_path / "c" / PFTRACE_NAME).exists()
        assert load_chunks(tmp_path / "c").complete


class TestRunSplits:
    def test_split_runs_on_run_begin(self, tmp_path):
        stream = StreamingTraceSink(tmp_path / "c")
        bus = EventBus()
        bus.attach(stream)
        _sample_run(bus, workload="vpr")
        _sample_run(bus, workload="mcf", base=50)
        stream.close()
        events, _load = load_chunk_events(tmp_path / "c")
        runs = split_runs(events)
        assert [label for label, _ in runs] == ["vpr/dyn", "mcf/dyn"]
        assert all(len(evs) == 7 for _, evs in runs)

    def test_pre_run_events_get_fallback_label(self):
        runs = split_runs([SpanEnd(cycle=1, span_id=9)])
        assert len(runs) == 1 and runs[0][0] == "?"


def test_run_summary_doc_shape():
    from repro.interp.interpreter import ExecStats
    from repro.machine.config import PAPER_MACHINE

    stats = ExecStats()
    stats.icount = 10
    stats.cycles = 10
    doc = run_summary_doc("vpr", "dyn", stats, PAPER_MACHINE)
    assert doc["workload"] == "vpr" and doc["level"] == "dyn"
    assert doc["attribution"]["total"] == 10
    assert "by_proc" not in doc
