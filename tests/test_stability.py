"""Tests for stream stability analysis (the ref [10] extension)."""

import dataclasses

import pytest

from repro.analysis.stability import (
    address_overlap,
    hot_reference_coverage,
    pc_signature,
    signature_heat,
    stream_overlap,
)
from repro.analysis.stream import HotDataStream
from repro.core.optimizer import DynamicPrefetcher
from repro.interp.interpreter import Interpreter
from repro.ir.instructions import Pc
from repro.machine.config import CacheGeometry, MachineConfig
from repro.profiling.trace import SymbolTable
from repro.vulcan.static_edit import instrument_program
from repro.workloads.chainmix import build_chainmix

SMALL_MACHINE = MachineConfig(
    l1=CacheGeometry(512, 2), l2=CacheGeometry(4096, 4), l2_latency=10, memory_latency=100
)


def make_stream(table, refs, heat=10, rule_id=0):
    symbols = tuple(table.intern(Pc(p, o), a) for p, o, a in refs)
    return HotDataStream(symbols, heat=heat, rule_id=rule_id)


class TestSignatures:
    def test_pc_signature_projects_addresses_away(self):
        table = SymbolTable()
        s1 = make_stream(table, [("f", 0, 0x100), ("f", 1, 0x200)])
        s2 = make_stream(table, [("f", 0, 0x900), ("f", 1, 0xA00)])
        assert pc_signature(s1, table) == pc_signature(s2, table)

    def test_signature_heat_merges_same_shape(self):
        table = SymbolTable()
        s1 = make_stream(table, [("f", 0, 0x100), ("f", 1, 0x200)], heat=10)
        s2 = make_stream(table, [("f", 0, 0x900), ("f", 1, 0xA00)], heat=5)
        heat = signature_heat([s1, s2], table)
        assert list(heat.values()) == [15]


class TestOverlap:
    def test_identical_sets_overlap_fully(self):
        table = SymbolTable()
        streams = [make_stream(table, [("f", 0, 0x100), ("f", 1, 0x200)], heat=10)]
        assert stream_overlap(streams, table, streams, table) == pytest.approx(1.0)

    def test_disjoint_shapes_zero(self):
        ta, tb = SymbolTable(), SymbolTable()
        a = [make_stream(ta, [("f", 0, 0x100), ("f", 1, 0x200)])]
        b = [make_stream(tb, [("g", 0, 0x100), ("g", 1, 0x200)])]
        assert stream_overlap(a, ta, b, tb) == 0.0

    def test_same_shape_different_addresses_counts_as_stable(self):
        ta, tb = SymbolTable(), SymbolTable()
        a = [make_stream(ta, [("f", 0, 0x100), ("f", 1, 0x104)])]
        b = [make_stream(tb, [("f", 0, 0x7700), ("f", 1, 0x7704)])]
        assert stream_overlap(a, ta, b, tb) == pytest.approx(1.0)

    def test_empty_sets(self):
        table = SymbolTable()
        assert stream_overlap([], table, [], table) == 0.0

    def test_partial_overlap_between_extremes(self):
        ta, tb = SymbolTable(), SymbolTable()
        shared_a = make_stream(ta, [("f", 0, 0x1), *[("f", 1, 0x5)]], heat=10)
        only_a = make_stream(ta, [("h", 0, 0x1), ("h", 1, 0x5)], heat=10)
        shared_b = make_stream(tb, [("f", 0, 0x9), *[("f", 1, 0xD)]], heat=10)
        only_b = make_stream(tb, [("k", 0, 0x1), ("k", 1, 0x5)], heat=10)
        overlap = stream_overlap([shared_a, only_a], ta, [shared_b, only_b], tb)
        assert 0.0 < overlap < 1.0


class TestAddressOverlap:
    def test_identical_is_one(self):
        table = SymbolTable()
        streams = [make_stream(table, [("f", 0, 0x100), ("f", 1, 0x104)], heat=10)]
        assert address_overlap(streams, table, streams, table) == pytest.approx(1.0)

    def test_same_shape_different_addresses_is_zero(self):
        ta, tb = SymbolTable(), SymbolTable()
        a = [make_stream(ta, [("f", 0, 0x100), ("f", 1, 0x104)])]
        b = [make_stream(tb, [("f", 0, 0x900), ("f", 1, 0x904)])]
        assert stream_overlap(a, ta, b, tb) == pytest.approx(1.0)
        assert address_overlap(a, ta, b, tb) == 0.0

    def test_empty(self):
        table = SymbolTable()
        assert address_overlap([], table, [], table) == 0.0


class TestCoverage:
    def test_coverage_fraction(self):
        table = SymbolTable()
        streams = [make_stream(table, [("f", 0, 0x1), ("f", 1, 0x2)], heat=80)]
        assert hot_reference_coverage(streams, trace_length=100) == pytest.approx(0.8)

    def test_coverage_capped_at_one(self):
        table = SymbolTable()
        streams = [make_stream(table, [("f", 0, 0x1), ("f", 1, 0x2)], heat=500)]
        assert hot_reference_coverage(streams, 100) == 1.0

    def test_empty_trace(self):
        assert hot_reference_coverage([], 0) == 0.0


class TestCrossInputStability:
    """Ref [10]'s claim, reproduced: streams are stable across inputs."""

    def _streams_for_seed(self, small_params, small_opt, seed):
        params = dataclasses.replace(small_params, seed=seed)
        wl = build_chainmix(params, passes=16)
        program, _ = instrument_program(wl.program)
        interp = Interpreter(program, wl.memory, SMALL_MACHINE)
        optimizer = DynamicPrefetcher(program, interp, SMALL_MACHINE, small_opt)
        captured = {}
        original = optimizer._optimize

        def capture(now=0):
            from repro.analysis.hotstreams import find_hot_streams

            # The batched feed holds references in the profiler's buffer
            # until _optimize flushes them; drain it before peeking at the
            # grammar (flush is idempotent, _optimize's own flush is a no-op).
            optimizer.profiler.flush()
            captured.setdefault(
                "streams",
                find_hot_streams(optimizer.profiler.sequitur, small_opt.analysis),
            )
            return original(now)

        optimizer._optimize = capture
        interp.run(wl.args)
        return captured["streams"], optimizer.profiler.symbols

    def test_streams_stable_across_seeds(self, small_params, small_opt):
        a, ta = self._streams_for_seed(small_params, small_opt, seed=7)
        b, tb = self._streams_for_seed(small_params, small_opt, seed=1234)
        overlap = stream_overlap(a, ta, b, tb)
        # Different heap layouts and visit orders, same program: the pc
        # shapes of the hot streams should largely coincide.
        assert overlap > 0.5

    def test_streams_cover_most_of_the_trace(self, small_params, small_opt):
        streams, _table = self._streams_for_seed(small_params, small_opt, seed=7)
        # Coverage is measured against the profiled trace length; heat
        # already encodes length*frequency within that trace.
        # The trace length equals what the profiler recorded for cycle 1;
        # approximate with the sum bound: coverage must be substantial.
        total_heat = sum(s.heat for s in streams)
        assert total_heat > 0
