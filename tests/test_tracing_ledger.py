"""Tests for repro.tracing.ledger: per-prefetch lifecycle records.

Unit tests drive the hooks directly; integration tests attach the ledger to
real runs and require exact reconciliation against the hierarchy's own
:class:`PrefetchStats` and per-stream counters at every prefetching level.
"""

from __future__ import annotations

import pytest

from repro.bench.runner import run_level
from repro.machine.hierarchy import PrefetchStats
from repro.telemetry.session import TelemetrySession
from repro.telemetry.sinks import ListSink
from repro.tracing.ledger import FATES, TERMINAL_FATES, PrefetchLedger


class TestLedgerUnit:
    def test_useful_lifecycle(self):
        led = PrefetchLedger()
        led.on_issue(block=0x10, cycle=100, source="sw", stream="s", redundant=False)
        led.on_use(block=0x10, cycle=160, late=False, lead=60)
        (rec,) = led.records
        assert rec.fate == "useful"
        assert rec.lead == 60 and rec.fate_cycle == 160
        assert led.fate_counts["useful"] == 1
        assert led.open_count == 0

    def test_late_lifecycle_records_residual(self):
        led = PrefetchLedger()
        led.on_issue(block=0x20, cycle=0, source="sw", stream=None, redundant=False)
        led.on_use(block=0x20, cycle=40, late=True, lead=40, residual=60)
        (rec,) = led.records
        assert rec.fate == "late"
        assert rec.residual == 60

    def test_redundant_closes_immediately(self):
        led = PrefetchLedger()
        led.on_issue(block=0x30, cycle=5, source="sw", stream=None, redundant=True)
        (rec,) = led.records
        assert rec.fate == "redundant"
        assert led.open_count == 0

    def test_eviction_is_polluting(self):
        led = PrefetchLedger()
        led.on_issue(block=0x40, cycle=0, source="sw", stream=None, redundant=False)
        led.on_evict(block=0x40, cycle=30)
        assert led.records[0].fate == "polluting"

    def test_expiry_is_wasted(self):
        led = PrefetchLedger()
        led.on_issue(block=0x50, cycle=0, source="sw", stream=None, redundant=False)
        led.on_expire(block=0x50, cycle=99)
        assert led.records[0].fate == "wasted"

    def test_reissue_of_open_block_closes_orphan_as_wasted(self):
        led = PrefetchLedger()
        led.on_issue(block=0x60, cycle=0, source="sw", stream=None, redundant=False)
        led.on_issue(block=0x60, cycle=10, source="sw", stream=None, redundant=False)
        fates = [r.fate for r in led.records]
        assert fates == ["wasted", "inflight"]

    def test_use_without_issue_is_ignored(self):
        led = PrefetchLedger()
        led.on_use(block=0x70, cycle=10, late=False, lead=5)
        led.on_evict(block=0x70, cycle=20)
        led.on_expire(block=0x70, cycle=30)
        assert not led.records

    def test_per_stream_grouping(self):
        led = PrefetchLedger()
        for i in range(3):
            led.on_issue(block=i, cycle=i, source="sw", stream="a", redundant=False)
            led.on_use(block=i, cycle=i + 50, late=False, lead=50)
        led.on_issue(block=9, cycle=0, source="sw", stream="b", redundant=False)
        led.on_evict(block=9, cycle=5)
        per = led.per_stream()
        assert per["a"].issued == 3 and per["a"].useful == 3
        assert per["a"].accuracy == 1.0
        assert per["b"].polluting == 1 and per["b"].useful == 0

    def test_reconcile_flags_mismatch(self):
        led = PrefetchLedger()
        led.on_issue(block=1, cycle=0, source="sw", stream=None, redundant=False)
        led.on_use(block=1, cycle=10, late=False, lead=10)
        stats = PrefetchStats(issued=2, useful=1)
        mismatches = led.reconcile(stats)
        assert mismatches and any("issued" in m for m in mismatches)

    def test_reconcile_flags_open_records(self):
        led = PrefetchLedger()
        led.on_issue(block=1, cycle=0, source="sw", stream=None, redundant=False)
        stats = PrefetchStats(issued=1)
        mismatches = led.reconcile(stats)
        assert any("open" in m or "inflight" in m for m in mismatches)

    def test_fate_vocabulary(self):
        assert set(TERMINAL_FATES) == {"redundant", "useful", "late", "polluting", "wasted"}
        assert set(FATES) - set(TERMINAL_FATES) == {"inflight"}


@pytest.mark.parametrize("level", ["seq", "dyn", "static", "stride", "markov"])
def test_ledger_reconciles_on_real_runs(level):
    session = TelemetrySession(
        sinks=[ListSink()],
        miss_sample_every=1,
        prefetch_sample_every=1,
        tracing=True,
        track_prefetches=True,
    )
    result = run_level("vortex", level, passes=2, telemetry=session)
    ledger = session.ledger
    stats = result.hierarchy.prefetch
    assert ledger.issued == stats.issued
    assert ledger.reconcile(stats) == []
    # Terminal fates must partition everything issued (conservation of fate).
    assert sum(ledger.fate_counts.values()) == ledger.issued
    assert ledger.fate_counts.get("inflight", 0) == 0


def test_ledger_matches_per_stream_hierarchy_counters():
    session = TelemetrySession(
        sinks=[ListSink()],
        miss_sample_every=1,
        prefetch_sample_every=1,
        tracing=True,
        track_prefetches=True,
    )
    result = run_level("vortex", "dyn", passes=2, telemetry=session)
    per = session.ledger.per_stream()
    hier = result.hierarchy.stream_stats
    assert per, "a dyn run should attribute prefetches to streams"
    for key, stats in per.items():
        assert key in hier
        assert hier[key].issued == stats.issued
        assert hier[key].useful == stats.useful
        assert hier[key].late == stats.late
        # Every attributed stream has a human-readable name for explain.
        assert key in result.hierarchy.stream_names


def test_ledger_absent_by_default():
    session = TelemetrySession(sinks=[ListSink()])
    result = run_level("vortex", "dyn", passes=2, telemetry=session)
    assert session.ledger is None
    assert result.hierarchy.ledger is None
