"""Tests for repro.tracing.explain: per-stream scorecards + rendering.

The acceptance bar: explain produces scorecards for every preset workload,
and every scorecard's counters reconcile exactly against the hierarchy's
:class:`StreamPrefetchStats` (``explanation.mismatches`` stays empty).
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.tracing.explain import explain_level, render_explanation
from repro.workloads import presets


@pytest.fixture(scope="module")
def explanations():
    return {name: explain_level(name, passes=2) for name in presets.names()}


@pytest.mark.parametrize("name", presets.names())
def test_scorecards_reconcile_for_every_workload(explanations, name):
    exp = explanations[name]
    assert exp.mismatches == []
    assert exp.scorecards, f"{name}/dyn should install at least one stream"
    total_issued = sum(card.stats.issued for card in exp.scorecards)
    assert total_issued > 0
    for card in exp.scorecards:
        s = card.stats
        assert s.issued == s.useful + s.late + s.redundant + s.polluting + s.wasted
        assert card.name, "every stream needs a human-readable name"


@pytest.mark.parametrize("name", presets.names())
def test_attribution_conserves_in_explanation(explanations, name):
    att = explanations[name].attribution
    assert att.conserved
    assert att.total == explanations[name].cycles


def test_scorecards_sorted_by_issued(explanations):
    exp = explanations["vpr"]
    issued = [card.stats.issued for card in exp.scorecards]
    assert issued == sorted(issued, reverse=True)
    assert [card.sid for card in exp.scorecards] == [
        f"s{i}" for i in range(1, len(exp.scorecards) + 1)
    ]


def test_est_saved_bounded_by_memory_latency(explanations):
    from repro.machine.config import PAPER_MACHINE

    for exp in explanations.values():
        for card in exp.scorecards:
            ceiling = (card.stats.useful + card.stats.late) * PAPER_MACHINE.memory_latency
            assert 0 <= card.est_saved <= ceiling


def test_render_summary_contains_tables(explanations):
    text = render_explanation(explanations["vpr"])
    assert "cycle attribution" in text
    assert "per-stream scorecards" in text
    assert "memory stall" in text
    assert "s1" in text


def test_render_single_stream_view(explanations):
    exp = explanations["vpr"]
    text = render_explanation(exp, stream="s1")
    assert f"stream s1: {exp.scorecards[0].name}" in text
    assert "lead p50/p90" in text
    assert "watchdog verdicts" in text


def test_unknown_stream_rejected(explanations):
    with pytest.raises(ConfigError, match="unknown stream"):
        render_explanation(explanations["vpr"], stream="s999")


def test_nopref_level_explains_without_scorecards():
    exp = explain_level("vortex", level="nopref", passes=2)
    assert exp.scorecards == []
    assert exp.mismatches == []
    text = render_explanation(exp)
    assert "no stream issued a prefetch" in text
