"""Property: slice budgets compose — ``run_slice(a + b)`` ≡ ``a`` then ``b``.

Checkpoint/resume correctness reduces to this algebra: a checkpoint is just
a park between two slices, so any partition of the instruction stream into
budgets must land on the same final state as any other.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.interp.interpreter import Interpreter
from repro.machine.config import CacheGeometry, MachineConfig
from repro.workloads.chainmix import build_chainmix

MACHINE = MachineConfig(
    l1=CacheGeometry(512, 2),
    l2=CacheGeometry(4096, 4),
    l2_latency=10,
    memory_latency=100,
)

#: Budget sequences: a few arbitrary positive slices; the tail always runs
#: to completion with an effectively unbounded budget.
BUDGETS = st.lists(st.integers(min_value=1, max_value=5_000), max_size=6)


def _fresh(small_params):
    workload = build_chainmix(small_params)
    return Interpreter(workload.program, workload.memory, MACHINE), workload.args


def _run_with_budgets(small_params, budgets):
    interp, args = _fresh(small_params)
    interp.start(args)
    out = None
    for budget in budgets:
        out = interp.run_slice(budget)
        if out is not None:
            return out
    while out is None:
        out = interp.run_slice(1 << 40)
    return out


class TestBudgetComposition:
    @settings(
        max_examples=30,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(budgets=BUDGETS)
    def test_any_budget_partition_matches_oneshot(self, small_params, budgets):
        interp, args = _fresh(small_params)
        whole = interp.run(args)
        sliced = _run_with_budgets(small_params, budgets)
        assert sliced.to_dict() == whole.to_dict()

    @settings(
        max_examples=30,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        a=st.integers(min_value=1, max_value=4_000),
        b=st.integers(min_value=1, max_value=4_000),
    )
    def test_split_budget_equals_joint_budget(self, small_params, a, b):
        """run_slice(a + b) parks at the same state as run_slice(a) then
        run_slice(b): identical icount, cycles and cache counters."""
        joint, args = _fresh(small_params)
        joint.start(args)
        joint_out = joint.run_slice(a + b)

        split, args = _fresh(small_params)
        split.start(args)
        split_out = split.run_slice(a)
        if split_out is None:
            split_out = split.run_slice(b)

        if joint_out is not None or split_out is not None:
            # Program finished inside the window for at least one of them;
            # then it must have finished for both, with identical results.
            assert joint_out is not None and split_out is not None
            assert joint_out.to_dict() == split_out.to_dict()
            return
        assert split.exec_state.icount == joint.exec_state.icount
        assert split.exec_state.cycles == joint.exec_state.cycles
        for level_a, level_b in ((split.hierarchy.l1, joint.hierarchy.l1),
                                 (split.hierarchy.l2, joint.hierarchy.l2)):
            assert level_a.hits == level_b.hits
            assert level_a.misses == level_b.misses
            assert level_a.evictions == level_b.evictions
        # Both parked mid-run: finishing them yields identical results.
        final_split = split.run_slice(1 << 40)
        final_joint = joint.run_slice(1 << 40)
        while final_split is None:
            final_split = split.run_slice(1 << 40)
        while final_joint is None:
            final_joint = joint.run_slice(1 << 40)
        assert final_split.to_dict() == final_joint.to_dict()
