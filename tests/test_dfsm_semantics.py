"""Property tests for the DFSM's runtime semantics against a suffix oracle.

The joint prefix-matching DFSM must satisfy an exact invariant: after
feeding any symbol sequence, its current state contains the element
``[v, n]`` **iff** the last ``n`` symbols of the input equal the first
``n`` references of stream ``v`` (for ``1 <= n <= headLen``).  In
particular a stream's head completes exactly when the input's suffix is
that head.  This pins down Figure 9's transition function — including the
initial/failed-match special cases of Figure 7 — against a brute-force
oracle.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.stream import HotDataStream
from repro.dfsm import build_dfsm

HEAD_LEN = 3


def oracle_state(history, heads):
    """The exact element set implied by the input's suffixes."""
    elements = set()
    for v, head in enumerate(heads):
        for n in range(1, min(HEAD_LEN, len(history)) + 1):
            if tuple(history[-n:]) == head[:n]:
                elements.add((v, n))
    return frozenset(elements)


streams_strategy = st.lists(
    st.lists(st.integers(min_value=0, max_value=4), min_size=HEAD_LEN + 1, max_size=7)
    .map(tuple),
    min_size=1,
    max_size=5,
    unique=True,
)
inputs_strategy = st.lists(st.integers(min_value=0, max_value=5), min_size=0, max_size=40)


@settings(max_examples=200, deadline=None)
@given(streams_strategy, inputs_strategy)
def test_dfsm_state_matches_suffix_oracle(stream_symbols, inputs):
    streams = [
        HotDataStream(symbols, heat=100 - i, rule_id=i)
        for i, symbols in enumerate(stream_symbols)
    ]
    heads = [s.head(HEAD_LEN) for s in streams]
    dfsm = build_dfsm(streams, head_len=HEAD_LEN)

    state = 0
    history: list[int] = []
    for symbol in inputs:
        state = dfsm.step(state, symbol)
        history.append(symbol)
        assert dfsm.states[state] == oracle_state(history, heads)


@settings(max_examples=100, deadline=None)
@given(streams_strategy)
def test_feeding_a_head_always_completes_it(stream_symbols):
    streams = [
        HotDataStream(symbols, heat=100 - i, rule_id=i)
        for i, symbols in enumerate(stream_symbols)
    ]
    dfsm = build_dfsm(streams, head_len=HEAD_LEN)
    for v, stream in enumerate(streams):
        state = 0
        for symbol in stream.head(HEAD_LEN):
            state = dfsm.step(state, symbol)
        assert v in dfsm.completions.get(state, ())


@settings(max_examples=100, deadline=None)
@given(streams_strategy, inputs_strategy)
def test_completions_fire_exactly_on_head_suffixes(stream_symbols, inputs):
    streams = [
        HotDataStream(symbols, heat=100 - i, rule_id=i)
        for i, symbols in enumerate(stream_symbols)
    ]
    heads = [s.head(HEAD_LEN) for s in streams]
    dfsm = build_dfsm(streams, head_len=HEAD_LEN)
    state = 0
    history: list[int] = []
    for symbol in inputs:
        state = dfsm.step(state, symbol)
        history.append(symbol)
        completed = set(dfsm.completions.get(state, ()))
        expected = {
            v for v, head in enumerate(heads)
            if len(history) >= HEAD_LEN and tuple(history[-HEAD_LEN:]) == head
        }
        assert completed == expected
