"""Tests for the Chrome trace-event exporter in repro.telemetry.export.

A traced run must serialize to a document chrome://tracing and Perfetto can
load: every entry carries the required keys, duration events balance per
thread, and the writer/loader pair round-trips.
"""

from __future__ import annotations

import json

import pytest

from repro.bench.cli import main as cli_main
from repro.bench.runner import run_level
from repro.errors import ConfigError
from repro.telemetry.export import (
    chrome_trace_events,
    load_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.telemetry.session import TelemetrySession
from repro.telemetry.sinks import ListSink


@pytest.fixture(scope="module")
def traced_events():
    sink = ListSink()
    session = TelemetrySession(sinks=[sink], tracing=True)
    run_level("vpr", "dyn", passes=2, telemetry=session)
    return sink.events


class TestChromeTraceEvents:
    def test_required_keys_on_every_entry(self, traced_events):
        for entry in chrome_trace_events(traced_events):
            for key in ("ph", "ts", "pid", "name"):
                assert key in entry

    def test_duration_events_balance_per_thread(self, traced_events):
        stacks = {}
        for entry in chrome_trace_events(traced_events):
            thread = (entry["pid"], entry["tid"])
            if entry["ph"] == "B":
                stacks.setdefault(thread, []).append(entry["name"])
            elif entry["ph"] == "E":
                assert stacks.get(thread), f"E without B on {thread}"
                assert stacks[thread].pop() == entry["name"]
        assert all(not stack for stack in stacks.values())

    def test_timestamps_are_sorted(self, traced_events):
        ts = [e["ts"] for e in chrome_trace_events(traced_events) if e["ph"] != "M"]
        assert ts == sorted(ts)

    def test_span_and_burst_events_become_durations(self, traced_events):
        entries = chrome_trace_events(traced_events)
        names = {e["name"] for e in entries if e["ph"] == "B"}
        assert any(name.startswith("epoch-") for name in names)
        assert "burst" in names
        assert any(e["ph"] == "i" for e in entries), "instants for non-span events"

    def test_process_label_and_thread_names(self, traced_events):
        entries = chrome_trace_events(traced_events, pid=7, label="vpr/dyn")
        meta = [e for e in entries if e["ph"] == "M"]
        assert any(e["name"] == "process_name" and e["args"]["name"] == "vpr/dyn" for e in meta)
        assert all(e["pid"] == 7 for e in entries)


class TestWriteLoadValidate:
    def test_round_trip(self, traced_events, tmp_path):
        path = tmp_path / "trace.json"
        count = write_chrome_trace([("vpr/dyn", traced_events)], path)
        document = load_chrome_trace(path)
        assert len(document["traceEvents"]) == count
        validate_chrome_trace(document)  # idempotent, no exception

    def test_multiple_runs_get_distinct_pids(self, traced_events, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(
            [("vpr/dyn", traced_events), ("vpr/dyn-again", traced_events)], path
        )
        document = load_chrome_trace(path)
        assert {e["pid"] for e in document["traceEvents"]} == {1, 2}

    def test_validate_rejects_non_object(self):
        with pytest.raises(ConfigError, match="JSON object"):
            validate_chrome_trace([1, 2, 3])

    def test_validate_rejects_missing_trace_events(self):
        with pytest.raises(ConfigError, match="traceEvents"):
            validate_chrome_trace({"displayTimeUnit": "ms"})

    def test_validate_rejects_empty_trace_events(self):
        with pytest.raises(ConfigError, match="traceEvents"):
            validate_chrome_trace({"traceEvents": []})

    def test_validate_rejects_missing_required_key(self):
        doc = {"traceEvents": [{"ph": "i", "ts": 0, "pid": 1}]}  # no name
        with pytest.raises(ConfigError, match="name"):
            validate_chrome_trace(doc)

    def test_validate_rejects_unknown_phase(self):
        doc = {"traceEvents": [{"ph": "Z", "ts": 0, "pid": 1, "name": "x"}]}
        with pytest.raises(ConfigError, match="phase"):
            validate_chrome_trace(doc)

    def test_validate_rejects_unbalanced_begin(self):
        doc = {"traceEvents": [{"ph": "B", "ts": 0, "pid": 1, "tid": 0, "name": "x"}]}
        with pytest.raises(ConfigError, match="unclosed"):
            validate_chrome_trace(doc)

    def test_validate_rejects_stray_end(self):
        doc = {"traceEvents": [{"ph": "E", "ts": 0, "pid": 1, "tid": 0, "name": "x"}]}
        with pytest.raises(ConfigError, match="without matching"):
            validate_chrome_trace(doc)

    def test_validate_rejects_mismatched_nesting(self):
        doc = {
            "traceEvents": [
                {"ph": "B", "ts": 0, "pid": 1, "tid": 0, "name": "a"},
                {"ph": "E", "ts": 5, "pid": 1, "tid": 0, "name": "b"},
            ]
        }
        with pytest.raises(ConfigError, match="closes"):
            validate_chrome_trace(doc)


def test_cli_trace_writes_valid_chrome_trace(tmp_path, capsys):
    out = tmp_path / "trace-vortex.json"
    code = cli_main(
        ["trace", "--workloads", "vortex", "--scale", "0.1", "--out", str(out)]
    )
    assert code == 0
    assert "chrome trace written" in capsys.readouterr().out
    with open(out, encoding="utf-8") as fh:
        document = json.load(fh)
    validate_chrome_trace(document)
    names = {e["name"] for e in document["traceEvents"]}
    assert "vortex/dyn" in names  # the run span
