"""Tests for the offline full-trace profiling workflow (prior work [8])."""

import pytest

from repro.analysis.hotstreams import AnalysisConfig
from repro.machine.config import CacheGeometry, MachineConfig
from repro.profiling.offline import collect_offline_profile
from repro.workloads.chainmix import build_chainmix

SMALL_MACHINE = MachineConfig(
    l1=CacheGeometry(512, 2), l2=CacheGeometry(4096, 4), l2_latency=10, memory_latency=100
)


@pytest.fixture(scope="module")
def profile():
    from repro.workloads.chainmix import ChainMixParams

    params = ChainMixParams(
        name="small", groups=2, hot_chains=6, cold_chains=20, chain_len=9,
        hot_fraction=0.75, schedule_len=32, passes=6, cold_refs_per_step=4,
        cold_array_blocks=64, node_compute=1, unroll=4, seed=7,
    )
    wl = build_chainmix(params)
    return collect_offline_profile(wl, SMALL_MACHINE)


class TestCollection:
    def test_every_reference_traced(self, profile):
        assert profile.trace_length == profile.stats.memory_refs
        assert profile.stats.traced_refs == profile.stats.memory_refs

    def test_grammar_compresses_repetitive_trace(self, profile):
        assert profile.compression_ratio > 2.0

    def test_hot_streams_found(self, profile):
        config = AnalysisConfig(heat_ratio=0.002, min_length=4, max_length=64, min_unique=3)
        streams = profile.hot_streams(config)
        assert streams
        assert all(s.length >= 4 for s in streams)

    def test_hot_streams_cover_most_references(self, profile):
        """The [8] statistic: hot streams account for most of the trace."""
        config = AnalysisConfig(heat_ratio=0.002, min_length=4, max_length=64, min_unique=3)
        assert profile.coverage(config) > 0.5

    def test_full_tracing_is_expensive(self):
        """The overhead the online framework avoids: full tracing costs a lot."""
        from repro.workloads.chainmix import ChainMixParams
        from repro.interp.interpreter import Interpreter

        params = ChainMixParams(
            name="small", groups=2, hot_chains=6, cold_chains=20, chain_len=9,
            hot_fraction=0.75, schedule_len=32, passes=3, cold_refs_per_step=4,
            cold_array_blocks=64, node_compute=1, unroll=4, seed=7,
        )
        wl = build_chainmix(params)
        plain = Interpreter(wl.program, wl.memory, SMALL_MACHINE).run(wl.args)
        wl2 = build_chainmix(params)
        traced = collect_offline_profile(wl2, SMALL_MACHINE)
        overhead = (traced.stats.cycles - plain.cycles) / plain.cycles
        assert overhead > 0.10


class TestBounding:
    def test_max_refs_bounds_recording_not_execution(self):
        from repro.workloads.chainmix import ChainMixParams

        params = ChainMixParams(
            name="small", groups=2, hot_chains=6, cold_chains=20, chain_len=9,
            hot_fraction=0.75, schedule_len=32, passes=4, cold_refs_per_step=4,
            cold_array_blocks=64, node_compute=1, unroll=4, seed=7,
        )
        wl = build_chainmix(params)
        profile = collect_offline_profile(wl, SMALL_MACHINE, max_refs=500)
        assert profile.trace_length == 500
        assert profile.stats.memory_refs > 500

    def test_empty_profile_coverage_zero(self):
        from repro.profiling.offline import OfflineProfile
        from repro.profiling.profiler import TemporalProfiler
        from repro.interp.interpreter import ExecStats

        empty = OfflineProfile(profiler=TemporalProfiler(), stats=ExecStats())
        assert empty.coverage() == 0.0
        assert empty.compression_ratio == 0.0
