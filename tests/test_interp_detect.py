"""Focused tests for detection-handler execution inside the interpreter."""

from repro.interp.interpreter import Interpreter
from repro.ir import ProcedureBuilder, build_program
from repro.machine.config import CacheGeometry, MachineConfig
from repro.machine.memory import Memory
from repro.vulcan.dynamic_edit import inject_detection

MACHINE = MachineConfig(
    l1=CacheGeometry(512, 2), l2=CacheGeometry(4096, 4),
    l2_latency=10, memory_latency=100,
    detect_base=2, detect_per_case=3, prefetch_issue_cost=1,
)


class CountingHandler:
    """Detect payload with scripted transitions and observable calls."""

    def __init__(self, prefetch_at=None, cases=1):
        self.calls = []
        self.prefetch_at = prefetch_at or {}
        self.cases = cases

    def step(self, state, addr):
        self.calls.append((state, addr))
        next_state = state + 1
        prefetches = self.prefetch_at.get(next_state, ())
        return next_state, prefetches, self.cases


def program_with_loads(n_loads=3):
    b = ProcedureBuilder("main")
    base = b.const(None, 0x1000_0000)
    for k in range(n_loads):
        b.load(None, base, 32 * k)
    b.ret()
    return build_program([b], entry="main")


class TestDetectExecution:
    def test_handler_called_per_load_with_running_state(self):
        program = program_with_loads(3)
        handler = CountingHandler()
        handlers = {pc: handler for pc in program.original("main").pcs()}
        inject_detection(program, handlers)
        interp = Interpreter(program, Memory(), MACHINE)
        stats = interp.run()
        assert handler.calls == [
            (0, 0x1000_0000),
            (1, 0x1000_0020),
            (2, 0x1000_0040),
        ]
        assert stats.detects_executed == 3
        assert interp.dfsm_state == 3

    def test_detect_cycle_cost_model(self):
        program = program_with_loads(2)
        handler = CountingHandler(cases=4)
        handlers = {pc: handler for pc in program.original("main").pcs()}
        inject_detection(program, handlers)
        stats = Interpreter(program, Memory(), MACHINE).run()
        # detect_base + detect_per_case * cases, per execution.
        assert stats.detect_cycles == 2 * (2 + 3 * 4)

    def test_prefetches_issued_on_completion(self):
        program = program_with_loads(2)
        handler = CountingHandler(prefetch_at={2: (0x2000_0000, 0x2000_0040)})
        handlers = {pc: handler for pc in program.original("main").pcs()}
        inject_detection(program, handlers)
        interp = Interpreter(program, Memory(), MACHINE)
        stats = interp.run()
        assert stats.prefetches_issued == 2
        assert interp.hierarchy.prefetch.issued == 2

    def test_prefetched_block_is_resident_afterwards(self):
        b = ProcedureBuilder("main")
        base = b.const(None, 0x1000_0000)
        b.load(None, base, 0)        # triggers handler -> prefetch
        other = b.const(None, 0x2000_0000)
        filler = b.reg("f")
        for _ in range(300):          # give the prefetch time to land
            b.addi(filler, filler, 1)
        b.load(None, other, 0)        # should hit the prefetched block
        b.ret()
        program = build_program([b], entry="main")
        pcs = program.original("main").pcs()
        handler = CountingHandler(prefetch_at={1: (0x2000_0000,)})
        inject_detection(program, {pcs[0]: handler})
        interp = Interpreter(program, Memory(), MACHINE)
        stats = interp.run()
        assert interp.hierarchy.prefetch.useful == 1
        # Only the first (demand) load stalled.
        assert stats.mem_stall_cycles == 100

    def test_uninjected_loads_have_no_detect_cost(self):
        program = program_with_loads(3)
        pcs = program.original("main").pcs()
        handler = CountingHandler()
        inject_detection(program, {pcs[1]: handler})
        stats = Interpreter(program, Memory(), MACHINE).run()
        assert stats.detects_executed == 1
        assert handler.calls == [(0, 0x1000_0020)]

    def test_dfsm_state_persists_across_calls(self):
        callee = ProcedureBuilder("touch", params=("base",))
        callee.load(None, callee.param("base"), 0)
        callee.ret()
        main = ProcedureBuilder("main")
        base = main.const(None, 0x1000_0000)
        main.call(None, "touch", (base,))
        main.call(None, "touch", (base,))
        main.ret()
        program = build_program([main, callee], entry="main")
        handler = CountingHandler()
        inject_detection(program, {program.original("touch").pcs()[0]: handler})
        interp = Interpreter(program, Memory(), MACHINE)
        interp.run()
        # The state variable is global: second call sees state 1.
        assert handler.calls == [(0, 0x1000_0000), (1, 0x1000_0000)]
