"""Tests for figure/table regeneration and the CLI (small-scale runs)."""


import pytest

from repro.bench import figures
from repro.bench.cli import main as cli_main
from repro.bench.figures import ResultCache
from repro.bench.reporting import format_table
from repro.core.config import OptimizerConfig


class TestSmallArtifacts:
    def test_figure4_text(self):
        text = figures.figure4_grammar()
        assert text.splitlines()[0] == "S -> R1 a R3 R3"
        assert "R1 -> a b" in text

    def test_table1_matches_paper(self):
        rows = {r["word"]: r for r in figures.table1_rows()}
        assert rows["abcabc"]["hot"] is True
        assert rows["abcabc"]["heat"] == 12
        assert rows["abc"]["coldUses"] == 0
        assert rows["ab"]["uses"] == 5
        assert rows["abaabcabcabcabc"]["index"] == 0

    def test_figure8_shape(self):
        dfsm = figures.figure8_dfsm()
        assert dfsm.num_states == 7
        assert len(dfsm.completions) == 2


@pytest.fixture(scope="module")
def small_cache():
    """Runs the small ladder for one benchmark at a fraction of the passes."""
    opt = OptimizerConfig(
        n_awake=30,
        n_hibernate=200,
    )
    return ResultCache(opt=opt, passes_scale=0.15)


class TestWorkloadFigures:
    def test_figure11_rows(self, small_cache):
        rows = figures.figure11_rows(small_cache, names=["mcf"])
        row = rows[0]
        assert row["benchmark"] == "mcf"
        assert 0 < row["base_pct"] < 25
        assert row["prof_pct"] >= row["base_pct"]
        assert row["hds_pct"] >= row["prof_pct"]

    def test_figure12_rows(self, small_cache):
        rows = figures.figure12_rows(small_cache, names=["mcf"])
        row = rows[0]
        assert row["nopref_pct"] > 0
        assert row["dynpref_pct"] < row["nopref_pct"]
        assert row["seqpref_pct"] > row["dynpref_pct"]

    def test_table2_rows(self, small_cache):
        rows = figures.table2_rows(small_cache, names=["mcf"])
        row = rows[0]
        assert row["opt_cycles"] >= 1
        assert row["traced_refs_per_cycle"] > 0
        assert row["hds_per_cycle"] > 0
        assert row["dfsm_states"] >= 2 * row["hds_per_cycle"]
        assert row["procs_modified"] >= 1

    def test_cache_reuses_results(self, small_cache):
        first = small_cache.get("mcf", "orig")
        second = small_cache.get("mcf", "orig")
        assert first is second

    def test_passes_scaling(self, small_cache):
        assert small_cache.passes_for("mcf") < 40


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], [30, -4.0]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "+2.5" in text
        assert "-4.0" in text
        assert len({len(line) for line in lines[1:]}) <= 2  # consistent width

    def test_empty_rows(self):
        text = format_table(["x"], [])
        assert "x" in text


class TestCli:
    def test_small_artifacts_exit_zero(self, capsys):
        assert cli_main(["figure4"]) == 0
        assert cli_main(["table1"]) == 0
        assert cli_main(["figure8"]) == 0
        out = capsys.readouterr().out
        assert "S -> R1 a R3 R3" in out
        assert "abcabc" in out
        assert "states=7" in out

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            cli_main(["figure11", "--workloads", "gcc"])

    def test_unknown_artifact_rejected(self):
        with pytest.raises(SystemExit):
            cli_main(["figure99"])
