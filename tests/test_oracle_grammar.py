"""Brute-force Sequitur checker: accepts real grammars, rejects tampering."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import OracleError
from repro.oracle import check_sequitur, ref_expand
from repro.oracle.fuzz import diff_sequitur, gen_trace
from repro.sequitur.sequitur import Sequitur


def build(tokens):
    seq = Sequitur()
    seq.extend(tokens)
    return seq


EXAMPLE = [ord(c) - ord("a") for c in "abaabcabcabcabc"]  # the Figure 4 string


class TestAcceptsRealGrammars:
    def test_figure4_example(self):
        check_sequitur(build(EXAMPLE), EXAMPLE)

    def test_overlapping_run(self):
        # "aaaa..." exercises the digram-uniqueness exemption for runs.
        tokens = [0] * 9
        check_sequitur(build(tokens), tokens)

    def test_empty_and_single(self):
        check_sequitur(build([]), [])
        check_sequitur(build([5]), [5])

    @pytest.mark.parametrize("seed", [0, 7, 42])
    def test_random_traces(self, seed):
        rng = random.Random(seed)
        for _ in range(10):
            tokens = gen_trace(rng, rng.randint(2, 250), alphabet=rng.randint(2, 12))
            diff_sequitur(tokens)

    @given(tokens=st.lists(st.integers(min_value=0, max_value=5), max_size=120))
    @settings(deadline=None, max_examples=60, derandomize=True)
    def test_property_any_token_list(self, tokens):
        diff_sequitur(tokens)


class TestRejectsTampering:
    def test_wrong_input_rejected(self):
        seq = build(EXAMPLE)
        with pytest.raises(OracleError):
            check_sequitur(seq, EXAMPLE[:-1])
        with pytest.raises(OracleError):
            check_sequitur(seq, EXAMPLE[:-1] + [99])

    def test_corrupted_refcount_rejected(self):
        seq = build(EXAMPLE)
        victim = next(r for r in seq.rules.values() if r is not seq.start)
        victim.refcount += 1
        with pytest.raises(OracleError, match="refcount"):
            check_sequitur(seq, EXAMPLE)

    def test_corrupted_length_rejected(self):
        seq = build(EXAMPLE)
        seq.length += 1
        with pytest.raises(OracleError, match="length"):
            check_sequitur(seq, EXAMPLE)

    def test_ref_expand_matches_production_expand(self):
        seq = build(EXAMPLE)
        assert ref_expand(seq) == seq.expand() == EXAMPLE
