"""CLI smoke tests for the workload-driven artifacts at tiny scale."""

import pytest

from repro.bench.cli import main as cli_main


@pytest.mark.parametrize("artifact", ["figure11", "figure12", "table2"])
def test_workload_artifacts_run_at_small_scale(artifact, capsys):
    code = cli_main([artifact, "--workloads", "vortex", "--scale", "0.1"])
    assert code == 0
    out = capsys.readouterr().out
    assert "vortex" in out


def test_scale_flag_parsed(capsys):
    assert cli_main(["figure4", "--scale", "0.5"]) == 0
