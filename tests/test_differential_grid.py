"""Flat-vs-linked Sequitur differential over the golden workload grid.

Every reference stream a real simulation feeds the flat engine is replayed
through the demoted linked reference (:mod:`repro.oracle.refsequitur`) and
the two grammars are compared field-by-field — rules in insertion order,
refcounts, bodies, and the digram index's own insertion order.  The streams
are captured live from the actual runs (both execution kernels), so the
batched kernel feed, the profiler's flush points and period resets are all
exercised, not simulated.

The default run covers a two-workload subset of the grid; set
``REPRO_DIFF_FULL=1`` (the CI analysis job does) for all seven workloads
x {orig, dyn} x {reference dispatch, fastpath kernel}.
"""

import os

import pytest

from repro.engine.levels import prepare_workload
from repro.interp.interpreter import Interpreter
from repro.machine.config import PAPER_MACHINE
from repro.oracle.fuzz import grammar_state_diff
from repro.oracle.golden import GoldenRun, build_golden_workload
from repro.oracle.refsequitur import RefSequitur
from repro.profiling.profiler import TemporalProfiler
from repro.sequitur import Sequitur
from repro.vulcan.static_edit import instrument_program

FULL_GRID = os.environ.get("REPRO_DIFF_FULL") == "1"
ALL_WORKLOADS = ("vortex", "twolf", "mcf", "vpr", "parser", "boxsim", "phaseshift")
WORKLOADS = ALL_WORKLOADS if FULL_GRID else ("vortex", "phaseshift")


class TeeProfiler(TemporalProfiler):
    """A profiler that also keeps the interned token stream per period.

    Both feed disciplines funnel through ``sequitur.extend_batch``, so
    wrapping that one method captures exactly what the grammar saw, in
    order, including batch boundaries.
    """

    def __init__(self) -> None:
        self.periods: list[list[int]] = []
        super().__init__()
        self._start_period()

    def _start_period(self) -> None:
        self.periods.append([])
        seen = self.periods[-1]
        inner = self.sequitur.extend_batch

        def tee_extend(tokens):
            tokens = list(tokens)
            seen.extend(tokens)
            inner(tokens)

        self.sequitur.extend_batch = tee_extend

    def reset(self) -> None:
        super().reset()
        self._start_period()


def assert_periods_differential(tee: TeeProfiler) -> None:
    """Replay every captured period through both engines; demand identity."""
    assert any(tee.periods), "run traced no references; differential is vacuous"
    for tokens in tee.periods:
        flat = Sequitur()
        flat.extend_batch(tokens)
        ref = RefSequitur()
        for token in tokens:
            ref.append(token)
        delta = grammar_state_diff(flat.__getstate__(), ref.__getstate__())
        assert delta == "", delta
        flat.verify_invariants()
    # The live grammar is exactly the replay of the last period: ties the
    # captured stream back to the state the optimizer actually analyzed.
    final = Sequitur()
    final.extend_batch(tee.periods[-1])
    delta = grammar_state_diff(tee.sequitur.__getstate__(), final.__getstate__())
    assert delta == "", delta


def run_orig_cell(workload: str, fast: bool) -> TeeProfiler:
    """Full-trace offline profiling of the instrumented program."""
    built = build_golden_workload(GoldenRun(workload=workload, level="orig", passes=1))
    program, _ = instrument_program(built.program)
    interp = Interpreter(program, built.memory, PAPER_MACHINE)
    interp.set_counters(1, 1 << 40)
    tee = TeeProfiler()
    interp.trace_sink = tee
    interp.tracing_enabled = True
    interp.run(built.args, fast=fast)
    tee.flush()
    return tee


def run_dyn_cell(workload: str, fast: bool) -> TeeProfiler:
    """The full online pipeline with the optimizer's profiler swapped for a tee."""
    built = build_golden_workload(GoldenRun(workload=workload, level="dyn", passes=2))
    prepared = prepare_workload(built, "dyn")
    optimizer = prepared.interp.check_listener
    tee = TeeProfiler()
    optimizer.profiler = tee
    prepared.interp.trace_sink = tee
    prepared.interp.run(prepared.args, fast=fast)
    tee.flush()
    return tee


@pytest.mark.parametrize("fast", [False, True], ids=["refkernel", "fastpath"])
@pytest.mark.parametrize("workload", WORKLOADS)
def test_orig_grid_cell(workload, fast):
    assert_periods_differential(run_orig_cell(workload, fast))


@pytest.mark.parametrize("fast", [False, True], ids=["refkernel", "fastpath"])
@pytest.mark.parametrize("workload", WORKLOADS)
def test_dyn_grid_cell(workload, fast):
    assert_periods_differential(run_dyn_cell(workload, fast))


def test_period_reset_boundaries_are_captured():
    """A mid-run ``reset`` starts a new period and both replays still match."""
    tee = run_orig_cell("vortex", fast=False)
    tee.reset()
    tee.record(7, 1024)
    tee.record(7, 1088)
    tee.flush()
    assert len(tee.periods) == 2 and len(tee.periods[-1]) == 2
    assert_periods_differential(tee)
