"""Tests for the two-level hierarchy and the software-prefetch model."""

import pytest

from repro.machine.config import CacheGeometry, MachineConfig
from repro.machine.hierarchy import MemoryHierarchy


def make_hierarchy(l2_latency=10, memory_latency=100) -> MemoryHierarchy:
    config = MachineConfig(
        l1=CacheGeometry(512, 2),   # 16 blocks
        l2=CacheGeometry(4096, 4),  # 128 blocks
        l2_latency=l2_latency,
        memory_latency=memory_latency,
    )
    return MemoryHierarchy(config)


class TestDemandAccess:
    def test_cold_miss_pays_memory_latency(self):
        h = make_hierarchy()
        assert h.access(0x1000, now=0) == 100

    def test_l1_hit_is_free(self):
        h = make_hierarchy()
        h.access(0x1000, now=0)
        assert h.access(0x1000, now=200) == 0

    def test_same_block_hits(self):
        h = make_hierarchy()
        h.access(0x1000, now=0)
        assert h.access(0x1000 + 28, now=200) == 0  # same 32B block

    def test_l2_hit_pays_l2_latency(self):
        h = make_hierarchy()
        h.access(0x1000, now=0)
        # Evict block from tiny L1 with conflicting blocks (same L1 set).
        l1_sets = h.l1.geometry.num_sets
        block_bytes = h.config.block_bytes
        for k in range(1, 4):
            h.access(0x1000 + k * l1_sets * block_bytes, now=0)
        stall = h.access(0x1000, now=500)
        assert stall == 10

    def test_counters(self):
        h = make_hierarchy()
        h.access(0x1000, now=0)
        h.access(0x1000, now=1)
        assert h.demand_accesses == 2
        assert h.l1.misses == 1
        assert h.l1.hits == 1
        assert 0.0 < h.l1_miss_rate < 1.0


class TestPrefetch:
    def test_timely_prefetch_hides_latency(self):
        h = make_hierarchy()
        h.issue_prefetch(0x2000, now=0)
        stall = h.access(0x2000, now=150)  # after the 100-cycle fetch
        assert stall == 0
        assert h.prefetch.useful == 1
        assert h.prefetch.late == 0

    def test_late_prefetch_pays_residual(self):
        h = make_hierarchy()
        h.issue_prefetch(0x2000, now=0)
        stall = h.access(0x2000, now=40)
        assert stall == 60  # 100 - 40
        assert h.prefetch.late == 1
        assert h.prefetch.useful == 0

    def test_redundant_prefetch_detected(self):
        h = make_hierarchy()
        h.access(0x2000, now=0)
        h.issue_prefetch(0x2000, now=10)
        assert h.prefetch.redundant == 1

    def test_duplicate_prefetch_is_redundant(self):
        h = make_hierarchy()
        h.issue_prefetch(0x2000, now=0)
        h.issue_prefetch(0x2000, now=1)
        assert h.prefetch.issued == 2
        assert h.prefetch.redundant == 1

    def test_l2_resident_prefetch_is_fast(self):
        h = make_hierarchy()
        h.access(0x1000, now=0)
        l1_sets = h.l1.geometry.num_sets
        block = h.config.block_bytes
        for k in range(1, 4):  # push 0x1000 out of L1, stays in L2
            h.access(0x1000 + k * l1_sets * block, now=0)
        h.issue_prefetch(0x1000, now=500)
        assert h.access(0x1000, now=520) == 0  # ready at 510

    def test_unused_prefetch_wasted_on_finalize(self):
        h = make_hierarchy()
        h.issue_prefetch(0x2000, now=0)
        h.finalize()
        assert h.prefetch.wasted == 1

    def test_pollution_evicted_prefetch_counts_wasted(self):
        h = make_hierarchy()
        h.issue_prefetch(0x2000, now=0)
        # Push it out of both levels with > L2-capacity distinct blocks.
        for k in range(1, 300):
            h.access(0x100000 + k * 32, now=0)
        assert h.prefetch.wasted == 1

    def test_prefetch_can_evict_demand_data(self):
        """Wrong prefetches pollute: the Seq-pref failure mode."""
        h = make_hierarchy()
        h.access(0x1000, now=0)
        l1_sets = h.l1.geometry.num_sets
        block = h.config.block_bytes
        # Prefetch two conflicting blocks into the same L1 set.
        h.issue_prefetch(0x1000 + l1_sets * block, now=0)
        h.issue_prefetch(0x1000 + 2 * l1_sets * block, now=0)
        assert not h.l1.contains(h.block_of(0x1000))

    def test_accuracy_property(self):
        h = make_hierarchy()
        h.issue_prefetch(0x2000, now=0)
        h.issue_prefetch(0x3000, now=0)
        h.access(0x2000, now=200)
        h.finalize()
        assert h.prefetch.accuracy == pytest.approx(0.5)

    def test_flush_clears_state(self):
        h = make_hierarchy()
        h.access(0x1000, now=0)
        h.issue_prefetch(0x2000, now=0)
        h.flush()
        assert h.access(0x1000, now=10) == 100


class TestInclusion:
    def test_l2_eviction_invalidates_l1(self):
        h = make_hierarchy()
        h.access(0x0, now=0)
        l2_sets = h.l2.geometry.num_sets
        block = h.config.block_bytes
        # Fill the L2 set of block 0 with conflicting blocks.
        for k in range(1, 5):
            h.access(k * l2_sets * block, now=0)
        assert not h.l1.contains(0)
        assert not h.l2.contains(0)
