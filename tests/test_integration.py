"""Cross-module integration tests, including the paper's subtle behaviours."""

import dataclasses

import pytest

from repro.bench.runner import run_workload
from repro.core.config import OptimizerConfig
from repro.errors import (
    AnalysisError,
    ConfigError,
    EditError,
    ExecutionError,
    IRError,
    MemoryFault,
    ReproError,
)
from repro.interp.interpreter import Interpreter
from repro.ir import ProcedureBuilder, build_program
from repro.machine.config import CacheGeometry, MachineConfig
from repro.machine.memory import Memory
from repro.workloads.chainmix import build_chainmix

SMALL_MACHINE = MachineConfig(
    l1=CacheGeometry(512, 2), l2=CacheGeometry(4096, 4), l2_latency=10, memory_latency=100
)


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc", [IRError, ExecutionError, MemoryFault, EditError, AnalysisError, ConfigError]
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_memory_fault_is_execution_error(self):
        assert issubclass(MemoryFault, ExecutionError)


class TestStaleActivationRecords:
    """Section 3.2: returns land in the original, un-patched procedure."""

    def test_active_frame_keeps_running_original(self):
        # callee patches 'leaf' *while leaf is on the stack below main*:
        # we simulate by patching between two calls and checking both behave
        # according to patch time.
        leaf = ProcedureBuilder("leaf")
        r = leaf.const(None, 1)
        leaf.ret(r)

        main = ProcedureBuilder("main")
        out1 = main.reg("o1")
        main.call(out1, "leaf", ())
        out2 = main.reg("o2")
        main.call(out2, "leaf", ())
        s = main.add(None, out1, out2)
        main.ret(s)

        program = build_program([main, leaf], entry="main")

        # Patch after the program is built but before running: both calls see
        # the patched version (new calls follow the jump).
        patched = ProcedureBuilder("leaf")
        r2 = patched.const(None, 10)
        patched.ret(r2)
        program.patch("leaf", patched.build())
        result = Interpreter(program, Memory(), SMALL_MACHINE).run()
        assert result.return_value == 20

        # Deoptimized: calls return to the original.
        program.unpatch_all()
        result = Interpreter(program, Memory(), SMALL_MACHINE).run()
        assert result.return_value == 2

    def test_optimizer_never_patches_the_running_main(self, small_params, small_opt):
        """main's frame never re-enters; its patches would be dead code.

        The workload design keeps stream heads out of main, so the optimizer
        should never patch it.
        """
        wl = build_chainmix(small_params, passes=16)
        result = run_workload(wl, "dyn", SMALL_MACHINE, small_opt)
        assert result.stats.detects_executed > 0


class TestEndToEndContrast:
    """The headline qualitative results on the small workload."""

    @pytest.fixture(scope="class")
    def ladder(self):
        # Rebuild the small fixtures locally (a class-scoped fixture cannot
        # depend on the function-scoped ones from conftest).
        from repro.workloads.chainmix import ChainMixParams

        params = ChainMixParams(
            name="small", groups=2, hot_chains=6, cold_chains=20, chain_len=9,
            hot_fraction=0.75, schedule_len=32, passes=20, cold_refs_per_step=4,
            cold_array_blocks=64, node_compute=1, unroll=4, seed=7,
        )
        from repro.analysis.hotstreams import AnalysisConfig
        from repro.profiling.sampling import BurstyCounters

        opt = OptimizerConfig(
            counters=BurstyCounters(16, 16), n_awake=12, n_hibernate=48, head_len=2,
            analysis=AnalysisConfig(heat_ratio=0.002, min_length=4, max_length=64,
                                    min_unique=3, max_streams=16),
            max_prefetches=32, max_dfsm_states=512,
        )
        results = {}
        for level in ("orig", "nopref", "seq", "dyn"):
            wl = build_chainmix(params)
            results[level] = run_workload(wl, level, SMALL_MACHINE, opt)
        return results

    def test_dyn_prefetching_speeds_up_or_breaks_even_with_matching(self, ladder):
        gross = ladder["nopref"].cycles - ladder["dyn"].cycles
        assert gross > 0

    def test_seq_prefetching_is_worse_than_dyn(self, ladder):
        assert ladder["seq"].cycles > ladder["dyn"].cycles

    def test_memory_stall_reduction_is_the_mechanism(self, ladder):
        assert ladder["dyn"].stats.mem_stall_cycles < ladder["nopref"].stats.mem_stall_cycles

    def test_detect_costs_identical_across_prefetch_modes(self, ladder):
        assert ladder["dyn"].stats.detect_cycles == ladder["nopref"].stats.detect_cycles

    def test_instruction_counts_identical_across_prefetch_modes(self, ladder):
        assert ladder["dyn"].stats.instructions == ladder["nopref"].stats.instructions


class TestSequentialAllocContrast:
    def test_seq_pref_works_when_streams_sequentially_allocated(self, small_params, small_opt):
        params = dataclasses.replace(small_params, sequential_alloc=True, passes=20)
        results = {}
        for level in ("orig", "seq", "dyn"):
            wl = build_chainmix(params)
            results[level] = run_workload(wl, level, SMALL_MACHINE, small_opt)
        # With sequential allocation the two schemes fetch the same blocks.
        seq_over_dyn = abs(results["seq"].cycles - results["dyn"].cycles)
        assert seq_over_dyn / results["dyn"].cycles < 0.02
        assert results["seq"].hierarchy.prefetch.useful > 0
