#!/usr/bin/env python3
"""Prefix-matching DFSM construction and code generation (Figures 7-9).

Builds the joint DFSM for the paper's example streams ``v = abacadae`` and
``w = bbghij`` (headLen = 3), prints its states and transitions (Figure 8),
then shows the per-pc detection handlers the code generator would inject
(Figure 7's if-chains) for a pair of interned data-reference streams.

Run:  python examples/dfsm_demo.py
"""

from __future__ import annotations

from repro import build_dfsm, generate_handlers
from repro.analysis.stream import HotDataStream
from repro.ir.instructions import Pc
from repro.profiling.trace import SymbolTable


def figure8() -> None:
    texts = ["abacadae", "bbghij"]
    alphabet = sorted({ch for t in texts for ch in t})
    encode = {ch: i for i, ch in enumerate(alphabet)}
    decode = {i: ch for ch, i in encode.items()}
    streams = [
        HotDataStream(tuple(encode[c] for c in t), heat=100 - 10 * i, rule_id=i)
        for i, t in enumerate(texts)
    ]
    dfsm = build_dfsm(streams, head_len=3)
    print(f"Figure 8: DFSM for v={texts[0]}, w={texts[1]} (headLen=3)")
    print(f"  {dfsm.num_states} states (= headLen*n + 1), "
          f"{dfsm.num_transitions} transitions")
    for (state, symbol), target in sorted(dfsm.edges.items()):
        completion = ""
        if target in dfsm.completions:
            names = ",".join("vw"[v] for v in dfsm.completions[target])
            completion = f"   [completes {names}: prefetch tail]"
        print(f"  {dfsm.describe(state):24} --{decode[symbol]}--> "
              f"{dfsm.describe(target)}{completion}")


def figure7_codegen() -> None:
    """Generated detection code for two data-reference streams."""
    table = SymbolTable()
    # Stream v: a load at walk:0 touching node addresses 0x1000, 0x3000, ...
    refs_v = [("walk", 0, 0x1000), ("walk", 1, 0x1004),
              ("walk", 0, 0x3000), ("walk", 1, 0x3004), ("walk", 0, 0x5000)]
    refs_w = [("walk", 0, 0x2000), ("walk", 1, 0x2004),
              ("walk", 0, 0x4000), ("walk", 1, 0x4004), ("walk", 0, 0x6000)]
    streams = []
    for i, refs in enumerate((refs_v, refs_w)):
        symbols = tuple(table.intern(Pc(p, o), a) for p, o, a in refs)
        streams.append(HotDataStream(symbols, heat=100 - i, rule_id=i))
    dfsm = build_dfsm(streams, head_len=2)
    handlers = generate_handlers(dfsm, table, mode="dyn", block_bytes=32)

    print("\nFigure 7-style injected handlers (headLen=2):")
    for pc, handler in sorted(handlers.items()):
        print(f"  at {pc}:")
        for addr, by_state, default in handler.arms:
            print(f"    if (accessing {addr:#x}):")
            for state, (nxt, prefetches) in sorted(by_state.items()):
                action = f"state = {nxt}"
                if prefetches:
                    targets = ", ".join(f"{a:#x}" for a in prefetches)
                    action += f"; prefetch {targets}"
                print(f"      if (state == {state}): {action}")
            nxt, prefetches = default
            print(f"      else: state = {nxt}"
                  + (f"; prefetch ..." if prefetches else ""))


def main() -> None:
    figure8()
    figure7_codegen()


if __name__ == "__main__":
    main()
