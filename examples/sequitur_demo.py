#!/usr/bin/env python3
"""Sequitur + hot-data-stream analysis on the paper's worked example.

Reproduces Figure 4 (the grammar for w = abaabcabcabcabc), Figure 6 and
Table 1 (the analysis values), and shows the single hot data stream
``abcabc`` with heat 12 covering 80% of the references.

Run:  python examples/sequitur_demo.py
"""

from __future__ import annotations

from repro import AnalysisConfig, Sequitur, analyze_grammar, find_hot_streams

W = "abaabcabcabcabc"


def main() -> None:
    alphabet = sorted(set(W))
    encode = {ch: i for i, ch in enumerate(alphabet)}
    names = {i: ch for ch, i in encode.items()}

    seq = Sequitur()
    for ch in W:  # incremental, one symbol at a time — exactly like profiling
        seq.append(encode[ch])

    print(f"Figure 4: Sequitur grammar for w = {W}")
    print(seq.to_text(names))
    print(f"grammar size: {seq.grammar_size()} symbols "
          f"(vs {len(W)} in the input)\n")

    config = AnalysisConfig(heat_threshold=8, min_length=2, max_length=7)
    facts = analyze_grammar(seq, config)
    print("Table 1: analysis values (H=8, minLen=2, maxLen=7)")
    header = f"{'rule':>5} {'word':>16} {'len':>4} {'idx':>4} {'uses':>5} {'cold':>5} {'heat':>5} hot"
    print(header)
    for fact in sorted(facts.values(), key=lambda f: f.index):
        word = "".join(names[t] for t in seq.expand(seq.rules[fact.rule_id]))
        rule = "S" if fact.rule_id == seq.start.id else f"R{fact.rule_id}"
        print(f"{rule:>5} {word:>16} {fact.length:>4} {fact.index:>4} "
              f"{fact.uses:>5} {fact.cold_uses:>5} {fact.heat:>5} {fact.hot}")

    streams = find_hot_streams(seq, config)
    print("\nHot data streams:")
    for stream in streams:
        text = "".join(names[t] for t in stream.symbols)
        coverage = stream.heat / len(W)
        print(f"  {text}  heat={stream.heat}  covers {coverage:.0%} of the trace")


if __name__ == "__main__":
    main()
