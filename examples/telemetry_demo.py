#!/usr/bin/env python3
"""Telemetry walkthrough: events, metrics and exporters on one short run.

Runs the vpr-like workload under full dynamic prefetching with an in-memory
telemetry session, prints the event/metric summary, then demonstrates the
file exporters (JSONL event log + JSON metrics snapshot) round-tripping
through their own loaders.

Run:  python examples/telemetry_demo.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import TelemetrySession, run_level
from repro.telemetry.export import (
    load_events_jsonl,
    load_metrics_json,
    summarize,
    write_metrics_json,
)

PASSES = 3  # a short run; telemetry content, not performance, is the point


def main() -> None:
    # An in-memory session: every event kind lands in session.events and a
    # MetricsSink keeps live events.* counters.  Sampling periods of 1 make
    # the log exhaustive; the bench defaults (64/32) keep overhead low.
    session = TelemetrySession.recording(miss_sample_every=1, prefetch_sample_every=1)
    result = run_level("vpr", "dyn", passes=PASSES, telemetry=session)

    print(f"vpr/dyn finished in {result.cycles:,} simulated cycles\n")
    print(summarize(session.events, session.registry.snapshot()))

    # The exact totals in the registry come from the simulation counters,
    # reconciled at finalize time — they always agree with RunResult.
    counters = session.registry.snapshot()["counters"]
    assert counters["exec.cycles"] == result.stats.cycles
    assert counters["prefetch.issued"] == result.hierarchy.prefetch.issued

    with tempfile.TemporaryDirectory() as tmp:
        events_path = Path(tmp) / "events.jsonl"
        metrics_path = Path(tmp) / "metrics.json"

        # File exporters: a JSONL log (one typed event per line) and a JSON
        # snapshot; both round-trip through their loaders.
        file_session = TelemetrySession.to_jsonl(events_path)
        rerun = run_level("vpr", "dyn", passes=PASSES, telemetry=file_session)
        file_session.close()
        write_metrics_json(file_session.snapshot(), metrics_path)

        events = load_events_jsonl(events_path)
        snapshot = load_metrics_json(metrics_path)
        kinds = sorted({event.kind for event in events})
        print(f"\nJSONL round-trip: {len(events)} events, kinds: {', '.join(kinds)}")
        print(f"metrics snapshot context: {snapshot['context']}")

        # Telemetry is observer-effect-free: cycle counts are identical with
        # sampled file telemetry, exhaustive in-memory telemetry, or none.
        assert rerun.cycles == result.cycles
        print(f"observer effect: 0 (both runs took {rerun.cycles:,} cycles)")


if __name__ == "__main__":
    main()
