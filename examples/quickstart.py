#!/usr/bin/env python3
"""Quickstart: dynamic hot data stream prefetching in ~40 lines.

Builds the mcf-like pointer-chasing workload, runs it unoptimized, then runs
it under the full online pipeline (bursty tracing -> Sequitur -> hot data
stream analysis -> DFSM prefix matching -> injected prefetches), and reports
the speedup — the Figure 12 experiment for a single benchmark.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import run_level

PASSES = 12  # a short run; the benchmark suite uses the full preset length


def main() -> None:
    print("Running mcf baseline (no instrumentation)...")
    baseline = run_level("mcf", "orig", passes=PASSES)
    print(f"  {baseline.cycles:,} cycles, "
          f"{baseline.stats.instructions:,} instructions, "
          f"L1 miss rate {baseline.hierarchy.l1_miss_rate:.1%}")

    print("Running mcf with dynamic hot-data-stream prefetching...")
    optimized = run_level("mcf", "dyn", passes=PASSES)
    summary = optimized.summary
    assert summary is not None
    prefetch = optimized.hierarchy.prefetch
    print(f"  {optimized.cycles:,} cycles")
    print(f"  optimization cycles completed: {summary.num_cycles}")
    print(f"  hot data streams per cycle:    {summary.mean_streams:.0f}")
    print(f"  DFSM: ~{summary.mean_dfsm_states:.0f} states, "
          f"~{summary.mean_injected_checks:.0f} injected checks")
    print(f"  prefetches: {prefetch.issued:,} issued, "
          f"{prefetch.useful:,} useful ({prefetch.accuracy:.0%} accurate)")

    speedup = -optimized.overhead_vs(baseline)
    print(f"\nNet execution-time improvement: {speedup:.1f}% "
          f"(paper reports 5-19% across SPECint2000 benchmarks)")


if __name__ == "__main__":
    main()
