#!/usr/bin/env python3
"""Authoring a custom program with the builder DSL and optimizing it.

Writes a small pointer-chasing program from scratch (a ring of linked
records scanned repeatedly, interleaved with noise), lays its data out in
simulated memory, and runs it under the full dynamic-prefetching pipeline —
showing how to use the library on programs that are not chain-mix presets.

Run:  python examples/custom_workload.py
"""

from __future__ import annotations

from repro import (
    Interpreter,
    Memory,
    OptimizerConfig,
    ProcedureBuilder,
    build_program,
    instrument_program,
)
from repro.analysis import AnalysisConfig
from repro.core import DynamicPrefetcher
from repro.machine import MachineConfig, CacheGeometry
from repro.profiling import BurstyCounters

RECORDS = 48
RINGS = 3
RECORD_BYTES = 32
NOISE_BLOCKS = 1024
NOISE_REFS_PER_ROUND = 48


def build_workload():
    memory = Memory()
    # A ring of records, allocated in shuffled order so the traversal is
    # not sequential in memory.
    import random

    rng = random.Random(42)
    order = [(ring, i) for ring in range(RINGS) for i in range(RECORDS)]
    rng.shuffle(order)
    addr = {key: memory.allocate(RECORD_BYTES, align=RECORD_BYTES) for key in order}
    for ring in range(RINGS):
        for i in range(RECORDS):
            memory.store(addr[(ring, i)], addr[(ring, (i + 1) % RECORDS)])
            memory.store(addr[(ring, i)] + 4, ring * 1000 + i * 7 + 1)
    noise_base = memory.allocate_static(NOISE_BLOCKS * 32)
    # A little table of ring heads, cycled by the driver.
    heads_base = memory.allocate_static(RINGS * 4)
    for ring in range(RINGS):
        memory.store(heads_base + 4 * ring, addr[(ring, 0)])

    # The first record is peeled out of the loop.  This matters for the
    # optimizer's economics: each round's hot data stream *starts* at the
    # peeled loads, so the injected prefix-match checks live at pcs that
    # execute once per scan — not once per record.  (Try folding the peel
    # back into the loop: the match checks then run on every iteration and
    # eat the prefetching win.)
    scan = ProcedureBuilder("scan", params=("head", "count"))
    node = scan.reg("node")
    total = scan.reg("total")
    i = scan.reg("i")
    scan.load(total, scan.param("head"), 4)
    scan.load(node, scan.param("head"), 0)
    scan.const(i, 1)
    scan.label("loop")
    cond = scan.lt(None, i, scan.param("count"))
    scan.bz(cond, "done")
    value = scan.load(None, node, 4)
    scan.add(total, total, value)
    scan.load(node, node, 0)
    scan.addi(i, i, 1)
    scan.jmp("loop")
    scan.label("done")
    scan.ret(total)

    noise = ProcedureBuilder("noise", params=("seed",))
    s = noise.reg("s")
    noise.mov(s, noise.param("seed"))
    k = noise.const(noise.reg("k"), 0)
    lim = noise.const(noise.reg("lim"), NOISE_REFS_PER_ROUND)
    nb = noise.const(noise.reg("nb"), noise_base)
    sink = noise.reg("sink")
    noise.label("loop")
    c = noise.cmp("lt", None, k, lim)
    noise.bz(c, "done")
    noise.muli(s, s, 5)
    noise.addi(s, s, 3)
    noise.alui("and", s, s, NOISE_BLOCKS - 1)
    off = noise.muli(None, s, 32)
    a = noise.add(None, nb, off)
    noise.load(sink, a, 0)
    noise.addi(k, k, 1)
    noise.jmp("loop")
    noise.label("done")
    noise.ret(s)

    # The ring-head lookup lives in its own (re-entered) procedure: each
    # round's hot data stream *begins* with this slot load, and injected
    # detection code only takes effect in procedures that are called again
    # (Section 3.2's stale-activation-record caveat) — code patched inside
    # the never-returning main loop would never run.
    pick = ProcedureBuilder("pick", params=("round",))
    hb2 = pick.const(pick.reg("hb"), heads_base)
    nr = pick.const(pick.reg("nr"), RINGS)
    ring = pick.alu("mod", None, pick.param("round"), nr)
    poff = pick.muli(None, ring, 4)
    slot = pick.add(None, hb2, poff)
    h = pick.load(None, slot, 0)
    pick.ret(h)

    main = ProcedureBuilder("main", params=("rounds",))
    r = main.const(main.reg("r"), 0)
    count = main.const(main.reg("count"), RECORDS)
    seed = main.const(main.reg("seed"), 1)
    acc = main.const(main.reg("acc"), 0)
    out = main.reg("out")
    head = main.reg("head")
    main.label("loop")
    c = main.lt(None, r, main.param("rounds"))
    main.bz(c, "done")
    main.call(head, "pick", (r,))
    main.call(out, "scan", (head, count))
    main.add(acc, acc, out)
    main.call(seed, "noise", (seed,))
    main.addi(r, r, 1)
    main.jmp("loop")
    main.label("done")
    main.ret(acc)

    program = build_program([main, pick, scan, noise], entry="main")
    return program, memory


def main() -> None:
    machine = MachineConfig(
        l1=CacheGeometry(1024, 2), l2=CacheGeometry(8192, 4),
        l2_latency=10, memory_latency=100,
    )
    # Bursts must span at least one full scan (48 records + noise ~ 60
    # checks); shorter bursts only ever sample mid-ring fragments, whose
    # heads land on the loop pcs and make matching expensive.
    opt = OptimizerConfig(
        counters=BurstyCounters(96, 64),
        n_awake=6,
        n_hibernate=120,
        analysis=AnalysisConfig(heat_ratio=0.002, min_length=8, max_length=160,
                                min_unique=5, max_streams=8),
        max_prefetches=64,
    )
    rounds = 400

    program, memory = build_workload()
    baseline = Interpreter(program, memory, machine).run(args=(rounds,))
    print(f"baseline: {baseline.cycles:,} cycles "
          f"(stall {baseline.mem_stall_cycles:,})")

    program, memory = build_workload()
    program, report = instrument_program(program)
    print(f"instrumented: {report.total_checks} checks inserted "
          f"across {report.procedures} procedures")
    interp = Interpreter(program, memory, machine)
    optimizer = DynamicPrefetcher(program, interp, machine, opt)
    optimized = interp.run(args=(rounds,))
    prefetch = interp.hierarchy.prefetch

    print(f"optimized: {optimized.cycles:,} cycles "
          f"(stall {optimized.mem_stall_cycles:,})")
    print(f"  cycles completed: {optimizer.summary.num_cycles}, "
          f"streams/cycle: {optimizer.summary.mean_streams:.1f}")
    print(f"  prefetches: {prefetch.issued:,} issued, {prefetch.useful:,} useful")
    delta = 100 * (baseline.cycles - optimized.cycles) / baseline.cycles
    print(f"net change: {delta:+.1f}% (positive = faster)")


if __name__ == "__main__":
    main()
