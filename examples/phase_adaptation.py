#!/usr/bin/env python3
"""Why *dynamic*?  Adaptation across program phase transitions.

The paper motivates its online scheme over a static, profile-once one by
pointing at programs with distinct phase behaviour (Section 1).  This
example builds a two-phase variant of the mcf analogue — halfway through
the run, the set of hot chains changes completely — and compares:

* ``static``: profile at startup, inject once, keep the code forever;
* ``dyn``:    the paper's profile / optimize / hibernate / deoptimize loop.

The static scheme's streams go stale at the phase boundary (its injected
checks keep costing cycles but stop matching); the dynamic scheme
re-profiles and recovers.

Run:  python examples/phase_adaptation.py   (takes ~1 minute)
"""

from __future__ import annotations

import dataclasses

from repro.bench.runner import run_workload
from repro.workloads import presets
from repro.workloads.chainmix import build_chainmix

PARAMS = dataclasses.replace(presets.MCF, name="mcf-phased", phases=2, passes=100)


def main() -> None:
    print(f"workload: {PARAMS.name} — {PARAMS.phases} phases, "
          f"{PARAMS.hot_chains} hot chains per phase\n")
    results = {}
    for level in ("orig", "static", "dyn"):
        workload = build_chainmix(PARAMS)
        results[level] = run_workload(workload, level)
        print(f"  {level:7s} {results[level].cycles:,} cycles")

    orig = results["orig"]
    for level in ("static", "dyn"):
        result = results[level]
        prefetch = result.hierarchy.prefetch
        summary = result.summary
        assert summary is not None
        print(f"\n{level}:")
        print(f"  net impact:        {result.overhead_vs(orig):+.1f}% "
              f"(negative = speedup)")
        print(f"  optimizations:     {summary.num_cycles}")
        print(f"  useful prefetches: {prefetch.useful:,}")
    print("\nThe dynamic scheme re-learns the phase-2 streams; the static "
          "scheme keeps matching (and missing) phase-1 addresses.")


if __name__ == "__main__":
    main()
