"""Cache-aware execution of run specs, serially or across a process pool.

:func:`run_spec` is the single-spec primitive: consult the
:class:`~repro.engine.cache.ResultStore` (if given), simulate on a miss,
store the fresh result.  :func:`execute_plan` lifts it to a whole
:class:`~repro.engine.spec.RunPlan`:

- cache hits are resolved up front (replay is microseconds; forking a worker
  for one would cost more than it saves);
- the remaining specs run in a ``ProcessPoolExecutor`` when ``jobs > 1``,
  each worker receiving the serialized spec and returning the serialized
  result (both ends are exact round trips, so parallel output is
  bit-identical to serial);
- results are returned **in plan order** regardless of completion order, so
  downstream rendering is deterministic;
- a crashed or failed worker run is retried once, serially, in-process; a
  pool that cannot even start degrades to all-serial.  Parallelism is a
  throughput knob, never a correctness or availability risk.

Workers re-derive everything from the spec (workload build included), so the
only state crossing the process boundary is JSON.  Telemetry event sessions
cannot cross it — and cached results cannot replay events either — which is
why :func:`run_spec` bypasses the store entirely when an explicit telemetry
session is passed: evented runs always simulate, live.
"""

from __future__ import annotations

from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Callable, Optional

from repro.engine.cache import ResultStore
from repro.engine.levels import execute_workload
from repro.engine.result import RunResult
from repro.engine.spec import RunPlan, RunSpec
from repro.telemetry.session import TelemetrySession

#: progress callback: (spec, result) after each run resolves.
ProgressHook = Callable[[RunSpec, RunResult], None]


def run_spec(
    spec: RunSpec,
    store: Optional[ResultStore] = None,
    telemetry: Optional[TelemetrySession] = None,
) -> RunResult:
    """Execute one spec, replaying from ``store`` when possible.

    An explicit ``telemetry`` session disables the cache for this run in both
    directions: a cached replay could not re-emit the run's event stream, and
    an evented run is observationally richer than what the cache stores.
    """
    if telemetry is not None:
        return execute_workload(spec.build(), spec.level, spec.machine, spec.opt, telemetry)
    if store is not None:
        cached = store.load(spec)
        if cached is not None:
            return cached
    result = execute_workload(spec.build(), spec.level, spec.machine, spec.opt)
    if store is not None:
        store.store(spec, result)
    return result


def _worker_execute(spec_doc: dict) -> dict:
    """Pool worker: serialized spec in, serialized result out.

    Runs in a child process; deliberately cache-blind (the parent already
    resolved hits, and letting workers write the store would race the
    parent's counters).
    """
    spec = RunSpec.from_dict(spec_doc)
    result = execute_workload(spec.build(), spec.level, spec.machine, spec.opt)
    return result.to_dict()


def execute_plan(
    plan: RunPlan,
    jobs: int = 1,
    store: Optional[ResultStore] = None,
    progress: Optional[ProgressHook] = None,
    pool_factory: Optional[Callable[[int], ProcessPoolExecutor]] = None,
    durability=None,
) -> list[RunResult]:
    """Execute every spec in ``plan``; returns results in plan order.

    ``jobs`` caps worker processes (1 = stay in-process).  ``pool_factory``
    is an injection seam for tests (crash simulation); the default builds a
    standard ``ProcessPoolExecutor``.

    ``durability`` (a :class:`~repro.durability.supervisor.DurabilityPolicy`)
    reroutes the whole plan through the supervised executor — write-ahead
    journal, per-task timeouts and heartbeats, bounded retries, checkpointed
    workers, optional chaos injection — with byte-identical results
    (``pool_factory`` does not apply there).
    """
    if durability is not None:
        from repro.durability.supervisor import execute_plan_supervised

        return execute_plan_supervised(
            plan, jobs=jobs, store=store, progress=progress, policy=durability
        )
    results: list[Optional[RunResult]] = [None] * len(plan)
    pending: list[int] = []

    # Phase 1: resolve cache hits in-process, collect the rest.
    for index, spec in enumerate(plan):
        if store is not None:
            cached = store.load(spec)
            if cached is not None:
                results[index] = cached
                if progress is not None:
                    progress(spec, cached)
                continue
        pending.append(index)

    # Phase 2: simulate the misses, across a pool when it pays.
    failed: list[int] = []
    if jobs > 1 and len(pending) > 1:
        failed = _run_pooled(plan, pending, results, jobs, store, progress, pool_factory)
    else:
        failed = pending

    # Phase 3: serial path — first runs, then per-run retries of pool losses.
    for index in failed:
        spec = plan[index]
        result = execute_workload(spec.build(), spec.level, spec.machine, spec.opt)
        if store is not None:
            store.store(spec, result)
        results[index] = result
        if progress is not None:
            progress(spec, result)

    return [r for r in results if r is not None]


def _run_pooled(
    plan: RunPlan,
    pending: list[int],
    results: list[Optional[RunResult]],
    jobs: int,
    store: Optional[ResultStore],
    progress: Optional[ProgressHook],
    pool_factory: Optional[Callable[[int], ProcessPoolExecutor]],
) -> list[int]:
    """Run ``pending`` plan indices across a process pool.

    Returns the indices that did not produce a result (pool-creation
    failure, worker crash, task exception) for the caller's serial retry.
    """
    workers = min(jobs, len(pending))
    factory = pool_factory if pool_factory is not None else (
        lambda n: ProcessPoolExecutor(max_workers=n)
    )
    try:
        pool = factory(workers)
    except Exception:
        return list(pending)

    failed: list[int] = []
    try:
        with pool:
            futures: dict[int, object] = {}
            for index in pending:
                try:
                    futures[index] = pool.submit(_worker_execute, plan[index].to_dict())
                except Exception:
                    # Pool already broken — everything not yet submitted goes
                    # straight to the serial retry; in-flight futures are
                    # still drained below (they fail fast on a broken pool).
                    break
            outstanding = {f: i for i, f in futures.items()}
            while outstanding:
                done, _ = wait(list(outstanding), return_when=FIRST_COMPLETED)
                for future in done:
                    index = outstanding.pop(future)
                    spec = plan[index]
                    try:
                        result = RunResult.from_dict(future.result())
                    except Exception:
                        failed.append(index)
                        continue
                    if store is not None:
                        store.store(spec, result)
                    results[index] = result
                    if progress is not None:
                        progress(spec, result)
    except Exception:
        # Broken pool mid-wait: everything unresolved retries serially.
        pass

    failed.extend(i for i in pending if results[i] is None and i not in failed)
    return sorted(set(failed))
