"""The outcome of one (workload, level) execution, serializable both ways.

:class:`RunResult` historically lived in :mod:`repro.bench.runner`; it moved
here so the engine's cache and executor can round-trip results without
importing the bench layer (``repro.bench.runner`` re-exports it, so existing
imports keep working).

The round trip is exact: ``RunResult.from_dict(r.to_dict()).to_dict() ==
r.to_dict()`` bit for bit, which is what lets the result cache replay a run
instead of simulating it.  A live result holds the run's
:class:`~repro.machine.hierarchy.MemoryHierarchy`; a deserialized one holds
the equivalent :class:`~repro.machine.hierarchy.HierarchyStats` snapshot —
both expose the same counter surface (``.l1``/``.l2``/``.prefetch``/
``.stream_stats``/``.l1_miss_rate``), so downstream consumers never care
which they got.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.core.stats import OptimizerSummary
from repro.errors import ConfigError
from repro.interp.interpreter import ExecStats
from repro.machine.hierarchy import HierarchyStats, MemoryHierarchy
from repro.telemetry.metrics import MetricsRegistry

#: Format version stamped into serialized results; bump on schema changes.
RESULT_FORMAT = 1


@dataclass
class RunResult:
    """Outcome of one (workload, level) execution."""

    workload: str
    level: str
    stats: ExecStats
    hierarchy: Union[MemoryHierarchy, HierarchyStats]
    summary: Optional[OptimizerSummary]
    #: run-level metrics registry, always populated (exact, reconciled from
    #: the simulation counters at finalize time)
    metrics: Optional[MetricsRegistry] = None
    #: True when this result was replayed from the result cache
    from_cache: bool = False

    @property
    def cycles(self) -> int:
        return self.stats.cycles

    def overhead_vs(self, baseline: "RunResult") -> float:
        """Percent overhead relative to ``baseline`` (negative = speedup)."""
        if baseline.cycles == 0:
            raise ConfigError(
                f"cannot normalize {self.workload}/{self.level} against "
                f"{baseline.workload}/{baseline.level}: baseline ran 0 cycles"
            )
        return 100.0 * (self.cycles - baseline.cycles) / baseline.cycles

    def to_dict(self) -> dict[str, object]:
        """Exact serialized form (pure function of the run's content)."""
        return {
            "format": RESULT_FORMAT,
            "workload": self.workload,
            "level": self.level,
            "stats": self.stats.to_dict(),
            "hierarchy": self.hierarchy.stats_snapshot().to_dict(),
            "summary": None if self.summary is None else self.summary.to_dict(),
            "metrics": None if self.metrics is None else self.metrics.snapshot(),
        }

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "RunResult":
        """Inverse of :meth:`to_dict`."""
        fmt = data.get("format")
        if fmt != RESULT_FORMAT:
            raise ConfigError(f"unsupported serialized RunResult format {fmt!r}")
        summary = data.get("summary")
        metrics = data.get("metrics")
        return cls(
            workload=str(data["workload"]),
            level=str(data["level"]),
            stats=ExecStats.from_dict(data["stats"]),
            hierarchy=HierarchyStats.from_dict(data["hierarchy"]),
            summary=None if summary is None else OptimizerSummary.from_dict(summary),
            metrics=None if metrics is None else MetricsRegistry.from_snapshot(metrics),
        )
