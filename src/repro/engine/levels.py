"""Declarative registry of the paper's measurement levels.

Each :class:`LevelSpec` states what a level *is* — whether the binary is
statically instrumented, how the optimizer configuration is derived, and
which component gets attached to the interpreter — instead of encoding it in
an if/elif ladder.  :func:`execute_workload` is the single execution path
every level shares; new levels (and alternative prefetcher backends) plug in
through :func:`register_level` without touching it.

The built-in ladder, in the order both evaluation figures climb:

==========  =================================================================
``orig``    unmodified binary (the normalization baseline)
``base``    bursty-tracing checks only, (virtually) no tracing — Figure 11
            "Base" (huge ``nCheck0``, ``nInstr0 = 1``, no listener)
``prof``    temporal data-reference profiling at the configured sampling
            rate, no analysis — Figure 11 "Prof"
``hds``     profiling + online hot-data-stream analysis — Figure 11 "Hds"
``nopref``  full pipeline incl. DFSM prefix matching, but no prefetches —
            Figure 12 "No-pref"
``seq``     prefetch sequentially-following blocks — Figure 12 "Seq-pref"
``dyn``     prefetch the hot data stream tails — Figure 12 "Dyn-pref"
``static``  one ahead-of-time optimization from a profiling pre-run
``stride``  hardware stride prefetcher on the unmodified binary
``markov``  hardware Markov prefetcher on the unmodified binary
==========  =================================================================
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Optional

from repro.core.config import OptimizerConfig
from repro.core.hwpref import MarkovPrefetcher, StridePrefetcher
from repro.core.optimizer import DynamicPrefetcher
from repro.core.static_pref import StaticPrefetcher
from repro.core.stats import OptimizerSummary
from repro.engine.result import RunResult
from repro.errors import ConfigError
from repro.interp.interpreter import Interpreter
from repro.machine.config import MachineConfig, PAPER_MACHINE
from repro.telemetry.session import TelemetrySession
from repro.vulcan.static_edit import instrument_program
from repro.workloads.base import BuiltWorkload


@dataclass
class LevelWiring:
    """Everything a level's ``attach`` hook may touch before the run starts."""

    interp: Interpreter
    machine: MachineConfig
    #: the level-derived optimizer configuration (``configure`` already
    #: applied); levels without a ``configure`` hook see the caller's config
    opt: OptimizerConfig

    @property
    def program(self):
        """The (possibly instrumented) program the interpreter will execute."""
        return self.interp.program


#: ``attach`` wires a component to the interpreter and returns the optimizer
#: summary the run should report (None for unoptimized levels).
AttachHook = Callable[[LevelWiring], Optional[OptimizerSummary]]


@dataclass(frozen=True)
class LevelSpec:
    """One measurement level, declaratively.

    Attributes:
        name: the level string used across the CLI, specs and golden corpus.
        description: one-line description (``repro-bench`` help output).
        instrument: statically instrument the binary (vulcan) before running.
        uses_opt: whether the run's outcome depends on the caller's
            :class:`OptimizerConfig`.  Levels that never read it (``orig``,
            the hardware baselines, ``base``) are cache-equivalent across
            optimizer configs, and the result cache normalizes their
            fingerprints accordingly.
        configure: derives the level's optimizer configuration from the
            caller's; None for levels without an optimizer config
            (:func:`configure_level` raises for those, as it always has).
        attach: wires the level's component (optimizer, hardware prefetcher,
            counter setup) to the interpreter; None runs the bare binary.
    """

    name: str
    description: str = ""
    instrument: bool = False
    uses_opt: bool = True
    configure: Optional[Callable[[OptimizerConfig], OptimizerConfig]] = None
    attach: Optional[AttachHook] = None


_REGISTRY: dict[str, LevelSpec] = {}

#: The measurement levels in registration (= ladder) order; kept in sync with
#: the registry by :func:`register_level`.
LEVELS: tuple[str, ...] = ()


def _refresh_levels() -> None:
    global LEVELS
    LEVELS = tuple(_REGISTRY)


def register_level(spec: LevelSpec, replace_existing: bool = False) -> LevelSpec:
    """Add a level to the registry (``replace_existing`` guards typos)."""
    if spec.name in _REGISTRY and not replace_existing:
        raise ConfigError(f"level {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec
    _refresh_levels()
    return spec


def get_level(name: str) -> LevelSpec:
    """Look up a level; raises :class:`ConfigError` for unknown names."""
    spec = _REGISTRY.get(name)
    if spec is None:
        raise ConfigError(f"unknown level {name!r}; known: {level_names()}")
    return spec


def level_names() -> tuple[str, ...]:
    """Registered level names in registration (= ladder) order."""
    return tuple(_REGISTRY)


def configure_level(level: str, opt: OptimizerConfig) -> OptimizerConfig:
    """Derive the optimizer configuration implementing ``level``."""
    spec = get_level(level)
    if spec.configure is None:
        raise ConfigError(f"level {level!r} does not use an optimizer config")
    return spec.configure(opt)


# ----------------------------------------------------------- built-in levels


def _attach_base(wiring: LevelWiring) -> None:
    # Checks execute, instrumented code (virtually) never does.
    wiring.interp.set_counters(1 << 40, 1)
    return None


def _attach_stride(wiring: LevelWiring) -> None:
    wiring.interp.hw_prefetcher = StridePrefetcher()
    return None


def _attach_markov(wiring: LevelWiring) -> None:
    wiring.interp.hw_prefetcher = MarkovPrefetcher()
    return None


def _attach_dynamic(wiring: LevelWiring) -> OptimizerSummary:
    optimizer = DynamicPrefetcher(wiring.program, wiring.interp, wiring.machine, wiring.opt)
    return optimizer.summary


def _attach_static(wiring: LevelWiring) -> OptimizerSummary:
    optimizer = StaticPrefetcher(wiring.program, wiring.interp, wiring.machine, wiring.opt)
    return optimizer.summary


register_level(LevelSpec(
    name="orig",
    description="unmodified binary (normalization baseline)",
    uses_opt=False,
))
register_level(LevelSpec(
    name="base",
    description="bursty-tracing checks only, no tracing (Figure 11 Base)",
    instrument=True,
    uses_opt=False,
    attach=_attach_base,
))
register_level(LevelSpec(
    name="prof",
    description="temporal profiling, no analysis (Figure 11 Prof)",
    instrument=True,
    configure=lambda opt: replace(opt, analyze=False, inject=False),
    attach=_attach_dynamic,
))
register_level(LevelSpec(
    name="hds",
    description="profiling + hot-data-stream analysis (Figure 11 Hds)",
    instrument=True,
    configure=lambda opt: replace(opt, analyze=True, inject=False),
    attach=_attach_dynamic,
))
register_level(LevelSpec(
    name="nopref",
    description="full pipeline, prefetches suppressed (Figure 12 No-pref)",
    instrument=True,
    configure=lambda opt: replace(opt, analyze=True, inject=True, mode="nopref"),
    attach=_attach_dynamic,
))
register_level(LevelSpec(
    name="seq",
    description="prefetch sequentially-following blocks (Figure 12 Seq-pref)",
    instrument=True,
    configure=lambda opt: replace(opt, analyze=True, inject=True, mode="seq"),
    attach=_attach_dynamic,
))
register_level(LevelSpec(
    name="dyn",
    description="prefetch hot data stream tails (Figure 12 Dyn-pref)",
    instrument=True,
    configure=lambda opt: replace(opt, analyze=True, inject=True, mode="dyn"),
    attach=_attach_dynamic,
))
register_level(LevelSpec(
    name="static",
    description="one ahead-of-time optimization from a profiling pre-run",
    instrument=True,
    configure=lambda opt: replace(opt, analyze=True, inject=True, mode="dyn"),
    attach=_attach_static,
))
register_level(LevelSpec(
    name="stride",
    description="hardware stride prefetcher baseline",
    uses_opt=False,
    attach=_attach_stride,
))
register_level(LevelSpec(
    name="markov",
    description="hardware Markov prefetcher baseline",
    uses_opt=False,
    attach=_attach_markov,
))

# -------------------------------------------------------------------- engine


@dataclass
class PreparedRun:
    """A workload wired up at one level, ready to execute.

    The setup half of :func:`execute_workload`, factored out so the durable
    runner (:mod:`repro.durability.runner`) can drive the same wiring through
    the incremental ``start()/run_slice()`` API — and swap in a
    checkpoint-restored interpreter — while :func:`finish_workload` stays the
    single finalization path.
    """

    workload_name: str
    level: str
    args: tuple[int, ...]
    interp: Interpreter
    summary: Optional[OptimizerSummary]
    session: TelemetrySession


def prepare_workload(
    workload: BuiltWorkload,
    level: str,
    machine: MachineConfig = PAPER_MACHINE,
    opt: Optional[OptimizerConfig] = None,
    telemetry: Optional[TelemetrySession] = None,
) -> PreparedRun:
    """Resolve the level, instrument, wire telemetry and attach components.

    Everything :func:`execute_workload` does *before* the dispatch loop runs;
    the returned :class:`PreparedRun` holds the wired interpreter and the
    session that must see the finished stats.
    """
    spec = get_level(level)
    opt = opt if opt is not None else OptimizerConfig()
    session = telemetry if telemetry is not None else TelemetrySession()
    # Open the run (and its tracing span) before any component is built so
    # the optimizer's epoch spans nest under the run span.
    if not session.context:
        session.begin_run(workload.name, level)
    program = workload.program
    if spec.instrument:
        program, _report = instrument_program(program)
    interp = Interpreter(program, workload.memory, machine)
    session.wire(interp)
    summary: Optional[OptimizerSummary] = None
    if spec.attach is not None:
        derived = spec.configure(opt) if spec.configure is not None else opt
        summary = spec.attach(LevelWiring(interp=interp, machine=machine, opt=derived))
    return PreparedRun(
        workload_name=workload.name,
        level=level,
        args=workload.args,
        interp=interp,
        summary=summary,
        session=session,
    )


def finish_workload(prepared: PreparedRun, stats) -> RunResult:
    """Finalize a finished execution: hierarchy, session, result assembly."""
    interp = prepared.interp
    interp.hierarchy.finalize(now=stats.cycles)
    prepared.session.finalize_run(stats, interp.hierarchy, prepared.summary)
    # Streaming sinks record a per-run summary (cycle attribution, per-proc
    # rows) in their manifest, making chunk directories self-describing for
    # `repro-bench explain --from`.  Duck-typed so telemetry stays decoupled.
    if prepared.session.bus.enabled:
        notes = [
            note
            for note in (
                getattr(sink, "note_run_summary", None)
                for sink in prepared.session.bus._sinks
            )
            if note is not None
        ]
        if notes:
            from repro.obs.stream import run_summary_doc

            doc = run_summary_doc(
                prepared.workload_name,
                prepared.level,
                stats,
                interp.config,
                interp.proc_attr,
            )
            for note in notes:
                note(doc)
    return RunResult(
        workload=prepared.workload_name,
        level=prepared.level,
        stats=stats,
        hierarchy=interp.hierarchy,
        summary=prepared.summary,
        metrics=prepared.session.registry,
    )


def execute_workload(
    workload: BuiltWorkload,
    level: str,
    machine: MachineConfig = PAPER_MACHINE,
    opt: Optional[OptimizerConfig] = None,
    telemetry: Optional[TelemetrySession] = None,
    fast: Optional[bool] = None,
) -> RunResult:
    """Execute an already-built workload at one measurement level.

    The single execution path shared by every registered level: resolve the
    :class:`LevelSpec`, apply its instrumentation, wire telemetry, attach its
    component, run, finalize.  ``telemetry`` attaches an existing session
    (event sinks and all); without one, a metrics-only session is created so
    the returned result still carries an exact metrics registry.  Telemetry
    never alters simulated cycle counts.

    ``fast`` selects the compiled execution kernel (:mod:`repro.fastpath`);
    None defers to the ``REPRO_FASTPATH`` environment toggle.  The kernel is
    bit-identical to the reference dispatch loop, so results — and therefore
    result-cache fingerprints — do not depend on it.
    """
    prepared = prepare_workload(workload, level, machine, opt, telemetry)
    stats = prepared.interp.run(prepared.args, fast=fast)
    return finish_workload(prepared, stats)
