"""Frozen, serializable run specifications with content fingerprints.

A :class:`RunSpec` captures *everything* that determines a simulated run's
outcome: the workload name, the pass-count override, the measurement level,
the machine model and the optimizer configuration.  Two specs with equal
fingerprints are guaranteed (by the simulator's determinism, which the
oracle subsystem continuously verifies) to produce bit-identical results —
which is exactly the license the result cache needs to replay one instead of
simulating.

The fingerprint is a sha256 over three ingredients:

1. the spec's canonical JSON form — with the optimizer config *normalized to
   the default* for levels that never read it (``orig``, ``base``,
   ``stride``, ``markov``), so e.g. the ``orig`` baseline is shared across
   ablations that sweep optimizer configs;
2. :func:`code_version`, a digest of every ``repro`` source file — editing
   the simulator invalidates every cached result it could have influenced
   (coarse, but correct, and the corpus is cheap to rebuild);
3. the ``REPRO_CACHE_SALT`` environment variable, an escape hatch for
   forcing a cold cache without deleting it.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from functools import lru_cache
from pathlib import Path
from typing import Iterator, Optional

import repro
from repro.core.config import OptimizerConfig
from repro.errors import ConfigError
from repro.machine.config import MachineConfig, PAPER_MACHINE
from repro.workloads.base import BuiltWorkload

#: Format version stamped into serialized specs; bump on schema changes.
SPEC_FORMAT = 1

#: Environment variable mixed into every fingerprint (cold-cache escape hatch).
CACHE_SALT_ENV = "REPRO_CACHE_SALT"


@lru_cache(maxsize=1)
def code_version() -> str:
    """Digest of every ``repro`` source file (the cache-invalidation salt).

    Any edit under ``src/repro`` changes this value and therefore every spec
    fingerprint: the cache never has to reason about *which* module a result
    depended on.
    """
    root = Path(repro.__file__).resolve().parent
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(str(path.relative_to(root)).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()


@dataclass(frozen=True)
class RunSpec:
    """Everything that determines one run's outcome, frozen.

    ``passes=None`` means the workload preset's default; it is kept distinct
    from the resolved value in the fingerprint (the preset default is itself
    covered by the code-version salt).
    """

    workload: str
    level: str
    passes: Optional[int] = None
    machine: MachineConfig = PAPER_MACHINE
    opt: OptimizerConfig = field(default_factory=OptimizerConfig)

    @property
    def label(self) -> str:
        return f"{self.workload}/{self.level}"

    def to_dict(self) -> dict[str, object]:
        return {
            "format": SPEC_FORMAT,
            "workload": self.workload,
            "level": self.level,
            "passes": self.passes,
            "machine": self.machine.to_dict(),
            "opt": self.opt.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "RunSpec":
        fmt = data.get("format")
        if fmt != SPEC_FORMAT:
            raise ConfigError(f"unsupported serialized RunSpec format {fmt!r}")
        passes = data.get("passes")
        return cls(
            workload=str(data["workload"]),
            level=str(data["level"]),
            passes=None if passes is None else int(passes),
            machine=MachineConfig.from_dict(data["machine"]),
            opt=OptimizerConfig.from_dict(data["opt"]),
        )

    def cache_key_dict(self) -> dict[str, object]:
        """The dict the fingerprint hashes: ``to_dict`` with the optimizer
        config normalized away for levels that never consume it."""
        from repro.engine.levels import get_level

        doc = self.to_dict()
        if not get_level(self.level).uses_opt:
            doc["opt"] = OptimizerConfig().to_dict()
        return doc

    def fingerprint(self) -> str:
        """Deterministic content address: spec + code version + salt."""
        canonical = json.dumps(
            self.cache_key_dict(), sort_keys=True, separators=(",", ":")
        )
        digest = hashlib.sha256(canonical.encode())
        digest.update(b"\0")
        digest.update(code_version().encode())
        digest.update(b"\0")
        digest.update(os.environ.get(CACHE_SALT_ENV, "").encode())
        return digest.hexdigest()

    def build(self) -> BuiltWorkload:
        """Materialize the spec's workload (runs mutate simulated memory, so
        every execution rebuilds from scratch)."""
        from repro.workloads import build_named

        return build_named(self.workload, passes=self.passes)


@dataclass(frozen=True)
class RunPlan:
    """An ordered batch of run specs (the unit the executor consumes)."""

    specs: tuple[RunSpec, ...] = ()

    @classmethod
    def of(cls, *specs: RunSpec) -> "RunPlan":
        return cls(specs=tuple(specs))

    def __len__(self) -> int:
        return len(self.specs)

    def __iter__(self) -> Iterator[RunSpec]:
        return iter(self.specs)

    def __getitem__(self, index: int) -> RunSpec:
        return self.specs[index]
