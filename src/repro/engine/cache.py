"""Content-addressed on-disk result cache.

:class:`ResultStore` memoizes :class:`~repro.engine.result.RunResult`s under
a cache root (default ``.repro-cache/``, overridable via the
``REPRO_CACHE_DIR`` environment variable), keyed by the spec fingerprint —
so the key already covers the workload, level, machine, optimizer config
*and* the simulator's own source code (:func:`repro.engine.spec.code_version`).

Entries are plain JSON documents laid out git-style
(``objects/<fp[:2]>/<fp>.json``) and written atomically (tmp file + fsync +
rename), so neither a crashed writer nor a power cut can leave a half-entry
that a later reader would trust.  Anything unreadable — truncated JSON, a
format bump, a fingerprint mismatch — degrades to a cache miss, never an
error; entries that *exist but fail validation* additionally bump the
session ``corrupt`` counter, and :meth:`ResultStore.scan` audits the whole
store on demand (``repro-bench cache stats``).  Every entry carries a sha256
over its canonical envelope, so even a single flipped byte inside the
serialized result is detected and degrades to recomputation — a damaged
cache can cost time, never correctness.

The store keeps per-session hit/miss/stored counters and mirrors them as
telemetry events (:class:`~repro.telemetry.events.ResultCacheHit` et al.) on
its own bus; engine events happen *around* runs, not inside them, so they
never pollute a run's event log.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from pathlib import Path
from typing import Optional, Union

from repro.engine.result import RunResult
from repro.engine.spec import RunSpec
from repro.errors import ConfigError
from repro.telemetry.events import (
    ResultCacheEvicted,
    ResultCacheHit,
    ResultCacheMiss,
    ResultCacheStored,
)
from repro.telemetry.sinks import NULL_SINK

#: Format version stamped into cache entries; bump on layout changes.
#: v2 added the envelope sha256, so a flipped byte inside the serialized
#: result is *detected* (degrades to a miss) instead of silently replayed.
CACHE_FORMAT = 2


def _entry_digest(doc: dict) -> str:
    """sha256 over the canonical envelope, excluding the digest field itself."""
    body = {k: v for k, v in doc.items() if k != "sha256"}
    canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()

#: Environment variable overriding the default cache root.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Default cache root, relative to the current working directory.
DEFAULT_CACHE_DIR = ".repro-cache"


def default_cache_root() -> Path:
    """The cache root the CLI uses: ``$REPRO_CACHE_DIR`` or ``.repro-cache``."""
    return Path(os.environ.get(CACHE_DIR_ENV) or DEFAULT_CACHE_DIR)


class ResultStore:
    """Content-addressed store of serialized run results."""

    def __init__(self, root: Union[str, os.PathLike, None] = None, bus=NULL_SINK) -> None:
        self.root = Path(root) if root is not None else default_cache_root()
        self.bus = bus
        # Session counters (reset with the store object, not the directory).
        self.hits = 0
        self.misses = 0
        self.stored = 0
        self.evicted = 0
        #: Misses where an entry file *existed* but failed validation
        #: (truncated JSON, digest/format/fingerprint mismatch) — i.e. the
        #: corrupt-degrades-to-miss path, not a plain cold miss.
        self.corrupt = 0

    # ------------------------------------------------------------- layout

    def path_for(self, fingerprint: str) -> Path:
        """Entry path for a fingerprint (git-style two-level fan-out)."""
        return self.root / "objects" / fingerprint[:2] / f"{fingerprint}.json"

    # ------------------------------------------------------------ load/store

    def load(self, spec: RunSpec) -> Optional[RunResult]:
        """Replay a cached result for ``spec``, or None on a miss.

        Corrupt, foreign-format or fingerprint-mismatched entries count as
        misses; the cache never raises on bad on-disk state.
        """
        fingerprint = spec.fingerprint()
        path = self.path_for(fingerprint)
        try:
            doc = json.loads(path.read_text())
            if doc.get("format") != CACHE_FORMAT or doc.get("fingerprint") != fingerprint:
                raise ValueError("stale cache entry")
            if doc.get("sha256") != _entry_digest(doc):
                raise ValueError("cache entry digest mismatch")
            result = RunResult.from_dict(doc["result"])
        except FileNotFoundError:
            self.misses += 1
            if self.bus.enabled:
                self.bus.emit(ResultCacheMiss(
                    cycle=0, workload=spec.workload, level=spec.level,
                    fingerprint=fingerprint,
                ))
            return None
        except (OSError, ValueError, KeyError, TypeError):
            self.misses += 1
            self.corrupt += 1
            if self.bus.enabled:
                self.bus.emit(ResultCacheMiss(
                    cycle=0, workload=spec.workload, level=spec.level,
                    fingerprint=fingerprint,
                ))
            return None
        result.from_cache = True
        self.hits += 1
        if self.bus.enabled:
            self.bus.emit(ResultCacheHit(
                cycle=0, workload=spec.workload, level=spec.level,
                fingerprint=fingerprint,
            ))
        return result

    def store(self, spec: RunSpec, result: RunResult) -> Path:
        """Write ``result`` under ``spec``'s fingerprint (atomic, durable)."""
        fingerprint = spec.fingerprint()
        path = self.path_for(fingerprint)
        doc = {
            "format": CACHE_FORMAT,
            "fingerprint": fingerprint,
            "spec": spec.cache_key_dict(),
            "result": result.to_dict(),
        }
        doc["sha256"] = _entry_digest(doc)
        payload = json.dumps(doc, sort_keys=True, separators=(",", ":"))
        self._write_entry(path, payload)
        self.stored += 1
        if self.bus.enabled:
            self.bus.emit(ResultCacheStored(
                cycle=0, workload=spec.workload, level=spec.level,
                fingerprint=fingerprint, bytes_written=len(payload),
            ))
        return path

    # ------------------------------------------------- generic payloads
    # The same content-addressed layout for result documents that are not
    # single RunResults (tenancy co-runs today).  ``kind`` is stored in the
    # envelope and checked on load, so a tenancy fingerprint can never be
    # satisfied by a single-run entry or vice versa.

    def load_payload(self, fingerprint: str, kind: str, label: str) -> Optional[dict]:
        """Replay an arbitrary cached document, or None on a miss.

        Same degradation contract as :meth:`load`: anything unreadable or
        mismatched is a miss, never an error.  ``label`` only feeds the
        telemetry events (the fingerprint is the key).
        """
        path = self.path_for(fingerprint)
        try:
            doc = json.loads(path.read_text())
            if (
                doc.get("format") != CACHE_FORMAT
                or doc.get("fingerprint") != fingerprint
                or doc.get("kind") != kind
            ):
                raise ValueError("stale cache entry")
            if doc.get("sha256") != _entry_digest(doc):
                raise ValueError("cache entry digest mismatch")
            payload = doc["payload"]
        except FileNotFoundError:
            self.misses += 1
            if self.bus.enabled:
                self.bus.emit(ResultCacheMiss(
                    cycle=0, workload=label, level=kind, fingerprint=fingerprint,
                ))
            return None
        except (OSError, ValueError, KeyError, TypeError):
            self.misses += 1
            self.corrupt += 1
            if self.bus.enabled:
                self.bus.emit(ResultCacheMiss(
                    cycle=0, workload=label, level=kind, fingerprint=fingerprint,
                ))
            return None
        self.hits += 1
        if self.bus.enabled:
            self.bus.emit(ResultCacheHit(
                cycle=0, workload=label, level=kind, fingerprint=fingerprint,
            ))
        return payload

    def store_payload(self, fingerprint: str, kind: str, label: str, payload: dict) -> Path:
        """Write an arbitrary document under ``fingerprint`` (atomic, durable)."""
        path = self.path_for(fingerprint)
        doc = {
            "format": CACHE_FORMAT,
            "fingerprint": fingerprint,
            "kind": kind,
            "payload": payload,
        }
        doc["sha256"] = _entry_digest(doc)
        text = json.dumps(doc, sort_keys=True, separators=(",", ":"))
        self._write_entry(path, text)
        self.stored += 1
        if self.bus.enabled:
            self.bus.emit(ResultCacheStored(
                cycle=0, workload=label, level=kind,
                fingerprint=fingerprint, bytes_written=len(text),
            ))
        return path

    @staticmethod
    def _write_entry(path: Path, text: str) -> None:
        """Tmp-file + fsync + rename: the entry is either absent, the old
        version, or the complete new version — even across a power cut (the
        fsync pins the data before the rename publishes the name)."""
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        with open(tmp, "w") as fh:
            fh.write(text)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)

    # ------------------------------------------------------------ management

    def entries(self) -> list[Path]:
        """All entry files currently on disk, sorted."""
        objects = self.root / "objects"
        if not objects.is_dir():
            return []
        return sorted(objects.glob("*/*.json"))

    def scan(self) -> dict[str, object]:
        """Audit every entry on disk without touching session counters.

        An entry is *corrupt* when its file exists but fails the same
        validation :meth:`load` applies: unparseable JSON, wrong format
        version, or an envelope fingerprint that disagrees with the file
        name.  Returns ``{"entries": n, "corrupt": n, "corrupt_files":
        [paths]}``.
        """
        corrupt: list[str] = []
        entries = self.entries()
        for path in entries:
            try:
                doc = json.loads(path.read_text())
                if doc.get("format") != CACHE_FORMAT or doc.get("fingerprint") != path.stem:
                    raise ValueError("invalid cache entry")
                if doc.get("sha256") != _entry_digest(doc):
                    raise ValueError("cache entry digest mismatch")
            except (OSError, ValueError, KeyError, TypeError):
                corrupt.append(str(path))
        return {
            "entries": len(entries),
            "corrupt": len(corrupt),
            "corrupt_files": corrupt,
        }

    def stats(self) -> dict[str, object]:
        """Disk state plus this session's counters."""
        entries = self.entries()
        return {
            "root": str(self.root),
            "entries": len(entries),
            "bytes": sum(p.stat().st_size for p in entries),
            "corrupt": self.scan()["corrupt"],
            "session": {
                "hits": self.hits,
                "misses": self.misses,
                "stored": self.stored,
                "evicted": self.evicted,
                "corrupt": self.corrupt,
            },
        }

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for path in self.entries():
            path.unlink()
            removed += 1
        return removed

    def _evict(self, path: Path, reason: str) -> int:
        """Remove one entry; returns the bytes freed (0 if already gone)."""
        try:
            size = path.stat().st_size
            path.unlink()
        except OSError:
            return 0
        self.evicted += 1
        if self.bus.enabled:
            self.bus.emit(ResultCacheEvicted(
                cycle=0, fingerprint=path.stem, reason=reason, bytes_freed=size,
            ))
        return size

    def gc(
        self,
        max_age_days: Optional[float] = None,
        max_size_mb: Optional[float] = None,
        now: Optional[float] = None,
        dry_run: bool = False,
    ) -> dict[str, object]:
        """Bound the cache by age and/or total size.

        Entries older than ``max_age_days`` (by mtime) are removed first;
        if the survivors still exceed ``max_size_mb``, oldest entries go
        until the store fits.  ``now`` pins the reference clock for tests.
        ``dry_run`` reports the same eviction set without deleting anything
        (and without bumping counters or emitting events).  Returns
        ``{"evicted": n, "bytes_freed": b, "entries": remaining,
        "bytes": remaining_bytes, "dry_run": bool}``.
        """
        if max_age_days is None and max_size_mb is None:
            raise ConfigError("cache gc needs --max-age-days and/or --max-size-mb")
        if now is None:
            now = time.time()

        def remove(path: Path, size: int, reason: str) -> int:
            if dry_run:
                return size
            return self._evict(path, reason)

        survivors: list[tuple[float, int, Path]] = []
        evicted = 0
        bytes_freed = 0
        for path in self.entries():
            try:
                stat = path.stat()
            except OSError:
                continue
            if max_age_days is not None and now - stat.st_mtime > max_age_days * 86400.0:
                freed = remove(path, stat.st_size, "age")
                if freed:
                    evicted += 1
                    bytes_freed += freed
                continue
            survivors.append((stat.st_mtime, stat.st_size, path))
        if max_size_mb is not None:
            budget = max_size_mb * 1024.0 * 1024.0
            total = sum(size for _mtime, size, _path in survivors)
            survivors.sort()  # oldest first
            index = 0
            while total > budget and index < len(survivors):
                _mtime, size, path = survivors[index]
                freed = remove(path, size, "size")
                if freed:
                    evicted += 1
                    bytes_freed += freed
                    total -= size
                index += 1
            survivors = survivors[index:]
        if dry_run:
            remaining_bytes = sum(size for _mtime, size, _path in survivors)
            return {
                "evicted": evicted,
                "bytes_freed": bytes_freed,
                "entries": len(survivors),
                "bytes": remaining_bytes,
                "dry_run": True,
            }
        remaining = self.entries()
        return {
            "evicted": evicted,
            "bytes_freed": bytes_freed,
            "entries": len(remaining),
            "bytes": sum(p.stat().st_size for p in remaining),
            "dry_run": False,
        }

    def summary_line(self) -> str:
        """One-line session summary (the CLI prints this to stderr)."""
        line = (
            f"result cache: {self.hits} hits, {self.misses} misses, "
            f"{self.stored} stored"
        )
        if self.evicted:
            line += f", {self.evicted} evicted"
        if self.corrupt:
            line += f", {self.corrupt} corrupt"
        return f"{line} ({self.root})"
