"""Experiment engine: declarative run specs, memoized results, parallel execution.

The evaluation of the paper is a grid of (workload × level × config)
simulator runs — Figures 11/12 and Table 2 alone are ~70 executions.  This
package turns that grid into data:

- :mod:`repro.engine.spec` — :class:`RunSpec` freezes *everything* that
  determines a run's outcome (workload, level, pass count, machine model,
  optimizer config) into one serializable value with a deterministic
  content fingerprint; :class:`RunPlan` is an ordered batch of specs.
- :mod:`repro.engine.levels` — the declarative measurement-level registry.
  Each :class:`LevelSpec` describes its instrumentation, optimizer wiring
  and configuration derivation, replacing the old if/elif ladder in
  :mod:`repro.bench.runner`; new levels plug in via :func:`register_level`.
- :mod:`repro.engine.result` — :class:`RunResult` with a bit-identical
  ``to_dict``/``from_dict`` round trip.
- :mod:`repro.engine.cache` — :class:`ResultStore`, a content-addressed
  on-disk result cache under ``.repro-cache/`` keyed by spec fingerprint
  (plus a code-version salt, so editing the simulator invalidates
  everything it could have influenced).
- :mod:`repro.engine.executor` — :func:`run_spec` (one spec, cache-aware)
  and :func:`execute_plan` (a whole plan, optionally across a process
  pool, with per-run crash retry and deterministic result ordering).

The bench layer (:mod:`repro.bench`) and the golden-corpus oracle
(:mod:`repro.oracle.golden`) are thin consumers of this package;
``run_workload``/``run_level`` keep their historical signatures as
compatibility wrappers.
"""

from repro.engine.cache import ResultStore
from repro.engine.executor import execute_plan, run_spec
from repro.engine.levels import (
    LEVELS,
    LevelSpec,
    configure_level,
    execute_workload,
    get_level,
    level_names,
    register_level,
)
from repro.engine.result import RunResult
from repro.engine.spec import RunPlan, RunSpec, code_version

__all__ = [
    "LEVELS",
    "LevelSpec",
    "ResultStore",
    "RunPlan",
    "RunResult",
    "RunSpec",
    "code_version",
    "configure_level",
    "execute_plan",
    "execute_workload",
    "get_level",
    "level_names",
    "register_level",
    "run_spec",
]
