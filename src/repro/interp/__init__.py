"""Interpreter for the mini-ISA: lowering, execution, cycle accounting."""

from repro.interp.interpreter import (
    CHECKING,
    INSTRUMENTED,
    CheckListener,
    ExecStats,
    HardwarePrefetcher,
    Interpreter,
)
from repro.interp.lowering import lower_body, lower_procedure

__all__ = [
    "Interpreter",
    "ExecStats",
    "CheckListener",
    "HardwarePrefetcher",
    "CHECKING",
    "INSTRUMENTED",
    "lower_body",
    "lower_procedure",
]
