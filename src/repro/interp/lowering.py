"""Lowering from the instruction IR to dense executable tuples.

The interpreter executes tuples ``(opcode, ...)`` rather than instruction
objects: labels are resolved to indices, ALU/compare kinds become C-level
functions from :mod:`operator`, and each procedure version lowers to one flat
list.  Lowered code is cached on the procedure object; the binary editors
always create *new* procedure objects, so a cache entry can never go stale.
"""

from __future__ import annotations

import operator
from typing import Callable

from repro.errors import IRError
from repro.ir.instructions import (
    Alloc,
    Alu,
    AluImm,
    Bnz,
    Bz,
    Call,
    Check,
    Cmp,
    Const,
    Halt,
    Instr,
    Jmp,
    Load,
    Mov,
    Nop,
    Prefetch,
    Ret,
    Store,
)
from repro.ir.program import Procedure

# Opcode numbers (grouped roughly by expected execution frequency).
OP_LOAD = 0
OP_STORE = 1
OP_ALU = 2
OP_ALUI = 3
OP_CMP = 4
OP_BZ = 5
OP_BNZ = 6
OP_JMP = 7
OP_MOV = 8
OP_CONST = 9
OP_CHECK = 10
OP_CALL = 11
OP_RET = 12
OP_ALLOC = 13
OP_PREFETCH = 14
OP_HALT = 15
OP_NOP = 16


def _shr(a: int, b: int) -> int:
    return a >> b


def _shl(a: int, b: int) -> int:
    return a << b


ALU_FUNCS: dict[str, Callable[[int, int], int]] = {
    "add": operator.add,
    "sub": operator.sub,
    "mul": operator.mul,
    "div": operator.floordiv,
    "mod": operator.mod,
    "and": operator.and_,
    "or": operator.or_,
    "xor": operator.xor,
    "shl": _shl,
    "shr": _shr,
}

CMP_FUNCS: dict[str, Callable[[int, int], bool]] = {
    "lt": operator.lt,
    "le": operator.le,
    "eq": operator.eq,
    "ne": operator.ne,
    "gt": operator.gt,
    "ge": operator.ge,
}


def lower_body(body: list[Instr], labels: dict[str, int], proc_name: str) -> list[tuple]:
    """Lower one instruction list to executable tuples."""
    code: list[tuple] = []
    for i, instr in enumerate(body):
        if isinstance(instr, Load):
            code.append((OP_LOAD, instr.dst, instr.base, instr.offset, instr.pc, instr.traced, instr.detect))
        elif isinstance(instr, Store):
            code.append((OP_STORE, instr.src, instr.base, instr.offset, instr.pc, instr.traced, instr.detect))
        elif isinstance(instr, Alu):
            code.append((OP_ALU, ALU_FUNCS[instr.kind], instr.dst, instr.a, instr.b))
        elif isinstance(instr, AluImm):
            code.append((OP_ALUI, ALU_FUNCS[instr.kind], instr.dst, instr.a, instr.imm))
        elif isinstance(instr, Cmp):
            code.append((OP_CMP, CMP_FUNCS[instr.kind], instr.dst, instr.a, instr.b))
        elif isinstance(instr, Bz):
            code.append((OP_BZ, instr.cond, labels[instr.label]))
        elif isinstance(instr, Bnz):
            code.append((OP_BNZ, instr.cond, labels[instr.label]))
        elif isinstance(instr, Jmp):
            code.append((OP_JMP, labels[instr.label]))
        elif isinstance(instr, Mov):
            code.append((OP_MOV, instr.dst, instr.src))
        elif isinstance(instr, Const):
            code.append((OP_CONST, instr.dst, instr.value))
        elif isinstance(instr, Check):
            code.append((OP_CHECK, instr.backedge))
        elif isinstance(instr, Call):
            code.append((OP_CALL, instr.dst, instr.proc, instr.args))
        elif isinstance(instr, Ret):
            code.append((OP_RET, instr.src))
        elif isinstance(instr, Alloc):
            code.append((OP_ALLOC, instr.dst, instr.size_reg))
        elif isinstance(instr, Prefetch):
            code.append((OP_PREFETCH, instr.addrs))
        elif isinstance(instr, Halt):
            code.append((OP_HALT,))
        elif isinstance(instr, Nop):
            code.append((OP_NOP,))
        else:
            raise IRError(f"{proc_name}[{i}]: cannot lower {instr!r}")
    return code


def lower_procedure(proc: Procedure) -> tuple[list[tuple], list[tuple]]:
    """Lower both versions of ``proc``; cache the result on the object.

    Returns ``(checking_code, instrumented_code)``.  For procedures the static
    editor never touched, both entries are the same list.
    """
    cached = getattr(proc, "_lowered", None)
    if cached is not None:
        return cached
    checking = lower_body(proc.body, proc.labels, proc.name)
    if proc.instrumented_body is not None:
        if len(proc.instrumented_body) != len(proc.body):
            raise IRError(f"{proc.name}: version bodies differ in length")
        instrumented = lower_body(proc.instrumented_body, proc.labels, proc.name)
    else:
        instrumented = checking
    lowered = (checking, instrumented)
    proc._lowered = lowered  # type: ignore[attr-defined]
    return lowered
