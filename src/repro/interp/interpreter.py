"""The simulated machine: executes lowered programs and accounts cycles.

Cost model (see :class:`~repro.machine.config.MachineConfig`):

* every instruction costs one cycle,
* loads/stores add the memory-hierarchy stall for their address,
* ``CHECK`` adds ``check_cost`` and drives the bursty-tracing counter machine
  of Figure 2/3 (``nCheck``/``nInstr``, checking vs. instrumented version),
* traced references add ``trace_cost`` and are pushed to the ``trace_sink``,
* injected detection handlers add ``detect_base + detect_per_case * cases``
  and may issue prefetches (``prefetch_issue_cost`` each), and
* online analysis charges cycles through the check listener's return value.

The interpreter is deliberately a single big dispatch loop over dense tuples;
this is the hot path of every experiment in the repository.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Callable, Optional, Protocol

from repro.errors import ExecutionError, MemoryFault
from repro.fastpath import fastpath_enabled
from repro.interp.lowering import (
    OP_ALLOC,
    OP_ALU,
    OP_ALUI,
    OP_BNZ,
    OP_BZ,
    OP_CALL,
    OP_CHECK,
    OP_CMP,
    OP_CONST,
    OP_HALT,
    OP_JMP,
    OP_LOAD,
    OP_MOV,
    OP_NOP,
    OP_PREFETCH,
    OP_RET,
    OP_STORE,
    lower_procedure,
)
from repro.ir.instructions import Pc
from repro.ir.program import Program
from repro.machine.config import MachineConfig, PAPER_MACHINE
from repro.machine.hierarchy import MemoryHierarchy
from repro.machine.memory import Memory
from repro.telemetry.events import BurstBegin, BurstEnd
from repro.telemetry.sinks import NULL_SINK
from repro.tracing.spans import NULL_TRACER

#: Version indices for the dual-version bodies (Figure 2).
CHECKING, INSTRUMENTED = 0, 1


class CheckListener(Protocol):
    """Receives burst transitions from the CHECK counter machine.

    Both callbacks return extra cycles to charge to simulated time (used to
    bill online analysis/optimization work, the paper's Hds overhead).  A
    listener may also mutate the interpreter's counter reload values,
    ``tracing_enabled`` flag and ``dfsm_state`` — the interpreter re-reads
    them after every callback.
    """

    def burst_begin(self, now: int) -> int: ...

    def burst_end(self, now: int) -> int: ...


class HardwarePrefetcher(Protocol):
    """Optional hardware-prefetcher model observing the demand stream."""

    def observe(self, pc: Pc, addr: int, now: int, hierarchy: MemoryHierarchy) -> None: ...


@dataclass
class ExecStats:
    """Counters accumulated over one :meth:`Interpreter.run`."""

    cycles: int = 0
    instructions: int = 0
    memory_refs: int = 0
    mem_stall_cycles: int = 0
    checks_executed: int = 0
    bursts: int = 0
    traced_refs: int = 0
    #: executions of instrumented loads/stores that paid ``trace_cost``
    #: (unlike ``traced_refs``, counted whether or not a sink consumed the
    #: record — the exact multiplier for cycle attribution)
    trace_charges: int = 0
    detect_cycles: int = 0
    detects_executed: int = 0
    prefetches_issued: int = 0
    charged_cycles: int = 0
    return_value: int = 0

    @property
    def cpi(self) -> float:
        """Cycles per instruction."""
        return self.cycles / self.instructions if self.instructions else 0.0

    def to_dict(self) -> dict[str, int]:
        """JSON-serializable view of every counter (field order preserved)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "ExecStats":
        """Inverse of :meth:`to_dict` (unknown keys ignored, missing = 0)."""
        return cls(**{f.name: int(data.get(f.name, 0)) for f in fields(cls)})


class ExecState:
    """The dispatch loop's registers, parked between execution slices.

    :meth:`Interpreter.run` drives the loop to completion in one call and
    never exposes this object; :meth:`Interpreter.start` /
    :meth:`Interpreter.run_slice` park the loop here at instruction-count
    boundaries so a scheduler (``repro.tenancy``) can interleave several
    programs on one shared hierarchy.  ``cycles`` doubles as the clock the
    loop resumes from — a scheduler may advance it between slices to model
    time spent running other tenants.
    """

    __slots__ = (
        "proc", "code_pair", "mode", "ip", "regs", "stack",
        "cycles", "icount", "mem_refs", "mem_stall", "nchecks", "bursts",
        "traced", "trace_chg", "detect_cyc", "detects", "pf_issued", "charged",
        "n_check", "n_instr", "finished", "return_value",
    )

    def __init__(self, proc, code_pair, regs, n_check: int, n_instr: int) -> None:
        self.proc = proc
        self.code_pair = code_pair
        self.mode = CHECKING
        self.ip = 0
        self.regs = regs
        self.stack: list[tuple] = []
        self.cycles = 0
        self.icount = 0
        self.mem_refs = 0
        self.mem_stall = 0
        self.nchecks = 0
        self.bursts = 0
        self.traced = 0
        self.trace_chg = 0
        self.detect_cyc = 0
        self.detects = 0
        self.pf_issued = 0
        self.charged = 0
        self.n_check = n_check
        self.n_instr = n_instr
        self.finished = False
        self.return_value = 0


class Interpreter:
    """Executes a program against a memory image and a cache hierarchy."""

    def __init__(
        self,
        program: Program,
        memory: Memory,
        config: MachineConfig = PAPER_MACHINE,
        hierarchy: Optional[MemoryHierarchy] = None,
    ) -> None:
        self.program = program
        self.memory = memory
        self.config = config
        self.hierarchy = hierarchy if hierarchy is not None else MemoryHierarchy(config)
        # Bursty-tracing counter machine (Figure 2/3).  Reload values are
        # mutated by the profiling controller; `huge` defaults mean "never
        # enter the instrumented version".
        self.n_check0 = 1 << 60
        self.n_instr0 = 1
        self.tracing_enabled = False
        self.trace_sink: Optional[Callable[[Pc, int], None]] = None
        self.check_listener: Optional[CheckListener] = None
        self.hw_prefetcher: Optional[HardwarePrefetcher] = None
        #: Current DFSM prefix-matcher state (the injected `state` variable).
        self.dfsm_state: int = 0
        #: Telemetry bus (``.enabled``/``.emit``); NULL_SINK = off.  Events
        #: never charge simulated cycles — only burst transitions emit, so
        #: the hot dispatch loop is untouched.
        self.telemetry = NULL_SINK
        #: Span tracer (:mod:`repro.tracing.spans`); read by the optimizer,
        #: never touched in the dispatch loop.  NULL_TRACER = off.
        self.tracer = NULL_TRACER
        #: Source tag stamped on software prefetches this interpreter issues
        #: (detection handlers and PREFETCH instructions).  "sw" for the
        #: dynamic pipeline; :class:`~repro.core.static_pref.StaticPrefetcher`
        #: rebrands it "static".
        self.prefetch_source = "sw"
        #: Parked dispatch-loop state for slice execution (:meth:`start` /
        #: :meth:`run_slice`); None until :meth:`start`, and untouched by
        #: :meth:`run`.
        self.exec_state: Optional[ExecState] = None
        #: Per-procedure attribution recorder
        #: (:class:`~repro.tracing.attribution.ProcAttrRecorder`); None = off.
        #: Charged at procedure boundaries (CALL/RET) and park points only,
        #: so the straight-line hot path is untouched; descriptive-only, so
        #: the observer-effect-zero invariant covers it.
        self.proc_attr = None

    def set_counters(self, n_check0: int, n_instr0: int) -> None:
        """Set the counter reload values (profiling rate, Section 2.1)."""
        if n_check0 < 1 or n_instr0 < 1:
            raise ExecutionError("counter reload values must be >= 1")
        self.n_check0 = n_check0
        self.n_instr0 = n_instr0

    def run(
        self,
        args: tuple[int, ...] = (),
        max_instructions: Optional[int] = None,
        fast: Optional[bool] = None,
    ) -> ExecStats:
        """Execute from the entry procedure until HALT / final RET.

        Args:
            args: integer arguments for the entry procedure.
            max_instructions: optional safety bound; exceeding it raises
                :class:`ExecutionError`.
            fast: True/False selects the compiled fastpath kernel or the
                reference dispatch loop; None (default) defers to the
                ``REPRO_FASTPATH`` environment variable.  Results are
                bit-identical either way.
        """
        try:
            state = self._start(args)
            limit = max_instructions if max_instructions is not None else (1 << 62)
            if fastpath_enabled(fast):
                from repro.fastpath.kernel import run_fast

                stats = run_fast(self, state, limit, raise_on_limit=True)
            else:
                stats = self._dispatch(state, limit, raise_on_limit=True)
            assert stats is not None  # raise_on_limit=True never suspends
            return stats
        except ZeroDivisionError as exc:
            raise ExecutionError("division by zero in simulated program") from exc

    def start(self, args: tuple[int, ...] = ()) -> None:
        """Prepare slice execution from the entry procedure (see :meth:`run_slice`)."""
        self.exec_state = self._start(args)

    def run_slice(self, budget: int, fast: Optional[bool] = None) -> Optional[ExecStats]:
        """Execute up to ``budget`` more instructions; None while suspended.

        Returns the final :class:`ExecStats` once the program reaches HALT or
        its final RET (with ``cycles`` read off the state's clock, which a
        scheduler may have advanced between slices).  Slicing is invisible to
        the simulated program: running N slices of any budget produces the
        same instruction stream, stats and hierarchy state as one
        :meth:`run`, provided the clock was left alone.  ``fast`` selects the
        compiled kernel per slice exactly like :meth:`run`; slices may mix
        fast and reference execution freely (the parked state is shared).
        """
        state = self.exec_state
        if state is None:
            raise ExecutionError("run_slice() before start()")
        if state.finished:
            raise ExecutionError("run_slice() after the program finished")
        if budget < 1:
            raise ExecutionError("slice budget must be >= 1")
        try:
            if fastpath_enabled(fast):
                from repro.fastpath.kernel import run_fast

                return run_fast(self, state, state.icount + budget, raise_on_limit=False)
            return self._dispatch(state, state.icount + budget, raise_on_limit=False)
        except ZeroDivisionError as exc:
            raise ExecutionError("division by zero in simulated program") from exc

    def _start(self, args: tuple[int, ...]) -> ExecState:
        program = self.program
        proc = program.resolve(program.entry)
        if len(args) != proc.num_params:
            raise ExecutionError(
                f"entry {proc.name!r} takes {proc.num_params} args, got {len(args)}"
            )
        regs: list[int] = [0] * proc.num_regs
        regs[: len(args)] = list(args)
        return ExecState(proc, lower_procedure(proc), regs, self.n_check0, self.n_instr0)

    def _dispatch(
        self, state: ExecState, limit: int, raise_on_limit: bool
    ) -> Optional[ExecStats]:
        program = self.program
        cfg = self.config
        hier = self.hierarchy
        access = hier.access
        issue_prefetch = hier.issue_prefetch
        mem_words = self.memory._words
        allocate = self.memory.allocate

        check_cost = cfg.check_cost
        trace_cost = cfg.trace_cost
        detect_base = cfg.detect_base
        detect_per_case = cfg.detect_per_case
        pf_cost = cfg.prefetch_issue_cost

        proc = state.proc
        code_pair = state.code_pair
        mode = state.mode
        code = code_pair[mode]
        regs = state.regs
        ip = state.ip
        stack = state.stack

        cycles = state.cycles
        icount = state.icount
        mem_refs = state.mem_refs
        mem_stall = state.mem_stall
        nchecks = state.nchecks
        bursts = state.bursts
        traced = state.traced
        trace_chg = state.trace_chg
        detect_cyc = state.detect_cyc
        detects = state.detects
        pf_issued = state.pf_issued
        charged = state.charged
        return_value = state.return_value

        n_check = state.n_check
        n_instr = state.n_instr
        tracing = self.tracing_enabled
        sink = self.trace_sink
        # Batched feed: a sink exposing a ref_buffer (the TemporalProfiler)
        # gets raw (pc, addr) pairs appended directly; wrapped/ad-hoc sinks
        # fall back to one call per reference.
        rbuf = getattr(sink, "ref_buffer", None)
        rpush = None if rbuf is None else rbuf.append
        listener = self.check_listener
        hwpref = self.hw_prefetcher
        telem = self.telemetry
        pf_source = self.prefetch_source
        dstate = self.dfsm_state
        pattr = self.proc_attr
        finished = False

        while True:
            t = code[ip]
            ip += 1
            icount += 1
            cycles += 1
            op = t[0]

            if op == OP_LOAD:
                # (op, dst, base, offset, pc, traced, detect)
                addr = regs[t[2]] + t[3]
                if addr & 3 or addr < 0:
                    raise MemoryFault(f"bad load address {addr:#x} at {t[4]}")
                stall = access(addr, cycles)
                cycles += stall
                mem_stall += stall
                mem_refs += 1
                regs[t[1]] = mem_words.get(addr, 0)
                if t[5]:
                    cycles += trace_cost
                    trace_chg += 1
                    if tracing and sink is not None:
                        traced += 1
                        if rpush is not None:
                            rpush((t[4], addr))
                        else:
                            sink(t[4], addr)
                det = t[6]
                if det is not None:
                    dstate, prefetches, cases = det.step(dstate, addr)
                    detects += 1
                    extra = detect_base + detect_per_case * cases
                    cycles += extra
                    detect_cyc += extra
                    if prefetches:
                        for a in prefetches:
                            issue_prefetch(a, cycles, pf_source)
                            cycles += pf_cost
                        pf_issued += len(prefetches)
                if hwpref is not None:
                    hwpref.observe(t[4], addr, cycles, hier)

            elif op == OP_STORE:
                # (op, src, base, offset, pc, traced, detect)
                addr = regs[t[2]] + t[3]
                if addr & 3 or addr < 0:
                    raise MemoryFault(f"bad store address {addr:#x} at {t[4]}")
                stall = access(addr, cycles)
                cycles += stall
                mem_stall += stall
                mem_refs += 1
                mem_words[addr] = regs[t[1]]
                if t[5]:
                    cycles += trace_cost
                    trace_chg += 1
                    if tracing and sink is not None:
                        traced += 1
                        if rpush is not None:
                            rpush((t[4], addr))
                        else:
                            sink(t[4], addr)
                det = t[6]
                if det is not None:
                    dstate, prefetches, cases = det.step(dstate, addr)
                    detects += 1
                    extra = detect_base + detect_per_case * cases
                    cycles += extra
                    detect_cyc += extra
                    if prefetches:
                        for a in prefetches:
                            issue_prefetch(a, cycles, pf_source)
                            cycles += pf_cost
                        pf_issued += len(prefetches)
                if hwpref is not None:
                    hwpref.observe(t[4], addr, cycles, hier)

            elif op == OP_ALUI:
                regs[t[2]] = t[1](regs[t[3]], t[4])
            elif op == OP_ALU:
                regs[t[2]] = t[1](regs[t[3]], regs[t[4]])
            elif op == OP_CMP:
                regs[t[2]] = 1 if t[1](regs[t[3]], regs[t[4]]) else 0
            elif op == OP_BZ:
                if regs[t[1]] == 0:
                    ip = t[2]
            elif op == OP_BNZ:
                if regs[t[1]] != 0:
                    ip = t[2]
            elif op == OP_JMP:
                ip = t[1]
            elif op == OP_MOV:
                regs[t[1]] = regs[t[2]]
            elif op == OP_CONST:
                regs[t[1]] = t[2]

            elif op == OP_CHECK:
                cycles += check_cost
                nchecks += 1
                if mode == CHECKING:
                    n_check -= 1
                    if n_check == 0:
                        mode = INSTRUMENTED
                        n_instr = self.n_instr0
                        code = code_pair[INSTRUMENTED]
                        if telem.enabled:
                            telem.emit(BurstBegin(cycles))
                        if listener is not None:
                            self.dfsm_state = dstate
                            extra = listener.burst_begin(cycles)
                            cycles += extra
                            charged += extra
                            tracing = self.tracing_enabled
                            sink = self.trace_sink
                            rbuf = getattr(sink, "ref_buffer", None)
                            rpush = None if rbuf is None else rbuf.append
                            dstate = self.dfsm_state
                            n_instr = self.n_instr0
                else:
                    n_instr -= 1
                    if n_instr == 0:
                        mode = CHECKING
                        n_check = self.n_check0
                        code = code_pair[CHECKING]
                        bursts += 1
                        if telem.enabled:
                            telem.emit(BurstEnd(cycles, bursts))
                        if listener is not None:
                            self.dfsm_state = dstate
                            extra = listener.burst_end(cycles)
                            cycles += extra
                            charged += extra
                            tracing = self.tracing_enabled
                            sink = self.trace_sink
                            rbuf = getattr(sink, "ref_buffer", None)
                            rpush = None if rbuf is None else rbuf.append
                            dstate = self.dfsm_state
                            # The listener may have switched phase (awake <->
                            # hibernating); its new reload values take effect
                            # for the checking period that starts right now.
                            n_check = self.n_check0

            elif op == OP_CALL:
                # (op, dst, name, args)
                if pattr is not None:
                    # The CALL instruction itself charges to the caller.
                    pattr.charge(proc.name, icount, mem_stall, nchecks,
                                 trace_chg, detect_cyc, pf_issued, charged)
                callee = program.resolve(t[2])
                new_regs = [0] * callee.num_regs
                for k, a in enumerate(t[3]):
                    new_regs[k] = regs[a]
                stack.append((proc, code_pair, ip, regs, t[1]))
                proc = callee
                code_pair = lower_procedure(proc)
                code = code_pair[mode]
                regs = new_regs
                ip = 0

            elif op == OP_RET:
                if pattr is not None:
                    # The RET instruction charges to the returning procedure.
                    pattr.charge(proc.name, icount, mem_stall, nchecks,
                                 trace_chg, detect_cyc, pf_issued, charged)
                value = regs[t[1]] if t[1] is not None else 0
                if not stack:
                    return_value = value
                    finished = True
                    break
                proc, code_pair, ip, regs, dst = stack.pop()
                code = code_pair[mode]
                if dst is not None:
                    regs[dst] = value

            elif op == OP_ALLOC:
                regs[t[1]] = allocate(regs[t[2]])
            elif op == OP_PREFETCH:
                for a in t[1]:
                    issue_prefetch(a, cycles, pf_source)
                    cycles += pf_cost
                pf_issued += len(t[1])
            elif op == OP_HALT:
                finished = True
                break
            elif op == OP_NOP:
                pass
            else:  # pragma: no cover - lowering emits only known opcodes
                raise ExecutionError(f"unknown opcode {op}")

            if icount >= limit:
                if raise_on_limit:
                    raise ExecutionError(
                        f"instruction limit {limit} exceeded in {proc.name}"
                    )
                break

        # Park the loop registers — on suspension for the next slice, on
        # completion so schedulers can still read the final clock/icount.
        if pattr is not None:
            # Park/finish is a charge point too: slice boundaries (and the
            # chunk seals that ride on them) see fully-attributed counters.
            pattr.charge(proc.name, icount, mem_stall, nchecks,
                         trace_chg, detect_cyc, pf_issued, charged)
        self.dfsm_state = dstate
        state.proc = proc
        state.code_pair = code_pair
        state.mode = mode
        state.ip = ip
        state.regs = regs
        state.stack = stack
        state.cycles = cycles
        state.icount = icount
        state.mem_refs = mem_refs
        state.mem_stall = mem_stall
        state.nchecks = nchecks
        state.bursts = bursts
        state.traced = traced
        state.trace_chg = trace_chg
        state.detect_cyc = detect_cyc
        state.detects = detects
        state.pf_issued = pf_issued
        state.charged = charged
        state.n_check = n_check
        state.n_instr = n_instr
        state.return_value = return_value
        if not finished:
            return None
        state.finished = True
        stats = ExecStats()
        stats.cycles = cycles
        stats.instructions = icount
        stats.memory_refs = mem_refs
        stats.mem_stall_cycles = mem_stall
        stats.checks_executed = nchecks
        stats.bursts = bursts
        stats.traced_refs = traced
        stats.trace_charges = trace_chg
        stats.detect_cycles = detect_cyc
        stats.detects_executed = detects
        stats.prefetches_issued = pf_issued
        stats.charged_cycles = charged
        stats.return_value = return_value
        return stats
