"""Exact (brute-force) regularity computations, used as test ground truth.

The paper defines a subsequence's regularity magnitude as
``heat = length * frequency`` where frequency counts *non-overlapping*
occurrences in the trace (Section 2.3).  The fast grammar-based analysis is
conservative — a non-terminal's ``coldUses`` never exceeds the true
non-overlapping frequency of its expansion — and these helpers let tests
verify that, plus enumerate truly hot substrings on tiny traces.
"""

from __future__ import annotations

from typing import Sequence


def non_overlapping_frequency(needle: Sequence[int], trace: Sequence[int]) -> int:
    """Greedy left-to-right count of non-overlapping occurrences."""
    if not needle:
        raise ValueError("needle must be non-empty")
    n, m = len(trace), len(needle)
    count = 0
    i = 0
    first = needle[0]
    needle = list(needle)
    trace = list(trace)
    while i + m <= n:
        if trace[i] == first and trace[i : i + m] == needle:
            count += 1
            i += m
        else:
            i += 1
    return count


def exact_heat(needle: Sequence[int], trace: Sequence[int]) -> int:
    """``length * non-overlapping frequency`` of ``needle`` in ``trace``."""
    return len(needle) * non_overlapping_frequency(needle, trace)


def enumerate_hot_substrings(
    trace: Sequence[int],
    heat_threshold: int,
    min_length: int,
    max_length: int,
) -> dict[tuple[int, ...], int]:
    """All substrings within length bounds whose exact heat reaches H.

    Exponential in spirit, quadratic in practice; only for small test traces.
    Returns ``{substring: heat}``.
    """
    trace = list(trace)
    results: dict[tuple[int, ...], int] = {}
    n = len(trace)
    for length in range(min_length, min(max_length, n) + 1):
        seen: set[tuple[int, ...]] = set()
        for start in range(0, n - length + 1):
            candidate = tuple(trace[start : start + length])
            if candidate in seen:
                continue
            seen.add(candidate)
            heat = exact_heat(candidate, trace)
            if heat >= heat_threshold:
                results[candidate] = heat
    return results
