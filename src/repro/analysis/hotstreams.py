"""Fast hot-data-stream detection from a Sequitur grammar (Figure 5).

The algorithm exploits that each non-terminal ``A`` of a Sequitur grammar
expands to exactly one word ``w_A``:

1. number non-terminals in reverse post-order so parents precede children,
2. propagate ``uses`` (occurrences in the unique parse tree) top-down, and
3. in the same order compute ``heat = |w_A| * coldUses`` where ``coldUses``
   discounts occurrences inside *other* hot non-terminals, reporting ``A``
   as hot when its length is in bounds and its heat reaches the threshold.

Running time is linear in the grammar size.  This is the paper's fast,
slightly conservative alternative to Larus's exact whole-program-paths
algorithm; :mod:`repro.analysis.exact` provides ground truth for tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from repro.analysis.stream import HotDataStream
from repro.errors import AnalysisError
from repro.sequitur.sequitur import Sequitur


@dataclass(frozen=True)
class AnalysisConfig:
    """Parameters of hot-data-stream detection.

    The heat threshold ``H`` is ``heat_threshold`` when given, otherwise
    ``ceil(heat_ratio * trace_length)`` — the paper's "account for at least
    1% of the collected trace" corresponds to ``heat_ratio = 0.01``.

    ``min_length``/``max_length`` bound the stream's reference count (the
    worked example of Table 1 uses 2..7); ``min_unique`` additionally demands
    distinct references (the paper's production setting: "more than ten
    unique references" = ``min_unique=10``).  ``max_streams`` keeps only the
    hottest streams, bounding DFSM construction.
    """

    heat_ratio: float = 0.01
    heat_threshold: Optional[int] = None
    min_length: int = 2
    max_length: int = 100
    min_unique: int = 0
    max_streams: Optional[int] = None

    def resolved_threshold(self, trace_length: int) -> int:
        """The absolute heat threshold H for a trace of ``trace_length``."""
        if self.heat_threshold is not None:
            return self.heat_threshold
        return max(1, math.ceil(self.heat_ratio * trace_length))

    def to_dict(self) -> dict[str, object]:
        """JSON-serializable view (the :class:`~repro.engine.spec.RunSpec` wire form)."""
        return {
            "heat_ratio": self.heat_ratio,
            "heat_threshold": self.heat_threshold,
            "min_length": self.min_length,
            "max_length": self.max_length,
            "min_unique": self.min_unique,
            "max_streams": self.max_streams,
        }

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "AnalysisConfig":
        """Inverse of :meth:`to_dict`."""
        threshold = data.get("heat_threshold")
        max_streams = data.get("max_streams")
        return cls(
            heat_ratio=float(data["heat_ratio"]),
            heat_threshold=None if threshold is None else int(threshold),
            min_length=int(data["min_length"]),
            max_length=int(data["max_length"]),
            min_unique=int(data["min_unique"]),
            max_streams=None if max_streams is None else int(max_streams),
        )


#: The paper's production analysis settings (Section 4.1).
PAPER_ANALYSIS = AnalysisConfig(heat_ratio=0.01, min_length=2, max_length=100, min_unique=10)


@dataclass
class RuleFacts:
    """Per-non-terminal values computed by the analysis (Table 1 columns)."""

    rule_id: int
    length: int
    index: int = -1
    uses: int = 0
    cold_uses: int = 0
    heat: int = 0
    hot: bool = False
    children: list[int] = field(default_factory=list)


def _figure5(
    start_id: int,
    rule_ids: list[int],
    lengths: dict[int, int],
    children: dict[int, list[int]],
    trace_length: int,
    config: AnalysisConfig,
) -> dict[int, RuleFacts]:
    """The Figure 5 computation over an id-level view of the grammar.

    Shared by the one-shot :func:`analyze_grammar` (which derives the view
    from the grammar's public API) and :class:`HotStreamAnalyzer` (which
    maintains it incrementally); both must produce identical facts.
    """
    facts: dict[int, RuleFacts] = {
        rule_id: RuleFacts(rule_id=rule_id, length=lengths[rule_id])
        for rule_id in rule_ids
    }
    for rule_id in rule_ids:
        facts[rule_id].children = list(children[rule_id])

    # Reverse post-order numbering (iterative DFS; parents get lower indices).
    next_index = len(rule_ids)
    visited: set[int] = set()
    stack: list[tuple[int, bool]] = [(start_id, False)]
    while stack:
        rule_id, expanded = stack.pop()
        if expanded:
            next_index -= 1
            facts[rule_id].index = next_index
            continue
        if rule_id in visited:
            continue
        visited.add(rule_id)
        stack.append((rule_id, True))
        for child_id in children[rule_id]:
            if child_id not in visited:
                stack.append((child_id, False))
    if next_index != 0:
        raise AnalysisError("grammar contains rules unreachable from the start rule")

    order = sorted(facts.values(), key=lambda f: f.index)

    # Uses: occurrences of each non-terminal in the unique parse tree.
    facts[start_id].uses = facts[start_id].cold_uses = 1
    for fact in order:
        for child_id in fact.children:
            child = facts[child_id]
            child.uses += fact.uses
            child.cold_uses = child.uses

    # Hot detection with cold-use discounting, in ascending index order.
    threshold = config.resolved_threshold(trace_length)
    for fact in order:
        fact.heat = fact.length * fact.cold_uses
        is_start = fact.rule_id == start_id
        fact.hot = (
            not is_start
            and config.min_length <= fact.length <= config.max_length
            and threshold <= fact.heat
        )
        subtract = fact.uses if fact.hot else (fact.uses - fact.cold_uses)
        if subtract:
            for child_id in fact.children:
                facts[child_id].cold_uses -= subtract
    return facts


def analyze_grammar(seq: Sequitur, config: AnalysisConfig) -> dict[int, RuleFacts]:
    """Run the Figure 5 algorithm; return the per-rule computed values.

    The returned facts expose every intermediate of the worked example
    (length, reverse-post-order index, uses, coldUses, heat, hotness); use
    :func:`find_hot_streams` when only the streams are needed.  Uses only
    the grammar's public API, so it works on any engine exposing it (the
    flat core and the oracle's linked reference alike).
    """
    lengths = seq.expansion_lengths()
    children = {
        rule_id: [child.id for child in seq.children(rule)]
        for rule_id, rule in seq.rules.items()
    }
    return _figure5(
        seq.start.id, list(seq.rules), lengths, children, seq.length, config
    )


def _streams_from_facts(
    seq: Sequitur, facts: dict[int, RuleFacts], config: AnalysisConfig
) -> list[HotDataStream]:
    """Expand, filter, dedupe and rank the hot facts (shared tail)."""
    streams: dict[tuple[int, ...], HotDataStream] = {}
    for fact in sorted(facts.values(), key=lambda f: f.index):
        if not fact.hot:
            continue
        symbols = tuple(seq.expand(seq.rules[fact.rule_id], limit=config.max_length))
        if len(set(symbols)) <= config.min_unique:
            continue
        existing = streams.get(symbols)
        if existing is None or existing.heat < fact.heat:
            streams[symbols] = HotDataStream(symbols=symbols, heat=fact.heat, rule_id=fact.rule_id)
    ranked = sorted(streams.values(), key=lambda s: (-s.heat, s.rule_id))
    if config.max_streams is not None:
        ranked = ranked[: config.max_streams]
    return ranked


def find_hot_streams(seq: Sequitur, config: AnalysisConfig) -> list[HotDataStream]:
    """Extract hot data streams, hottest first.

    Applies the ``min_unique`` and ``max_streams`` filters on top of
    :func:`analyze_grammar`, expands each hot non-terminal to its reference
    sequence, and deduplicates identical sequences (keeping the hottest).
    """
    return _streams_from_facts(seq, analyze_grammar(seq, config), config)


class HotStreamAnalyzer:
    """Incremental Figure 5 analysis bound to one flat grammar.

    The expensive inputs of the analysis — each rule's terminal count,
    child list and expansion length — are cached and refreshed from the
    engine's dirty-rule set (:meth:`Sequitur.take_dirty`): per-symbol body
    walks happen only over rules whose bodies changed since the previous
    epoch.  The O(#rules + #edges) propagation of uses/coldUses/heat then
    runs over the cached id-level view; it cannot be skipped for clean
    subgraphs because the heat threshold is trace-length-relative and
    re-resolves every epoch.  Results are identical to
    :func:`analyze_grammar` on the same grammar (pinned by tests and
    ``analysis/exact.py``).

    Single consumer: constructing two analyzers over one grammar would
    split the dirty stream between them.
    """

    def __init__(self, seq: Sequitur) -> None:
        self.seq = seq
        self._terms: dict[int, int] = {}
        self._children: dict[int, list[int]] = {}
        self._lengths: dict[int, int] = {}
        #: per-rule distinct-child sets, kept to diff edges across epochs
        self._child_sets: dict[int, set[int]] = {}
        #: inverted child relation, maintained edge-by-edge as bodies change
        self._parents: dict[int, set[int]] = {}

    def _walk_body(self, rule_id: int) -> tuple[int, list[int]]:
        """One rule body pass over the flat arrays: (terminal count, child ids).

        This deliberately reads the engine's slot arrays instead of the
        ``Rule.rhs()`` generator — the start rule is dirtied by every batch
        and its body dominates the walk, so the per-symbol constant here is
        most of the refresh cost.
        """
        seq = self.seq
        nxt = seq._nxt
        key = seq._key
        guard = seq.rules[rule_id].guard
        t = 0
        ch: list[int] = []
        node = nxt[guard]
        while node != guard:
            k = key[node]
            if k >= 0:  # type: ignore[operator]
                t += 1
            else:
                ch.append(-1 - k)  # type: ignore[operator]
            node = nxt[node]
        return t, ch

    def _refresh(self) -> None:
        """Re-walk dirtied rule bodies; rebuild affected expansion lengths.

        Strictly dirty-driven — no pass here scans all rules.  The engine
        puts every rule id into the dirty stream at birth and at death, so
        the stream alone tells us which caches to drop and which bodies to
        re-walk; the incrementally-maintained parents map turns "this body
        changed" into the exact set of invalidated expansion lengths.
        """
        seq = self.seq
        rules = seq.rules
        terms = self._terms
        children = self._children
        lengths = self._lengths
        child_sets = self._child_sets
        parents = self._parents
        dirty = seq.take_dirty()
        if not dirty:
            return
        stale: list[int] = []
        for rule_id in dirty:
            if rule_id in rules:
                stale.append(rule_id)
            elif rule_id in terms:  # died since last epoch: drop its facts
                del terms[rule_id]
                del children[rule_id]
                for child_id in child_sets.pop(rule_id):
                    child_parents = parents.get(child_id)
                    if child_parents is not None:  # child may be dead too
                        child_parents.discard(rule_id)
                parents.pop(rule_id, None)
                lengths.pop(rule_id, None)
        for rule_id in stale:
            t, ch = self._walk_body(rule_id)
            terms[rule_id] = t
            children[rule_id] = ch
            new_set = set(ch)
            old_set = child_sets.get(rule_id)
            if old_set is None:
                for child_id in new_set:
                    parents.setdefault(child_id, set()).add(rule_id)
            else:  # touch only the edges that actually changed
                for child_id in old_set - new_set:
                    child_parents = parents.get(child_id)
                    if child_parents is not None:  # child may be dead too
                        child_parents.discard(rule_id)
                for child_id in new_set - old_set:
                    parents.setdefault(child_id, set()).add(rule_id)
            child_sets[rule_id] = new_set
        # A dirty rule's length change propagates to every ancestor; walk
        # the parents map up from the stale set, then recompute exactly the
        # invalidated lengths bottom-up from the caches.
        invalid: set[int] = set()
        work = list(stale)
        while work:
            rule_id = work.pop()
            if rule_id in invalid:
                continue
            invalid.add(rule_id)
            work.extend(parents.get(rule_id, ()))
        for rule_id in invalid:
            lengths.pop(rule_id, None)
        # The start rule expands to the entire trace by construction, so its
        # length is the engine's maintained counter — no need to re-sum its
        # (large, always-invalid) child list every epoch.
        start_id = seq.start.id
        if start_id in invalid:
            invalid.discard(start_id)
            lengths[start_id] = seq.length
        for rule_id in invalid:
            if rule_id in lengths:
                continue
            stack: list[tuple[int, bool]] = [(rule_id, False)]
            while stack:
                cur, ready = stack.pop()
                if cur in lengths:
                    continue
                if ready:
                    lengths[cur] = terms[cur] + sum(lengths[c] for c in children[cur])
                    continue
                stack.append((cur, True))
                for child_id in children[cur]:
                    if child_id not in lengths:
                        stack.append((child_id, False))

    def analyze(self, config: AnalysisConfig) -> dict[int, RuleFacts]:
        """Per-rule facts, identical to ``analyze_grammar(self.seq, config)``."""
        self._refresh()
        seq = self.seq
        return _figure5(
            seq.start.id, list(seq.rules), self._lengths, self._children,
            seq.length, config,
        )

    def find_hot_streams(self, config: AnalysisConfig) -> list[HotDataStream]:
        """Hot data streams, identical to ``find_hot_streams(self.seq, config)``."""
        return _streams_from_facts(self.seq, self.analyze(config), config)
