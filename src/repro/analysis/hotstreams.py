"""Fast hot-data-stream detection from a Sequitur grammar (Figure 5).

The algorithm exploits that each non-terminal ``A`` of a Sequitur grammar
expands to exactly one word ``w_A``:

1. number non-terminals in reverse post-order so parents precede children,
2. propagate ``uses`` (occurrences in the unique parse tree) top-down, and
3. in the same order compute ``heat = |w_A| * coldUses`` where ``coldUses``
   discounts occurrences inside *other* hot non-terminals, reporting ``A``
   as hot when its length is in bounds and its heat reaches the threshold.

Running time is linear in the grammar size.  This is the paper's fast,
slightly conservative alternative to Larus's exact whole-program-paths
algorithm; :mod:`repro.analysis.exact` provides ground truth for tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from repro.analysis.stream import HotDataStream
from repro.errors import AnalysisError
from repro.sequitur.grammar import Rule
from repro.sequitur.sequitur import Sequitur


@dataclass(frozen=True)
class AnalysisConfig:
    """Parameters of hot-data-stream detection.

    The heat threshold ``H`` is ``heat_threshold`` when given, otherwise
    ``ceil(heat_ratio * trace_length)`` — the paper's "account for at least
    1% of the collected trace" corresponds to ``heat_ratio = 0.01``.

    ``min_length``/``max_length`` bound the stream's reference count (the
    worked example of Table 1 uses 2..7); ``min_unique`` additionally demands
    distinct references (the paper's production setting: "more than ten
    unique references" = ``min_unique=10``).  ``max_streams`` keeps only the
    hottest streams, bounding DFSM construction.
    """

    heat_ratio: float = 0.01
    heat_threshold: Optional[int] = None
    min_length: int = 2
    max_length: int = 100
    min_unique: int = 0
    max_streams: Optional[int] = None

    def resolved_threshold(self, trace_length: int) -> int:
        """The absolute heat threshold H for a trace of ``trace_length``."""
        if self.heat_threshold is not None:
            return self.heat_threshold
        return max(1, math.ceil(self.heat_ratio * trace_length))

    def to_dict(self) -> dict[str, object]:
        """JSON-serializable view (the :class:`~repro.engine.spec.RunSpec` wire form)."""
        return {
            "heat_ratio": self.heat_ratio,
            "heat_threshold": self.heat_threshold,
            "min_length": self.min_length,
            "max_length": self.max_length,
            "min_unique": self.min_unique,
            "max_streams": self.max_streams,
        }

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "AnalysisConfig":
        """Inverse of :meth:`to_dict`."""
        threshold = data.get("heat_threshold")
        max_streams = data.get("max_streams")
        return cls(
            heat_ratio=float(data["heat_ratio"]),
            heat_threshold=None if threshold is None else int(threshold),
            min_length=int(data["min_length"]),
            max_length=int(data["max_length"]),
            min_unique=int(data["min_unique"]),
            max_streams=None if max_streams is None else int(max_streams),
        )


#: The paper's production analysis settings (Section 4.1).
PAPER_ANALYSIS = AnalysisConfig(heat_ratio=0.01, min_length=2, max_length=100, min_unique=10)


@dataclass
class RuleFacts:
    """Per-non-terminal values computed by the analysis (Table 1 columns)."""

    rule_id: int
    length: int
    index: int = -1
    uses: int = 0
    cold_uses: int = 0
    heat: int = 0
    hot: bool = False
    children: list[int] = field(default_factory=list)


def analyze_grammar(seq: Sequitur, config: AnalysisConfig) -> dict[int, RuleFacts]:
    """Run the Figure 5 algorithm; return the per-rule computed values.

    The returned facts expose every intermediate of the worked example
    (length, reverse-post-order index, uses, coldUses, heat, hotness); use
    :func:`find_hot_streams` when only the streams are needed.
    """
    start = seq.start
    lengths = seq.expansion_lengths()
    facts: dict[int, RuleFacts] = {
        rule_id: RuleFacts(rule_id=rule_id, length=lengths[rule_id])
        for rule_id in seq.rules
    }
    for rule_id, rule in seq.rules.items():
        facts[rule_id].children = [child.id for child in seq.children(rule)]

    # Reverse post-order numbering (iterative DFS; parents get lower indices).
    next_index = len(seq.rules)
    visited: set[int] = set()
    stack: list[tuple[Rule, bool]] = [(start, False)]
    while stack:
        rule, expanded = stack.pop()
        if expanded:
            next_index -= 1
            facts[rule.id].index = next_index
            continue
        if rule.id in visited:
            continue
        visited.add(rule.id)
        stack.append((rule, True))
        for child in seq.children(rule):
            if child.id not in visited:
                stack.append((child, False))
    if next_index != 0:
        raise AnalysisError("grammar contains rules unreachable from the start rule")

    order = sorted(facts.values(), key=lambda f: f.index)

    # Uses: occurrences of each non-terminal in the unique parse tree.
    facts[start.id].uses = facts[start.id].cold_uses = 1
    for fact in order:
        for child_id in fact.children:
            child = facts[child_id]
            child.uses += fact.uses
            child.cold_uses = child.uses

    # Hot detection with cold-use discounting, in ascending index order.
    threshold = config.resolved_threshold(seq.length)
    for fact in order:
        fact.heat = fact.length * fact.cold_uses
        is_start = fact.rule_id == start.id
        fact.hot = (
            not is_start
            and config.min_length <= fact.length <= config.max_length
            and threshold <= fact.heat
        )
        subtract = fact.uses if fact.hot else (fact.uses - fact.cold_uses)
        if subtract:
            for child_id in fact.children:
                facts[child_id].cold_uses -= subtract
    return facts


def find_hot_streams(seq: Sequitur, config: AnalysisConfig) -> list[HotDataStream]:
    """Extract hot data streams, hottest first.

    Applies the ``min_unique`` and ``max_streams`` filters on top of
    :func:`analyze_grammar`, expands each hot non-terminal to its reference
    sequence, and deduplicates identical sequences (keeping the hottest).
    """
    facts = analyze_grammar(seq, config)
    streams: dict[tuple[int, ...], HotDataStream] = {}
    for fact in sorted(facts.values(), key=lambda f: f.index):
        if not fact.hot:
            continue
        symbols = tuple(seq.expand(seq.rules[fact.rule_id], limit=config.max_length))
        if len(set(symbols)) <= config.min_unique:
            continue
        existing = streams.get(symbols)
        if existing is None or existing.heat < fact.heat:
            streams[symbols] = HotDataStream(symbols=symbols, heat=fact.heat, rule_id=fact.rule_id)
    ranked = sorted(streams.values(), key=lambda s: (-s.heat, s.rule_id))
    if config.max_streams is not None:
        ranked = ranked[: config.max_streams]
    return ranked
