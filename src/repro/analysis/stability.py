"""Stream stability across inputs — the basis of the static-scheme argument.

Chilimbi's companion study [10] showed hot data streams are "fairly stable
across program inputs", which is what makes an *offline/static* prefetching
scheme plausible at all (Section 1).  This module quantifies that stability
for simulated runs.

Because concrete heap addresses change across inputs (allocation order,
sizes), raw ``(pc, addr)`` streams from two runs are incomparable; what is
stable is the *code shape* of a stream — the sequence of pcs that produced
it.  :func:`pc_signature` projects a stream to that shape, and
:func:`stream_overlap` computes a heat-weighted Jaccard overlap between two
stream sets under the projection.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.analysis.stream import HotDataStream
from repro.ir.instructions import Pc
from repro.profiling.trace import SymbolTable

#: A stream's code shape: the pcs of its references, in order.
Signature = tuple[Pc, ...]


def pc_signature(stream: HotDataStream, symbols: SymbolTable) -> Signature:
    """Project a stream onto the pc sequence that produced it."""
    return tuple(ref.pc for ref in symbols.decode(stream.symbols))


def signature_heat(
    streams: Iterable[HotDataStream], symbols: SymbolTable
) -> dict[Signature, int]:
    """Total heat per pc-signature (streams with the same shape merge)."""
    heat: dict[Signature, int] = {}
    for stream in streams:
        signature = pc_signature(stream, symbols)
        heat[signature] = heat.get(signature, 0) + stream.heat
    return heat


def stream_overlap(
    streams_a: Sequence[HotDataStream],
    symbols_a: SymbolTable,
    streams_b: Sequence[HotDataStream],
    symbols_b: SymbolTable,
) -> float:
    """Heat-weighted Jaccard overlap of two stream sets' code shapes.

    1.0 means both runs spend their stream heat on identical pc shapes;
    0.0 means the shapes are disjoint.  Heat is normalized per run first so
    a longer run does not dominate.
    """
    heat_a = signature_heat(streams_a, symbols_a)
    heat_b = signature_heat(streams_b, symbols_b)
    total_a = sum(heat_a.values())
    total_b = sum(heat_b.values())
    if not total_a or not total_b:
        return 0.0
    shapes = set(heat_a) | set(heat_b)
    intersection = 0.0
    union = 0.0
    for shape in shapes:
        a = heat_a.get(shape, 0) / total_a
        b = heat_b.get(shape, 0) / total_b
        intersection += min(a, b)
        union += max(a, b)
    return intersection / union if union else 0.0


def address_overlap(
    streams_a: Sequence[HotDataStream],
    symbols_a: SymbolTable,
    streams_b: Sequence[HotDataStream],
    symbols_b: SymbolTable,
) -> float:
    """Heat-weighted Jaccard overlap of *concrete* (pc, addr) streams.

    This is the stability that matters to injected prefetch code: the
    addresses it prefetches are baked in at optimization time.  Across
    inputs (different heap layouts) this is near zero even when
    :func:`stream_overlap` is high — and within one run it collapses at a
    phase transition, which is why the static scheme's streams go stale
    while its pc shapes still look plausible.
    """
    heat_a: dict[tuple, float] = {}
    for stream in streams_a:
        key = tuple(symbols_a.decode(stream.symbols))
        heat_a[key] = heat_a.get(key, 0) + stream.heat
    heat_b: dict[tuple, float] = {}
    for stream in streams_b:
        key = tuple(symbols_b.decode(stream.symbols))
        heat_b[key] = heat_b.get(key, 0) + stream.heat
    total_a, total_b = sum(heat_a.values()), sum(heat_b.values())
    if not total_a or not total_b:
        return 0.0
    intersection = 0.0
    union = 0.0
    for key in set(heat_a) | set(heat_b):
        a = heat_a.get(key, 0) / total_a
        b = heat_b.get(key, 0) / total_b
        intersection += min(a, b)
        union += max(a, b)
    return intersection / union if union else 0.0


def hot_reference_coverage(streams: Sequence[HotDataStream], trace_length: int) -> float:
    """Fraction of the profiled trace accounted for by the streams' heat.

    The paper's motivating statistic: hot data streams "account for around
    90% of program references" [8].  Capped at 1.0 (heats of nested streams
    can overlap).
    """
    if trace_length <= 0:
        return 0.0
    return min(1.0, sum(s.heat for s in streams) / trace_length)
