"""Hot-data-stream analysis: the fast Figure 5 algorithm and exact checkers."""

from repro.analysis.exact import (
    enumerate_hot_substrings,
    exact_heat,
    non_overlapping_frequency,
)
from repro.analysis.stability import (
    address_overlap,
    hot_reference_coverage,
    pc_signature,
    signature_heat,
    stream_overlap,
)
from repro.analysis.hotstreams import (
    PAPER_ANALYSIS,
    AnalysisConfig,
    RuleFacts,
    analyze_grammar,
    find_hot_streams,
)
from repro.analysis.stream import HotDataStream

__all__ = [
    "AnalysisConfig",
    "PAPER_ANALYSIS",
    "RuleFacts",
    "analyze_grammar",
    "find_hot_streams",
    "HotDataStream",
    "non_overlapping_frequency",
    "exact_heat",
    "enumerate_hot_substrings",
    "pc_signature",
    "signature_heat",
    "stream_overlap",
    "hot_reference_coverage",
    "address_overlap",
]
