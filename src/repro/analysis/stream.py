"""Hot data streams and their head/tail split for prefetching.

A hot data stream is a data-reference subsequence whose *regularity
magnitude* ``heat = length * frequency`` exceeds a threshold (Section 2.3).
The optimizer splits each stream ``v`` into ``v.head`` (the first ``headLen``
references, to be matched) and ``v.tail`` (the rest, to be prefetched) —
Section 3.1.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class HotDataStream:
    """One hot data stream over interned symbol ids.

    Attributes:
        symbols: the stream's data references as interned ids, in order.
        heat: regularity magnitude ``length * coldUses`` from the analysis.
        rule_id: the Sequitur non-terminal this stream came from.
    """

    symbols: tuple[int, ...]
    heat: int
    rule_id: int

    @property
    def length(self) -> int:
        """Number of references in the stream."""
        return len(self.symbols)

    @property
    def unique_refs(self) -> int:
        """Number of distinct references in the stream."""
        return len(set(self.symbols))

    def head(self, head_len: int) -> tuple[int, ...]:
        """The prefix that must be matched before prefetching."""
        return self.symbols[:head_len]

    def tail(self, head_len: int) -> tuple[int, ...]:
        """The suffix whose addresses are prefetched on a head match."""
        return self.symbols[head_len:]
