"""Durability: checkpoints, crash-safe supervised execution, chaos testing.

Long multi-configuration studies must survive crashed workers, SIGKILLed
processes and torn writes without redoing finished work — and without *ever*
trading correctness for availability.  This package supplies the three
pieces (see DESIGN.md §5g):

:mod:`repro.durability.checkpoint`
    Format-versioned, sha256-integrity-tagged snapshots of the full
    architectural run state (interpreter frames + memory, cache sets and
    stats lanes, profiler/Sequitur/optimizer/watchdog state, fault-injector
    PRNG streams), taken at instruction-count boundaries through the
    ``Interpreter.start()/run_slice()`` API.  Checkpoint-resume is
    bit-identical to straight-through execution — pinned by the
    ``check_checkpoint_resume_identity`` oracle invariant.

:mod:`repro.durability.journal`
    A write-ahead run journal under ``.repro-cache/journal/``: every
    completed task's serialized result is appended (fsync'd, per-line
    sha256) before the plan moves on, so ``--resume`` replays finished
    work and restarts only what is left.  Corrupt lines are skipped and
    counted — they degrade to recomputation, never to wrong results.

:mod:`repro.durability.supervisor`
    :func:`~repro.durability.supervisor.execute_plan_supervised` wraps the
    engine's plan executor with per-task timeouts, worker heartbeats,
    bounded retry with exponential backoff and a final in-process fallback,
    so a plan always completes with correct results.

:mod:`repro.durability.chaos`
    A seeded, deterministic :class:`~repro.durability.chaos.ChaosPlan` (in
    the spirit of :mod:`repro.resilience.faults`) that injects engine-level
    faults — SIGKILL a worker mid-task, stall past the heartbeat deadline,
    truncate a checkpoint, corrupt a cache entry, flip a journal byte — to
    prove every recovery path under test and in CI.
"""

from repro.durability.chaos import CHAOS_KINDS, ChaosInjector, ChaosPlan
from repro.durability.checkpoint import (
    CHECKPOINT_FORMAT,
    Checkpoint,
    CheckpointError,
    load_checkpoint,
    save_checkpoint,
)
from repro.durability.journal import RunJournal, journal_path, plan_fingerprint
from repro.durability.runner import run_spec_durable
from repro.durability.supervisor import (
    DurabilityPolicy,
    SupervisorConfig,
    execute_plan_supervised,
)

__all__ = [
    "CHAOS_KINDS",
    "CHECKPOINT_FORMAT",
    "Checkpoint",
    "CheckpointError",
    "ChaosInjector",
    "ChaosPlan",
    "DurabilityPolicy",
    "RunJournal",
    "SupervisorConfig",
    "execute_plan_supervised",
    "journal_path",
    "load_checkpoint",
    "plan_fingerprint",
    "run_spec_durable",
    "save_checkpoint",
]
