"""Architectural-state checkpoints: snapshot a run mid-flight, resume exactly.

A checkpoint captures the *complete* state of one simulated run at an
instruction-count boundary — the interpreter with its parked
:class:`~repro.interp.interpreter.ExecState` (frames, registers, call stack,
counter machine), the simulated memory image, both cache levels with every
stats lane, and whatever the level attached: profiler buffers, the Sequitur
grammar (flattened iteratively, see ``Sequitur.__getstate__``), the
optimizer/watchdog scoreboards and the fault injector's PRNG streams.  The
whole object graph goes through one :mod:`pickle` dump so shared references
(lowered-code caches, the optimizer's interpreter backpointer) are preserved,
which is what makes resume bit-identical to straight-through execution.

On-disk format (version :data:`CHECKPOINT_FORMAT`)::

    <one JSON header line>\\n
    <pickle payload bytes>

The header carries the format version, the payload's sha256, the payload
length, and the run's identity (workload, level, spec fingerprint, icount,
cycles).  :func:`load_checkpoint` refuses — with a typed
:class:`CheckpointError` naming the failed gate — on a version bump, a
digest mismatch, a truncated payload or a foreign spec fingerprint; callers
degrade to recompute-from-start, never to wrong results.  Writes are atomic
(tmp file + fsync + rename) so a crash mid-save leaves the previous
checkpoint intact.

Saving is best-effort by design: transient unpicklable state (the fault
injector's corrupt-record closure while a burst is active) makes
:func:`save_checkpoint` return ``None`` and the run continue uncheckpointed —
a checkpoint is an optimization, never a failure mode.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

from repro.errors import ReproError
from repro.telemetry.events import CheckpointRejected, CheckpointSaved, CheckpointSkipped
from repro.telemetry.sinks import NULL_SINK

#: Format version of the checkpoint file; bump on any layout change — a
#: loader must refuse foreign versions, never guess at them.
CHECKPOINT_FORMAT = 1


class CheckpointError(ReproError):
    """A checkpoint failed validation (version/digest/truncation/fingerprint).

    ``reason`` is a short machine-readable tag (``format``, ``digest``,
    ``truncated``, ``fingerprint``, ``unreadable``) mirrored into the
    :class:`~repro.telemetry.events.CheckpointRejected` event.
    """

    def __init__(self, reason: str, message: str) -> None:
        super().__init__(message)
        self.reason = reason


@dataclass
class Checkpoint:
    """A restored run: the interpreter graph plus the header metadata."""

    interp: object
    summary: Optional[object]
    workload: str
    level: str
    fingerprint: str
    icount: int
    cycles: int


def save_checkpoint(
    path: Union[str, os.PathLike],
    interp,
    summary,
    *,
    workload: str,
    level: str,
    fingerprint: str,
    bus=NULL_SINK,
) -> Optional[Path]:
    """Atomically write a checkpoint of a mid-slice run; None if unpicklable.

    ``interp`` must be suspended (``start()`` called, last ``run_slice``
    returned None).  The interpreter and the attached optimizer summary are
    pickled as one graph; ``fingerprint`` should be the run's
    :meth:`~repro.engine.spec.RunSpec.fingerprint`, which covers the
    simulator's code version — so stale checkpoints self-invalidate across
    code edits exactly like stale cache entries do.
    """
    path = Path(path)
    state = interp.exec_state
    try:
        payload = pickle.dumps(
            {"interp": interp, "summary": summary}, protocol=pickle.HIGHEST_PROTOCOL
        )
    except Exception as exc:  # transient unpicklable state: skip, don't fail
        if bus.enabled:
            bus.emit(CheckpointSkipped(
                cycle=0, workload=workload, level=level,
                reason=f"{type(exc).__name__}: {exc}",
            ))
        return None
    header = {
        "format": CHECKPOINT_FORMAT,
        "sha256": hashlib.sha256(payload).hexdigest(),
        "payload_bytes": len(payload),
        "workload": workload,
        "level": level,
        "fingerprint": fingerprint,
        "icount": state.icount if state is not None else 0,
        "cycles": state.cycles if state is not None else 0,
    }
    blob = json.dumps(header, sort_keys=True, separators=(",", ":")).encode() + b"\n" + payload
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_suffix(f".tmp.{os.getpid()}")
    with open(tmp, "wb") as fh:
        fh.write(blob)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    if bus.enabled:
        bus.emit(CheckpointSaved(
            cycle=0, workload=workload, level=level, path=str(path),
            icount=header["icount"], bytes_written=len(blob),
        ))
    return path


def read_header(path: Union[str, os.PathLike]) -> dict:
    """Parse and format-check a checkpoint's JSON header (no payload read)."""
    path = Path(path)
    try:
        with open(path, "rb") as fh:
            line = fh.readline()
        header = json.loads(line)
        if not isinstance(header, dict):
            raise ValueError("header is not an object")
    except (OSError, ValueError) as exc:
        raise CheckpointError("unreadable", f"{path}: unreadable header: {exc}") from exc
    if header.get("format") != CHECKPOINT_FORMAT:
        raise CheckpointError(
            "format",
            f"{path}: checkpoint format {header.get('format')!r} "
            f"(this build reads {CHECKPOINT_FORMAT})",
        )
    return header


def load_checkpoint(
    path: Union[str, os.PathLike],
    fingerprint: Optional[str] = None,
    bus=NULL_SINK,
) -> Checkpoint:
    """Validate and restore a checkpoint; :class:`CheckpointError` on any gate.

    Gates, in order: header readable and format current; spec ``fingerprint``
    matches (when given — it covers the code version, so a checkpoint from an
    edited simulator is refused, not misloaded); payload complete; payload
    sha256 matches.  Every rejection emits a
    :class:`~repro.telemetry.events.CheckpointRejected` event on ``bus``.
    """
    path = Path(path)
    try:
        header = read_header(path)
        if fingerprint is not None and header.get("fingerprint") != fingerprint:
            raise CheckpointError(
                "fingerprint",
                f"{path}: checkpoint is for a different spec/code version",
            )
        try:
            with open(path, "rb") as fh:
                fh.readline()
                payload = fh.read()
        except OSError as exc:
            raise CheckpointError("unreadable", f"{path}: {exc}") from exc
        expected = int(header.get("payload_bytes", -1))
        if len(payload) != expected:
            raise CheckpointError(
                "truncated",
                f"{path}: payload is {len(payload)} bytes, header promises {expected}",
            )
        if hashlib.sha256(payload).hexdigest() != header.get("sha256"):
            raise CheckpointError("digest", f"{path}: payload sha256 mismatch")
        try:
            state = pickle.loads(payload)
            interp, summary = state["interp"], state["summary"]
        except Exception as exc:
            raise CheckpointError("unreadable", f"{path}: payload unpicklable: {exc}") from exc
    except CheckpointError as err:
        if bus.enabled:
            bus.emit(CheckpointRejected(cycle=0, path=str(path), reason=err.reason))
        raise
    return Checkpoint(
        interp=interp,
        summary=summary,
        workload=str(header.get("workload", "")),
        level=str(header.get("level", "")),
        fingerprint=str(header.get("fingerprint", "")),
        icount=int(header.get("icount", 0)),
        cycles=int(header.get("cycles", 0)),
    )
