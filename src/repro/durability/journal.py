"""Write-ahead run journal: crash-safe progress log for one plan execution.

One journal file per :class:`~repro.engine.spec.RunPlan`, keyed by the plan
fingerprint (a sha256 over the spec fingerprints, which themselves cover the
workload, config *and* the simulator's code version — so an interrupted plan
from an edited checkout can never be resumed against foreign results).

Each line is an independent JSON record::

    {"sha256": "<hex of canonical body>", "body": {...}}

appended with flush + fsync before the executor moves on, so a SIGKILL at
any instant leaves at worst one torn final line.  Body types:

``plan_begin``   plan fingerprint + task count (written once, first)
``task_done``    plan index, spec fingerprint and the **inline serialized
                 result** — replaying needs no other file to exist
``task_failed``  plan index, spec fingerprint, error string (diagnostic only;
                 a later attempt may still append ``task_done``)
``plan_end``     the plan completed; the journal is deletable

:meth:`RunJournal.replay` validates each line's digest and shape and skips
anything unreadable, counting it — a flipped byte or torn tail degrades that
entry to recomputation, never to a wrong result.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Union

from repro.engine.spec import RunPlan
from repro.telemetry.events import JournalReplayed
from repro.telemetry.sinks import NULL_SINK

#: Journal line format version; bump on schema changes (foreign versions are
#: skipped on replay, like any other unreadable line).
JOURNAL_FORMAT = 1


def plan_fingerprint(plan: RunPlan) -> str:
    """Content address of a whole plan: sha256 over its spec fingerprints."""
    digest = hashlib.sha256()
    for spec in plan:
        digest.update(spec.fingerprint().encode())
        digest.update(b"\0")
    return digest.hexdigest()


def journal_path(root: Union[str, os.PathLike], plan_fp: str) -> Path:
    """Journal file for one plan under the journal root."""
    return Path(root) / f"{plan_fp}.jsonl"


def _canonical(body: dict) -> str:
    return json.dumps(body, sort_keys=True, separators=(",", ":"))


@dataclass
class JournalReplay:
    """What :meth:`RunJournal.replay` recovered from disk."""

    #: spec fingerprint -> serialized RunResult dict (last write wins)
    results: dict[str, dict] = field(default_factory=dict)
    #: total well-formed entries read
    entries: int = 0
    #: unreadable/tampered lines skipped
    corrupt: int = 0
    #: a ``plan_end`` record was seen (the plan had completed)
    completed: bool = False


class RunJournal:
    """Append-only, fsync'd, per-line-integrity-tagged progress log."""

    def __init__(self, path: Union[str, os.PathLike], bus=NULL_SINK) -> None:
        self.path = Path(path)
        self.bus = bus
        self.appended = 0

    # ------------------------------------------------------------- writing

    def append(self, body: dict) -> None:
        """Append one record (flush + fsync before returning).

        The write-ahead contract: once :meth:`append` returns, the record
        survives a SIGKILL of this process.
        """
        body = {"format": JOURNAL_FORMAT, **body}
        canonical = _canonical(body)
        line = json.dumps(
            {"sha256": hashlib.sha256(canonical.encode()).hexdigest(), "body": body},
            sort_keys=True,
            separators=(",", ":"),
        )
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(line + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        self.appended += 1

    def plan_begin(self, plan_fp: str, total: int) -> None:
        self.append({"type": "plan_begin", "plan": plan_fp, "total": total})

    def task_done(self, index: int, fingerprint: str, result_doc: dict) -> None:
        self.append({
            "type": "task_done",
            "index": index,
            "fingerprint": fingerprint,
            "result": result_doc,
        })

    def task_failed(self, index: int, fingerprint: str, error: str) -> None:
        self.append({
            "type": "task_failed",
            "index": index,
            "fingerprint": fingerprint,
            "error": error,
        })

    def plan_end(self) -> None:
        self.append({"type": "plan_end"})

    def discard(self) -> None:
        """Remove the journal file (after a successful plan)."""
        try:
            self.path.unlink()
        except OSError:
            pass

    # ------------------------------------------------------------- replay

    def replay(self, plan_fp: Optional[str] = None) -> JournalReplay:
        """Read the journal back, skipping (and counting) anything unreadable.

        When ``plan_fp`` is given, a ``plan_begin`` naming a different plan
        invalidates the whole file (treated as empty): the journal's own name
        is the plan fingerprint, so this only triggers on a mis-copied file.
        """
        replay = JournalReplay()
        try:
            text = self.path.read_text(encoding="utf-8", errors="replace")
        except OSError:
            return replay
        for raw in text.splitlines():
            if not raw.strip():
                continue
            body = self._validate_line(raw)
            if body is None:
                replay.corrupt += 1
                continue
            replay.entries += 1
            kind = body.get("type")
            if kind == "plan_begin":
                if plan_fp is not None and body.get("plan") != plan_fp:
                    return JournalReplay(corrupt=replay.corrupt)
            elif kind == "task_done":
                replay.results[str(body["fingerprint"])] = body["result"]
            elif kind == "plan_end":
                replay.completed = True
        if self.bus.enabled and (replay.results or replay.corrupt):
            self.bus.emit(JournalReplayed(
                cycle=0, path=str(self.path),
                replayed=len(replay.results), corrupt=replay.corrupt,
            ))
        return replay

    @staticmethod
    def _validate_line(raw: str) -> Optional[dict]:
        """Digest-check one line; None if torn, tampered or foreign."""
        try:
            record = json.loads(raw)
            body = record["body"]
            if record["sha256"] != hashlib.sha256(_canonical(body).encode()).hexdigest():
                return None
            if body.get("format") != JOURNAL_FORMAT:
                return None
            if body.get("type") == "task_done" and not isinstance(body.get("result"), dict):
                return None
            return body
        except (ValueError, KeyError, TypeError):
            return None
