"""Durable single-run execution: slice, checkpoint, resume, finish.

:func:`run_spec_durable` is the checkpointed twin of
:func:`~repro.engine.executor.run_spec`'s simulate path.  It drives the
interpreter through :meth:`~repro.interp.interpreter.Interpreter.run_slice`
in ``checkpoint_every``-instruction slices — slicing is invisible to the
simulated program, so the result is bit-identical to one
:meth:`~repro.interp.interpreter.Interpreter.run` — and writes an
architectural-state checkpoint at each boundary.  A later call with
``resume=True`` restores the newest valid checkpoint and finishes the run
from there; anything wrong with the checkpoint (version bump, digest
mismatch, truncation, foreign spec/code fingerprint) degrades to
recompute-from-start.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Callable, Optional, Union

from repro.durability.checkpoint import (
    CheckpointError,
    load_checkpoint,
    save_checkpoint,
)
from repro.engine.levels import finish_workload, prepare_workload
from repro.engine.result import RunResult
from repro.engine.spec import RunSpec
from repro.telemetry.events import CheckpointLoaded
from repro.telemetry.sinks import NULL_SINK

#: Default checkpoint cadence, in simulated instructions.  Small enough that
#: the golden-corpus workloads cross several boundaries, large enough that
#: pickling cost stays a rounding error next to simulation time.
DEFAULT_CHECKPOINT_EVERY = 250_000

#: EWMA smoothing for the per-slice cache-hit / prefetch-accuracy rates
#: reported through the progress callback.
_EWMA_ALPHA = 0.3


class _ProgressTracker:
    """Per-slice progress sampling for :func:`run_spec_durable`.

    Reads only counters the run already maintains (state clock, cache and
    prefetch totals) at slice boundaries — purely descriptive, so the
    observer-effect-zero invariant holds by construction.  Rates are
    per-slice deltas smoothed with an EWMA so the live status reflects
    what the run is doing *now*, not its lifetime average.
    """

    def __init__(self, interp, summary) -> None:
        self._interp = interp
        self._summary = summary
        self._l1_hits = self._l1_total = 0
        self._pf_issued = self._pf_useful = 0
        self.hit_ewma = 0.0
        self.acc_ewma = 0.0

    def sample(self) -> dict:
        interp = self._interp
        state = interp.exec_state
        hier = interp.hierarchy
        l1 = hier.l1
        hits, total = l1.hits, l1.hits + l1.misses
        d_hits, d_total = hits - self._l1_hits, total - self._l1_total
        self._l1_hits, self._l1_total = hits, total
        if d_total > 0:
            self.hit_ewma += _EWMA_ALPHA * (d_hits / d_total - self.hit_ewma)
        pf = hier.prefetch
        d_useful, d_issued = pf.useful - self._pf_useful, pf.issued - self._pf_issued
        self._pf_issued, self._pf_useful = pf.issued, pf.useful
        if d_issued > 0:
            self.acc_ewma += _EWMA_ALPHA * (d_useful / d_issued - self.acc_ewma)
        return {
            "icount": state.icount,
            "cycles": state.cycles,
            "epoch": self._summary.num_cycles if self._summary is not None else 0,
            "hit_ewma": self.hit_ewma,
            "acc_ewma": self.acc_ewma,
        }


def run_spec_durable(
    spec: RunSpec,
    checkpoint_path: Union[str, os.PathLike, None] = None,
    checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
    resume: bool = True,
    bus=NULL_SINK,
    stop_after_checkpoints: Optional[int] = None,
    fast: Optional[bool] = None,
    progress: Optional[Callable[[dict], None]] = None,
) -> Optional[RunResult]:
    """Execute one spec with checkpointing; resumes a valid prior checkpoint.

    Without a ``checkpoint_path`` this is simply a sliced (still
    bit-identical) execution.  ``stop_after_checkpoints`` is the
    crash-simulation hook used by tests, the oracle invariant and the chaos
    harness: after writing that many checkpoints the function returns None —
    from the caller's point of view, the process died mid-run with its
    progress on disk.

    The checkpoint binds to ``spec.fingerprint()`` (which covers the
    simulator's code version): a stale or foreign checkpoint is rejected and
    the run restarts from scratch.  On success the checkpoint is removed.

    ``fast`` selects the compiled kernel per slice (None defers to the
    ``REPRO_FASTPATH`` environment toggle).  Checkpoints are kernel-agnostic:
    compiled code lives outside the pickled interpreter (weak-keyed on the
    procedure objects) and is rebuilt on first use after a restore, so a run
    may freely checkpoint under one kernel and resume under the other.

    ``progress`` (when given) is called at every slice boundary with a small
    dict — ``icount``, ``cycles``, ``epoch`` (completed optimizer cycles) and
    per-slice EWMAs of the L1 hit rate and prefetch accuracy — the feed for
    the supervisor's live ``status.json``.  Purely descriptive; it never
    touches the simulation.
    """
    fingerprint = spec.fingerprint()
    checkpoint_path = Path(checkpoint_path) if checkpoint_path is not None else None
    prepared = prepare_workload(spec.build(), spec.level, spec.machine, spec.opt)
    resumed = False
    if checkpoint_path is not None and resume and checkpoint_path.is_file():
        try:
            cp = load_checkpoint(checkpoint_path, fingerprint=fingerprint, bus=bus)
        except CheckpointError:
            # Rejected (and reported via the bus): recompute from the start.
            try:
                checkpoint_path.unlink()
            except OSError:
                pass
        else:
            # Swap the restored graph in under the freshly prepared session;
            # metrics-only sessions reconcile purely from the final counters,
            # so re-wiring is exact (the resume-identity oracle pins this).
            prepared.interp = cp.interp
            prepared.summary = cp.summary
            prepared.session.wire(cp.interp)
            resumed = True
            if bus.enabled:
                bus.emit(CheckpointLoaded(
                    cycle=0, workload=spec.workload, level=spec.level,
                    path=str(checkpoint_path), icount=cp.icount,
                ))
    interp = prepared.interp
    if not resumed:
        interp.start(prepared.args)
    tracker = _ProgressTracker(interp, prepared.summary) if progress is not None else None
    saved = 0
    while True:
        stats = interp.run_slice(checkpoint_every, fast=fast)
        if stats is not None:
            # Final sample: the park epilogue leaves the completed clock and
            # icount readable on the state, so status shows the true totals.
            if tracker is not None:
                progress(tracker.sample())
            break
        if tracker is not None:
            progress(tracker.sample())
        if checkpoint_path is not None:
            written = save_checkpoint(
                checkpoint_path,
                interp,
                prepared.summary,
                workload=spec.workload,
                level=spec.level,
                fingerprint=fingerprint,
                bus=bus,
            )
            if written is not None:
                saved += 1
                if stop_after_checkpoints is not None and saved >= stop_after_checkpoints:
                    return None
    if checkpoint_path is not None:
        try:
            checkpoint_path.unlink()
        except OSError:
            pass
    return finish_workload(prepared, stats)
