"""Durable single-run execution: slice, checkpoint, resume, finish.

:func:`run_spec_durable` is the checkpointed twin of
:func:`~repro.engine.executor.run_spec`'s simulate path.  It drives the
interpreter through :meth:`~repro.interp.interpreter.Interpreter.run_slice`
in ``checkpoint_every``-instruction slices — slicing is invisible to the
simulated program, so the result is bit-identical to one
:meth:`~repro.interp.interpreter.Interpreter.run` — and writes an
architectural-state checkpoint at each boundary.  A later call with
``resume=True`` restores the newest valid checkpoint and finishes the run
from there; anything wrong with the checkpoint (version bump, digest
mismatch, truncation, foreign spec/code fingerprint) degrades to
recompute-from-start.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Optional, Union

from repro.durability.checkpoint import (
    CheckpointError,
    load_checkpoint,
    save_checkpoint,
)
from repro.engine.levels import finish_workload, prepare_workload
from repro.engine.result import RunResult
from repro.engine.spec import RunSpec
from repro.telemetry.events import CheckpointLoaded
from repro.telemetry.sinks import NULL_SINK

#: Default checkpoint cadence, in simulated instructions.  Small enough that
#: the golden-corpus workloads cross several boundaries, large enough that
#: pickling cost stays a rounding error next to simulation time.
DEFAULT_CHECKPOINT_EVERY = 250_000


def run_spec_durable(
    spec: RunSpec,
    checkpoint_path: Union[str, os.PathLike, None] = None,
    checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
    resume: bool = True,
    bus=NULL_SINK,
    stop_after_checkpoints: Optional[int] = None,
    fast: Optional[bool] = None,
) -> Optional[RunResult]:
    """Execute one spec with checkpointing; resumes a valid prior checkpoint.

    Without a ``checkpoint_path`` this is simply a sliced (still
    bit-identical) execution.  ``stop_after_checkpoints`` is the
    crash-simulation hook used by tests, the oracle invariant and the chaos
    harness: after writing that many checkpoints the function returns None —
    from the caller's point of view, the process died mid-run with its
    progress on disk.

    The checkpoint binds to ``spec.fingerprint()`` (which covers the
    simulator's code version): a stale or foreign checkpoint is rejected and
    the run restarts from scratch.  On success the checkpoint is removed.

    ``fast`` selects the compiled kernel per slice (None defers to the
    ``REPRO_FASTPATH`` environment toggle).  Checkpoints are kernel-agnostic:
    compiled code lives outside the pickled interpreter (weak-keyed on the
    procedure objects) and is rebuilt on first use after a restore, so a run
    may freely checkpoint under one kernel and resume under the other.
    """
    fingerprint = spec.fingerprint()
    checkpoint_path = Path(checkpoint_path) if checkpoint_path is not None else None
    prepared = prepare_workload(spec.build(), spec.level, spec.machine, spec.opt)
    resumed = False
    if checkpoint_path is not None and resume and checkpoint_path.is_file():
        try:
            cp = load_checkpoint(checkpoint_path, fingerprint=fingerprint, bus=bus)
        except CheckpointError:
            # Rejected (and reported via the bus): recompute from the start.
            try:
                checkpoint_path.unlink()
            except OSError:
                pass
        else:
            # Swap the restored graph in under the freshly prepared session;
            # metrics-only sessions reconcile purely from the final counters,
            # so re-wiring is exact (the resume-identity oracle pins this).
            prepared.interp = cp.interp
            prepared.summary = cp.summary
            prepared.session.wire(cp.interp)
            resumed = True
            if bus.enabled:
                bus.emit(CheckpointLoaded(
                    cycle=0, workload=spec.workload, level=spec.level,
                    path=str(checkpoint_path), icount=cp.icount,
                ))
    interp = prepared.interp
    if not resumed:
        interp.start(prepared.args)
    saved = 0
    while True:
        stats = interp.run_slice(checkpoint_every, fast=fast)
        if stats is not None:
            break
        if checkpoint_path is not None:
            written = save_checkpoint(
                checkpoint_path,
                interp,
                prepared.summary,
                workload=spec.workload,
                level=spec.level,
                fingerprint=fingerprint,
                bus=bus,
            )
            if written is not None:
                saved += 1
                if stop_after_checkpoints is not None and saved >= stop_after_checkpoints:
                    return None
    if checkpoint_path is not None:
        try:
            checkpoint_path.unlink()
        except OSError:
            pass
    return finish_workload(prepared, stats)
