"""Deterministic chaos harness for the engine's durability machinery.

:mod:`repro.resilience.faults` injects faults *inside* the simulated
pipeline; this module injects them *around* it — at the process/filesystem
layer the supervised executor defends:

====================  ========================================================
``kill_worker``       the worker SIGKILLs itself mid-task (after its first
                      heartbeat), exercising crash detection + retry + the
                      checkpoint-resume path
``stall_worker``      the worker stops heartbeating and sleeps, exercising
                      the stall deadline
``truncate_checkpoint``  a dead worker's checkpoint file is truncated before
                      the retry, exercising integrity rejection and
                      recompute-from-start
``corrupt_cache_entry``  one byte of a just-stored cache entry is flipped,
                      exercising the store's corrupt-degrades-to-miss path
``flip_journal_byte`` one byte of the last journal line is flipped,
                      exercising per-line digest validation on ``--resume``
====================  ========================================================

Same determinism contract as :class:`~repro.resilience.faults.FaultInjector`:
one independent seeded PRNG stream per kind, draws consumed even when a kind
is disabled or capped, so the decision sequence for a kind depends only on
its own opportunity index.  Every fired fault is recorded on
:attr:`ChaosInjector.fired` and emitted as a
:class:`~repro.telemetry.events.ChaosInjected` event — recovery is proven by
the run's results being byte-identical to an undisturbed run's.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

from repro.errors import ConfigError
from repro.telemetry.events import ChaosInjected
from repro.telemetry.sinks import NULL_SINK

CHAOS_KINDS = (
    "kill_worker",
    "stall_worker",
    "truncate_checkpoint",
    "corrupt_cache_entry",
    "flip_journal_byte",
)


@dataclass(frozen=True)
class ChaosPlan:
    """What to break, how often, bounded and fully determined by ``seed``.

    Attributes:
        seed: PRNG seed; two injectors built from equal plans behave
            identically.
        rate: per-opportunity firing probability of each enabled kind
            (default 1.0: every opportunity fires until the cap — chaos runs
            want faults, not dice).
        kinds: the enabled fault kinds (subset of :data:`CHAOS_KINDS`).
        max_per_kind: cap on firings per kind over a plan execution, so a
            chaos run terminates instead of retrying forever.
    """

    seed: int = 0
    rate: float = 1.0
    kinds: tuple[str, ...] = CHAOS_KINDS
    max_per_kind: int = 1

    def __post_init__(self) -> None:
        unknown = set(self.kinds) - set(CHAOS_KINDS)
        if unknown:
            raise ConfigError(f"unknown chaos kinds {sorted(unknown)}; known: {CHAOS_KINDS}")
        if not 0.0 <= self.rate <= 1.0:
            raise ConfigError("rate must be in [0, 1]")
        if self.max_per_kind < 1:
            raise ConfigError("max_per_kind must be >= 1")

    def to_dict(self) -> dict[str, object]:
        """JSON-serializable view (CLI/CI round trips)."""
        return {
            "seed": self.seed,
            "rate": self.rate,
            "kinds": list(self.kinds),
            "max_per_kind": self.max_per_kind,
        }

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "ChaosPlan":
        """Inverse of :meth:`to_dict`."""
        return cls(
            seed=int(data["seed"]),
            rate=float(data["rate"]),
            kinds=tuple(str(k) for k in data["kinds"]),
            max_per_kind=int(data["max_per_kind"]),
        )


class ChaosInjector:
    """Executes a :class:`ChaosPlan` with per-kind deterministic PRNG streams."""

    def __init__(self, plan: ChaosPlan, bus=NULL_SINK) -> None:
        self.plan = plan
        self.bus = bus
        self._rngs = {
            kind: random.Random((plan.seed << 8) ^ (index + 1))
            for index, kind in enumerate(CHAOS_KINDS)
        }
        self.counts: dict[str, int] = {kind: 0 for kind in CHAOS_KINDS}
        #: (kind, detail) of every fault fired, in order
        self.fired: list[tuple[str, str]] = []

    def fire(self, kind: str, detail: str = "") -> bool:
        """One injection opportunity for ``kind``; True if the fault fires.

        Draws are consumed even when the kind is disabled or capped, so the
        decision sequence for a kind depends only on its opportunity index.
        """
        draw = self._rngs[kind].random()
        if kind not in self.plan.kinds:
            return False
        if self.counts[kind] >= self.plan.max_per_kind:
            return False
        if draw >= self.plan.rate:
            return False
        self.counts[kind] += 1
        self.fired.append((kind, detail))
        if self.bus.enabled:
            self.bus.emit(ChaosInjected(cycle=0, fault=kind, detail=detail))
        return True

    # ------------------------------------------------- filesystem sabotage
    # The injector both decides *and* performs the corruption, drawing the
    # target offset from the firing kind's own stream so the damage is as
    # reproducible as the decision.

    def corrupt_file(self, path: Union[str, Path], kind: str) -> Optional[int]:
        """Flip one byte of ``path`` at a PRNG-chosen offset; the offset, or
        None if the file is missing/empty (the draw is consumed either way)."""
        rng = self._rngs[kind]
        draw = rng.random()
        path = Path(path)
        try:
            data = bytearray(path.read_bytes())
        except OSError:
            return None
        if not data:
            return None
        offset = int(draw * len(data)) % len(data)
        data[offset] ^= 0x01
        path.write_bytes(bytes(data))
        return offset

    def truncate_file(self, path: Union[str, Path]) -> Optional[int]:
        """Cut ``path`` to half its size; the new size, or None if missing."""
        path = Path(path)
        try:
            size = path.stat().st_size
        except OSError:
            return None
        keep = size // 2
        with open(path, "rb+") as fh:
            fh.truncate(keep)
        return keep
