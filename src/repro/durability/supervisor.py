"""Supervised plan execution: heartbeats, timeouts, retries, journaling.

:func:`execute_plan_supervised` is the crash-safe sibling of
:func:`~repro.engine.executor.execute_plan`, engaged through its
``durability`` parameter.  Same contract — results in plan order,
bit-identical to serial execution — plus a production posture:

* every task runs in its own killable ``multiprocessing.Process``, with a
  heartbeat thread stamping a shared monotonic clock so the supervisor can
  tell *stuck* from *slow*;
* a worker that crashes, stalls past ``stall_timeout`` or runs past
  ``task_timeout`` is SIGKILLed and retried with exponential backoff, up to
  ``max_attempts``; the final attempt runs serially in-process, so a plan
  always completes;
* workers checkpoint their runs (:mod:`repro.durability.runner`), so a
  retried task resumes mid-run instead of restarting;
* every finished task is appended to the write-ahead
  :class:`~repro.durability.journal.RunJournal` (fsync'd, digest-tagged,
  result inline) *before* the plan moves on — ``resume=True`` replays the
  journal and restarts only unfinished tasks;
* an optional :class:`~repro.durability.chaos.ChaosPlan` deterministically
  injects the very failures the machinery defends (worker SIGKILL, stalls,
  torn checkpoints, corrupt cache entries, flipped journal bytes), with a
  telemetry event on every recovery path.

Failure handling is strictly *recompute, never trust damaged state*: a torn
journal line, truncated checkpoint or corrupt cache entry costs time, not
correctness.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Optional, Union

from repro.durability.chaos import ChaosInjector, ChaosPlan
from repro.durability.journal import RunJournal, journal_path, plan_fingerprint
from repro.durability.runner import DEFAULT_CHECKPOINT_EVERY, run_spec_durable
from repro.engine.cache import ResultStore, default_cache_root
from repro.engine.result import RunResult
from repro.engine.spec import RunPlan, RunSpec
from repro.obs.status import StatusWriter
from repro.telemetry.events import TaskRetried, WorkerCrashed, WorkerSlow, WorkerTimedOut
from repro.telemetry.sinks import NULL_SINK

ProgressHook = Callable[[RunSpec, RunResult], None]

#: Slots in the per-task shared progress array (doubles), in order.
_PROGRESS_FIELDS = ("icount", "cycles", "epoch", "hit_ewma", "acc_ewma")


@dataclass(frozen=True)
class SupervisorConfig:
    """Deadlines and retry policy for supervised workers.

    ``task_timeout`` bounds one attempt's wall-clock; ``stall_timeout``
    bounds the gap between heartbeats (a live worker beats every
    ``heartbeat_every`` seconds).  Retries back off exponentially:
    ``backoff_base * backoff_factor ** attempt`` seconds.
    """

    task_timeout: float = 600.0
    stall_timeout: float = 10.0
    heartbeat_every: float = 0.25
    max_attempts: int = 3
    backoff_base: float = 0.25
    backoff_factor: float = 2.0
    poll_every: float = 0.02


@dataclass
class DurabilityPolicy:
    """Everything the engine needs to run a plan durably.

    ``journal_root`` defaults to ``<cache root>/journal`` (the store's root
    when one is attached, else the global default), keeping journals and
    checkpoints under the same ``.repro-cache/`` umbrella the ``.gitignore``
    already covers.
    """

    journal_root: Union[str, os.PathLike, None] = None
    resume: bool = False
    checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY
    supervisor: SupervisorConfig = field(default_factory=SupervisorConfig)
    chaos: Optional[ChaosPlan] = None
    bus: object = NULL_SINK

    def resolve_journal_root(self, store: Optional[ResultStore]) -> Path:
        if self.journal_root is not None:
            return Path(self.journal_root)
        root = store.root if store is not None else default_cache_root()
        return Path(root) / "journal"


def _durable_worker(
    conn,
    spec_doc: dict,
    checkpoint_path: str,
    checkpoint_every: int,
    heartbeat,
    heartbeat_every: float,
    directive: Optional[str],
    progress_array=None,
) -> None:
    """Worker process: execute one spec durably, heartbeating throughout.

    ``directive`` carries a chaos order decided by the parent: ``kill``
    makes the worker SIGKILL itself mid-task (after checkpointing, so the
    retry exercises resume); ``stall`` makes it stop heartbeating and hang.

    ``progress_array`` is a shared 5-double array (:data:`_PROGRESS_FIELDS`)
    the worker stamps at every slice boundary — the supervisor reads it to
    feed ``status.json`` and to tell *slow but progressing* from *stuck*.
    """
    spec = RunSpec.from_dict(spec_doc)
    if directive == "stall":
        # Never beat; the supervisor's stall deadline must catch this.
        time.sleep(3600.0)
        return
    stop = threading.Event()

    def beat() -> None:
        while not stop.is_set():
            heartbeat.value = time.monotonic()
            stop.wait(heartbeat_every)

    heartbeat.value = time.monotonic()
    threading.Thread(target=beat, daemon=True).start()
    progress = _progress_callback(progress_array)
    if directive == "kill":
        # Die mid-run with progress on disk (one checkpoint if the run is
        # long enough to reach a boundary).
        run_spec_durable(
            spec, checkpoint_path, checkpoint_every,
            resume=True, stop_after_checkpoints=1, progress=progress,
        )
        os.kill(os.getpid(), signal.SIGKILL)
    result = run_spec_durable(
        spec, checkpoint_path, checkpoint_every, resume=True, progress=progress
    )
    conn.send(result.to_dict())
    conn.close()
    stop.set()


def _progress_callback(progress_array):
    """Adapt a shared 5-double array to the runner's progress-dict callback."""
    if progress_array is None:
        return None

    def publish(doc: dict) -> None:
        for slot, name in enumerate(_PROGRESS_FIELDS):
            progress_array[slot] = float(doc.get(name, 0.0))

    return publish


class _Task:
    """Supervisor-side state of one plan entry."""

    __slots__ = (
        "index", "spec", "fingerprint", "checkpoint_path", "attempts",
        "proc", "conn", "heartbeat", "started", "eligible_at",
        "progress", "last_icount", "advanced_at", "slow_logged",
    )

    def __init__(self, index: int, spec: RunSpec, fingerprint: str, checkpoint_path: Path) -> None:
        self.index = index
        self.spec = spec
        self.fingerprint = fingerprint
        self.checkpoint_path = checkpoint_path
        self.attempts = 0
        self.proc = None
        self.conn = None
        self.heartbeat = None
        self.started = 0.0
        self.eligible_at = 0.0
        #: shared 5-double array (_PROGRESS_FIELDS); survives retries so a
        #: resumed attempt keeps reporting from its checkpointed icount
        self.progress = multiprocessing.Array("d", len(_PROGRESS_FIELDS))
        self.last_icount = 0.0
        self.advanced_at = 0.0
        self.slow_logged = False


class _StatusBoard:
    """Maintains ``status.json`` (atomic, throttled) for one supervised plan.

    Purely supervisor-side bookkeeping over heartbeat/progress arrays the
    workers already maintain; nothing here touches a simulation, and a dead
    supervisor simply leaves the last written document behind — which is
    exactly what ``repro-bench status`` then reports (with its staleness
    inferred from ``updated_at``).
    """

    def __init__(self, plan: RunPlan, plan_fp: str, root: Path, jobs: int) -> None:
        self.writer = StatusWriter(root)
        self.plan_fp = plan_fp
        self.jobs = max(1, jobs)
        self.tasks = [
            {
                "index": i,
                "workload": spec.workload,
                "level": spec.level,
                "state": "pending",
                "attempts": 0,
                "icount": 0,
                "cycles": 0,
                "epoch": 0,
                "hit_ewma": 0.0,
                "acc_ewma": 0.0,
            }
            for i, spec in enumerate(plan)
        ]
        self._ran_started: dict[int, float] = {}
        self._durations: list[float] = []

    def mark(self, index: int, state: str, attempts: Optional[int] = None) -> None:
        entry = self.tasks[index]
        now = time.monotonic()
        if state == "running" and index not in self._ran_started:
            self._ran_started[index] = now
        if state == "done" and index in self._ran_started:
            self._durations.append(now - self._ran_started.pop(index))
        entry["state"] = state
        if attempts is not None:
            entry["attempts"] = attempts
        self.write(force=True)

    def observe(self, task: "_Task") -> None:
        """Copy a running task's shared progress array into its status row."""
        entry = self.tasks[task.index]
        values = task.progress[:]
        entry["icount"] = int(values[0])
        entry["cycles"] = int(values[1])
        entry["epoch"] = int(values[2])
        entry["hit_ewma"] = round(values[3], 4)
        entry["acc_ewma"] = round(values[4], 4)
        entry["attempts"] = task.attempts

    def _eta(self) -> Optional[float]:
        remaining = sum(
            1
            for entry in self.tasks
            if entry["state"] not in ("done", "replayed", "cached")
        )
        if not remaining or not self._durations:
            return None
        mean = sum(self._durations) / len(self._durations)
        return mean * remaining / self.jobs

    def write(self, force: bool = False, done: bool = False) -> None:
        self.writer.write(
            {
                "plan": self.plan_fp,
                "done": done,
                "eta_s": self._eta(),
                "tasks": self.tasks,
            },
            force=force,
        )


def execute_plan_supervised(
    plan: RunPlan,
    jobs: int = 1,
    store: Optional[ResultStore] = None,
    progress: Optional[ProgressHook] = None,
    policy: Optional[DurabilityPolicy] = None,
) -> list[RunResult]:
    """Execute ``plan`` under supervision; results in plan order, always.

    Resolution order per task: journal replay (``policy.resume``), then the
    result store, then supervised worker execution with retries, then the
    in-process fallback.  Completed tasks are journaled write-ahead and
    stored, so any interruption — including SIGKILL of this very process —
    is resumable.
    """
    policy = policy if policy is not None else DurabilityPolicy()
    cfg = policy.supervisor
    bus = policy.bus
    chaos = ChaosInjector(policy.chaos, bus=bus) if policy.chaos is not None else None
    root = policy.resolve_journal_root(store)
    plan_fp = plan_fingerprint(plan)
    journal = RunJournal(journal_path(root, plan_fp), bus=bus)
    fingerprints = [spec.fingerprint() for spec in plan]
    results: list[Optional[RunResult]] = [None] * len(plan)
    board = _StatusBoard(plan, plan_fp, root, jobs)

    def resolve(index: int, result: RunResult, journal_it: bool) -> None:
        if journal_it:
            journal.task_done(index, fingerprints[index], result.to_dict())
        if store is not None:
            store.store(plan[index], result)
            if chaos is not None and chaos.fire("corrupt_cache_entry", fingerprints[index]):
                chaos.corrupt_file(store.path_for(fingerprints[index]), "corrupt_cache_entry")
        if chaos is not None and journal_it and chaos.fire("flip_journal_byte", str(journal.path)):
            chaos.corrupt_file(journal.path, "flip_journal_byte")
        results[index] = result
        board.mark(index, "done")
        if progress is not None:
            progress(plan[index], result)

    # Phase 0: replay the journal (only when resuming; a fresh execution
    # discards any stale journal so it can never leak into a later resume).
    if policy.resume:
        replay = journal.replay(plan_fp)
        for index, fingerprint in enumerate(fingerprints):
            doc = replay.results.get(fingerprint)
            if doc is None:
                continue
            try:
                result = RunResult.from_dict(doc)
            except Exception:
                continue  # malformed-but-digest-valid: recompute
            resolve(index, result, journal_it=False)
            board.mark(index, "replayed")
    else:
        journal.discard()

    # Phase 1: the result store (hits are exact replays; corrupt entries
    # already degrade to misses inside the store).
    if store is not None:
        for index, spec in enumerate(plan):
            if results[index] is not None:
                continue
            cached = store.load(spec)
            if cached is not None:
                results[index] = cached
                board.mark(index, "cached")
                if progress is not None:
                    progress(spec, cached)

    pending = [
        _Task(i, plan[i], fingerprints[i], root / "checkpoints" / f"{fingerprints[i]}.ckpt")
        for i in range(len(plan))
        if results[i] is None
    ]
    if pending and journal.appended == 0:
        journal.plan_begin(plan_fp, len(plan))

    # Phase 2: supervised workers.
    _supervise(pending, jobs, cfg, policy, chaos, bus, resolve, board)

    # Phase 3: the journal marks completion, then retires; checkpoints of
    # killed final attempts retire with it.
    if journal.appended:
        journal.plan_end()
    journal.discard()
    for task in pending:
        try:
            task.checkpoint_path.unlink()
        except OSError:
            pass
    board.write(force=True, done=True)
    return [r for r in results if r is not None]


def _supervise(
    pending: list[_Task],
    jobs: int,
    cfg: SupervisorConfig,
    policy: DurabilityPolicy,
    chaos: Optional[ChaosInjector],
    bus,
    resolve: Callable[[int, RunResult, bool], None],
    board: _StatusBoard,
) -> None:
    """Drive the worker fleet until every pending task has a result."""
    queue = list(pending)
    running: list[_Task] = []
    mp = multiprocessing.get_context()

    def launch(task: _Task) -> bool:
        directive = None
        if chaos is not None:
            if chaos.fire("kill_worker", task.spec.label):
                directive = "kill"
            elif chaos.fire("stall_worker", task.spec.label):
                directive = "stall"
        try:
            recv, send = mp.Pipe(duplex=False)
            task.heartbeat = mp.Value("d", time.monotonic())
            task.conn = recv
            task.proc = mp.Process(
                target=_durable_worker,
                args=(
                    send,
                    task.spec.to_dict(),
                    str(task.checkpoint_path),
                    policy.checkpoint_every,
                    task.heartbeat,
                    cfg.heartbeat_every,
                    directive,
                    task.progress,
                ),
                daemon=True,
            )
            task.proc.start()
            send.close()
        except Exception:
            return False
        task.started = time.monotonic()
        task.advanced_at = task.started
        task.slow_logged = False
        board.mark(task.index, "running", attempts=task.attempts)
        return True

    def reap(task: _Task) -> None:
        if task.proc is not None:
            if task.proc.is_alive():
                task.proc.kill()
            task.proc.join(timeout=10.0)
            task.proc = None
        if task.conn is not None:
            task.conn.close()
            task.conn = None

    def run_inline(task: _Task) -> None:
        # The availability backstop: exhausted retries run here, in-process,
        # resuming the worker's last checkpoint.
        board.mark(task.index, "running", attempts=task.attempts)
        result = run_spec_durable(
            task.spec, task.checkpoint_path, policy.checkpoint_every,
            resume=True, bus=bus, progress=_progress_callback(task.progress),
        )
        board.observe(task)
        resolve(task.index, result, True)

    def fail(task: _Task, reason: str, elapsed: float) -> None:
        reap(task)
        task.attempts += 1
        if bus.enabled:
            if reason == "crash":
                bus.emit(WorkerCrashed(
                    cycle=0, workload=task.spec.workload,
                    level=task.spec.level, attempt=task.attempts,
                ))
            else:
                bus.emit(WorkerTimedOut(
                    cycle=0, workload=task.spec.workload, level=task.spec.level,
                    attempt=task.attempts, seconds=round(elapsed, 3), reason=reason,
                ))
        if task.attempts >= cfg.max_attempts:
            run_inline(task)
            return
        if chaos is not None and chaos.fire("truncate_checkpoint", str(task.checkpoint_path)):
            chaos.truncate_file(task.checkpoint_path)
        backoff = cfg.backoff_base * (cfg.backoff_factor ** (task.attempts - 1))
        if bus.enabled:
            bus.emit(TaskRetried(
                cycle=0, workload=task.spec.workload, level=task.spec.level,
                attempt=task.attempts, backoff=round(backoff, 3),
            ))
        task.eligible_at = time.monotonic() + backoff
        board.mark(task.index, "retrying", attempts=task.attempts)
        queue.append(task)

    while queue or running:
        now = time.monotonic()
        # Launch eligible tasks into free slots (plan order first).
        for task in sorted(queue, key=lambda t: t.index):
            if len(running) >= max(1, jobs):
                break
            if task.eligible_at > now:
                continue
            queue.remove(task)
            if launch(task):
                running.append(task)
            else:
                run_inline(task)  # cannot even fork: finish it here
        made_progress = False
        for task in list(running):
            now = time.monotonic()
            elapsed = now - task.started
            # Track simulated progress (slice-boundary icount stamps) so the
            # stall deadline can tell *slow but progressing* from *stuck*.
            icount = task.progress[0]
            if icount > task.last_icount:
                task.last_icount = icount
                task.advanced_at = now
                task.slow_logged = False
            board.observe(task)
            # The pipe is checked before liveness so a worker that delivered
            # its result and exited in the same poll window counts as done,
            # not crashed (a lost-then-recomputed result would still be
            # correct, just wasted work).
            if task.conn is not None and task.conn.poll():
                try:
                    doc = task.conn.recv()
                    result = RunResult.from_dict(doc)
                except Exception:
                    running.remove(task)
                    fail(task, "crash", elapsed)
                else:
                    reap(task)
                    running.remove(task)
                    resolve(task.index, result, True)
                made_progress = True
            elif task.proc is not None and not task.proc.is_alive():
                running.remove(task)
                fail(task, "crash", elapsed)
                made_progress = True
            elif elapsed > cfg.task_timeout:
                running.remove(task)
                fail(task, "timeout", elapsed)
                made_progress = True
            elif now - task.heartbeat.value > cfg.stall_timeout:
                if now - task.advanced_at <= cfg.stall_timeout:
                    # Heartbeats missed but the simulation is still moving
                    # (slice stamps advance): slow, not stuck.  Spare it and
                    # log once per quiet spell instead of killing work that
                    # a retry would only have to redo.
                    if not task.slow_logged:
                        task.slow_logged = True
                        if bus.enabled:
                            bus.emit(WorkerSlow(
                                cycle=0, workload=task.spec.workload,
                                level=task.spec.level, attempt=task.attempts + 1,
                                seconds=round(elapsed, 3), icount=int(icount),
                            ))
                else:
                    running.remove(task)
                    fail(task, "stall", elapsed)
                    made_progress = True
        board.write()
        if not made_progress:
            time.sleep(cfg.poll_every)
