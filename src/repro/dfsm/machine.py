"""The prefix-matching DFSM (Section 3.1, Figure 8).

A *state* is a set of state elements ``[v, n]`` meaning "the first ``n``
references of hot data stream ``v`` have just been seen".  State 0 is the
empty set.  Elements with ``n == headLen`` mark a completed head: entering a
state containing them triggers prefetching of the corresponding tails.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.stream import HotDataStream

#: A state element: (stream index, number of head references seen).
StateElement = tuple[int, int]
State = frozenset


@dataclass
class PrefixDFSM:
    """Deterministic FSM tracking prefix matches for all streams at once."""

    streams: list[HotDataStream]
    head_len: int
    #: state id -> the set of state elements it denotes (index 0 = empty set)
    states: list[State] = field(default_factory=list)
    #: (state id, symbol) -> successor state id
    edges: dict[tuple[int, int], int] = field(default_factory=dict)
    #: state id -> stream indices whose heads complete on entering it
    completions: dict[int, tuple[int, ...]] = field(default_factory=dict)

    @property
    def num_states(self) -> int:
        return len(self.states)

    @property
    def num_transitions(self) -> int:
        return len(self.edges)

    def step(self, state: int, symbol: int) -> int:
        """Follow the transition for ``symbol``; fall back to a fresh match.

        A symbol with no outgoing edge from ``state`` behaves like
        ``d(s0, symbol)`` — Figure 7's failed/initial-match special cases —
        because ``d(s, a)`` always includes the start elements for ``a``.
        """
        successor = self.edges.get((state, symbol))
        if successor is not None:
            return successor
        return self.edges.get((0, symbol), 0)

    def alphabet(self) -> set[int]:
        """All symbols appearing in stream heads (the DFSM's input alphabet)."""
        return {symbol for _, symbol in self.edges}

    def describe(self, state: int) -> str:
        """Readable rendering of a state, e.g. ``{[v0,2],[v1,1]}``."""
        elements = sorted(self.states[state])
        inner = ",".join(f"[v{v},{n}]" for v, n in elements)
        return "{" + inner + "}"
