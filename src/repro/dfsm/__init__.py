"""Prefix-matching DFSM: joint construction and detection-code generation."""

from repro.dfsm.build import DfsmTooLarge, build_dfsm
from repro.dfsm.codegen import (
    PREFETCH_MODES,
    DetectCase,
    DetectHandler,
    generate_handlers,
)
from repro.dfsm.machine import PrefixDFSM, State, StateElement

__all__ = [
    "PrefixDFSM",
    "State",
    "StateElement",
    "build_dfsm",
    "DfsmTooLarge",
    "DetectCase",
    "DetectHandler",
    "generate_handlers",
    "PREFETCH_MODES",
]
