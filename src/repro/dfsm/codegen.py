"""Generation of per-pc detection-and-prefetch handlers (Section 3.1, Fig. 7).

The paper compiles the DFSM into if-chains injected at every pc occurring in
a stream head::

    a.pc: if ((accessing a.addr) && (state == s)) {
              state = s';
              prefetch s'.prefetches;
          }

We model each pc's injected code as a :class:`DetectHandler`: an ordered
case list (one case per DFSM transition whose symbol lives at that pc,
sorted most-likely-first as the paper suggests) plus the initial/failed-match
fallback, which is ``d(s0, symbol)``.  The interpreter charges
``detect_base + detect_per_case * cases_examined`` cycles per execution, so
the cost of the if-chain is part of the simulation.

Prefetch targets depend on the scheme:

* ``dyn``  — the paper's scheme: the tail addresses of each completed
  stream, deduplicated to one address per cache block;
* ``seq``  — the Figure 12 "Seq-pref" baseline: the same *number* of blocks,
  but sequentially following the last prefix-matched address;
* ``nopref`` — match prefixes, prefetch nothing (the "No-pref" bar).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dfsm.machine import PrefixDFSM
from repro.errors import AnalysisError
from repro.ir.instructions import Pc
from repro.profiling.trace import SymbolTable

PREFETCH_MODES = ("dyn", "seq", "nopref")


@dataclass
class DetectCase:
    """The injected code for one address at one pc (one Figure 7 arm).

    ``by_state`` maps the current DFSM state to its successor; ``default``
    is the initial/failed-match behaviour ``d(s0, symbol)`` — the stream
    start this address may begin, or state 0.
    """

    addr: int
    by_state: dict[int, tuple[int, tuple[int, ...]]]
    default: tuple[int, tuple[int, ...]]


class DetectHandler:
    """Injected detection code for a single pc; drives the global state.

    Mirrors the paper's generated if-chains: the *address* is compared once
    per arm (arms sorted most-likely-first), and a matching arm then
    dispatches on the state variable.  The modeled cost, returned as
    ``cases_examined``, is the number of address compares performed plus one
    for the state dispatch — which is why Table 2's per-benchmark "checks"
    land near ``headLen * num_streams`` rather than near
    ``num_states * num_streams``.
    """

    __slots__ = ("pc", "arms")

    def __init__(self, pc: Pc, arms: list[DetectCase]) -> None:
        self.pc = pc
        #: dense arm tuples (addr, by_state, default)
        self.arms = [(c.addr, c.by_state, c.default) for c in arms]

    def step(self, state: int, addr: int) -> tuple[int, tuple[int, ...], int]:
        """Execute the if-chain: returns (next state, prefetches, cost)."""
        examined = 0
        for arm_addr, by_state, default in self.arms:
            examined += 1
            if arm_addr == addr:
                entry = by_state.get(state)
                if entry is None:
                    entry = default
                return entry[0], entry[1], examined + 1
        # Address matches no arm: failed match, nothing starts here.
        return 0, (), examined

    @property
    def num_cases(self) -> int:
        """Number of injected address-compare arms (Table 2's "checks")."""
        return len(self.arms)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DetectHandler({self.pc}, {self.num_cases} arms)"


def _dedup_blocks(addrs: list[int], block_bytes: int, exclude: set[int]) -> tuple[int, ...]:
    """Keep the first address of each block, in order, skipping ``exclude``."""
    seen: set[int] = set()
    out: list[int] = []
    shift = block_bytes.bit_length() - 1
    for addr in addrs:
        block = addr >> shift
        if block in seen or block in exclude:
            continue
        seen.add(block)
        out.append(addr)
    return tuple(out)


def _state_heat(dfsm: PrefixDFSM, state_id: int) -> int:
    """Likelihood proxy for a state: the hottest stream it tracks."""
    elements = dfsm.states[state_id]
    if not elements:
        return 0
    return max(dfsm.streams[v].heat for v, _ in elements)


def generate_handlers(
    dfsm: PrefixDFSM,
    symbols: SymbolTable,
    mode: str = "dyn",
    block_bytes: int = 32,
    max_prefetches: int = 64,
) -> dict[Pc, DetectHandler]:
    """Compile the DFSM into one handler per pc appearing in stream heads."""
    if mode not in PREFETCH_MODES:
        raise AnalysisError(f"unknown prefetch mode {mode!r}; pick one of {PREFETCH_MODES}")
    shift = block_bytes.bit_length() - 1

    def prefetches_for(target_state: int, matched_addr: int) -> tuple[int, ...]:
        completed = dfsm.completions.get(target_state)
        if not completed or mode == "nopref":
            return ()
        tail_addrs: list[int] = []
        head_blocks: set[int] = set()
        for v in completed:
            stream = dfsm.streams[v]
            for sym in stream.head(dfsm.head_len):
                head_blocks.add(symbols.lookup(sym).addr >> shift)
            for sym in stream.tail(dfsm.head_len):
                tail_addrs.append(symbols.lookup(sym).addr)
        targets = _dedup_blocks(tail_addrs, block_bytes, exclude=head_blocks)
        targets = targets[:max_prefetches]
        if mode == "dyn":
            return targets
        # Seq-pref: same block budget, but sequential from the matched addr.
        base_block = matched_addr >> shift
        return tuple((base_block + k + 1) << shift for k in range(len(targets)))

    # Group transitions by (pc, addr): one if-chain arm per distinct address.
    arms: dict[tuple[Pc, int], DetectCase] = {}
    for (state, symbol), target in sorted(dfsm.edges.items()):
        ref = symbols.lookup(symbol)
        key = (ref.pc, ref.addr)
        case = arms.get(key)
        if case is None:
            case = DetectCase(addr=ref.addr, by_state={}, default=(0, ()))
            arms[key] = case
        entry = (target, prefetches_for(target, ref.addr))
        case.by_state[state] = entry
        if state == 0:
            # d(s0, symbol): the behaviour when no tracked prefix continues.
            case.default = entry

    def arm_heat(case: DetectCase) -> int:
        return max(_state_heat(dfsm, target) for target, _ in case.by_state.values())

    by_pc: dict[Pc, list[DetectCase]] = {}
    for (pc, _addr), case in arms.items():
        by_pc.setdefault(pc, []).append(case)
    handlers: dict[Pc, DetectHandler] = {}
    for pc, cases in by_pc.items():
        cases.sort(key=lambda c: (-arm_heat(c), c.addr))
        handlers[pc] = DetectHandler(pc, cases)
    return handlers
