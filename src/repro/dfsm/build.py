"""Lazy work-list construction of the prefix-matching DFSM (Figure 9).

Starting from the empty state, for every reachable state we add transitions
for (a) the continuation symbol of each live state element and (b) every
symbol that starts some hot data stream.  The transition function is

    d(s, a) = {[v, n+1] | n < headLen and [v, n] in s and head_v[n] == a}
              union {[w, 1] | head_w[0] == a}

Theoretically there can be exponentially many states; the paper reports
"close to headLen*n + 1" in practice, and ``max_states`` guards against the
pathological case (the caller then retries with fewer streams).
"""

from __future__ import annotations

from collections import deque

from repro.analysis.stream import HotDataStream
from repro.dfsm.machine import PrefixDFSM, State
from repro.errors import AnalysisError


class DfsmTooLarge(AnalysisError):
    """State-count guard tripped during construction."""


def build_dfsm(
    streams: list[HotDataStream],
    head_len: int,
    max_states: int | None = None,
) -> PrefixDFSM:
    """Construct the joint prefix-matching DFSM for ``streams``.

    Streams shorter than ``head_len + 1`` are rejected: their head would
    leave no tail to prefetch (the optimizer filters these out beforehand).
    """
    if head_len < 1:
        raise AnalysisError(f"head_len must be >= 1, got {head_len}")
    for stream in streams:
        if stream.length <= head_len:
            raise AnalysisError(
                f"stream of length {stream.length} leaves no tail for head_len={head_len}"
            )
    heads = [stream.head(head_len) for stream in streams]
    #: symbols that begin some stream -> the streams they begin
    starters: dict[int, list[int]] = {}
    for v, head in enumerate(heads):
        starters.setdefault(head[0], []).append(v)

    dfsm = PrefixDFSM(streams=list(streams), head_len=head_len)
    empty: State = frozenset()
    state_ids: dict[State, int] = {empty: 0}
    dfsm.states.append(empty)
    worklist: deque[State] = deque([empty])

    def successor(state: State, symbol: int) -> State:
        elements = {
            (v, n + 1)
            for v, n in state
            if n < head_len and heads[v][n] == symbol
        }
        for v in starters.get(symbol, ()):
            elements.add((v, 1))
        return frozenset(elements)

    while worklist:
        state = worklist.popleft()
        sid = state_ids[state]
        symbols: set[int] = set(starters)
        for v, n in state:
            if n < head_len:
                symbols.add(heads[v][n])
        for symbol in sorted(symbols):
            if (sid, symbol) in dfsm.edges:
                continue
            target = successor(state, symbol)
            if not target:
                continue
            target_id = state_ids.get(target)
            if target_id is None:
                target_id = len(dfsm.states)
                if max_states is not None and target_id >= max_states:
                    raise DfsmTooLarge(
                        f"DFSM exceeded {max_states} states for {len(streams)} streams"
                    )
                state_ids[target] = target_id
                dfsm.states.append(target)
                worklist.append(target)
                completed = tuple(sorted(v for v, n in target if n == head_len))
                if completed:
                    dfsm.completions[target_id] = completed
            dfsm.edges[(sid, symbol)] = target_id
    return dfsm
