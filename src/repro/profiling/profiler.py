"""Temporal data-reference profiler: bursts straight into Sequitur.

Per Section 2.4, traced references are "batched and sent to Sequitur as soon
as they are collected" — the grammar is built online, not from a stored
trace.  The profiler is the interpreter's ``trace_sink`` and implements
both feed disciplines:

* **batched** (the hot path): the interpreter and the fastpath kernel
  append raw ``(pc, addr)`` pairs to :attr:`ref_buffer` directly (they bind
  ``trace_sink.ref_buffer.append`` once per burst) and :meth:`flush`
  interns and feeds the whole buffer to Sequitur in one
  :meth:`~repro.sequitur.sequitur.Sequitur.extend_batch` call; and
* **per-call** (the compatible slow path): the profiler object is callable
  — fault-injection wrappers and the offline bounded sink still deliver one
  :meth:`record` call per reference.

Both disciplines intern references in stream order (``record`` flushes any
buffered prefix first), so the symbol table and the grammar are identical
to the historical one-call-per-reference behavior.

``reset`` starts a fresh grammar for the next profiling period (hibernation
references are never recorded because the phase controller turns the
interpreter's ``tracing_enabled`` flag off — "ignored by Sequitur to avoid
trace contamination").
"""

from __future__ import annotations

from repro.analysis.hotstreams import AnalysisConfig, HotStreamAnalyzer
from repro.analysis.stream import HotDataStream
from repro.ir.instructions import Pc
from repro.profiling.trace import SymbolTable
from repro.sequitur.sequitur import Sequitur


class TemporalProfiler:
    """Collects a temporal data reference profile as a Sequitur grammar."""

    def __init__(self) -> None:
        self.symbols = SymbolTable()
        self.sequitur = Sequitur()
        self.analyzer = HotStreamAnalyzer(self.sequitur)
        self.total_recorded = 0
        #: pending raw ``(pc, addr)`` pairs, appended by the execution
        #: kernels and consumed by :meth:`flush`
        self.ref_buffer: list[tuple[Pc, int]] = []

    def record(self, pc: Pc, addr: int) -> None:
        """Trace one data reference (the per-call ``trace_sink`` path)."""
        if self.ref_buffer:
            self.flush()
        self.sequitur.extend_batch((self.symbols.intern(pc, addr),))
        self.total_recorded += 1

    # The profiler object itself is a valid trace sink: kernels that know
    # about the buffer bypass this, everything else calls it per reference.
    __call__ = record

    def flush(self) -> None:
        """Intern and feed all buffered references to the grammar."""
        buf = self.ref_buffer
        if buf:
            intern = self.symbols.intern
            self.sequitur.extend_batch([intern(pc, addr) for pc, addr in buf])
            self.total_recorded += len(buf)
            buf.clear()

    @property
    def trace_length(self) -> int:
        """References in the *current* profiling period (buffered included)."""
        return self.sequitur.length + len(self.ref_buffer)

    def hot_streams(self, config: AnalysisConfig) -> list[HotDataStream]:
        """Hot data streams of the current period (incremental analysis)."""
        self.flush()
        return self.analyzer.find_hot_streams(config)

    def reset(self) -> None:
        """Drop the grammar for a new profiling period (symbol table kept).

        Any buffered references are flushed (interned) first so symbol ids
        keep their stream-order assignment even when a period is discarded.
        """
        self.flush()
        self.sequitur = Sequitur()
        self.analyzer = HotStreamAnalyzer(self.sequitur)
