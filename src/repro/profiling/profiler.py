"""Temporal data-reference profiler: bursts straight into Sequitur.

Per Section 2.4, traced references are "batched and sent to Sequitur as soon
as they are collected" — the grammar is built online, not from a stored
trace.  The profiler is the interpreter's ``trace_sink``; one
:meth:`TemporalProfiler.record` call per traced reference interns the
``(pc, addr)`` pair and appends it to the current grammar.

``reset`` starts a fresh grammar for the next profiling period (hibernation
references are never recorded because the phase controller turns the
interpreter's ``tracing_enabled`` flag off — "ignored by Sequitur to avoid
trace contamination").
"""

from __future__ import annotations

from repro.ir.instructions import Pc
from repro.profiling.trace import SymbolTable
from repro.sequitur.sequitur import Sequitur


class TemporalProfiler:
    """Collects a temporal data reference profile as a Sequitur grammar."""

    def __init__(self) -> None:
        self.symbols = SymbolTable()
        self.sequitur = Sequitur()
        self.total_recorded = 0

    def record(self, pc: Pc, addr: int) -> None:
        """Trace one data reference (the interpreter's ``trace_sink``)."""
        self.sequitur.append(self.symbols.intern(pc, addr))
        self.total_recorded += 1

    @property
    def trace_length(self) -> int:
        """References in the *current* profiling period."""
        return self.sequitur.length

    def reset(self) -> None:
        """Drop the grammar for a new profiling period (symbol table kept)."""
        self.sequitur = Sequitur()
