"""Data references and the symbol table interning them for Sequitur.

A data reference is a ``(pc, addr)`` pair (Section 2).  Sequitur consumes
non-negative integer terminals, so the profiler interns each distinct pair to
a dense id; the analysis layer maps ids back to references when it turns hot
non-terminals into prefetchable streams.
"""

from __future__ import annotations

from typing import NamedTuple

from repro.errors import AnalysisError
from repro.ir.instructions import Pc


class DataRef(NamedTuple):
    """One data reference: the pc of the load/store and the byte address."""

    pc: Pc
    addr: int

    def __str__(self) -> str:
        return f"({self.pc}, {self.addr:#x})"


class SymbolTable:
    """Bijective interning of :class:`DataRef` pairs to dense integer ids."""

    def __init__(self) -> None:
        self._ids: dict[DataRef, int] = {}
        self._refs: list[DataRef] = []

    def intern(self, pc: Pc, addr: int) -> int:
        """Id for ``(pc, addr)``, allocating on first sight."""
        ref = DataRef(pc, addr)
        sid = self._ids.get(ref)
        if sid is None:
            sid = len(self._refs)
            self._ids[ref] = sid
            self._refs.append(ref)
        return sid

    def lookup(self, sid: int) -> DataRef:
        """The reference interned as ``sid``.

        Raises :class:`~repro.errors.AnalysisError` (not ``IndexError``) for
        ids outside the table: an unknown id reaching decode means the
        analysis state is corrupt, and callers contain typed errors only.
        """
        if not 0 <= sid < len(self._refs):
            raise AnalysisError(f"unknown symbol id {sid} (table has {len(self._refs)})")
        return self._refs[sid]

    def decode(self, sids: list[int] | tuple[int, ...]) -> list[DataRef]:
        """Map a sequence of ids back to references (same checks as lookup)."""
        return [self.lookup(s) for s in sids]

    def __len__(self) -> int:
        return len(self._refs)

    def __contains__(self, ref: DataRef) -> bool:
        return ref in self._ids
