"""Counter arithmetic of the bursty-tracing framework (Sections 2.1–2.2).

The profiler alternates between checking and instrumented code using two
counters, ``nCheck`` and ``nInstr``; one *burst period* is
``nCheck0 + nInstr0`` dynamic checks.  Hibernation keeps the burst-period
length constant by setting ``nCheck`` to ``nCheck0 + nInstr0 - 1`` and
``nInstr`` to 1 (Figure 3), so awake and hibernating phases can be compared
in units of burst periods.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class BurstyCounters:
    """Reload values for the two bursty-tracing counters."""

    n_check0: int
    n_instr0: int

    def __post_init__(self) -> None:
        if self.n_check0 < 1 or self.n_instr0 < 1:
            raise ConfigError("counter reload values must be >= 1")

    @property
    def burst_period(self) -> int:
        """Dynamic checks per burst period."""
        return self.n_check0 + self.n_instr0

    @property
    def burst_sampling_rate(self) -> float:
        """Fraction of checks spent in instrumented code while awake."""
        return self.n_instr0 / self.burst_period

    def hibernating(self) -> "BurstyCounters":
        """The hibernation-phase counters with the same burst period."""
        return BurstyCounters(self.n_check0 + self.n_instr0 - 1, 1)

    def to_dict(self) -> dict[str, int]:
        """JSON-serializable view (the :class:`~repro.engine.spec.RunSpec` wire form)."""
        return {"n_check0": self.n_check0, "n_instr0": self.n_instr0}

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "BurstyCounters":
        """Inverse of :meth:`to_dict`."""
        return cls(n_check0=int(data["n_check0"]), n_instr0=int(data["n_instr0"]))


def overall_sampling_rate(counters: BurstyCounters, n_awake: int, n_hibernate: int) -> float:
    """Effective sampling rate over a whole awake+hibernate cycle.

    This is the paper's expression
    ``(nAwake*nInstr0) / ((nAwake+nHibernate) * (nInstr0+nCheck0))``.
    """
    if n_awake < 1 or n_hibernate < 0:
        raise ConfigError("need n_awake >= 1 and n_hibernate >= 0")
    return (n_awake * counters.n_instr0) / ((n_awake + n_hibernate) * counters.burst_period)


#: The paper's settings (Section 4.1): 0.5% sampling, 60-check bursts,
#: 50 awake burst-periods per 2,450 hibernating ones.
PAPER_COUNTERS = BurstyCounters(n_check0=11_940, n_instr0=60)
PAPER_N_AWAKE = 50
PAPER_N_HIBERNATE = 2_450
