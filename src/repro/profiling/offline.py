"""Offline (full-trace) profiling — the prior-work [8] workflow.

Before the online framework of this paper, Chilimbi's earlier work
"instrumented a program to collect the trace of its data memory references;
then used a compression algorithm called Sequitur to process the trace
off-line and extract hot data streams" (Section 1).  This module provides
that workflow for simulated programs: collect the complete reference trace
of a run (optionally bounded), compress it, and analyze it — useful both as
ground truth for the sampled online profiles and as the input to the static
prefetching scheme.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.analysis.hotstreams import AnalysisConfig, find_hot_streams
from repro.analysis.stream import HotDataStream
from repro.interp.interpreter import ExecStats, Interpreter
from repro.machine.config import MachineConfig, PAPER_MACHINE
from repro.profiling.profiler import TemporalProfiler
from repro.vulcan.static_edit import instrument_program
from repro.workloads.base import BuiltWorkload


@dataclass
class OfflineProfile:
    """A complete (unsampled) data reference profile of one run."""

    profiler: TemporalProfiler
    stats: ExecStats

    @property
    def trace_length(self) -> int:
        return self.profiler.trace_length

    @property
    def grammar_size(self) -> int:
        return self.profiler.sequitur.grammar_size()

    @property
    def compression_ratio(self) -> float:
        """Trace symbols per grammar symbol (higher = more regular trace)."""
        size = self.grammar_size
        return self.trace_length / size if size else 0.0

    def hot_streams(self, config: Optional[AnalysisConfig] = None) -> list[HotDataStream]:
        """Hot data streams of the *full* trace."""
        config = config if config is not None else AnalysisConfig()
        return find_hot_streams(self.profiler.sequitur, config)

    def coverage(self, config: Optional[AnalysisConfig] = None) -> float:
        """Fraction of all references accounted for by the hot streams.

        The paper's motivating statistic from [8]: hot data streams "account
        for around 90% of program references".
        """
        if not self.trace_length:
            return 0.0
        total_heat = sum(s.heat for s in self.hot_streams(config))
        return min(1.0, total_heat / self.trace_length)


def collect_offline_profile(
    workload: BuiltWorkload,
    machine: MachineConfig = PAPER_MACHINE,
    max_refs: Optional[int] = None,
    fast: Optional[bool] = None,
) -> OfflineProfile:
    """Run ``workload`` tracing *every* data reference into Sequitur.

    Unlike bursty tracing, this is the instrumented version running
    continuously (``nCheck0 = 1``): complete temporal information, at full
    tracing cost — exactly the overhead problem the paper's online framework
    exists to avoid.  ``max_refs`` stops recording (not execution) after a
    bound, keeping grammars tractable on long runs.  ``fast`` selects the
    execution kernel as in :meth:`Interpreter.run` (None = default).
    """
    program, _ = instrument_program(workload.program)
    interp = Interpreter(program, workload.memory, machine)
    interp.set_counters(1, 1 << 40)  # immediately and permanently instrumented
    profiler = TemporalProfiler()

    if max_refs is None:
        # The profiler object sink lets the kernels batch into ref_buffer.
        interp.trace_sink = profiler
    else:
        def bounded_sink(pc, addr, _profiler=profiler):
            if _profiler.trace_length < max_refs:
                _profiler.record(pc, addr)

        interp.trace_sink = bounded_sink
    interp.tracing_enabled = True
    stats = interp.run(workload.args) if fast is None else interp.run(workload.args, fast=fast)
    profiler.flush()
    return OfflineProfile(profiler=profiler, stats=stats)
