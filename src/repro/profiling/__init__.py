"""Low-overhead temporal profiling: bursty tracing counters, symbol interning."""

from repro.profiling.offline import OfflineProfile, collect_offline_profile
from repro.profiling.profiler import TemporalProfiler
from repro.profiling.sampling import (
    PAPER_COUNTERS,
    PAPER_N_AWAKE,
    PAPER_N_HIBERNATE,
    BurstyCounters,
    overall_sampling_rate,
)
from repro.profiling.trace import DataRef, SymbolTable

__all__ = [
    "DataRef",
    "SymbolTable",
    "TemporalProfiler",
    "OfflineProfile",
    "collect_offline_profile",
    "BurstyCounters",
    "overall_sampling_rate",
    "PAPER_COUNTERS",
    "PAPER_N_AWAKE",
    "PAPER_N_HIBERNATE",
]
