"""Exception hierarchy for the repro package.

All errors raised deliberately by this library derive from :class:`ReproError`
so that callers can catch library failures without masking programming errors
(``TypeError``, ``KeyError``, ...) in their own code.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class IRError(ReproError):
    """An ill-formed program was constructed or validated."""


class ExecutionError(ReproError):
    """The simulated machine trapped while executing a program."""


class MemoryFault(ExecutionError):
    """A simulated load/store touched an unmapped or unaligned address."""


class EditError(ReproError):
    """A binary-editing (Vulcan) operation could not be applied."""


class AnalysisError(ReproError):
    """Hot-data-stream analysis was given inconsistent inputs."""


class ConfigError(ReproError):
    """A configuration object holds contradictory or out-of-range values."""


class OracleError(ReproError):
    """A verification oracle found a disagreement with a reference model.

    Raised by :mod:`repro.oracle` when a production component diverges from
    its independently-written reference implementation, or when a metamorphic
    invariant (conservation, observer effect, relabeling, ...) is violated.
    The message always carries enough detail to reproduce the failure.
    """
