"""The dynamic prefetching optimizer: Figure 1's phase cycle, end to end.

:class:`DynamicPrefetcher` is the interpreter's check listener.  Its life
cycle per optimization cycle:

1. **profiling (awake)** — bursty tracing feeds sampled data references into
   the online Sequitur grammar for ``n_awake`` burst periods;
2. **analysis & optimization** — the fast Figure 5 analysis extracts hot
   data streams, the candidates pass the pre-install guard
   (:class:`~repro.resilience.guards.StreamGuard`), the Figure 9 construction
   builds the joint prefix-matching DFSM, Figure 7-style handlers are
   generated, and dynamic Vulcan patches the affected procedures; the
   analysis cost is charged to simulated time;
3. **hibernation** — tracing off (``nCheck = nCheck0+nInstr0-1, nInstr = 1``
   keeps burst periods the same length), the program runs with detection and
   prefetching injected for ``n_hibernate`` burst periods.  When a watchdog
   is configured, it polls the per-stream prefetch counters and *condemns*
   streams whose prefetches turned harmful: those get a targeted rollback
   (:func:`~repro.vulcan.dynamic_edit.reinject_detection`) and a blacklist
   entry; if no stream survives, the optimizer deoptimizes fully and
   re-enters profiling early;
4. **deoptimization** — the patches are removed and control returns to the
   profiling phase.

For long-running programs the cycle repeats; ``summary.cycles`` records the
Table 2 characterization of every completed cycle.

**Graceful degradation** — any :class:`~repro.errors.ReproError` escaping the
analyze/optimize machinery is contained: the optimizer deoptimizes, emits an
``OptimizerError`` event and hibernates (the program keeps running,
unoptimized).  After ``max_optimizer_errors`` *consecutive* failures it
disables itself for the rest of the run.  A configured
:class:`~repro.resilience.faults.FaultInjector` exercises exactly these paths
deterministically.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.stream import HotDataStream
from repro.core.config import OptimizerConfig
from repro.core.stats import OptCycleStats, OptimizerSummary
from repro.dfsm.build import DfsmTooLarge, build_dfsm
from repro.dfsm.codegen import DetectHandler, generate_handlers
from repro.errors import ReproError
from repro.interp.interpreter import Interpreter
from repro.ir.instructions import Pc
from repro.ir.program import Program
from repro.machine.config import MachineConfig
from repro.profiling.profiler import TemporalProfiler
from repro.resilience.faults import FaultInjector, InjectedFault
from repro.resilience.guards import (
    REASON_BLACKLISTED,
    StreamGuard,
    StreamKey,
    stream_key,
)
from repro.resilience.watchdog import PrefetchWatchdog
from repro.telemetry.events import (
    AnalysisCharged,
    DfsmBackoff,
    DfsmBuilt,
    FaultInjected,
    GuardRejected,
    OptimizeCycle,
    OptimizerError,
    PhaseTransition,
    StreamDeoptimized,
)
from repro.vulcan.dynamic_edit import deoptimize, inject_detection, reinject_detection

AWAKE, HIBERNATING = "awake", "hibernating"

#: nCheck0 used once the optimizer disables itself: checks effectively never
#: fire again, so the listener goes quiet for the rest of the run.
_NEVER = 1 << 60


def _dedupe_streams(streams: list[HotDataStream], head_len: int) -> list[HotDataStream]:
    """Drop streams subsumed by longer ones.

    Burst truncation makes Sequitur report prefix/suffix fragments of a long
    stream alongside the full stream; the analysis's coldUses discount only
    removes occurrences *inside* hot parents, not the truncated copies.  Two
    filters: (a) keep one stream per distinct head prefix (same head means
    the same DFSM match), preferring the longest; (b) drop any stream whose
    reference sequence is a contiguous subsequence of a kept longer stream —
    its matches would only re-prefetch a suffix the longer stream already
    covers, at the price of extra injected checks.
    """
    by_head: dict[tuple[int, ...], HotDataStream] = {}
    for stream in streams:
        head = stream.head(head_len)
        kept = by_head.get(head)
        if kept is None or (stream.length, stream.heat) > (kept.length, kept.heat):
            by_head[head] = stream
    candidates = sorted(by_head.values(), key=lambda s: (-s.length, -s.heat, s.rule_id))
    kept_keys: list[str] = []
    result: list[HotDataStream] = []
    for stream in candidates:
        key = "," + ",".join(map(str, stream.symbols)) + ","
        if any(key in longer for longer in kept_keys):
            continue
        kept_keys.append(key)
        result.append(stream)
    return sorted(result, key=lambda s: (-s.heat, s.rule_id))


class DynamicPrefetcher:
    """Online profiler + analyzer + prefetch injector (the paper's system)."""

    def __init__(
        self,
        program: Program,
        interp: Interpreter,
        machine: MachineConfig,
        config: OptimizerConfig,
    ) -> None:
        self.program = program
        self.interp = interp
        self.machine = machine
        self.config = config
        self.profiler = TemporalProfiler()
        self.summary = OptimizerSummary()
        self.phase = AWAKE
        self._awake_bursts = 0
        self._hibernate_bursts = 0
        # Resilience machinery.  The guard is always on (defaults reject
        # nothing on healthy analyses); watchdog and faults are opt-in.
        self.guard = StreamGuard(config.guards)
        self.watchdog: Optional[PrefetchWatchdog] = (
            PrefetchWatchdog(config.watchdog) if config.watchdog is not None else None
        )
        self.faults: Optional[FaultInjector] = (
            FaultInjector(config.faults) if config.faults is not None else None
        )
        self._installed_streams: list[HotDataStream] = []
        #: handlers held back by a delayed_patch fault, with bursts remaining
        self._pending_install: Optional[
            tuple[list[HotDataStream], object, dict[Pc, DetectHandler]]
        ] = None
        self._pending_delay = 0
        self._sink_override = False
        self._consecutive_errors = 0
        self.disabled = False
        #: current epoch span (repro.tracing) and its 1-based index
        self._epoch_span = 0
        self._epoch_index = 0
        # Wire into the interpreter: profiling starts awake.
        interp.check_listener = self
        interp.trace_sink = self.profiler
        interp.tracing_enabled = True
        interp.set_counters(config.counters.n_check0, config.counters.n_instr0)
        self._trace_epoch(0, AWAKE)

    def _trace_epoch(self, now: int, phase_name: str) -> None:
        """Close the current epoch span and open the next one (repro.tracing).

        Epoch spans partition the run into the optimizer's phase periods;
        analysis/injection/watchdog spans nest inside them.  With tracing off
        this is one attribute check and a falsy test.
        """
        tracer = self.interp.tracer
        if not tracer.enabled:
            self._epoch_span = 0
            return
        if self._epoch_span:
            tracer.end(now, self._epoch_span)
        self._epoch_index += 1
        self._epoch_span = tracer.begin(
            now, f"epoch-{self._epoch_index}:{phase_name}", "epoch"
        )

    # ----------------------------------------------------- CheckListener API

    def burst_begin(self, now: int) -> int:
        """Apply trace-level fault injections; transitions occur at burst ends."""
        if (
            self.faults is not None
            and self.phase == AWAKE
            and self.interp.tracing_enabled
        ):
            self._apply_trace_faults(now)
        return 0

    def burst_end(self, now: int) -> int:
        """Advance the phase machine; returns cycles to charge for analysis."""
        if self._sink_override:
            self.interp.trace_sink = self.profiler
            self._sink_override = False
        try:
            if self.phase == AWAKE:
                self._awake_bursts += 1
                if self._awake_bursts >= self.config.n_awake:
                    return self._optimize(now)
            else:
                return self._hibernate_tick(now)
        except ReproError as exc:
            return self._contain_failure(exc, now)
        return 0

    # -------------------------------------------------------- fault plumbing

    def _emit_fault(self, kind: str, detail: str, now: int) -> None:
        self.summary.faults_injected += 1
        telem = self.interp.telemetry
        if telem.enabled:
            telem.emit(FaultInjected(now, kind, detail))

    def _apply_trace_faults(self, now: int) -> None:
        """Swap the trace sink for this burst if a trace fault fires.

        ``drop_burst`` wins over ``corrupt_record`` when both fire at the
        same opportunity; either way the original sink is restored at the
        next ``burst_end``.  Draws happen every awake burst so each kind's
        decision sequence depends only on its opportunity index.
        """
        faults = self.faults
        drop = faults.fire("drop_burst", now)
        corrupt = faults.fire("corrupt_record", now)
        if drop:
            self._emit_fault("drop_burst", "burst trace records discarded", now)
            self.interp.trace_sink = _drop_sink
            self._sink_override = True
        elif corrupt:
            self._emit_fault("corrupt_record", "burst trace records mutated", now)
            record = self.profiler.record
            corrupt_record = faults.corrupt_record

            def sink(pc: Pc, addr: int) -> None:
                bad_pc, bad_addr = corrupt_record(pc, addr)
                record(bad_pc, bad_addr)

            self.interp.trace_sink = sink
            self._sink_override = True

    # ------------------------------------------------------- phase changes

    def _optimize(self, now: int = 0) -> int:
        """End of awake phase: analyze, guard, inject, enter hibernation."""
        config = self.config
        telem = self.interp.telemetry
        faults = self.faults
        if faults is not None and faults.fire("analysis_error", now):
            self._emit_fault("analysis_error", "analysis phase raised", now)
            raise InjectedFault("analysis_error")
        self.profiler.flush()
        traced = self.profiler.trace_length
        charge = 0
        streams: list[HotDataStream] = []
        if config.analyze and traced:
            charge = self.machine.analysis_cost_per_symbol * traced
            streams = self.profiler.hot_streams(config.analysis)
            streams = [s for s in streams if s.length > config.head_len]
            streams = _dedupe_streams(streams, config.head_len)
            streams = self._admit_streams(streams, now)
            if telem.enabled:
                telem.emit(AnalysisCharged(now, traced, charge))

        tracer = self.interp.tracer
        analysis_span = (
            tracer.begin(now, "analysis", "analysis", detail=f"traced={traced}")
            if charge
            else 0
        )
        dfsm_states = dfsm_transitions = injected_checks = procs_modified = 0
        if config.inject and streams:
            dfsm, streams = self._build_dfsm_with_backoff(streams, now)
            self.guard.check_dfsm(dfsm, streams)
            handlers = generate_handlers(
                dfsm,
                self.profiler.symbols,
                mode=config.mode,
                block_bytes=self.machine.block_bytes,
                max_prefetches=config.max_prefetches,
            )
            dfsm_states = dfsm.num_states
            dfsm_transitions = dfsm.num_transitions
            injected_checks = sum(h.num_cases for h in handlers.values())
            if faults is not None and faults.fire("delayed_patch", now):
                delay = faults.plan.patch_delay_bursts
                self._emit_fault("delayed_patch", f"install held back {delay} bursts", now)
                self._pending_install = (streams, dfsm, handlers)
                self._pending_delay = delay
            else:
                result = self._install(streams, dfsm, handlers, now)
                procs_modified = result.num_procedures
        tracer.end(now + charge, analysis_span)

        self.summary.cycles.append(
            OptCycleStats(
                cycle=len(self.summary.cycles) + 1,
                traced_refs=traced,
                num_streams=len(streams),
                dfsm_states=dfsm_states,
                dfsm_transitions=dfsm_transitions,
                injected_checks=injected_checks,
                procs_modified=procs_modified,
                stream_lengths=[s.length for s in streams],
                analysis_charged=charge,
                at_cycle=now,
            )
        )
        if telem.enabled:
            telem.emit(
                OptimizeCycle(
                    now,
                    index=len(self.summary.cycles),
                    traced_refs=traced,
                    num_streams=len(streams),
                    dfsm_states=dfsm_states,
                    dfsm_transitions=dfsm_transitions,
                    injected_checks=injected_checks,
                    procs_modified=procs_modified,
                )
            )
            telem.emit(PhaseTransition(now, AWAKE, HIBERNATING))

        self._consecutive_errors = 0
        hibernating = config.counters.hibernating()
        self.interp.tracing_enabled = False
        self.interp.set_counters(hibernating.n_check0, hibernating.n_instr0)
        self.phase = HIBERNATING
        self._hibernate_bursts = 0
        self._trace_epoch(now + charge, HIBERNATING)
        return charge

    def _admit_streams(
        self, streams: list[HotDataStream], now: int
    ) -> list[HotDataStream]:
        """Filter watchdog-blacklisted identities, then run the guard."""
        telem = self.interp.telemetry
        cycle = len(self.summary.cycles) + 1
        watchdog = self.watchdog
        if watchdog is not None and watchdog.blacklist:
            kept: list[HotDataStream] = []
            for stream in streams:
                if watchdog.is_blacklisted(stream_key(stream), cycle):
                    self.summary.guard_rejections += 1
                    if telem.enabled:
                        telem.emit(
                            GuardRejected(
                                now,
                                REASON_BLACKLISTED,
                                self._describe_key(stream_key(stream)),
                                stream.length,
                                stream.heat,
                            )
                        )
                else:
                    kept.append(stream)
            streams = kept
        accepted, rejections = self.guard.admit(
            streams, self.config.head_len, self.profiler.symbols, cycle
        )
        self.summary.guard_rejections += len(rejections)
        if telem.enabled:
            for rej in rejections:
                telem.emit(
                    GuardRejected(
                        now, rej.reason, self._describe_key(rej.key), rej.length, rej.heat
                    )
                )
        return accepted

    def _install(
        self,
        streams: list[HotDataStream],
        dfsm,
        handlers: dict[Pc, DetectHandler],
        now: int,
    ):
        """Patch the program with ``handlers`` and start per-stream scoring."""
        deoptimize(self.program)
        result = inject_detection(self.program, handlers)
        self.interp.dfsm_state = 0
        self._installed_streams = list(streams)
        hierarchy = self.interp.hierarchy
        if self.watchdog is not None or hierarchy.ledger is not None:
            hierarchy.set_stream_attribution(self._attribution_map(streams))
            for stream in streams:
                key = stream_key(stream)
                hierarchy.stream_names[key] = self._describe_key(key)
        if self.watchdog is not None:
            self.watchdog.begin_install(
                [stream_key(s) for s in streams], hierarchy.stream_stats
            )
        tracer = self.interp.tracer
        if tracer.enabled:
            span = tracer.begin(
                now,
                "injection",
                "injection",
                detail=(
                    f"streams={len(streams)} dfsm_states={dfsm.num_states} "
                    f"procs={result.num_procedures}"
                ),
            )
            tracer.end(now, span)
        telem = self.interp.telemetry
        if telem.enabled:
            telem.emit(DfsmBuilt(now, dfsm.num_states, dfsm.num_transitions, len(streams)))
        return result

    def _attribution_map(self, streams: list[HotDataStream]) -> dict[int, StreamKey]:
        """block -> stream identity, for per-stream prefetch classification.

        Mirrors the codegen target rule: tail blocks minus head blocks, one
        owner per block; when streams share a tail block the hottest stream
        claims it (``setdefault`` over a hottest-first iteration).
        """
        symbols = self.profiler.symbols
        shift = self.machine.block_bytes.bit_length() - 1
        head_len = self.config.head_len
        mapping: dict[int, StreamKey] = {}
        for stream in sorted(streams, key=lambda s: -s.heat):
            key = stream_key(stream)
            head_blocks = {
                symbols.lookup(sym).addr >> shift for sym in stream.head(head_len)
            }
            for sym in stream.tail(head_len):
                block = symbols.lookup(sym).addr >> shift
                if block not in head_blocks:
                    mapping.setdefault(block, key)
        return mapping

    def _build_dfsm_with_backoff(self, streams: list[HotDataStream], now: int = 0):
        """Build the DFSM, halving the stream set on pathological blow-up."""
        while True:
            try:
                return build_dfsm(streams, self.config.head_len, self.config.max_dfsm_states), streams
            except DfsmTooLarge:
                if len(streams) <= 1:
                    raise
                kept = streams[: len(streams) // 2]
                telem = self.interp.telemetry
                if telem.enabled:
                    telem.emit(DfsmBackoff(now, len(streams), len(kept)))
                streams = kept

    # ----------------------------------------------------------- hibernation

    def _hibernate_tick(self, now: int) -> int:
        """One hibernating burst: faults, delayed installs, watchdog, wake."""
        charge = 0
        self._hibernate_bursts += 1
        faults = self.faults
        if faults is not None and faults.fire("cache_flush", now):
            self._emit_fault("cache_flush", "mid-run cache flush", now)
            self.interp.hierarchy.flush(now)
        if self._pending_install is not None:
            self._pending_delay -= 1
            if self._pending_delay <= 0:
                streams, dfsm, handlers = self._pending_install
                self._pending_install = None
                self._install(streams, dfsm, handlers, now)
        watchdog = self.watchdog
        if (
            watchdog is not None
            and self._installed_streams
            and self._hibernate_bursts % watchdog.config.check_every == 0
        ):
            # The poll span opens before the poll runs so a nested reinstall
            # span (same begin cycle) sorts inside it in the trace.
            tracer = self.interp.tracer
            poll_span = tracer.begin(now, "watchdog-poll", "watchdog")
            charge = self._watchdog_poll(now)
            tracer.end(now + charge, poll_span)
        if self._hibernate_bursts >= self.config.n_hibernate:
            self._wake(now)
        return charge

    def _watchdog_poll(self, now: int) -> int:
        """Score installed streams; roll back the ones that turned harmful."""
        watchdog = self.watchdog
        hierarchy = self.interp.hierarchy
        verdicts = watchdog.poll(hierarchy.stream_stats)
        if not verdicts:
            return 0
        telem = self.interp.telemetry
        cycle = len(self.summary.cycles)
        condemned = {v.key for v in verdicts}
        remaining = [
            s for s in self._installed_streams if stream_key(s) not in condemned
        ]
        for verdict in verdicts:
            watchdog.condemn(verdict.key, cycle)
            self.summary.stream_deopts += 1
            if telem.enabled:
                telem.emit(
                    StreamDeoptimized(
                        now,
                        self._describe_key(verdict.key),
                        verdict.reason,
                        round(verdict.accuracy, 4),
                        round(verdict.pollution, 4),
                        verdict.samples,
                        len(remaining),
                    )
                )
        if remaining:
            return self._reinstall(remaining, now)
        # Nothing worth keeping: full deoptimize, optionally re-profile early.
        deoptimize(self.program)
        self.interp.dfsm_state = 0
        self._installed_streams = []
        hierarchy.set_stream_attribution(None)
        watchdog.end_install()
        self._pending_install = None
        if watchdog.config.wake_on_empty:
            self.summary.early_wakes += 1
            self._wake(now)
        return 0

    def _reinstall(self, remaining: list[HotDataStream], now: int) -> int:
        """Targeted rollback: re-patch for the surviving streams only.

        The DFSM/handler rebuild is real work, so its cost is charged to
        simulated time like the awake-phase analysis (per surviving symbol).
        """
        dfsm, streams = self._build_dfsm_with_backoff(remaining, now)
        self.guard.check_dfsm(dfsm, streams)
        handlers = generate_handlers(
            dfsm,
            self.profiler.symbols,
            mode=self.config.mode,
            block_bytes=self.machine.block_bytes,
            max_prefetches=self.config.max_prefetches,
        )
        reinject_detection(self.program, handlers)
        self.interp.dfsm_state = 0
        self._installed_streams = list(streams)
        hierarchy = self.interp.hierarchy
        hierarchy.set_stream_attribution(self._attribution_map(streams))
        for stream in streams:
            key = stream_key(stream)
            hierarchy.stream_names[key] = self._describe_key(key)
        self.watchdog.retain([stream_key(s) for s in streams], hierarchy.stream_stats)
        telem = self.interp.telemetry
        if telem.enabled:
            telem.emit(DfsmBuilt(now, dfsm.num_states, dfsm.num_transitions, len(streams)))
        charge = self.machine.analysis_cost_per_symbol * sum(s.length for s in streams)
        tracer = self.interp.tracer
        if tracer.enabled:
            span = tracer.begin(now, "reinstall", "analysis", detail=f"streams={len(streams)}")
            tracer.end(now + charge, span)
        return charge

    # -------------------------------------------------------------- failures

    def _contain_failure(self, exc: ReproError, now: int) -> int:
        """Contain an analyze/optimize failure: deoptimize and hibernate.

        The program keeps running unoptimized.  ``max_optimizer_errors``
        *consecutive* failures disable the optimizer for the rest of the run
        (counters so large the listener never fires again).
        """
        phase_name = "optimize" if self.phase == AWAKE else "hibernate"
        try:
            deoptimize(self.program)
        except ReproError:  # pragma: no cover - deoptimize clears a dict
            pass
        self.interp.dfsm_state = 0
        self._installed_streams = []
        self._pending_install = None
        if self.watchdog is not None or self.interp.hierarchy.ledger is not None:
            self.interp.hierarchy.set_stream_attribution(None)
        if self.watchdog is not None:
            self.watchdog.end_install()
        self._consecutive_errors += 1
        self.summary.optimizer_errors += 1
        self.disabled = self._consecutive_errors >= self.config.max_optimizer_errors
        telem = self.interp.telemetry
        if telem.enabled:
            telem.emit(
                OptimizerError(
                    now,
                    phase_name,
                    type(exc).__name__,
                    str(exc),
                    self._consecutive_errors,
                    self.disabled,
                )
            )
            if self.phase == AWAKE:
                telem.emit(PhaseTransition(now, AWAKE, HIBERNATING))
        hibernating = self.config.counters.hibernating()
        self.interp.tracing_enabled = False
        if self.disabled:
            self.interp.set_counters(_NEVER, 1)
        else:
            self.interp.set_counters(hibernating.n_check0, hibernating.n_instr0)
        self.phase = HIBERNATING
        self._hibernate_bursts = 0
        self._trace_epoch(now, HIBERNATING)
        return 0

    # ------------------------------------------------------------------ wake

    def _wake(self, now: int = 0) -> None:
        """End of hibernation: deoptimize and return to profiling."""
        deoptimize(self.program)
        self.interp.dfsm_state = 0
        self._installed_streams = []
        self._pending_install = None
        if self.watchdog is not None or self.interp.hierarchy.ledger is not None:
            self.interp.hierarchy.set_stream_attribution(None)
        if self.watchdog is not None:
            self.watchdog.end_install()
        self.profiler.reset()
        self.interp.tracing_enabled = True
        self.interp.set_counters(self.config.counters.n_check0, self.config.counters.n_instr0)
        self.phase = AWAKE
        self._awake_bursts = 0
        self._trace_epoch(now, AWAKE)
        telem = self.interp.telemetry
        if telem.enabled:
            telem.emit(PhaseTransition(now, HIBERNATING, AWAKE))

    # ------------------------------------------------------------- rendering

    def _describe_key(self, key: StreamKey) -> str:
        """Short human-readable identity for telemetry payloads."""
        symbols = self.profiler.symbols
        parts: list[str] = []
        for sym in key[: self.config.head_len]:
            try:
                ref = symbols.lookup(sym)
            except ReproError:
                parts.append(f"sym{sym}?")
            else:
                parts.append(f"{ref.pc}@{ref.addr:#x}")
        tail = len(key) - min(len(key), self.config.head_len)
        return " ".join(parts) + f" (+{tail})"


def _drop_sink(pc: Pc, addr: int) -> None:
    """Trace sink used while a drop_burst fault is active."""
