"""The dynamic prefetching optimizer: Figure 1's phase cycle, end to end.

:class:`DynamicPrefetcher` is the interpreter's check listener.  Its life
cycle per optimization cycle:

1. **profiling (awake)** — bursty tracing feeds sampled data references into
   the online Sequitur grammar for ``n_awake`` burst periods;
2. **analysis & optimization** — the fast Figure 5 analysis extracts hot
   data streams, the Figure 9 construction builds the joint prefix-matching
   DFSM, Figure 7-style handlers are generated, and dynamic Vulcan patches
   the affected procedures; the analysis cost is charged to simulated time;
3. **hibernation** — tracing off (``nCheck = nCheck0+nInstr0-1, nInstr = 1``
   keeps burst periods the same length), the program runs with detection and
   prefetching injected for ``n_hibernate`` burst periods;
4. **deoptimization** — the patches are removed and control returns to the
   profiling phase.

For long-running programs the cycle repeats; ``summary.cycles`` records the
Table 2 characterization of every completed cycle.
"""

from __future__ import annotations

from repro.analysis.hotstreams import find_hot_streams
from repro.analysis.stream import HotDataStream
from repro.core.config import OptimizerConfig
from repro.core.stats import OptCycleStats, OptimizerSummary
from repro.dfsm.build import DfsmTooLarge, build_dfsm
from repro.dfsm.codegen import generate_handlers
from repro.interp.interpreter import Interpreter
from repro.ir.program import Program
from repro.machine.config import MachineConfig
from repro.profiling.profiler import TemporalProfiler
from repro.telemetry.events import (
    AnalysisCharged,
    DfsmBackoff,
    DfsmBuilt,
    OptimizeCycle,
    PhaseTransition,
)
from repro.vulcan.dynamic_edit import deoptimize, inject_detection

AWAKE, HIBERNATING = "awake", "hibernating"


def _dedupe_streams(streams: list[HotDataStream], head_len: int) -> list[HotDataStream]:
    """Drop streams subsumed by longer ones.

    Burst truncation makes Sequitur report prefix/suffix fragments of a long
    stream alongside the full stream; the analysis's coldUses discount only
    removes occurrences *inside* hot parents, not the truncated copies.  Two
    filters: (a) keep one stream per distinct head prefix (same head means
    the same DFSM match), preferring the longest; (b) drop any stream whose
    reference sequence is a contiguous subsequence of a kept longer stream —
    its matches would only re-prefetch a suffix the longer stream already
    covers, at the price of extra injected checks.
    """
    by_head: dict[tuple[int, ...], HotDataStream] = {}
    for stream in streams:
        head = stream.head(head_len)
        kept = by_head.get(head)
        if kept is None or (stream.length, stream.heat) > (kept.length, kept.heat):
            by_head[head] = stream
    candidates = sorted(by_head.values(), key=lambda s: (-s.length, -s.heat, s.rule_id))
    kept_keys: list[str] = []
    result: list[HotDataStream] = []
    for stream in candidates:
        key = "," + ",".join(map(str, stream.symbols)) + ","
        if any(key in longer for longer in kept_keys):
            continue
        kept_keys.append(key)
        result.append(stream)
    return sorted(result, key=lambda s: (-s.heat, s.rule_id))


class DynamicPrefetcher:
    """Online profiler + analyzer + prefetch injector (the paper's system)."""

    def __init__(
        self,
        program: Program,
        interp: Interpreter,
        machine: MachineConfig,
        config: OptimizerConfig,
    ) -> None:
        self.program = program
        self.interp = interp
        self.machine = machine
        self.config = config
        self.profiler = TemporalProfiler()
        self.summary = OptimizerSummary()
        self.phase = AWAKE
        self._awake_bursts = 0
        self._hibernate_bursts = 0
        # Wire into the interpreter: profiling starts awake.
        interp.check_listener = self
        interp.trace_sink = self.profiler.record
        interp.tracing_enabled = True
        interp.set_counters(config.counters.n_check0, config.counters.n_instr0)

    # ----------------------------------------------------- CheckListener API

    def burst_begin(self, now: int) -> int:
        """Nothing happens at burst starts; transitions occur at burst ends."""
        return 0

    def burst_end(self, now: int) -> int:
        """Advance the phase machine; returns cycles to charge for analysis."""
        if self.phase == AWAKE:
            self._awake_bursts += 1
            if self._awake_bursts >= self.config.n_awake:
                return self._optimize(now)
        else:
            self._hibernate_bursts += 1
            if self._hibernate_bursts >= self.config.n_hibernate:
                self._wake(now)
        return 0

    # ------------------------------------------------------- phase changes

    def _optimize(self, now: int = 0) -> int:
        """End of awake phase: analyze, inject, enter hibernation."""
        config = self.config
        telem = self.interp.telemetry
        traced = self.profiler.trace_length
        charge = 0
        streams: list[HotDataStream] = []
        if config.analyze and traced:
            charge = self.machine.analysis_cost_per_symbol * traced
            streams = find_hot_streams(self.profiler.sequitur, config.analysis)
            streams = [s for s in streams if s.length > config.head_len]
            streams = _dedupe_streams(streams, config.head_len)
            if telem.enabled:
                telem.emit(AnalysisCharged(now, traced, charge))

        dfsm_states = dfsm_transitions = injected_checks = procs_modified = 0
        if config.inject and streams:
            dfsm, streams = self._build_dfsm_with_backoff(streams, now)
            handlers = generate_handlers(
                dfsm,
                self.profiler.symbols,
                mode=config.mode,
                block_bytes=self.machine.block_bytes,
                max_prefetches=config.max_prefetches,
            )
            deoptimize(self.program)
            result = inject_detection(self.program, handlers)
            self.interp.dfsm_state = 0
            dfsm_states = dfsm.num_states
            dfsm_transitions = dfsm.num_transitions
            injected_checks = sum(h.num_cases for h in handlers.values())
            procs_modified = result.num_procedures
            if telem.enabled:
                telem.emit(DfsmBuilt(now, dfsm_states, dfsm_transitions, len(streams)))

        self.summary.cycles.append(
            OptCycleStats(
                cycle=len(self.summary.cycles) + 1,
                traced_refs=traced,
                num_streams=len(streams),
                dfsm_states=dfsm_states,
                dfsm_transitions=dfsm_transitions,
                injected_checks=injected_checks,
                procs_modified=procs_modified,
                stream_lengths=[s.length for s in streams],
            )
        )
        if telem.enabled:
            telem.emit(
                OptimizeCycle(
                    now,
                    index=len(self.summary.cycles),
                    traced_refs=traced,
                    num_streams=len(streams),
                    dfsm_states=dfsm_states,
                    dfsm_transitions=dfsm_transitions,
                    injected_checks=injected_checks,
                    procs_modified=procs_modified,
                )
            )
            telem.emit(PhaseTransition(now, AWAKE, HIBERNATING))

        hibernating = config.counters.hibernating()
        self.interp.tracing_enabled = False
        self.interp.set_counters(hibernating.n_check0, hibernating.n_instr0)
        self.phase = HIBERNATING
        self._hibernate_bursts = 0
        return charge

    def _build_dfsm_with_backoff(self, streams: list[HotDataStream], now: int = 0):
        """Build the DFSM, halving the stream set on pathological blow-up."""
        while True:
            try:
                return build_dfsm(streams, self.config.head_len, self.config.max_dfsm_states), streams
            except DfsmTooLarge:
                if len(streams) <= 1:
                    raise
                kept = streams[: len(streams) // 2]
                telem = self.interp.telemetry
                if telem.enabled:
                    telem.emit(DfsmBackoff(now, len(streams), len(kept)))
                streams = kept

    def _wake(self, now: int = 0) -> None:
        """End of hibernation: deoptimize and return to profiling."""
        deoptimize(self.program)
        self.interp.dfsm_state = 0
        self.profiler.reset()
        self.interp.tracing_enabled = True
        self.interp.set_counters(self.config.counters.n_check0, self.config.counters.n_instr0)
        self.phase = AWAKE
        self._awake_bursts = 0
        telem = self.interp.telemetry
        if telem.enabled:
            telem.emit(PhaseTransition(now, HIBERNATING, AWAKE))
