"""The paper's primary contribution: the dynamic prefetching optimizer."""

from repro.core.config import OptimizerConfig, paper_scale
from repro.core.hwpref import MarkovPrefetcher, StridePrefetcher
from repro.core.optimizer import AWAKE, HIBERNATING, DynamicPrefetcher
from repro.core.static_pref import StaticPrefetcher
from repro.core.stats import OptCycleStats, OptimizerSummary

__all__ = [
    "OptimizerConfig",
    "paper_scale",
    "DynamicPrefetcher",
    "StaticPrefetcher",
    "AWAKE",
    "HIBERNATING",
    "OptCycleStats",
    "OptimizerSummary",
    "StridePrefetcher",
    "MarkovPrefetcher",
]
