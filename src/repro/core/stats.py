"""Per-optimization-cycle statistics (the raw material of Table 2)."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class OptCycleStats:
    """What one profile -> analyze -> optimize cycle saw and did."""

    cycle: int
    traced_refs: int
    num_streams: int
    dfsm_states: int
    dfsm_transitions: int
    injected_checks: int
    procs_modified: int
    stream_lengths: list[int] = field(default_factory=list)

    @property
    def mean_stream_length(self) -> float:
        if not self.stream_lengths:
            return 0.0
        return sum(self.stream_lengths) / len(self.stream_lengths)

    def to_dict(self) -> dict[str, object]:
        """JSON-serializable view (field values plus the derived mean)."""
        return {
            "cycle": self.cycle,
            "traced_refs": self.traced_refs,
            "num_streams": self.num_streams,
            "dfsm_states": self.dfsm_states,
            "dfsm_transitions": self.dfsm_transitions,
            "injected_checks": self.injected_checks,
            "procs_modified": self.procs_modified,
            "stream_lengths": list(self.stream_lengths),
            "mean_stream_length": self.mean_stream_length,
        }


@dataclass
class OptimizerSummary:
    """Aggregate over all completed cycles of one run (one Table 2 row).

    The resilience counters extend the Table 2 view: guarded optimization
    (``guard_rejections``), the watchdog's per-stream rollbacks
    (``stream_deopts`` and the early returns to profiling they trigger),
    contained analyze/optimize failures (``optimizer_errors``) and fired
    fault injections (``faults_injected``).
    """

    cycles: list[OptCycleStats] = field(default_factory=list)
    guard_rejections: int = 0
    stream_deopts: int = 0
    early_wakes: int = 0
    optimizer_errors: int = 0
    faults_injected: int = 0

    @property
    def num_cycles(self) -> int:
        return len(self.cycles)

    def _mean(self, attr: str) -> float:
        if not self.cycles:
            return 0.0
        return sum(getattr(c, attr) for c in self.cycles) / len(self.cycles)

    @property
    def mean_traced_refs(self) -> float:
        return self._mean("traced_refs")

    @property
    def mean_streams(self) -> float:
        return self._mean("num_streams")

    @property
    def mean_dfsm_states(self) -> float:
        return self._mean("dfsm_states")

    @property
    def mean_dfsm_transitions(self) -> float:
        return self._mean("dfsm_transitions")

    @property
    def mean_injected_checks(self) -> float:
        return self._mean("injected_checks")

    @property
    def mean_procs_modified(self) -> float:
        return self._mean("procs_modified")

    def to_dict(self) -> dict[str, object]:
        """Serializable Table 2 row: aggregates plus every per-cycle record.

        This is the shape the telemetry metrics exporter embeds, so consumers
        never reach into dataclass internals.
        """
        return {
            "num_cycles": self.num_cycles,
            "mean_traced_refs": self.mean_traced_refs,
            "mean_streams": self.mean_streams,
            "mean_dfsm_states": self.mean_dfsm_states,
            "mean_dfsm_transitions": self.mean_dfsm_transitions,
            "mean_injected_checks": self.mean_injected_checks,
            "mean_procs_modified": self.mean_procs_modified,
            "guard_rejections": self.guard_rejections,
            "stream_deopts": self.stream_deopts,
            "early_wakes": self.early_wakes,
            "optimizer_errors": self.optimizer_errors,
            "faults_injected": self.faults_injected,
            "cycles": [c.to_dict() for c in self.cycles],
        }
