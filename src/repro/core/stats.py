"""Per-optimization-cycle statistics (the raw material of Table 2)."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class OptCycleStats:
    """What one profile -> analyze -> optimize cycle saw and did."""

    cycle: int
    traced_refs: int
    num_streams: int
    dfsm_states: int
    dfsm_transitions: int
    injected_checks: int
    procs_modified: int
    stream_lengths: list[int] = field(default_factory=list)
    #: simulated cycles charged for this cycle's online analysis (the Hds
    #: slice of the cycle-attribution ledger, per optimization cycle)
    analysis_charged: int = 0
    #: simulated cycle at which the analysis ran (0 = unrecorded)
    at_cycle: int = 0

    @property
    def mean_stream_length(self) -> float:
        if not self.stream_lengths:
            return 0.0
        return sum(self.stream_lengths) / len(self.stream_lengths)

    def to_dict(self) -> dict[str, object]:
        """JSON-serializable view (field values plus the derived mean)."""
        return {
            "cycle": self.cycle,
            "traced_refs": self.traced_refs,
            "num_streams": self.num_streams,
            "dfsm_states": self.dfsm_states,
            "dfsm_transitions": self.dfsm_transitions,
            "injected_checks": self.injected_checks,
            "procs_modified": self.procs_modified,
            "stream_lengths": list(self.stream_lengths),
            "mean_stream_length": self.mean_stream_length,
            "analysis_charged": self.analysis_charged,
            "at_cycle": self.at_cycle,
        }

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "OptCycleStats":
        """Inverse of :meth:`to_dict` (derived fields are recomputed)."""
        return cls(
            cycle=int(data["cycle"]),
            traced_refs=int(data["traced_refs"]),
            num_streams=int(data["num_streams"]),
            dfsm_states=int(data["dfsm_states"]),
            dfsm_transitions=int(data["dfsm_transitions"]),
            injected_checks=int(data["injected_checks"]),
            procs_modified=int(data["procs_modified"]),
            stream_lengths=[int(x) for x in data.get("stream_lengths", [])],
            analysis_charged=int(data.get("analysis_charged", 0)),
            at_cycle=int(data.get("at_cycle", 0)),
        )


@dataclass
class OptimizerSummary:
    """Aggregate over all completed cycles of one run (one Table 2 row).

    The resilience counters extend the Table 2 view: guarded optimization
    (``guard_rejections``), the watchdog's per-stream rollbacks
    (``stream_deopts`` and the early returns to profiling they trigger),
    contained analyze/optimize failures (``optimizer_errors``) and fired
    fault injections (``faults_injected``).
    """

    cycles: list[OptCycleStats] = field(default_factory=list)
    guard_rejections: int = 0
    stream_deopts: int = 0
    early_wakes: int = 0
    optimizer_errors: int = 0
    faults_injected: int = 0

    @property
    def num_cycles(self) -> int:
        return len(self.cycles)

    def _mean(self, attr: str) -> float:
        if not self.cycles:
            return 0.0
        return sum(getattr(c, attr) for c in self.cycles) / len(self.cycles)

    @property
    def mean_traced_refs(self) -> float:
        return self._mean("traced_refs")

    @property
    def mean_streams(self) -> float:
        return self._mean("num_streams")

    @property
    def mean_dfsm_states(self) -> float:
        return self._mean("dfsm_states")

    @property
    def mean_dfsm_transitions(self) -> float:
        return self._mean("dfsm_transitions")

    @property
    def mean_injected_checks(self) -> float:
        return self._mean("injected_checks")

    @property
    def mean_procs_modified(self) -> float:
        return self._mean("procs_modified")

    @property
    def analysis_charged(self) -> int:
        """Total simulated cycles billed for awake-phase analyses."""
        return sum(c.analysis_charged for c in self.cycles)

    def to_dict(self) -> dict[str, object]:
        """Serializable Table 2 row: aggregates plus every per-cycle record.

        This is the shape the telemetry metrics exporter embeds, so consumers
        never reach into dataclass internals.
        """
        return {
            "num_cycles": self.num_cycles,
            "mean_traced_refs": self.mean_traced_refs,
            "mean_streams": self.mean_streams,
            "mean_dfsm_states": self.mean_dfsm_states,
            "mean_dfsm_transitions": self.mean_dfsm_transitions,
            "mean_injected_checks": self.mean_injected_checks,
            "mean_procs_modified": self.mean_procs_modified,
            "guard_rejections": self.guard_rejections,
            "stream_deopts": self.stream_deopts,
            "early_wakes": self.early_wakes,
            "optimizer_errors": self.optimizer_errors,
            "faults_injected": self.faults_injected,
            "analysis_charged": self.analysis_charged,
            "cycles": [c.to_dict() for c in self.cycles],
        }

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "OptimizerSummary":
        """Inverse of :meth:`to_dict` (aggregates are recomputed)."""
        return cls(
            cycles=[OptCycleStats.from_dict(c) for c in data.get("cycles", [])],
            guard_rejections=int(data.get("guard_rejections", 0)),
            stream_deopts=int(data.get("stream_deopts", 0)),
            early_wakes=int(data.get("early_wakes", 0)),
            optimizer_errors=int(data.get("optimizer_errors", 0)),
            faults_injected=int(data.get("faults_injected", 0)),
        )
