"""Static (profile-once) prefetching — the paper's deferred comparison.

Section 1: hot data streams "have been shown to be fairly stable across
program inputs and could serve as the basis for an off-line static
prefetching scheme [10]. On the other hand, for programs with distinct
phase behavior, a dynamic prefetching scheme that adapts to program phase
transitions may perform better. [...] we leave a comparison with static
prefetching for future work."

:class:`StaticPrefetcher` implements that comparison point: it profiles one
awake period at program start, injects detection/prefetch code once, and
then *never deoptimizes or re-profiles* — the injected streams stay fixed
for the rest of the run, exactly like an offline scheme whose profile was
gathered on startup behaviour.  On single-phase programs it performs like
the dynamic scheme minus the recurring profiling cost; on programs with
phase transitions its stale streams stop matching (or worse, prefetch dead
addresses), which is the paper's argument for being dynamic.
"""

from __future__ import annotations

from repro.core.optimizer import HIBERNATING, DynamicPrefetcher


class StaticPrefetcher(DynamicPrefetcher):
    """Profile once, optimize once, keep the injected code forever."""

    def __init__(self, program, interp, machine, config) -> None:
        super().__init__(program, interp, machine, config)
        # Prefetches from the one-time install carry their own source tag so
        # telemetry and PrefetchStats.by_source can separate the offline
        # comparison point from the dynamic pipeline's "sw" prefetches.
        interp.prefetch_source = "static"

    def burst_end(self, now: int) -> int:
        if self.phase == HIBERNATING:
            # Never wake up: the one-time optimization is permanent.
            return 0
        self._awake_bursts += 1
        if self._awake_bursts >= self.config.n_awake:
            return self._optimize(now)
        return 0
