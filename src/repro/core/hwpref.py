"""Hardware-prefetcher baselines for the Section 5.1 comparison ablation.

The paper argues (Section 4.3) that "many [hot data stream addresses] will
not be successfully prefetched using a simple stride-based prefetching
scheme" and positions its technique against correlation/Markov prefetchers
(Section 5.1).  These two models plug into the interpreter's
``hw_prefetcher`` hook and observe every demand reference:

* :class:`StridePrefetcher` — a per-pc reference-prediction table that
  detects constant strides and prefetches ``degree`` blocks ahead;
* :class:`MarkovPrefetcher` — a block-digram correlation table (Joseph &
  Grunwald) that prefetches the most frequent successors of the current
  block.

Both are "free" (no instruction overhead), which makes them an *optimistic*
hardware baseline; the comparison in the bench is about coverage/accuracy,
not instruction cost.  Their prefetches carry a telemetry ``source`` tag
("stride"/"markov") so event logs can separate them from the injected
software handlers ("sw").
"""

from __future__ import annotations

from collections import OrderedDict

from repro.ir.instructions import Pc
from repro.machine.hierarchy import MemoryHierarchy


class StridePrefetcher:
    """Per-pc stride detection with a confidence counter."""

    def __init__(self, degree: int = 2, table_size: int = 256, min_confidence: int = 2) -> None:
        self.degree = degree
        self.table_size = table_size
        self.min_confidence = min_confidence
        #: pc -> [last_addr, stride, confidence]
        self._table: OrderedDict[Pc, list[int]] = OrderedDict()

    def observe(self, pc: Pc, addr: int, now: int, hierarchy: MemoryHierarchy) -> None:
        entry = self._table.get(pc)
        if entry is None:
            if len(self._table) >= self.table_size:
                self._table.popitem(last=False)
            self._table[pc] = [addr, 0, 0]
            return
        last_addr, stride, confidence = entry
        delta = addr - last_addr
        if delta == stride and delta != 0:
            confidence += 1
        else:
            stride = delta
            confidence = 0
        entry[0], entry[1], entry[2] = addr, stride, confidence
        if confidence >= self.min_confidence and stride != 0:
            block = hierarchy.config.block_bytes
            # Prefetch `degree` blocks along the detected stride.
            step = stride if abs(stride) >= block else (block if stride > 0 else -block)
            for k in range(1, self.degree + 1):
                target = addr + step * k
                if target >= 0:
                    hierarchy.issue_prefetch(target, now, source="stride")


class MarkovPrefetcher:
    """First-order block-correlation (Markov) prefetcher."""

    def __init__(self, fanout: int = 2, table_size: int = 4096) -> None:
        self.fanout = fanout
        self.table_size = table_size
        #: block -> {successor block: count}
        self._table: OrderedDict[int, dict[int, int]] = OrderedDict()
        self._last_block: int | None = None

    def observe(self, pc: Pc, addr: int, now: int, hierarchy: MemoryHierarchy) -> None:
        block_bytes = hierarchy.config.block_bytes
        shift = block_bytes.bit_length() - 1
        block = addr >> shift
        last = self._last_block
        if last is not None and block != last:
            successors = self._table.get(last)
            if successors is None:
                if len(self._table) >= self.table_size:
                    self._table.popitem(last=False)
                successors = {}
                self._table[last] = successors
            successors[block] = successors.get(block, 0) + 1
        if block != last:
            predicted = self._table.get(block)
            if predicted:
                ranked = sorted(predicted.items(), key=lambda kv: -kv[1])[: self.fanout]
                for successor, _count in ranked:
                    hierarchy.issue_prefetch(successor << shift, now, source="markov")
        self._last_block = block
