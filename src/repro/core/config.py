"""Configuration of the dynamic prefetching optimizer.

The defaults are *simulation-scale*: the paper profiles 1 second out of
every 50 on a 550 MHz machine with a 0.5% sampling rate (Section 4.1);
running the same absolute counter values under an interpreted simulator
would need billions of instructions per experiment.  The scaled settings
keep the paper's structure — short awake phases, long hibernation, bursts
spanning many checks — while letting an optimization cycle complete within a
few hundred thousand simulated instructions.  ``paper_scale`` returns the
verbatim Section 4.1 settings for anyone with patience.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from typing import Optional

from repro.analysis.hotstreams import AnalysisConfig
from repro.dfsm.codegen import PREFETCH_MODES
from repro.errors import ConfigError
from repro.profiling.sampling import (
    PAPER_COUNTERS,
    PAPER_N_AWAKE,
    PAPER_N_HIBERNATE,
    BurstyCounters,
)
from repro.resilience.faults import FaultPlan
from repro.resilience.guards import GuardConfig
from repro.resilience.watchdog import WatchdogConfig


@dataclass(frozen=True)
class OptimizerConfig:
    """Knobs of the profile -> analyze/optimize -> hibernate cycle.

    Attributes:
        counters: awake-phase bursty-tracing counters.
        n_awake: awake burst-periods before analysis+optimization runs.
        n_hibernate: hibernating burst-periods before deoptimization.
        head_len: stream prefix length matched before prefetching
            (the paper settles on 2, Section 4.3).
        mode: ``dyn`` (the paper's scheme), ``seq`` (sequential baseline) or
            ``nopref`` (match but never prefetch).
        analyze: run hot-data-stream analysis at the end of awake phases
            (off = the "Prof" measurement level of Figure 11).
        inject: inject detection/prefetch code for the detected streams
            (off = the "Hds" level of Figure 11).
        analysis: hot-data-stream detection parameters.
        max_prefetches: cap on prefetches issued per completed match.
        max_dfsm_states: construction guard; on overflow the optimizer
            retries with the hottest half of the streams.
        guards: pre-install stream/DFSM validation bounds; None uses the
            (always-on) defaults.
        watchdog: per-stream prefetch-quality watchdog configuration; None
            disables the watchdog entirely (no attribution, no rollbacks —
            the pre-resilience behaviour, bit-identical cycle counts).
        faults: deterministic fault-injection plan; None injects nothing.
        max_optimizer_errors: consecutive contained analyze/optimize
            failures tolerated before the optimizer permanently hibernates
            (graceful degradation: the program keeps running unoptimized).
    """

    counters: BurstyCounters = field(default_factory=lambda: BurstyCounters(96, 64))
    n_awake: int = 60
    n_hibernate: int = 900
    head_len: int = 2
    mode: str = "dyn"
    analyze: bool = True
    inject: bool = True
    analysis: AnalysisConfig = field(
        default_factory=lambda: AnalysisConfig(
            heat_ratio=0.006,
            min_length=20,
            max_length=220,
            min_unique=10,
            max_streams=48,
        )
    )
    max_prefetches: int = 96
    max_dfsm_states: int = 2048
    guards: Optional[GuardConfig] = None
    watchdog: Optional[WatchdogConfig] = None
    faults: Optional[FaultPlan] = None
    max_optimizer_errors: int = 3

    def __post_init__(self) -> None:
        if self.mode not in PREFETCH_MODES:
            raise ConfigError(f"mode must be one of {PREFETCH_MODES}, got {self.mode!r}")
        if self.head_len < 1:
            raise ConfigError("head_len must be >= 1")
        if self.n_awake < 1 or self.n_hibernate < 1:
            raise ConfigError("n_awake and n_hibernate must be >= 1")
        if self.inject and not self.analyze:
            raise ConfigError("cannot inject without analyzing")
        if self.max_optimizer_errors < 1:
            raise ConfigError("max_optimizer_errors must be >= 1")

    def to_dict(self) -> dict[str, object]:
        """JSON-serializable view, nested configs included.

        This is the wire form :class:`~repro.engine.spec.RunSpec` embeds: it
        round-trips through :meth:`from_dict` and feeds the spec's
        content-addressed fingerprint, so the key set must change whenever a
        field that influences simulation results is added.
        """
        return {
            "counters": self.counters.to_dict(),
            "n_awake": self.n_awake,
            "n_hibernate": self.n_hibernate,
            "head_len": self.head_len,
            "mode": self.mode,
            "analyze": self.analyze,
            "inject": self.inject,
            "analysis": self.analysis.to_dict(),
            "max_prefetches": self.max_prefetches,
            "max_dfsm_states": self.max_dfsm_states,
            "guards": None if self.guards is None else self.guards.to_dict(),
            "watchdog": None if self.watchdog is None else self.watchdog.to_dict(),
            "faults": None if self.faults is None else self.faults.to_dict(),
            "max_optimizer_errors": self.max_optimizer_errors,
        }

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "OptimizerConfig":
        """Inverse of :meth:`to_dict` (re-validates through ``__post_init__``)."""
        guards = data.get("guards")
        watchdog = data.get("watchdog")
        faults = data.get("faults")
        return cls(
            counters=BurstyCounters.from_dict(data["counters"]),
            n_awake=int(data["n_awake"]),
            n_hibernate=int(data["n_hibernate"]),
            head_len=int(data["head_len"]),
            mode=str(data["mode"]),
            analyze=bool(data["analyze"]),
            inject=bool(data["inject"]),
            analysis=AnalysisConfig.from_dict(data["analysis"]),
            max_prefetches=int(data["max_prefetches"]),
            max_dfsm_states=int(data["max_dfsm_states"]),
            guards=None if guards is None else GuardConfig.from_dict(guards),
            watchdog=None if watchdog is None else WatchdogConfig.from_dict(watchdog),
            faults=None if faults is None else FaultPlan.from_dict(faults),
            max_optimizer_errors=int(data["max_optimizer_errors"]),
        )


def paper_scale() -> OptimizerConfig:
    """The verbatim Section 4.1 settings (impractically slow to simulate)."""
    return OptimizerConfig(
        counters=PAPER_COUNTERS,
        n_awake=PAPER_N_AWAKE,
        n_hibernate=PAPER_N_HIBERNATE,
        analysis=AnalysisConfig(
            heat_ratio=0.01, min_length=2, max_length=100, min_unique=10
        ),
    )
