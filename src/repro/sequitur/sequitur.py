"""Incremental Sequitur (Nevill-Manning & Witten), Section 2.3 / Figure 4.

Sequitur builds, online and in O(n) amortized time, a context-free grammar
whose language is exactly the input string, by enforcing two invariants:

* **digram uniqueness** — no pair of adjacent symbols occurs more than once
  in the grammar; a repeated digram is replaced by a non-terminal, and
* **rule utility** — every rule (except the start rule) is used at least
  twice; an under-used rule is inlined and deleted.

Terminals are non-negative integers (the profiling layer interns data
references ``(pc, addr)`` to such ids).

**Flat core.**  The grammar is stored in parallel integer arrays rather
than per-symbol linked objects: ``_nxt``/``_prv`` hold the doubly-linked
body lists (slot indices), ``_key`` holds each slot's digram key (terminal
``t`` as ``t``, rule ``r`` as ``-1 - r``, guards as ``None``), ``_own``
holds the owning rule id, and ``_free`` recycles slots.  The digram index
maps a packed 64-bit key (two 32-bit-masked digram keys) to the left slot
of the indexed occurrence.  :meth:`extend_batch` consumes a whole batch of
tokens in one call frame, inlining the no-repetition fast path; the rare
repair paths (``_match``/``_substitute``/``_expand``) transliterate the
reference algorithm exactly — same rule-creation order, same digram-index
insertion/deletion sequence — so the produced grammar, including the
``rules`` and ``_digrams`` dict insertion orders that downstream analysis
iterates, is bit-identical to the linked-object implementation retained in
:mod:`repro.oracle.refsequitur` as the differential reference.

The engine additionally tracks the set of rules whose bodies changed since
the last :meth:`take_dirty` call, which drives the incremental hot-stream
analysis (:class:`repro.analysis.hotstreams.HotStreamAnalyzer`).
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Union

from repro.errors import AnalysisError
from repro.sequitur.grammar import Rule

#: 32-bit mask for one half of a packed digram key.  Terminals are bounded
#: by :data:`MAX_TERMINAL` and rule ids by the trace length, so both digram
#: keys round-trip through ``key & _M`` injectively.
_M = 0xFFFFFFFF
#: Exclusive terminal bound (2^31).  Interned reference ids are dense and
#: never approach it; the explicit check turns a silent packing collision
#: into a typed error.
MAX_TERMINAL = 0x80000000


def _unpack(packed: int) -> tuple[int, int]:
    """Inverse of the ``((a & _M) << 32) | (b & _M)`` digram packing."""
    a = packed >> 32
    b = packed & _M
    if a >= MAX_TERMINAL:
        a -= _M + 1
    if b >= MAX_TERMINAL:
        b -= _M + 1
    return (a, b)


class Sequitur:
    """Online grammar inference over a stream of integer tokens."""

    def __init__(self) -> None:
        self._nxt: list[int] = []
        self._prv: list[int] = []
        self._key: list[Optional[int]] = []
        self._own: list[int] = []
        self._free: list[int] = []
        self._next_rule_id = 0
        #: digram packed-key -> leftmost slot of the indexed digram
        self._digrams: dict[int, int] = {}
        #: rule ids whose bodies changed since the last take_dirty()
        self._dirty: set[int] = set()
        self.start = self._new_rule()
        #: live rules by id (includes the start rule)
        self.rules: dict[int, Rule] = {self.start.id: self.start}
        self.length = 0
        # Every rule enters the dirty stream at birth (and at death); the
        # incremental analyzer relies on never having to scan for changes.
        self._dirty.add(self.start.id)

    # ------------------------------------------------------------- plumbing

    def _alloc(self, key: Optional[int], owner: int) -> int:
        """Allocate a slot (recycling the free list); links start unset."""
        free = self._free
        if free:
            s = free.pop()
            self._key[s] = key
            self._own[s] = owner
            return s
        s = len(self._nxt)
        self._nxt.append(-1)
        self._prv.append(-1)
        self._key.append(key)
        self._own.append(owner)
        return s

    def _new_rule(self) -> Rule:
        rule_id = self._next_rule_id
        self._next_rule_id += 1
        g = self._alloc(None, rule_id)
        self._nxt[g] = g
        self._prv[g] = g
        return Rule(rule_id, g, self)

    def _index(self, s: int) -> None:
        """Record the digram starting at slot ``s`` in the index."""
        k = self._key[s]
        ns = self._nxt[s]
        if k is None or ns == -1:
            return
        nk = self._key[ns]
        if nk is None:
            return
        self._digrams[((k & _M) << 32) | (nk & _M)] = s

    def _unindex(self, s: int) -> None:
        """Remove the digram starting at ``s`` iff the index points at it."""
        k = self._key[s]
        ns = self._nxt[s]
        if k is None or ns == -1:
            return
        nk = self._key[ns]
        if nk is None:
            return
        packed = ((k & _M) << 32) | (nk & _M)
        if self._digrams.get(packed) == s:
            del self._digrams[packed]

    def _join(self, left: int, right: int) -> None:
        """Link ``left`` -> ``right``, maintaining the digram index.

        The ``_unindex``/``_index`` helpers are inlined here (hottest call
        site in the engine); the guard conditions collapse because the
        repair branches already establish every precondition.
        """
        nxt = self._nxt
        prv = self._prv
        key = self._key
        if nxt[left] != -1:
            digrams = self._digrams
            # Inline _unindex(left).
            lk = key[left]
            ln = nxt[left]
            if lk is not None and ln != -1:
                nk = key[ln]
                if nk is not None:
                    packed = ((lk & _M) << 32) | (nk & _M)
                    if digrams.get(packed) == left:
                        del digrams[packed]
            # Overlapping-triple repair (e.g. "aaa"): unindexing (left, old
            # next) may have removed an entry that a neighbouring equal-value
            # digram should now own.  ``_index`` inlines to a plain store:
            # the repair condition guarantees both digram halves are equal
            # non-guard keys.
            rp, rn = prv[right], nxt[right]
            if rp != -1 and rn != -1:
                rk = key[right]
                if rk is not None and key[rp] == rk and key[rn] == rk:
                    digrams[((rk & _M) << 32) | (rk & _M)] = right
            lp = prv[left]
            if lp != -1 and ln != -1 and lk is not None and key[lp] == lk and key[ln] == lk:
                digrams[((lk & _M) << 32) | (lk & _M)] = lp
        nxt[left] = right
        prv[right] = left

    def _insert_after(self, at: int, s: int) -> None:
        # Every call site passes a freshly allocated ``s`` (nxt[s] == -1),
        # so the first half of the splice — _join(s, nxt[at]) — skips the
        # digram block and reduces to a raw relink.
        nxt = self._nxt
        right = nxt[at]
        nxt[s] = right
        self._prv[right] = s
        self._join(at, s)

    def _delete(self, s: int) -> None:
        """Unlink slot ``s``, update index and refcounts, recycle the slot.

        Inlines ``_join(prv[s], nxt[s])`` followed by ``_unindex(s)``, in
        that order, with the guards specialised: ``s`` is always linked, so
        left's old next is ``s`` itself and the digram block always runs.
        """
        nxt = self._nxt
        prv = self._prv
        key = self._key
        digrams = self._digrams
        left = prv[s]
        right = nxt[s]
        k = key[s]
        # Inline _join(left, right): unindex (left, s) ...
        lk = key[left]
        if lk is not None and k is not None:
            packed = ((lk & _M) << 32) | (k & _M)
            if digrams.get(packed) == left:
                del digrams[packed]
        # ... then the overlapping-triple repairs (ln == s throughout).
        rp, rn = prv[right], nxt[right]
        if rp != -1 and rn != -1:
            rk = key[right]
            if rk is not None and key[rp] == rk and key[rn] == rk:
                digrams[((rk & _M) << 32) | (rk & _M)] = right
        lp = prv[left]
        if lp != -1 and lk is not None and key[lp] == lk and k == lk:
            digrams[((lk & _M) << 32) | (lk & _M)] = lp
        nxt[left] = right
        prv[right] = left
        if k is not None:
            # Inline _unindex(s): the relink above left s's own links
            # intact, so (key[s], key[nxt[s]]) is still the digram s headed
            # before the unlink.
            if right != -1:
                nk = key[right]
                if nk is not None:
                    packed = ((k & _M) << 32) | (nk & _M)
                    if digrams.get(packed) == s:
                        del digrams[packed]
            if k < 0:
                self.rules[-1 - k].refcount -= 1
        nxt[s] = -1
        prv[s] = -1
        self._free.append(s)

    # ------------------------------------------------------ the two invariants

    def _check(self, s: int) -> bool:
        """Enforce digram uniqueness for the digram starting at ``s``.

        Returns True when a repetition was found and processed (in which case
        the neighbourhood of ``s`` may have been rewritten).
        """
        k = self._key[s]
        ns = self._nxt[s]
        if k is None or ns == -1:
            return False
        nk = self._key[ns]
        if nk is None:
            return False
        packed = ((k & _M) << 32) | (nk & _M)
        match = self._digrams.get(packed)
        if match is None:
            self._digrams[packed] = s
            return False
        if self._nxt[match] == s:
            # Overlapping occurrence (e.g. the middle of "aaa"): do nothing.
            return True
        self._match(s, match)
        return True

    def _match(self, new: int, match: int) -> None:
        """Handle a repeated digram: reuse or create a rule."""
        nxt = self._nxt
        prv = self._prv
        key = self._key
        mp = prv[match]
        mnn = nxt[nxt[match]]
        if key[mp] is None and key[mnn] is None:
            # The matching digram is the entire body of an existing rule.
            rule = self.rules[self._own[mp]]
            self._substitute(new, rule)
        else:
            rule = self._new_rule()
            self.rules[rule.id] = rule
            self._dirty.add(rule.id)
            k1 = key[new]
            k2 = key[nxt[new]]
            first = self._alloc(k1, rule.id)
            if k1 is not None and k1 < 0:
                self.rules[-1 - k1].refcount += 1
            second = self._alloc(k2, rule.id)
            if k2 is not None and k2 < 0:
                self.rules[-1 - k2].refcount += 1
            self._insert_after(rule.guard, first)
            self._insert_after(first, second)
            self._substitute(match, rule)
            self._substitute(new, rule)
            self._index(nxt[rule.guard])
        # Rule utility: substitution may have dropped some rule's use count
        # to one; the remaining use can only be inside the (re)used rule.
        g = rule.guard
        for candidate in (nxt[g], prv[g]):
            ck = key[candidate]
            if ck is not None and ck < 0 and self.rules[-1 - ck].refcount == 1:
                self._expand(candidate)
                break

    def _substitute(self, s: int, rule: Rule) -> None:
        """Replace the digram starting at ``s`` with non-terminal ``rule``."""
        nxt = self._nxt
        prev = self._prv[s]
        owner = self._own[prev]
        self._dirty.add(owner)
        self._delete(nxt[prev])
        self._delete(nxt[prev])
        rule.refcount += 1
        ns = self._alloc(-1 - rule.id, owner)
        # Inline _insert_after(prev, ns): ns is fresh, raw relink first.
        right = nxt[prev]
        nxt[ns] = right
        self._prv[right] = ns
        self._join(prev, ns)
        if not self._check(prev):
            self._check(nxt[prev])

    def _expand(self, s: int) -> None:
        """Inline the under-used rule referenced by slot ``s``, delete it."""
        nxt = self._nxt
        prv = self._prv
        own = self._own
        rule = self.rules[-1 - self._key[s]]  # type: ignore[operator]
        target = own[s]
        self._dirty.add(target)
        # The dying rule's id goes into the dirty stream too, so incremental
        # consumers can prune its cached facts without scanning all rules.
        self._dirty.add(rule.id)
        left, right = prv[s], nxt[s]
        g = rule.guard
        first, last = nxt[g], prv[g]
        self._unindex(s)
        del self.rules[rule.id]
        # The spliced body symbols now belong to the surrounding rule.
        node = first
        while node != g:
            own[node] = target
            node = nxt[node]
        self._join(left, first)
        self._join(last, right)
        self._index(last)
        nxt[s] = -1
        prv[s] = -1
        self._free.append(s)
        nxt[g] = -1
        prv[g] = -1
        self._free.append(g)

    # --------------------------------------------------------------- public

    def append(self, token: int) -> None:
        """Append one terminal to the inferred string."""
        self.extend_batch((token,))

    def extend(self, tokens: Iterable[int]) -> None:
        """Append a sequence of terminals."""
        self.extend_batch(tokens)

    def extend_batch(self, tokens: Union[Sequence[int], Iterable[int]]) -> None:
        """Append a batch of terminals in one call frame.

        Equivalent to per-token :meth:`append` — the batch boundaries are
        not observable in the resulting grammar (pinned by the partition
        property tests and the oracle differential) — but the no-repetition
        fast path runs inline over locally-bound arrays, which is what makes
        the profiling hot path cheap.  A negative (or over-bound) token
        raises :class:`AnalysisError` at the exact offending position, with
        every earlier token already applied.
        """
        if not isinstance(tokens, (list, tuple)):
            tokens = list(tokens)
        if not tokens:
            return
        nxt = self._nxt
        prv = self._prv
        key = self._key
        own = self._own
        free = self._free
        digrams = self._digrams
        dget = digrams.get
        start = self.start
        g = start.guard
        sid = start.id
        self._dirty.add(sid)
        length = self.length
        try:
            for token in tokens:
                if token < 0:
                    raise AnalysisError(f"terminals must be non-negative, got {token}")
                if token >= MAX_TERMINAL:
                    raise AnalysisError(
                        f"terminal {token} exceeds the flat engine's bound {MAX_TERMINAL}"
                    )
                length += 1
                last = prv[g]
                if free:
                    s = free.pop()
                    key[s] = token
                    own[s] = sid
                else:
                    s = len(nxt)
                    nxt.append(-1)
                    prv.append(-1)
                    key.append(token)
                    own.append(sid)
                # Link at the end of the start rule.  As in the reference
                # implementation, appending at a rule's tail touches no
                # indexed digram (the old tail digram ends at the guard),
                # so the raw relink is exact.
                nxt[s] = g
                prv[g] = s
                nxt[last] = s
                prv[s] = last
                if last != g:
                    # Inline digram-uniqueness check for (last, token).
                    lk = key[last]
                    packed = ((lk & _M) << 32) | token  # type: ignore[operator]
                    m = dget(packed)
                    if m is None:
                        digrams[packed] = last
                    elif nxt[m] != last:
                        self._match(last, m)
                    # else: overlapping occurrence — skip, as _check does.
        finally:
            self.length = length

    def take_dirty(self) -> set[int]:
        """Rule ids whose bodies changed since the last call (then cleared).

        Single-consumer: intended for the one incremental analyzer attached
        to this grammar (see :class:`repro.analysis.hotstreams.HotStreamAnalyzer`).
        Ids of since-deleted rules may appear; rule ids are never reused, so
        consumers simply ignore ids absent from :attr:`rules`.
        """
        dirty = self._dirty
        self._dirty = set()
        return dirty

    def grammar_size(self) -> int:
        """Total number of symbols on all right-hand sides."""
        nxt = self._nxt
        total = 0
        for rule in self.rules.values():
            g = rule.guard
            s = nxt[g]
            while s != g:
                total += 1
                s = nxt[s]
        return total

    def expansion_lengths(self) -> dict[int, int]:
        """Expansion (terminal-string) length of every rule, by rule id.

        Iterative (explicit worklist): deep grammars from long traces must
        not depend on Python's recursion limit.
        """
        nxt = self._nxt
        key = self._key
        terms: dict[int, int] = {}
        kids: dict[int, list[int]] = {}
        for rule_id, rule in self.rules.items():
            g = rule.guard
            t = 0
            ks: list[int] = []
            s = nxt[g]
            while s != g:
                k = key[s]
                if k >= 0:  # type: ignore[operator]
                    t += 1
                else:
                    ks.append(-1 - k)  # type: ignore[operator]
                s = nxt[s]
            terms[rule_id] = t
            kids[rule_id] = ks
        lengths: dict[int, int] = {}
        for rule_id in self.rules:
            if rule_id in lengths:
                continue
            stack: list[tuple[int, bool]] = [(rule_id, False)]
            while stack:
                cur, ready = stack.pop()
                if cur in lengths:
                    continue
                if ready:
                    lengths[cur] = terms[cur] + sum(lengths[c] for c in kids[cur])
                    continue
                stack.append((cur, True))
                for child in kids[cur]:
                    if child not in lengths:
                        stack.append((child, False))
        return lengths

    def expand(self, rule: Optional[Rule] = None, limit: Optional[int] = None) -> list[int]:
        """Terminal expansion of ``rule`` (default: the whole string).

        ``limit`` truncates the expansion (useful when only a prefix of a
        candidate stream is needed).  Iterative: the continuation stack
        replaces the recursive walker.
        """
        if rule is None:
            rule = self.start
        nxt = self._nxt
        key = self._key
        rules = self.rules
        out: list[int] = []
        g = rule.guard
        stack: list[tuple[int, int]] = [(nxt[g], g)]
        while stack:
            s, term = stack.pop()
            while s != term:
                k = key[s]
                if k >= 0:  # type: ignore[operator]
                    out.append(k)  # type: ignore[arg-type]
                    if limit is not None and len(out) >= limit:
                        return out
                    s = nxt[s]
                else:
                    child_guard = rules[-1 - k].guard  # type: ignore[operator]
                    stack.append((nxt[s], term))
                    s = nxt[child_guard]
                    term = child_guard
        return out

    def children(self, rule: Rule) -> list[Rule]:
        """Rules appearing on ``rule``'s right-hand side (with repetition)."""
        nxt = self._nxt
        key = self._key
        rules = self.rules
        out: list[Rule] = []
        g = rule.guard
        s = nxt[g]
        while s != g:
            k = key[s]
            if k < 0:  # type: ignore[operator]
                out.append(rules[-1 - k])  # type: ignore[operator]
            s = nxt[s]
        return out

    # ---------------------------------------------------------- serialization

    def __getstate__(self) -> dict:
        """Flatten the grammar for pickling (checkpoints, process pools).

        The wire format is unchanged from the linked-object implementation —
        per-rule bodies as ``(terminal, rule_id)`` pairs plus the digram
        index as symbol positions, both dict insertion orders (``rules``,
        ``_digrams``) preserved exactly — so checkpoints stay kernel- and
        engine-representation-agnostic.
        """
        nxt = self._nxt
        key = self._key
        slot_position: dict[int, int] = {}
        bodies: list[tuple[int, int, list[tuple[Optional[int], Optional[int]]]]] = []
        position = 0
        for rule in self.rules.values():
            body: list[tuple[Optional[int], Optional[int]]] = []
            g = rule.guard
            s = nxt[g]
            while s != g:
                slot_position[s] = position
                position += 1
                k = key[s]
                body.append((k, None) if k >= 0 else (None, -1 - k))  # type: ignore[operator]
                s = nxt[s]
            bodies.append((rule.id, rule.refcount, body))
        return {
            "next_rule_id": self._next_rule_id,
            "start_id": self.start.id,
            "length": self.length,
            "rules": bodies,
            "digrams": [
                (_unpack(packed), slot_position[s]) for packed, s in self._digrams.items()
            ],
        }

    def __setstate__(self, state: dict) -> None:
        """Rebuild the flat arrays (inverse of __getstate__)."""
        self._nxt = []
        self._prv = []
        self._key = []
        self._own = []
        self._free = []
        self._next_rule_id = state["next_rule_id"]
        self.length = state["length"]
        rules: dict[int, Rule] = {}
        for rule_id, _, _ in state["rules"]:
            g = self._alloc(None, rule_id)
            self._nxt[g] = g
            self._prv[g] = g
            rules[rule_id] = Rule(rule_id, g, self)
        flat: list[int] = []
        nxt = self._nxt
        prv = self._prv
        for rule_id, refcount, body in state["rules"]:
            rule = rules[rule_id]
            rule.refcount = refcount
            g = rule.guard
            prev = g
            for terminal, ref_id in body:
                s = self._alloc(terminal if ref_id is None else -1 - ref_id, rule_id)
                prv[s] = prev
                nxt[prev] = s
                prev = s
                flat.append(s)
            nxt[prev] = g
            prv[g] = prev
        self.rules = rules
        self.start = rules[state["start_id"]]
        self._digrams = {
            (((k1 & _M) << 32) | (k2 & _M)): flat[pos]
            for (k1, k2), pos in state["digrams"]
        }
        # Restored grammars start with every rule dirty: analyzer caches are
        # not serialized, so the first incremental analysis rebuilds them.
        self._dirty = set(rules)

    # ------------------------------------------------------------ inspection

    def to_text(self, terminal_names: Optional[dict[int, str]] = None) -> str:
        """Readable rendering, e.g. ``S -> A a B B`` (start rule is ``S``)."""

        def name(rule: Rule) -> str:
            return "S" if rule is self.start else f"R{rule.id}"

        def term(token: int) -> str:
            if terminal_names and token in terminal_names:
                return terminal_names[token]
            return str(token)

        lines = []
        for rule_id in sorted(self.rules):
            rule = self.rules[rule_id]
            rhs = " ".join(name(v) if isinstance(v, Rule) else term(v) for v in rule.rhs())
            lines.append(f"{name(rule)} -> {rhs}")
        return "\n".join(lines)

    def verify_invariants(self) -> None:
        """Assert grammar and flat-storage invariants.

        Beyond the algorithmic invariants (digram uniqueness, rule utility,
        refcount consistency) this re-derives the flat core's structural
        claims: doubly-linked consistency, slot accounting against the free
        list, ownership labels, and digram-index soundness/completeness.
        Intended for tests and the fuzz driver; raises
        :class:`AnalysisError` on violation.
        """
        nxt = self._nxt
        prv = self._prv
        key = self._key
        own = self._own
        total_slots = len(nxt)
        live: set[int] = set()
        seen: dict[tuple[int, int], tuple[int, int]] = {}
        adjacent: set[int] = set()
        refcounts: dict[int, int] = {rule_id: 0 for rule_id in self.rules}
        for rule_id, rule in self.rules.items():
            g = rule.guard
            if key[g] is not None:
                raise AnalysisError(f"R{rule_id} guard slot {g} has a digram key")
            if own[g] != rule_id:
                raise AnalysisError(f"R{rule_id} guard slot {g} owned by R{own[g]}")
            live.add(g)
            position = 0
            s = nxt[g]
            steps = 0
            while s != g:
                steps += 1
                if steps > total_slots:
                    raise AnalysisError(f"R{rule_id} body does not terminate")
                if s in live:
                    raise AnalysisError(f"slot {s} appears in two bodies")
                live.add(s)
                if nxt[prv[s]] != s or prv[nxt[s]] != s:
                    raise AnalysisError(f"R{rule_id} slot {s} has inconsistent links")
                if own[s] != rule_id:
                    raise AnalysisError(
                        f"R{rule_id} slot {s} carries owner R{own[s]}"
                    )
                k = key[s]
                if k is None:
                    raise AnalysisError(f"R{rule_id} body contains guard slot {s}")
                if k < 0:
                    child_id = -1 - k
                    if child_id not in self.rules:
                        raise AnalysisError(f"R{rule_id} references dead rule R{child_id}")
                    refcounts[child_id] += 1
                ns = nxt[s]
                nk = key[ns]
                if nk is not None:
                    digram = (k, nk)
                    adjacent.add(((k & _M) << 32) | (nk & _M))
                    prior = seen.get(digram)
                    if prior is not None and prior != (rule_id, position - 1):
                        raise AnalysisError(
                            f"digram {digram} occurs twice: {prior} and R{rule_id}"
                        )
                    seen[digram] = (rule_id, position)
                position += 1
                s = ns
        free = set(self._free)
        if len(free) != len(self._free):
            raise AnalysisError("free list contains duplicate slots")
        if free & live:
            raise AnalysisError(f"slots both live and free: {sorted(free & live)[:8]}")
        leaked = set(range(total_slots)) - live - free
        if leaked:
            raise AnalysisError(f"leaked slots (neither live nor free): {sorted(leaked)[:8]}")
        for packed, s in self._digrams.items():
            if s not in live:
                raise AnalysisError(f"digram index entry {_unpack(packed)} -> freed slot {s}")
            k = key[s]
            ns = nxt[s]
            nk = key[ns]
            if k is None or nk is None:
                raise AnalysisError(
                    f"digram index entry {_unpack(packed)} -> guard-adjacent slot {s}"
                )
            if ((k & _M) << 32) | (nk & _M) != packed:
                raise AnalysisError(
                    f"digram index entry {_unpack(packed)} points at digram ({k}, {nk})"
                )
        missing = adjacent - set(self._digrams)
        if missing:
            raise AnalysisError(
                f"digrams present in bodies but absent from the index: "
                f"{[_unpack(p) for p in sorted(missing)][:8]}"
            )
        for rule_id, count in refcounts.items():
            rule = self.rules[rule_id]
            if rule is self.start:
                continue
            if count < 2:
                raise AnalysisError(f"rule utility violated: R{rule_id} used {count} times")
            if count != rule.refcount:
                raise AnalysisError(
                    f"refcount drift on R{rule_id}: stored {rule.refcount}, actual {count}"
                )
