"""Incremental Sequitur grammar inference (Nevill-Manning & Witten).

Flat array-backed core; the original linked-object implementation is
retained as the differential reference in :mod:`repro.oracle.refsequitur`.
"""

from repro.sequitur.grammar import Rule
from repro.sequitur.sequitur import MAX_TERMINAL, Sequitur

__all__ = ["Sequitur", "Rule", "MAX_TERMINAL"]
