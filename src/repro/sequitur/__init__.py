"""Incremental Sequitur grammar inference (Nevill-Manning & Witten)."""

from repro.sequitur.grammar import Rule, Symbol
from repro.sequitur.sequitur import Sequitur

__all__ = ["Sequitur", "Rule", "Symbol"]
