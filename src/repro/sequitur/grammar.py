"""Grammar handles for the flat Sequitur engine.

Since the flat-core refactor the grammar's structure lives in parallel
integer arrays owned by :class:`~repro.sequitur.sequitur.Sequitur` (prev/
next links, digram keys, owner rule ids, a free list).  A :class:`Rule` is a
*handle* into that storage: it carries the rule id, the externally-mutable
refcount and the slot index of the rule's guard node, plus a backref to the
engine so the public ``rhs()`` view keeps working for downstream consumers
(the oracle's brute-force checker, ``to_text``).

Digram keys encode terminals as themselves and rule ids as negative
integers (``-1 - rule_id``), exactly as the original linked-object
implementation did — the linked reference now lives in
:mod:`repro.oracle.refsequitur` as the differential baseline.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Union

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sequitur.sequitur import Sequitur


class Rule:
    """Handle for one grammar rule; the body lives in the engine's arrays."""

    __slots__ = ("id", "refcount", "guard", "eng")

    def __init__(self, rule_id: int, guard: int, eng: "Sequitur") -> None:
        self.id = rule_id
        #: number of non-terminal symbols referring to this rule
        self.refcount = 0
        #: slot index of this rule's guard node in the engine's arrays
        self.guard = guard
        self.eng = eng

    def rhs(self) -> list[Union[int, "Rule"]]:
        """Body as a list of terminals and Rule references."""
        eng = self.eng
        nxt = eng._nxt
        key = eng._key
        rules = eng.rules
        out: list[Union[int, Rule]] = []
        g = self.guard
        s = nxt[g]
        while s != g:
            k = key[s]
            out.append(k if k >= 0 else rules[-1 - k])
            s = nxt[s]
        return out

    def rhs_length(self) -> int:
        """Number of symbols on the right-hand side."""
        eng = self.eng
        nxt = eng._nxt
        g = self.guard
        n = 0
        s = nxt[g]
        while s != g:
            n += 1
            s = nxt[s]
        return n

    def __reduce__(self):  # pragma: no cover - defensive
        # A handle is meaningless without its engine's arrays; grammars are
        # serialized as a whole (:meth:`Sequitur.__getstate__`).
        raise TypeError("Rule is not picklable on its own; pickle the Sequitur")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Rule(R{self.id}, refs={self.refcount})"
