"""Grammar objects for Sequitur: symbols (doubly-linked) and rules.

A rule's right-hand side is a circular doubly-linked list of
:class:`Symbol` nodes headed by a *guard* node.  Terminals are non-negative
integers; non-terminals hold a reference to their :class:`Rule`.  Digram keys
encode terminals as themselves and rule ids as negative integers, so a digram
is a plain ``(int, int)`` tuple.
"""

from __future__ import annotations

from typing import Iterator, Optional, Union


class Symbol:
    """One node in a rule body (or the rule's guard node)."""

    __slots__ = ("next", "prev", "terminal", "rule", "owner")

    def __init__(
        self,
        terminal: Optional[int] = None,
        rule: Optional["Rule"] = None,
        owner: Optional["Rule"] = None,
    ) -> None:
        self.next: Optional[Symbol] = None
        self.prev: Optional[Symbol] = None
        self.terminal = terminal
        self.rule = rule
        #: set only on guard nodes: the rule this guard heads
        self.owner = owner
        if rule is not None:
            rule.refcount += 1

    @property
    def is_guard(self) -> bool:
        return self.owner is not None

    @property
    def key(self) -> int:
        """Digram key: terminals map to themselves, rules to negative ids."""
        if self.rule is not None:
            return -1 - self.rule.id
        assert self.terminal is not None
        return self.terminal

    def value(self) -> Union[int, "Rule"]:
        """The payload: a terminal int or a Rule."""
        return self.rule if self.rule is not None else self.terminal  # type: ignore[return-value]

    def __reduce__(self):  # pragma: no cover - defensive
        # A symbol is one node of a circular linked list: default (recursive)
        # pickling would blow the stack on long rule bodies.  Symbols are only
        # ever serialized as part of their grammar, which flattens them
        # iteratively (:meth:`repro.sequitur.sequitur.Sequitur.__getstate__`).
        raise TypeError("Symbol is not picklable on its own; pickle the Sequitur")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.is_guard:
            return f"<guard R{self.owner.id}>"  # type: ignore[union-attr]
        if self.rule is not None:
            return f"<R{self.rule.id}>"
        return f"<{self.terminal}>"


class Rule:
    """A grammar rule; its body hangs off the guard node."""

    __slots__ = ("id", "refcount", "guard")

    def __init__(self, rule_id: int) -> None:
        self.id = rule_id
        #: number of non-terminal symbols referring to this rule
        self.refcount = 0
        self.guard = Symbol(owner=self)
        self.guard.next = self.guard
        self.guard.prev = self.guard

    def first(self) -> Symbol:
        assert self.guard.next is not None
        return self.guard.next

    def last(self) -> Symbol:
        assert self.guard.prev is not None
        return self.guard.prev

    @property
    def is_empty(self) -> bool:
        return self.guard.next is self.guard

    def symbols(self) -> Iterator[Symbol]:
        """Iterate the body symbols left to right (excluding the guard)."""
        node = self.guard.next
        while node is not self.guard:
            assert node is not None
            yield node
            node = node.next

    def rhs(self) -> list[Union[int, "Rule"]]:
        """Body as a list of terminals and Rule references."""
        return [sym.value() for sym in self.symbols()]

    def rhs_length(self) -> int:
        """Number of symbols on the right-hand side."""
        return sum(1 for _ in self.symbols())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Rule(R{self.id}, refs={self.refcount})"
