"""Structural validation of programs.

The validator catches the mistakes that otherwise surface as confusing
interpreter faults: dangling labels, out-of-range registers, calls to missing
procedures, arity mismatches, falling off the end of a procedure, and
duplicate pc identities (which would corrupt profiling).
"""

from __future__ import annotations

from repro.errors import IRError
from repro.ir.instructions import (
    Alloc,
    Alu,
    AluImm,
    Bnz,
    Bz,
    Call,
    Cmp,
    Const,
    Halt,
    Jmp,
    Load,
    Mov,
    Pc,
    Ret,
    Store,
)
from repro.ir.program import Procedure, Program


def _check_reg(proc: Procedure, reg: int, where: str) -> None:
    if not 0 <= reg < proc.num_regs:
        raise IRError(f"{proc.name}[{where}]: register {reg} out of range 0..{proc.num_regs - 1}")


def _check_label(proc: Procedure, label: str, where: str) -> None:
    if label not in proc.labels:
        raise IRError(f"{proc.name}[{where}]: undefined label {label!r}")


def validate_procedure(proc: Procedure) -> None:
    """Validate one procedure in isolation (labels, registers, termination)."""
    for label, index in proc.labels.items():
        if not 0 <= index <= len(proc.body):
            raise IRError(f"{proc.name}: label {label!r} points outside the body")
    if not proc.body:
        raise IRError(f"{proc.name}: empty body")
    for i, instr in enumerate(proc.body):
        where = str(i)
        if isinstance(instr, Const):
            _check_reg(proc, instr.dst, where)
        elif isinstance(instr, Mov):
            _check_reg(proc, instr.dst, where)
            _check_reg(proc, instr.src, where)
        elif isinstance(instr, (Alu, Cmp)):
            _check_reg(proc, instr.dst, where)
            _check_reg(proc, instr.a, where)
            _check_reg(proc, instr.b, where)
        elif isinstance(instr, AluImm):
            _check_reg(proc, instr.dst, where)
            _check_reg(proc, instr.a, where)
        elif isinstance(instr, Load):
            _check_reg(proc, instr.dst, where)
            _check_reg(proc, instr.base, where)
        elif isinstance(instr, Store):
            _check_reg(proc, instr.src, where)
            _check_reg(proc, instr.base, where)
        elif isinstance(instr, Jmp):
            _check_label(proc, instr.label, where)
        elif isinstance(instr, (Bz, Bnz)):
            _check_reg(proc, instr.cond, where)
            _check_label(proc, instr.label, where)
        elif isinstance(instr, Call):
            if instr.dst is not None:
                _check_reg(proc, instr.dst, where)
            for arg in instr.args:
                _check_reg(proc, arg, where)
        elif isinstance(instr, Ret):
            if instr.src is not None:
                _check_reg(proc, instr.src, where)
        elif isinstance(instr, Alloc):
            _check_reg(proc, instr.dst, where)
            _check_reg(proc, instr.size_reg, where)
    last = proc.body[-1]
    if not isinstance(last, (Ret, Halt, Jmp)):
        raise IRError(f"{proc.name}: control can fall off the end (last instr is {last.op})")


def validate_program(program: Program) -> None:
    """Validate all procedures plus cross-procedure properties."""
    seen_pcs: set[Pc] = set()
    for proc in program.procedures.values():
        validate_procedure(proc)
        for pc in proc.pcs():
            if pc in seen_pcs:
                raise IRError(f"duplicate pc identity {pc}")
            seen_pcs.add(pc)
        for i, instr in enumerate(proc.body):
            if isinstance(instr, Call):
                if instr.proc not in program.procedures:
                    raise IRError(f"{proc.name}[{i}]: call to undefined {instr.proc!r}")
                callee = program.procedures[instr.proc]
                if len(instr.args) != callee.num_params:
                    raise IRError(
                        f"{proc.name}[{i}]: {instr.proc!r} takes "
                        f"{callee.num_params} args, got {len(instr.args)}"
                    )
