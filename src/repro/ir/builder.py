"""A small assembler DSL for writing procedures by hand.

Workloads and tests author code through :class:`ProcedureBuilder` rather than
instantiating instruction objects directly.  Registers are named; the builder
assigns indices.  Memory operations receive their stable :class:`Pc` identity
here, numbered in emission order within the procedure.

Example::

    b = ProcedureBuilder("sum_list", params=("head",))
    total = b.reg("total")
    node = b.reg("node")
    b.const(total, 0)
    b.mov(node, b.param("head"))
    b.label("loop")
    b.bz(node, "done")
    value = b.load(None, node, 4)          # auto-allocates a register
    b.add(total, total, value)
    b.load(node, node, 0)                  # node = node->next
    b.jmp("loop")
    b.label("done")
    b.ret(total)
    proc = b.build()
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.errors import IRError
from repro.ir.instructions import (
    Alloc,
    Alu,
    AluImm,
    Bnz,
    Bz,
    Call,
    Cmp,
    Const,
    Halt,
    Instr,
    Jmp,
    Load,
    Mov,
    Nop,
    Pc,
    Ret,
    Store,
)
from repro.ir.program import Procedure, Program


class ProcedureBuilder:
    """Incrementally builds one :class:`~repro.ir.program.Procedure`."""

    def __init__(self, name: str, params: Sequence[str] = ()) -> None:
        self.name = name
        self._regs: dict[str, int] = {}
        self._num_params = len(params)
        for param in params:
            self._intern(param)
        self._body: list[Instr] = []
        self._labels: dict[str, int] = {}
        self._next_pc = 0
        self._next_temp = 0
        self._built = False

    # ------------------------------------------------------------------ regs

    def _intern(self, name: str) -> int:
        if name not in self._regs:
            self._regs[name] = len(self._regs)
        return self._regs[name]

    def reg(self, name: Optional[str] = None) -> int:
        """Return the register index for ``name``, allocating on first use."""
        if name is None:
            self._next_temp += 1
            name = f"%t{self._next_temp}"
        return self._intern(name)

    def param(self, name: str) -> int:
        """Register index of a declared parameter."""
        if name not in self._regs or self._regs[name] >= self._num_params:
            raise IRError(f"{self.name}: {name!r} is not a parameter")
        return self._regs[name]

    def _dst(self, dst: Optional[int]) -> int:
        return self.reg() if dst is None else dst

    # ------------------------------------------------------------- emission

    def _emit(self, instr: Instr) -> None:
        if self._built:
            raise IRError(f"{self.name}: builder already finalized")
        self._body.append(instr)

    def label(self, name: str) -> None:
        """Define ``name`` at the next instruction index."""
        if name in self._labels:
            raise IRError(f"{self.name}: duplicate label {name!r}")
        self._labels[name] = len(self._body)

    def const(self, dst: Optional[int], value: int) -> int:
        dst = self._dst(dst)
        self._emit(Const(dst, value))
        return dst

    def mov(self, dst: Optional[int], src: int) -> int:
        dst = self._dst(dst)
        self._emit(Mov(dst, src))
        return dst

    def alu(self, kind: str, dst: Optional[int], a: int, b: int) -> int:
        dst = self._dst(dst)
        self._emit(Alu(kind, dst, a, b))
        return dst

    def alui(self, kind: str, dst: Optional[int], a: int, imm: int) -> int:
        dst = self._dst(dst)
        self._emit(AluImm(kind, dst, a, imm))
        return dst

    def cmp(self, kind: str, dst: Optional[int], a: int, b: int) -> int:
        dst = self._dst(dst)
        self._emit(Cmp(kind, dst, a, b))
        return dst

    def load(self, dst: Optional[int], base: int, offset: int = 0) -> int:
        """Emit a data-reference load; assigns the next pc ordinal."""
        dst = self._dst(dst)
        self._emit(Load(dst, base, offset, Pc(self.name, self._next_pc)))
        self._next_pc += 1
        return dst

    def store(self, src: int, base: int, offset: int = 0) -> None:
        """Emit a data-reference store; assigns the next pc ordinal."""
        self._emit(Store(src, base, offset, Pc(self.name, self._next_pc)))
        self._next_pc += 1

    def jmp(self, label: str) -> None:
        self._emit(Jmp(label))

    def bz(self, cond: int, label: str) -> None:
        self._emit(Bz(cond, label))

    def bnz(self, cond: int, label: str) -> None:
        self._emit(Bnz(cond, label))

    def call(self, dst: Optional[int], proc: str, args: Sequence[int] = ()) -> Optional[int]:
        self._emit(Call(dst, proc, tuple(args)))
        return dst

    def ret(self, src: Optional[int] = None) -> None:
        self._emit(Ret(src))

    def alloc(self, dst: Optional[int], size_reg: int) -> int:
        dst = self._dst(dst)
        self._emit(Alloc(dst, size_reg))
        return dst

    def halt(self) -> None:
        self._emit(Halt())

    def nop(self) -> None:
        self._emit(Nop())

    # ------------------------------------------- convenience ALU / compares

    def add(self, dst: Optional[int], a: int, b: int) -> int:
        return self.alu("add", dst, a, b)

    def sub(self, dst: Optional[int], a: int, b: int) -> int:
        return self.alu("sub", dst, a, b)

    def mul(self, dst: Optional[int], a: int, b: int) -> int:
        return self.alu("mul", dst, a, b)

    def addi(self, dst: Optional[int], a: int, imm: int) -> int:
        return self.alui("add", dst, a, imm)

    def muli(self, dst: Optional[int], a: int, imm: int) -> int:
        return self.alui("mul", dst, a, imm)

    def modi(self, dst: Optional[int], a: int, imm: int) -> int:
        return self.alui("mod", dst, a, imm)

    def lt(self, dst: Optional[int], a: int, b: int) -> int:
        return self.cmp("lt", dst, a, b)

    def eq(self, dst: Optional[int], a: int, b: int) -> int:
        return self.cmp("eq", dst, a, b)

    def ne(self, dst: Optional[int], a: int, b: int) -> int:
        return self.cmp("ne", dst, a, b)

    # ---------------------------------------------------------------- build

    def build(self) -> Procedure:
        """Finalize and return the procedure (the builder becomes read-only)."""
        self._built = True
        return Procedure(
            name=self.name,
            num_params=self._num_params,
            num_regs=len(self._regs),
            body=list(self._body),
            labels=dict(self._labels),
        )


def build_program(procedures: Sequence[Procedure | ProcedureBuilder], entry: str) -> Program:
    """Assemble procedures (or still-open builders) into a validated program."""
    from repro.ir.validate import validate_program

    built = [p.build() if isinstance(p, ProcedureBuilder) else p for p in procedures]
    program = Program(built, entry)
    validate_program(program)
    return program
