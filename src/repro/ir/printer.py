"""Disassembler: renders procedures and programs as readable text.

Used by tests, examples, and debugging sessions; the output format is stable
enough to assert against in tests but is not a parseable surface syntax.
"""

from __future__ import annotations

from repro.ir.instructions import (
    Alloc,
    Alu,
    AluImm,
    Bnz,
    Bz,
    Call,
    Check,
    Cmp,
    Const,
    Halt,
    Instr,
    Jmp,
    Load,
    Mov,
    Nop,
    Prefetch,
    Ret,
    Store,
)
from repro.ir.program import Procedure, Program


def format_instr(instr: Instr) -> str:
    """One-line rendering of a single instruction."""
    if isinstance(instr, Const):
        return f"r{instr.dst} = {instr.value}"
    if isinstance(instr, Mov):
        return f"r{instr.dst} = r{instr.src}"
    if isinstance(instr, Alu):
        return f"r{instr.dst} = r{instr.a} {instr.kind} r{instr.b}"
    if isinstance(instr, AluImm):
        return f"r{instr.dst} = r{instr.a} {instr.kind} {instr.imm}"
    if isinstance(instr, Cmp):
        return f"r{instr.dst} = r{instr.a} {instr.kind} r{instr.b}"
    if isinstance(instr, Load):
        mark = " [traced]" if instr.traced else ""
        det = " [detect]" if instr.detect is not None else ""
        return f"r{instr.dst} = mem[r{instr.base}+{instr.offset}]  ; pc={instr.pc}{mark}{det}"
    if isinstance(instr, Store):
        mark = " [traced]" if instr.traced else ""
        det = " [detect]" if instr.detect is not None else ""
        return f"mem[r{instr.base}+{instr.offset}] = r{instr.src}  ; pc={instr.pc}{mark}{det}"
    if isinstance(instr, Jmp):
        return f"jmp {instr.label}"
    if isinstance(instr, Bz):
        return f"bz r{instr.cond}, {instr.label}"
    if isinstance(instr, Bnz):
        return f"bnz r{instr.cond}, {instr.label}"
    if isinstance(instr, Call):
        args = ", ".join(f"r{a}" for a in instr.args)
        dst = f"r{instr.dst} = " if instr.dst is not None else ""
        return f"{dst}call {instr.proc}({args})"
    if isinstance(instr, Ret):
        return "ret" if instr.src is None else f"ret r{instr.src}"
    if isinstance(instr, Alloc):
        return f"r{instr.dst} = alloc r{instr.size_reg}"
    if isinstance(instr, Halt):
        return "halt"
    if isinstance(instr, Check):
        return "check [backedge]" if instr.backedge else "check"
    if isinstance(instr, Prefetch):
        addrs = ", ".join(f"{a:#x}" for a in instr.addrs)
        return f"prefetch {addrs}"
    if isinstance(instr, Nop):
        return "nop"
    return repr(instr)


def format_procedure(proc: Procedure, instrumented: bool = False) -> str:
    """Multi-line rendering of a procedure body (optionally the traced copy)."""
    body = proc.instrumented_body if instrumented else proc.body
    if body is None:
        raise ValueError(f"{proc.name} has no instrumented body")
    by_index: dict[int, list[str]] = {}
    for label, index in proc.labels.items():
        by_index.setdefault(index, []).append(label)
    lines = [f"proc {proc.name}(params={proc.num_params}, regs={proc.num_regs}):"]
    for i, instr in enumerate(body):
        for label in sorted(by_index.get(i, ())):
            lines.append(f"{label}:")
        lines.append(f"  {i:4d}  {format_instr(instr)}")
    for label in sorted(by_index.get(len(body), ())):
        lines.append(f"{label}:")
    return "\n".join(lines)


def format_program(program: Program) -> str:
    """Render every procedure of a program."""
    parts = [format_procedure(program.procedures[name]) for name in sorted(program.procedures)]
    return "\n\n".join(parts)
