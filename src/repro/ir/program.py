"""Program and procedure containers.

A :class:`Procedure` owns a flat instruction list plus a label table.  After
the static editor (``repro.vulcan.static_edit``) has run, a procedure also
carries an ``instrumented_body``: a structurally identical copy whose memory
operations are marked ``traced`` (Figure 2's duplicated code).  ``CHECK``
instructions appear at the same indices in both bodies, which is what lets a
check transfer control between versions by index.

A :class:`Program` maps names to procedures and maintains the *patch table*
used by dynamic editing (Section 3.2): ``resolve`` follows the patch for new
calls, while frames that already entered the original keep executing it —
reproducing the paper's "return addresses still refer to the original
procedures" behaviour.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.errors import EditError, IRError
from repro.ir.instructions import Instr, Load, Pc, Store


class Procedure:
    """A named procedure: parameters, registers, instructions, labels."""

    def __init__(
        self,
        name: str,
        num_params: int,
        num_regs: int,
        body: list[Instr],
        labels: dict[str, int],
    ) -> None:
        if num_params > num_regs:
            raise IRError(f"{name}: {num_params} params but only {num_regs} registers")
        self.name = name
        self.num_params = num_params
        self.num_regs = num_regs
        self.body = body
        self.labels = labels
        #: duplicated, tracing version created by the static editor
        self.instrumented_body: Optional[list[Instr]] = None

    @property
    def is_instrumented(self) -> bool:
        """Whether the static editor has produced a dual-version body."""
        return self.instrumented_body is not None

    def memory_ops(self) -> Iterator[Load | Store]:
        """Iterate the memory instructions of the primary body, in order."""
        for instr in self.body:
            if isinstance(instr, (Load, Store)):
                yield instr

    def pcs(self) -> list[Pc]:
        """The stable pc identities of this procedure's memory operations."""
        return [instr.pc for instr in self.memory_ops()]

    def target(self, label: str) -> int:
        """Instruction index of ``label``."""
        try:
            return self.labels[label]
        except KeyError:
            raise IRError(f"{self.name}: unknown label {label!r}") from None

    def __repr__(self) -> str:
        return f"Procedure({self.name!r}, {len(self.body)} instrs)"


class Program:
    """A collection of procedures with an entry point and a patch table."""

    def __init__(self, procedures: list[Procedure], entry: str) -> None:
        self.procedures: dict[str, Procedure] = {}
        for proc in procedures:
            if proc.name in self.procedures:
                raise IRError(f"duplicate procedure name {proc.name!r}")
            self.procedures[proc.name] = proc
        if entry not in self.procedures:
            raise IRError(f"entry procedure {entry!r} not found")
        self.entry = entry
        self._patches: dict[str, Procedure] = {}

    def resolve(self, name: str) -> Procedure:
        """Procedure a *new* call to ``name`` lands in (follows patches)."""
        patched = self._patches.get(name)
        if patched is not None:
            return patched
        try:
            return self.procedures[name]
        except KeyError:
            raise IRError(f"call to undefined procedure {name!r}") from None

    def original(self, name: str) -> Procedure:
        """The unpatched procedure registered under ``name``."""
        return self.procedures[name]

    def patch(self, name: str, replacement: Procedure) -> None:
        """Redirect future calls of ``name`` to ``replacement`` (a jump patch)."""
        if name not in self.procedures:
            raise EditError(f"cannot patch unknown procedure {name!r}")
        self._patches[name] = replacement

    def unpatch(self, name: str) -> None:
        """Remove the patch for ``name`` (deoptimization)."""
        self._patches.pop(name, None)

    def unpatch_all(self) -> None:
        """Remove every patch (full deoptimization)."""
        self._patches.clear()

    @property
    def patched_names(self) -> set[str]:
        """Names currently redirected by the patch table."""
        return set(self._patches)

    def all_pcs(self) -> list[Pc]:
        """Stable pcs of every memory operation in the program."""
        pcs: list[Pc] = []
        for proc in self.procedures.values():
            pcs.extend(proc.pcs())
        return pcs

    def __repr__(self) -> str:
        return f"Program(entry={self.entry!r}, procs={sorted(self.procedures)})"
