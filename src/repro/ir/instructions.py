"""Instruction set of the simulated machine.

The ISA is a small register machine, rich enough to express the pointer-
chasing workloads the paper targets and the instrumentation its system
injects:

* arithmetic/compare over unlimited per-frame virtual registers,
* ``LOAD``/``STORE`` — the *data references* of Section 2 (each carries a
  stable ``pc`` identity that survives code duplication and patching),
* control flow (``JMP``/``BZ``/``BNZ``/``CALL``/``RET``),
* ``ALLOC`` — heap allocation,
* ``CHECK`` — the bursty-tracing check of Figure 2 (inserted by the static
  editor at procedure entries and loop back-edges),
* ``PREFETCH`` — a ``prefetcht0`` analogue taking absolute addresses, and
* a ``detect`` payload attached to loads/stores by the dynamic editor, which
  drives the prefix-matching DFSM of Section 3.

Program counters (``Pc``) are ``(procedure_name, ordinal)`` pairs handed out
by the builder; they identify a *source* memory operation independently of
where copies of it live after instrumentation.
"""

from __future__ import annotations

from typing import NamedTuple, Optional


class Pc(NamedTuple):
    """Stable identity of a memory instruction: procedure name + ordinal."""

    proc: str
    ordinal: int

    def __str__(self) -> str:
        return f"{self.proc}:{self.ordinal}"


# Binary ALU operators, shared by the Alu instruction and the interpreter.
ALU_OPS = ("add", "sub", "mul", "div", "mod", "and", "or", "xor", "shl", "shr")
CMP_OPS = ("lt", "le", "eq", "ne", "gt", "ge")


class Instr:
    """Base class for all instructions."""

    __slots__ = ()
    op: str = "?"

    def operands(self) -> tuple:
        """Operand tuple, used by the disassembler and structural equality."""
        return tuple(getattr(self, name) for name in self.__slots__)

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self.operands() == other.operands()  # type: ignore[union-attr]

    def __hash__(self) -> int:
        return hash((type(self), self.operands()))

    def __repr__(self) -> str:
        parts = ", ".join(f"{name}={getattr(self, name)!r}" for name in self.__slots__)
        return f"{type(self).__name__}({parts})"


class Const(Instr):
    """``dst = value``"""

    __slots__ = ("dst", "value")
    op = "const"

    def __init__(self, dst: int, value: int) -> None:
        self.dst = dst
        self.value = value


class Mov(Instr):
    """``dst = src``"""

    __slots__ = ("dst", "src")
    op = "mov"

    def __init__(self, dst: int, src: int) -> None:
        self.dst = dst
        self.src = src


class Alu(Instr):
    """``dst = a <kind> b`` for kind in :data:`ALU_OPS`."""

    __slots__ = ("kind", "dst", "a", "b")
    op = "alu"

    def __init__(self, kind: str, dst: int, a: int, b: int) -> None:
        if kind not in ALU_OPS:
            raise ValueError(f"unknown ALU op {kind!r}")
        self.kind = kind
        self.dst = dst
        self.a = a
        self.b = b


class AluImm(Instr):
    """``dst = a <kind> imm`` for kind in :data:`ALU_OPS`."""

    __slots__ = ("kind", "dst", "a", "imm")
    op = "alui"

    def __init__(self, kind: str, dst: int, a: int, imm: int) -> None:
        if kind not in ALU_OPS:
            raise ValueError(f"unknown ALU op {kind!r}")
        self.kind = kind
        self.dst = dst
        self.a = a
        self.imm = imm


class Cmp(Instr):
    """``dst = (a <kind> b) ? 1 : 0`` for kind in :data:`CMP_OPS`."""

    __slots__ = ("kind", "dst", "a", "b")
    op = "cmp"

    def __init__(self, kind: str, dst: int, a: int, b: int) -> None:
        if kind not in CMP_OPS:
            raise ValueError(f"unknown compare {kind!r}")
        self.kind = kind
        self.dst = dst
        self.a = a
        self.b = b


class Load(Instr):
    """``dst = mem[base + offset]`` — a data reference with identity ``pc``.

    ``detect`` optionally holds a :class:`~repro.dfsm.codegen.DetectHandler`
    attached by the dynamic editor; ``traced`` marks the copy living in the
    instrumented code version produced by the static editor.
    """

    __slots__ = ("dst", "base", "offset", "pc", "traced", "detect")
    op = "load"

    def __init__(
        self,
        dst: int,
        base: int,
        offset: int,
        pc: Pc,
        traced: bool = False,
        detect: Optional[object] = None,
    ) -> None:
        self.dst = dst
        self.base = base
        self.offset = offset
        self.pc = pc
        self.traced = traced
        self.detect = detect


class Store(Instr):
    """``mem[base + offset] = src`` — a data reference with identity ``pc``."""

    __slots__ = ("src", "base", "offset", "pc", "traced", "detect")
    op = "store"

    def __init__(
        self,
        src: int,
        base: int,
        offset: int,
        pc: Pc,
        traced: bool = False,
        detect: Optional[object] = None,
    ) -> None:
        self.src = src
        self.base = base
        self.offset = offset
        self.pc = pc
        self.traced = traced
        self.detect = detect


class Jmp(Instr):
    """Unconditional jump to ``label``."""

    __slots__ = ("label",)
    op = "jmp"

    def __init__(self, label: str) -> None:
        self.label = label


class Bz(Instr):
    """Branch to ``label`` when ``cond == 0``."""

    __slots__ = ("cond", "label")
    op = "bz"

    def __init__(self, cond: int, label: str) -> None:
        self.cond = cond
        self.label = label


class Bnz(Instr):
    """Branch to ``label`` when ``cond != 0``."""

    __slots__ = ("cond", "label")
    op = "bnz"

    def __init__(self, cond: int, label: str) -> None:
        self.cond = cond
        self.label = label


class Call(Instr):
    """``dst = proc(args...)``; ``dst`` may be None for a void call."""

    __slots__ = ("dst", "proc", "args")
    op = "call"

    def __init__(self, dst: Optional[int], proc: str, args: tuple[int, ...]) -> None:
        self.dst = dst
        self.proc = proc
        self.args = tuple(args)


class Ret(Instr):
    """Return ``src`` (or 0 when ``src`` is None) to the caller."""

    __slots__ = ("src",)
    op = "ret"

    def __init__(self, src: Optional[int] = None) -> None:
        self.src = src


class Alloc(Instr):
    """``dst = heap.allocate(mem size taken from register size_reg)``."""

    __slots__ = ("dst", "size_reg")
    op = "alloc"

    def __init__(self, dst: int, size_reg: int) -> None:
        self.dst = dst
        self.size_reg = size_reg


class Halt(Instr):
    """Stop the machine (valid only in the entry procedure)."""

    __slots__ = ()
    op = "halt"


class Check(Instr):
    """Bursty-tracing check point (Figure 2); ``backedge`` marks loop checks."""

    __slots__ = ("backedge",)
    op = "check"

    def __init__(self, backedge: bool = False) -> None:
        self.backedge = backedge


class Prefetch(Instr):
    """Issue prefetches for a tuple of absolute addresses (injected code)."""

    __slots__ = ("addrs",)
    op = "prefetch"

    def __init__(self, addrs: tuple[int, ...]) -> None:
        self.addrs = tuple(addrs)


class Nop(Instr):
    """No operation."""

    __slots__ = ()
    op = "nop"


#: Instructions that reference a branch target label.
BRANCHES = (Jmp, Bz, Bnz)
#: Instructions that are data references in the paper's sense.
MEMORY_OPS = (Load, Store)
