"""Dynamic binary editing: inject / remove detection-and-prefetch code.

This is the analogue of *dynamic* Vulcan (Section 3.2).  To optimize, for
every procedure containing a pc the DFSM wants to watch, the editor

1. makes a copy of the procedure,
2. attaches the detection handler to the matching memory operations of the
   copy (both code versions), and
3. "overwrites the first instruction of the original with an unconditional
   jump to the copy" — modelled by the program's patch table, which redirects
   *new* calls while existing activation records keep returning into the
   original (exactly the paper's stale-return-address caveat).

Deoptimization removes the jumps (clears the patch table).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.errors import EditError
from repro.ir.instructions import Instr, Load, Pc, Store
from repro.ir.program import Procedure, Program


@dataclass
class InjectionResult:
    """Summary of one dynamic injection (feeds Table 2)."""

    patched_procedures: list[str] = field(default_factory=list)
    instrumented_pcs: int = 0

    @property
    def num_procedures(self) -> int:
        return len(self.patched_procedures)


def _copy_with_handlers(body: list[Instr], handlers: Mapping[Pc, object]) -> tuple[list[Instr], int]:
    """Copy ``body`` attaching handlers to matching memory ops."""
    new_body: list[Instr] = []
    attached = 0
    for instr in body:
        if isinstance(instr, Load) and instr.pc in handlers:
            new_body.append(
                Load(instr.dst, instr.base, instr.offset, instr.pc, instr.traced, handlers[instr.pc])
            )
            attached += 1
        elif isinstance(instr, Store) and instr.pc in handlers:
            new_body.append(
                Store(instr.src, instr.base, instr.offset, instr.pc, instr.traced, handlers[instr.pc])
            )
            attached += 1
        else:
            new_body.append(instr)
    return new_body, attached


def optimized_copy(proc: Procedure, handlers: Mapping[Pc, object]) -> Procedure:
    """Copy ``proc`` with detection handlers attached to both versions."""
    body, attached = _copy_with_handlers(proc.body, handlers)
    if attached == 0:
        raise EditError(f"{proc.name}: no memory op matches any handler pc")
    copy = Procedure(
        name=proc.name,
        num_params=proc.num_params,
        num_regs=proc.num_regs,
        body=body,
        labels=dict(proc.labels),
    )
    if proc.instrumented_body is not None:
        copy.instrumented_body, _ = _copy_with_handlers(proc.instrumented_body, handlers)
    return copy


def inject_detection(program: Program, handlers: Mapping[Pc, object]) -> InjectionResult:
    """Patch every procedure containing a handled pc; return a summary.

    Injection always starts from the registered (original, unpatched)
    procedures, so repeated optimize/deoptimize cycles do not stack handlers.
    """
    result = InjectionResult()
    if not handlers:
        return result
    by_proc: dict[str, dict[Pc, object]] = {}
    for pc, handler in handlers.items():
        by_proc.setdefault(pc.proc, {})[pc] = handler
    for name, proc_handlers in sorted(by_proc.items()):
        proc = program.procedures.get(name)
        if proc is None:
            raise EditError(f"handler targets unknown procedure {name!r}")
        copy = optimized_copy(proc, proc_handlers)
        program.patch(name, copy)
        result.patched_procedures.append(name)
        result.instrumented_pcs += len(proc_handlers)
    return result


def deoptimize(program: Program) -> list[str]:
    """Remove all injected code (clear the patch table); return patched names."""
    names = sorted(program.patched_names)
    program.unpatch_all()
    return names


def deoptimize_procedures(program: Program, names: list[str]) -> list[str]:
    """Targeted rollback: remove the jump patches for ``names`` only.

    Unknown or unpatched names are ignored (rollback is idempotent — the
    watchdog may condemn two streams whose handlers share a procedure).
    Frames already executing a removed copy keep running it to completion,
    exactly as in full deoptimization: only *new* calls resolve to the
    original (the Section 3.2 stale-return-address behaviour).
    """
    removed = sorted(set(names) & program.patched_names)
    for name in removed:
        program.unpatch(name)
    return removed


def reinject_detection(
    program: Program, handlers: Mapping[Pc, object]
) -> tuple[InjectionResult, list[str]]:
    """Re-patch for a *reduced* handler set; targeted-rollback the rest.

    This is the editing half of per-stream deoptimization: procedures whose
    pcs no longer carry any handler get their jump patch removed
    (:func:`deoptimize_procedures`), while procedures still referenced are
    re-patched with fresh copies built from the registered originals (so
    repeated rollbacks never stack handlers).  Returns the injection summary
    and the names that were rolled back.
    """
    needed = {pc.proc for pc in handlers}
    stale = [name for name in program.patched_names if name not in needed]
    removed = deoptimize_procedures(program, stale)
    result = inject_detection(program, handlers)
    return result, removed
