"""Static binary editing: the bursty-tracing instrumentation of Figure 2.

Before execution, every procedure is rewritten so that:

* a ``CHECK`` executes at the procedure entry,
* a ``CHECK`` executes before every loop back-edge (a branch whose target
  label precedes the branch), and
* the whole body is duplicated into an *instrumented* version whose memory
  operations carry ``traced=True`` so the interpreter records them.

Both versions are structurally identical (same length, same label table,
checks at the same indices), which is what lets a check transfer control
between them by instruction index — the analogue of the original/duplicated
code of the Arnold–Ryder/bursty-tracing schemes.

This mirrors the paper's use of *static* Vulcan: "Before execution, static
Vulcan modifies the x86 binary of the benchmark to implement the bursty
tracing framework" (Section 4, Figure 10).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import EditError
from repro.ir.instructions import Bnz, Bz, Check, Instr, Jmp, Load, Store
from repro.ir.program import Procedure, Program


@dataclass(frozen=True)
class InstrumentationReport:
    """What the static editor did to one program."""

    procedures: int
    entry_checks: int
    backedge_checks: int

    @property
    def total_checks(self) -> int:
        return self.entry_checks + self.backedge_checks


def find_backedges(proc: Procedure) -> list[int]:
    """Indices of branch instructions that jump backwards (loop back-edges)."""
    backedges = []
    for i, instr in enumerate(proc.body):
        if isinstance(instr, (Jmp, Bz, Bnz)) and proc.labels.get(instr.label, len(proc.body)) <= i:
            backedges.append(i)
    return backedges


def _traced_copy(body: list[Instr]) -> list[Instr]:
    """Copy a body, recreating memory ops with ``traced=True``."""
    copy: list[Instr] = []
    for instr in body:
        if isinstance(instr, Load):
            copy.append(Load(instr.dst, instr.base, instr.offset, instr.pc, traced=True))
        elif isinstance(instr, Store):
            copy.append(Store(instr.src, instr.base, instr.offset, instr.pc, traced=True))
        else:
            copy.append(instr)
    return copy


def instrument_procedure(proc: Procedure) -> tuple[Procedure, int, int]:
    """Return an instrumented copy of ``proc`` plus (entry, backedge) counts.

    The input procedure is left untouched so unmodified baselines can still
    run it.
    """
    if proc.is_instrumented:
        raise EditError(f"{proc.name} is already instrumented")
    insert_at = sorted([0] + find_backedges(proc))
    new_body: list[Instr] = []
    index_shift: list[int] = []  # old index -> new index
    pending = list(insert_at)
    for old_index, instr in enumerate(proc.body):
        while pending and pending[0] == old_index:
            pending.pop(0)
            new_body.append(Check(backedge=old_index != 0))
        index_shift.append(len(new_body))
        new_body.append(instr)
    new_labels = {
        label: index_shift[index] if index < len(proc.body) else len(new_body)
        for label, index in proc.labels.items()
    }
    instrumented = Procedure(
        name=proc.name,
        num_params=proc.num_params,
        num_regs=proc.num_regs,
        body=new_body,
        labels=new_labels,
    )
    instrumented.instrumented_body = _traced_copy(new_body)
    backedge_checks = len(insert_at) - 1
    return instrumented, 1, backedge_checks


def instrument_program(program: Program) -> tuple[Program, InstrumentationReport]:
    """Instrument every procedure; return a new program plus a report."""
    procs: list[Procedure] = []
    entry_checks = 0
    backedge_checks = 0
    for proc in program.procedures.values():
        new_proc, entries, backs = instrument_procedure(proc)
        procs.append(new_proc)
        entry_checks += entries
        backedge_checks += backs
    report = InstrumentationReport(
        procedures=len(procs),
        entry_checks=entry_checks,
        backedge_checks=backedge_checks,
    )
    return Program(procs, program.entry), report
