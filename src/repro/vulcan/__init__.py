"""Binary-editing analogue of Vulcan: static instrumentation, dynamic patching."""

from repro.vulcan.dynamic_edit import (
    InjectionResult,
    deoptimize,
    inject_detection,
    optimized_copy,
)
from repro.vulcan.static_edit import (
    InstrumentationReport,
    find_backedges,
    instrument_procedure,
    instrument_program,
)

__all__ = [
    "InstrumentationReport",
    "find_backedges",
    "instrument_procedure",
    "instrument_program",
    "InjectionResult",
    "inject_detection",
    "optimized_copy",
    "deoptimize",
]
