"""The streaming trace sink: bounded-memory export behind the telemetry bus.

:class:`StreamingTraceSink` is an ordinary event sink (``handle(event)``)
that can sit next to the buffered sinks on any
:class:`~repro.telemetry.session.TelemetrySession` — it writes each record
into a sealed-chunk directory (:mod:`repro.obs.chunks`) and mirrors the
stream into an incremental Perfetto protobuf trace
(:mod:`repro.obs.perfetto`), flushing the protobuf sidecar at exactly the
chunk-seal boundaries so both artifacts share durability points.  Memory
held is one open chunk buffer, regardless of run length.

Because the sink serializes with the same ``to_record`` + compact-JSON
encoding as :class:`~repro.telemetry.sinks.JsonlSink`, the concatenation
of the sealed chunks is byte-identical to the buffered JSONL log of the
same session, and a merged chunk directory renders byte-identical Chrome
trace JSON — the ``obs`` verify section pins both on the golden grid.

Like ``JsonlSink``, every live streaming sink registers with the
interrupt-flush hooks, so SIGTERM/atexit seals the open buffer before the
process dies; SIGKILL loses at most that buffer (the crash-tolerance
contract lives in :mod:`repro.obs.chunks`).
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Optional, Sequence, Union

from repro.obs.chunks import DEFAULT_MAX_BYTES, ChunkWriter
from repro.obs.perfetto import PerfettoWriter
from repro.telemetry.events import Event
from repro.telemetry.sinks import _install_flush_hooks, _LIVE_SINKS

#: Perfetto sidecar file name inside a chunk directory.
PFTRACE_NAME = "trace.pftrace"


class StreamingTraceSink:
    """Event sink streaming into a chunk directory (+ Perfetto sidecar)."""

    def __init__(
        self,
        root: Union[str, os.PathLike],
        max_bytes: int = DEFAULT_MAX_BYTES,
        max_records: Optional[int] = None,
        perfetto: bool = True,
    ) -> None:
        self.root = Path(root)
        self.writer = ChunkWriter(self.root, max_bytes=max_bytes, max_records=max_records)
        self.perfetto: Optional[PerfettoWriter] = (
            PerfettoWriter(self.root / PFTRACE_NAME) if perfetto else None
        )
        _install_flush_hooks()
        _LIVE_SINKS.add(self)

    def handle(self, event: Event) -> None:
        sealed = self.writer.append(event.to_record())
        if self.perfetto is not None:
            self.perfetto.handle(event)
            if sealed is not None:
                self.perfetto.flush()

    def note_run_summary(self, doc: dict) -> None:
        """Record one finished run's summary (attribution, per-proc rows)."""
        self.writer.note_summary(doc)
        if self.perfetto is not None:
            by_proc = doc.get("by_proc")
            if by_proc:
                self.perfetto.add_proc_tracks(
                    f"{doc.get('workload', '?')}/{doc.get('level', '?')}", by_proc
                )
            self.perfetto.flush()

    def flush(self) -> None:
        """Seal the open buffer durably (SIGTERM/atexit hook)."""
        self.writer.flush()
        if self.perfetto is not None:
            self.perfetto.flush()

    def close(self) -> None:
        self.writer.close()
        if self.perfetto is not None:
            self.perfetto.close()


# ------------------------------------------------------------ run summaries


def run_summary_doc(
    workload: str, level: str, stats, machine, proc_recorder=None
) -> dict:
    """One run's self-describing summary for the chunk manifest / trace JSON.

    Built from the same inputs both the streamed and the buffered exporter
    hold, so the two paths produce identical documents — a requirement of
    the byte-identity verify check.
    """
    from repro.tracing.attribution import CycleAttribution, ProcAttribution

    attribution = CycleAttribution.from_run(stats, machine)
    doc = {
        "workload": workload,
        "level": level,
        "cycles": stats.cycles,
        "attribution": attribution.to_dict(),
    }
    if proc_recorder is not None:
        doc["by_proc"] = ProcAttribution.from_recorder(proc_recorder, machine).to_dict()
    return doc


# --------------------------------------------------------------- run splits


def split_runs(events: Sequence[Event]) -> list[tuple[str, list[Event]]]:
    """Split a merged event stream back into per-run ``(label, events)``.

    ``RunBegin`` events (emitted by every session before anything else)
    delimit runs; the delimiter stays in its run's stream, so splitting a
    merged chunk load reproduces exactly the per-run event lists a buffered
    per-run sink would have collected.
    """
    runs: list[tuple[str, list[Event]]] = []
    current: Optional[list[Event]] = None
    for event in events:
        if event.kind == "RunBegin":
            current = [event]
            runs.append((f"{event.workload}/{event.level}", current))
            continue
        if current is None:
            current = []
            runs.append(("?", current))
        current.append(event)
    return runs
