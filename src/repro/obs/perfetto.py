"""Streaming Perfetto protobuf export: incremental TracePacket emission.

The chunked JSONL format (:mod:`repro.obs.chunks`) is the source of truth;
this sidecar renders the same event stream as a binary perfetto ``Trace``
(`ui.perfetto.dev <https://ui.perfetto.dev>`_ opens it natively, no JSON
conversion) written *incrementally* — packets buffer in memory and are
appended with flush + fsync every time the chunk writer seals, so a
SIGKILLed run leaves a loadable trace prefix with at most the final append
torn off.

No protobuf dependency exists in this environment, so the wire format is
hand-encoded.  Only three message types are needed, all shallow:

``Trace``            repeated ``TracePacket packet = 1``
``TracePacket``      ``timestamp = 8`` (varint), ``track_event = 11``,
                     ``trusted_packet_sequence_id = 10`` (varint),
                     ``track_descriptor = 60``
``TrackDescriptor``  ``uuid = 1`` (varint), ``name = 2`` (string)
``TrackEvent``       ``type = 9`` (varint: 1=SLICE_BEGIN, 2=SLICE_END,
                     3=INSTANT), ``track_uuid = 11`` (varint),
                     ``name = 23`` (string)

Field numbers are fixed by the public perfetto schema; varint/length-
delimited encoding is the standard protobuf wire format.  One simulated
cycle maps to one nanosecond of trace time.

Track layout mirrors the Chrome exporter's virtual threads (run / epochs /
analysis / bursts / instants), one set per run, prefixed with the run
label; :meth:`PerfettoWriter.add_proc_tracks` adds one track per procedure
at run end carrying the per-procedure cycle attribution as named slices —
the procedure dimension of the 7-category split, visible directly in the
track list.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Union

from repro.telemetry.events import Event

_TYPE_SLICE_BEGIN = 1
_TYPE_SLICE_END = 2
_TYPE_INSTANT = 3

#: Span category -> virtual track, matching the Chrome exporter's layout.
_SPAN_TRACKS = {"run": "run", "epoch": "optimizer epochs", "analysis": "analysis/injection/watchdog",
                "injection": "analysis/injection/watchdog", "watchdog": "analysis/injection/watchdog"}
_TRACK_BURST = "profiling bursts"
_TRACK_INSTANT = "events"


def _varint(value: int) -> bytes:
    out = bytearray()
    while True:
        bits = value & 0x7F
        value >>= 7
        if value:
            out.append(bits | 0x80)
        else:
            out.append(bits)
            return bytes(out)


def _key(field: int, wire_type: int) -> bytes:
    return _varint((field << 3) | wire_type)


def _field_varint(field: int, value: int) -> bytes:
    return _key(field, 0) + _varint(value)


def _field_bytes(field: int, payload: bytes) -> bytes:
    return _key(field, 2) + _varint(len(payload)) + payload


def _field_string(field: int, text: str) -> bytes:
    return _field_bytes(field, text.encode("utf-8"))


def track_descriptor_packet(uuid: int, name: str, sequence_id: int = 1) -> bytes:
    descriptor = _field_varint(1, uuid) + _field_string(2, name)
    packet = _field_varint(10, sequence_id) + _field_bytes(60, descriptor)
    return _field_bytes(1, packet)


def track_event_packet(
    ts: int, track_uuid: int, event_type: int, name: str = "", sequence_id: int = 1
) -> bytes:
    event = _field_varint(9, event_type) + _field_varint(11, track_uuid)
    if name:
        event += _field_string(23, name)
    packet = _field_varint(8, ts) + _field_varint(10, sequence_id) + _field_bytes(11, event)
    return _field_bytes(1, packet)


class PerfettoWriter:
    """Incremental perfetto trace writer over the telemetry event stream.

    Feed it events with :meth:`handle`; call :meth:`flush` at chunk-seal
    boundaries (durability points) and :meth:`close` at end of run.  Track
    uuids are dense positive integers assigned on first use, one namespace
    per writer.
    """

    def __init__(self, path: Union[str, os.PathLike]) -> None:
        self.path = Path(path)
        self._fh = open(self.path, "wb")
        self._pending = bytearray()
        self._tracks: dict[str, int] = {}
        self._open_spans: dict[int, tuple[int, str]] = {}
        self._burst_track: int = 0
        self._run_label = ""
        self.packets = 0

    # -------------------------------------------------------------- tracks

    def _track(self, name: str) -> int:
        uuid = self._tracks.get(name)
        if uuid is None:
            uuid = len(self._tracks) + 1
            self._tracks[name] = uuid
            self._pending += track_descriptor_packet(uuid, name)
            self.packets += 1
        return uuid

    def _labeled(self, track: str) -> str:
        return f"{self._run_label}: {track}" if self._run_label else track

    # -------------------------------------------------------------- events

    def handle(self, event: Event) -> None:
        kind = event.kind
        ts = event.cycle
        if kind == "RunBegin":
            self._run_label = f"{event.workload}/{event.level}"
            return
        if kind == "SpanBegin":
            track = self._track(self._labeled(_SPAN_TRACKS.get(event.category, "analysis/injection/watchdog")))
            self._open_spans[event.span_id] = (track, event.name)
            self._emit(track_event_packet(ts, track, _TYPE_SLICE_BEGIN, event.name))
        elif kind == "SpanEnd":
            opened = self._open_spans.pop(event.span_id, None)
            if opened is not None:
                self._emit(track_event_packet(ts, opened[0], _TYPE_SLICE_END))
        elif kind == "BurstBegin":
            track = self._track(self._labeled(_TRACK_BURST))
            self._burst_track = track
            self._emit(track_event_packet(ts, track, _TYPE_SLICE_BEGIN, "burst"))
        elif kind == "BurstEnd":
            if self._burst_track:
                self._emit(track_event_packet(ts, self._burst_track, _TYPE_SLICE_END))
                self._burst_track = 0
        else:
            track = self._track(self._labeled(_TRACK_INSTANT))
            self._emit(track_event_packet(ts, track, _TYPE_INSTANT, kind))

    def add_proc_tracks(self, label: str, by_proc: dict) -> None:
        """One track per procedure, its 7-category split as named slices.

        ``by_proc`` maps procedure name -> {category: cycles}; each category
        becomes a zero-based slice of its cycle length, so relative bar
        lengths inside a ``proc:`` track read as the attribution split.
        """
        for proc_name in sorted(by_proc):
            categories = by_proc[proc_name]
            spent = sum(int(v) for k, v in categories.items() if k != "total")
            track = self._track(f"{label}: proc {proc_name} ({spent} cycles)")
            at = 0
            for category, cycles in categories.items():
                if category == "total" or not cycles:
                    continue
                self._emit(track_event_packet(at, track, _TYPE_SLICE_BEGIN, category))
                at += int(cycles)
                self._emit(track_event_packet(at, track, _TYPE_SLICE_END))

    def _emit(self, packet: bytes) -> None:
        self._pending += packet
        self.packets += 1

    # ----------------------------------------------------------- lifecycle

    def flush(self) -> None:
        """Append pending packets durably (the chunk-seal boundary hook)."""
        if self._fh.closed:
            return
        if self._pending:
            self._fh.write(bytes(self._pending))
            self._pending.clear()
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def close(self) -> None:
        if self._fh.closed:
            return
        self.flush()
        self._fh.close()


def parse_packet_count(data: bytes) -> int:
    """Count well-formed top-level packets in a perfetto trace blob.

    A torn tail (partial final packet) ends the count without raising —
    the validation used by tests and the CI streaming job.
    """
    count = 0
    offset = 0
    length = len(data)
    while offset < length:
        # field key varint
        key = 0
        shift = 0
        while True:
            if offset >= length:
                return count
            byte = data[offset]
            offset += 1
            key |= (byte & 0x7F) << shift
            shift += 7
            if not byte & 0x80:
                break
        if key != (1 << 3 | 2):  # only `packet = 1` may appear at top level
            return count
        size = 0
        shift = 0
        while True:
            if offset >= length:
                return count
            byte = data[offset]
            offset += 1
            size |= (byte & 0x7F) << shift
            shift += 7
            if not byte & 0x80:
                break
        if offset + size > length:
            return count
        offset += size
        count += 1
    return count
