"""Sealed, size-bounded, digest-tagged event chunks: the streaming trace format.

A chunk directory replaces the buffer-then-dump monolithic trace for long
runs.  Records (serialized :meth:`~repro.telemetry.events.Event.to_record`
dicts) accumulate in a bounded in-memory buffer; when the buffer reaches
``max_bytes`` (or ``max_records``) it is *sealed*:

1. the buffered lines are written to ``chunk-NNNNNNNN.jsonl.part``,
   flushed and fsync'd,
2. the ``.part`` file is renamed to ``chunk-NNNNNNNN.jsonl`` (sealing is
   atomic: a chunk either exists complete or not at all),
3. a digest-tagged line naming the chunk — its sequence number, record
   count, byte size and content sha256 — is appended (flush + fsync) to
   ``MANIFEST.jsonl``, in exactly the per-line integrity scheme of
   :mod:`repro.durability.journal`.

Crash tolerance is therefore by construction, not by recovery code: a
SIGKILL at any instant loses at most the open buffer (bounded by
``max_bytes``) plus one torn manifest line, and :func:`load_chunks`
validates line digests and chunk content hashes in order, stopping at the
first invalid entry — the surviving prefix is always a valid trace, torn
or tampered suffixes are *dropped and counted*, never silently accepted,
and corruption never raises.

The concatenated sealed chunks are byte-identical to the JSONL log a
buffered :class:`~repro.telemetry.sinks.JsonlSink` would have produced for
the same events (same serialization, same order) — the property the
``obs`` verify section pins on the golden grid.

``summary`` manifest records carry per-run summary documents (cycle
attribution, per-procedure rows) so chunk directories are self-describing:
``repro-bench explain --from <dir>`` renders them without re-simulating.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Union

from repro.errors import ConfigError
from repro.telemetry.events import Event, from_record

#: Chunk/manifest format version; foreign versions stop the loader's prefix.
CHUNK_FORMAT = 1
#: Manifest file name inside a chunk directory.
MANIFEST_NAME = "MANIFEST.jsonl"
#: Default seal threshold: buffered bytes before a chunk is sealed.
DEFAULT_MAX_BYTES = 1 << 20


def _canonical(body: dict) -> str:
    return json.dumps(body, sort_keys=True, separators=(",", ":"))


def _tagged_line(body: dict) -> str:
    body = {"format": CHUNK_FORMAT, **body}
    canonical = _canonical(body)
    return json.dumps(
        {"sha256": hashlib.sha256(canonical.encode()).hexdigest(), "body": body},
        sort_keys=True,
        separators=(",", ":"),
    )


def _validate_line(line: str) -> Optional[dict]:
    """Digest-check one manifest line; the body dict, or None if unreadable."""
    try:
        record = json.loads(line)
    except json.JSONDecodeError:
        return None
    if not isinstance(record, dict):
        return None
    body = record.get("body")
    digest = record.get("sha256")
    if not isinstance(body, dict) or not isinstance(digest, str):
        return None
    if hashlib.sha256(_canonical(body).encode()).hexdigest() != digest:
        return None
    if body.get("format") != CHUNK_FORMAT:
        return None
    return body


def chunk_name(seq: int) -> str:
    return f"chunk-{seq:08d}.jsonl"


class ChunkWriter:
    """Streams records into a chunk directory with bounded memory.

    Append-once: a directory that already holds a manifest is refused —
    resumed or repeated runs stream into a fresh directory, so a chunk
    directory is always the record of exactly one execution.
    """

    def __init__(
        self,
        root: Union[str, os.PathLike],
        max_bytes: int = DEFAULT_MAX_BYTES,
        max_records: Optional[int] = None,
    ) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._manifest_path = self.root / MANIFEST_NAME
        if self._manifest_path.exists():
            raise ConfigError(
                f"chunk directory {self.root} already holds a manifest; "
                "stream each run into a fresh directory"
            )
        self.max_bytes = max(1, max_bytes)
        self.max_records = max_records
        self._buffer: list[str] = []
        self._buffered_bytes = 0
        self._seq = 0
        self.records_total = 0
        self._manifest = open(self._manifest_path, "w", encoding="utf-8")
        self._append_manifest({"type": "begin"})
        self._closed = False

    # ------------------------------------------------------------- writing

    def append(self, record: dict) -> Optional[str]:
        """Buffer one record; seals a chunk when the buffer fills.

        Returns the sealed chunk's file name when this append crossed the
        threshold, else None — the hook sidecar writers (Perfetto) use to
        flush at exactly the chunk boundaries.
        """
        line = json.dumps(record, separators=(",", ":")) + "\n"
        self._buffer.append(line)
        self._buffered_bytes += len(line)
        self.records_total += 1
        if self._buffered_bytes >= self.max_bytes or (
            self.max_records is not None and len(self._buffer) >= self.max_records
        ):
            return self.seal()
        return None

    def seal(self) -> Optional[str]:
        """Seal the open buffer into a durable chunk; its file name, or None.

        fsync-then-rename: once the manifest line for a chunk exists, the
        chunk's bytes are already durable, so the loader may trust any
        manifest entry whose content hash matches.
        """
        if not self._buffer:
            return None
        data = "".join(self._buffer).encode("utf-8")
        name = chunk_name(self._seq)
        part = self.root / (name + ".part")
        with open(part, "wb") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(part, self.root / name)
        self._append_manifest(
            {
                "type": "chunk",
                "seq": self._seq,
                "file": name,
                "records": len(self._buffer),
                "bytes": len(data),
                "sha256": hashlib.sha256(data).hexdigest(),
            }
        )
        self._seq += 1
        self._buffer.clear()
        self._buffered_bytes = 0
        return name

    def note_summary(self, doc: dict) -> None:
        """Record one run's summary document in the manifest.

        Sealed first, so the summary always refers to fully-durable events.
        """
        self.seal()
        self._append_manifest({"type": "summary", "doc": doc})

    def flush(self) -> None:
        """Interrupt-safety hook (SIGTERM/atexit): seal whatever is buffered."""
        if not self._closed:
            self.seal()

    def close(self) -> None:
        """Seal the tail and append the ``end`` record; idempotent."""
        if self._closed:
            return
        self.seal()
        self._append_manifest(
            {"type": "end", "chunks": self._seq, "records": self.records_total}
        )
        self._manifest.close()
        self._closed = True

    def _append_manifest(self, body: dict) -> None:
        self._manifest.write(_tagged_line(body) + "\n")
        self._manifest.flush()
        os.fsync(self._manifest.fileno())


# ---------------------------------------------------------------- loading


@dataclass
class ChunkLoad:
    """What :func:`load_chunks` recovered from a chunk directory."""

    records: list[dict] = field(default_factory=list)
    summaries: list[dict] = field(default_factory=list)
    #: sealed chunks whose manifest line and content hash both validated
    chunks: int = 0
    #: manifest entries (chunk or otherwise) dropped as torn/tampered/missing
    dropped: int = 0
    #: human-readable reasons, one per dropped entry (first failure stops
    #: the prefix, so at most one chunk reason plus the torn-tail note)
    notes: list[str] = field(default_factory=list)
    #: the writer's ``end`` record was reached with nothing dropped
    complete: bool = False

    @property
    def ok(self) -> bool:
        return self.dropped == 0


def load_chunks(root: Union[str, os.PathLike]) -> ChunkLoad:
    """Load the valid prefix of a chunk directory; never raises on corruption.

    Validation is strict and ordered: manifest line digests, chunk sequence
    numbers, chunk byte sizes and content sha256 hashes must all match.  The
    first failure ends the prefix — everything before it loads, everything
    after it (including any torn ``.part`` file) is dropped and counted in
    ``dropped``/``notes``.  A directory without a manifest is a usage error
    and raises :class:`~repro.errors.ConfigError` (nothing was ever written
    there, so there is no "valid prefix" to return).
    """
    root = Path(root)
    manifest_path = root / MANIFEST_NAME
    if not manifest_path.is_file():
        raise ConfigError(f"no {MANIFEST_NAME} in {root}: not a chunk directory")
    load = ChunkLoad()
    expected_seq = 0
    with open(manifest_path, "r", encoding="utf-8", errors="replace") as fh:
        lines = fh.read().splitlines()
    ended = False
    for line_no, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        body = _validate_line(line)
        if body is None:
            load.dropped += 1
            load.notes.append(f"manifest line {line_no}: torn or tampered; prefix ends")
            break
        kind = body.get("type")
        if kind == "begin":
            continue
        if kind == "summary":
            doc = body.get("doc")
            if isinstance(doc, dict):
                load.summaries.append(doc)
            continue
        if kind == "end":
            ended = True
            break
        if kind != "chunk":
            load.dropped += 1
            load.notes.append(f"manifest line {line_no}: unknown type {kind!r}; prefix ends")
            break
        records = _load_chunk_entry(root, body, expected_seq, load, line_no)
        if records is None:
            break
        load.records.extend(records)
        load.chunks += 1
        expected_seq += 1
    load.complete = ended and load.dropped == 0
    return load


def _load_chunk_entry(
    root: Path, body: dict, expected_seq: int, load: ChunkLoad, line_no: int
) -> Optional[list[dict]]:
    """Validate and read one manifest-listed chunk; None ends the prefix."""

    def drop(reason: str) -> None:
        load.dropped += 1
        load.notes.append(f"manifest line {line_no}: {reason}; prefix ends")

    name = body.get("file")
    if body.get("seq") != expected_seq or not isinstance(name, str):
        drop(f"chunk out of sequence (want seq {expected_seq})")
        return None
    path = root / name
    if os.path.basename(name) != name or not path.is_file():
        drop(f"chunk file {name!r} missing")
        return None
    data = path.read_bytes()
    if len(data) != body.get("bytes"):
        drop(f"chunk {name} is {len(data)} bytes, manifest says {body.get('bytes')}")
        return None
    if hashlib.sha256(data).hexdigest() != body.get("sha256"):
        drop(f"chunk {name} content hash mismatch")
        return None
    records: list[dict] = []
    try:
        for raw in data.decode("utf-8").splitlines():
            if not raw:
                continue
            record = json.loads(raw)
            if not isinstance(record, dict):
                raise ConfigError("chunk record is not an object")
            records.append(record)
    except (json.JSONDecodeError, UnicodeDecodeError, ConfigError) as exc:
        # Digest-valid but unparseable means the writer itself misbehaved;
        # still a dropped suffix, never an exception to the caller.
        drop(f"chunk {name} undecodable despite matching hash: {exc}")
        return None
    if len(records) != body.get("records"):
        drop(f"chunk {name} holds {len(records)} records, manifest says {body.get('records')}")
        return None
    return records


def load_chunk_events(root: Union[str, os.PathLike]) -> tuple[list[Event], ChunkLoad]:
    """Typed-event view of :func:`load_chunks` (records round-trip exactly).

    A digest-valid record that still fails event reconstruction (a foreign
    writer, a renamed kind) degrades to a visible
    :class:`~repro.telemetry.events.RecordSkipped` in sequence, exactly like
    :func:`~repro.telemetry.export.load_events_jsonl`.
    """
    from repro.telemetry.events import RecordSkipped

    load = load_chunks(root)
    events: list[Event] = []
    for index, record in enumerate(load.records):
        try:
            events.append(from_record(record))
        except ConfigError as exc:
            events.append(
                RecordSkipped(
                    cycle=0,
                    line_no=index + 1,
                    reason=str(exc),
                    snippet=json.dumps(record, separators=(",", ":"))[:120],
                )
            )
    return events, load


def is_chunk_dir(path: Union[str, os.PathLike]) -> bool:
    """True when ``path`` is a directory holding a chunk manifest."""
    return (Path(path) / MANIFEST_NAME).is_file()
