"""repro.obs — streaming observability for long runs.

Three surfaces, all observer-effect-zero (nothing here charges simulated
cycles or perturbs the architectural state):

- :mod:`repro.obs.chunks` / :mod:`repro.obs.stream`: bounded-memory trace
  export in sealed, digest-tagged chunks with a streaming Perfetto
  protobuf sidecar (:mod:`repro.obs.perfetto`).  A SIGKILLed run leaves a
  valid trace prefix; the surviving chunks concatenate byte-identically to
  the buffered exporter's log.
- :mod:`repro.obs.status`: the atomic ``status.json`` progress file the
  supervised runner maintains, plus its reader/renderer for
  ``repro-bench status``.
- Per-procedure cycle attribution lives in
  :mod:`repro.tracing.attribution` (:class:`ProcAttrRecorder`); the
  streaming sink carries its rows in run-summary manifest records.
"""

from repro.obs.chunks import (
    CHUNK_FORMAT,
    DEFAULT_MAX_BYTES,
    MANIFEST_NAME,
    ChunkLoad,
    ChunkWriter,
    chunk_name,
    is_chunk_dir,
    load_chunk_events,
    load_chunks,
)
from repro.obs.perfetto import PerfettoWriter, parse_packet_count
from repro.obs.status import (
    STATUS_FORMAT,
    STATUS_NAME,
    StatusWriter,
    read_status,
    render_status,
)
from repro.obs.stream import (
    PFTRACE_NAME,
    StreamingTraceSink,
    run_summary_doc,
    split_runs,
)

__all__ = [
    "CHUNK_FORMAT",
    "DEFAULT_MAX_BYTES",
    "MANIFEST_NAME",
    "ChunkLoad",
    "ChunkWriter",
    "chunk_name",
    "is_chunk_dir",
    "load_chunk_events",
    "load_chunks",
    "PerfettoWriter",
    "parse_packet_count",
    "STATUS_FORMAT",
    "STATUS_NAME",
    "StatusWriter",
    "read_status",
    "render_status",
    "PFTRACE_NAME",
    "StreamingTraceSink",
    "run_summary_doc",
    "split_runs",
]
