"""Live status for long runs: a machine-readable progress file + renderer.

The supervised runner (:mod:`repro.durability.supervisor`) throttle-writes
``status.json`` into the journal root as it polls worker heartbeats: per-task
state and progress counters (instructions, cycles, optimizer epoch,
cache-hit and prefetch-accuracy EWMAs), aggregate counts, and an ETA
extrapolated from completed-task durations.  Writes are atomic
(temp-file + ``os.replace``), so a reader never observes a torn document —
``repro-bench status <run-dir>`` works identically on a run that is still
executing, one that finished, and one whose process was SIGKILLed (the
file's age tells the three apart).

Nothing here touches the simulation: status is derived entirely from
supervisor-side bookkeeping, so the observer-effect-zero invariant is
untouched by construction.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Optional, Union

from repro.errors import ConfigError

#: Status document format version.
STATUS_FORMAT = 1
#: File name written into the journal root.
STATUS_NAME = "status.json"
#: A non-done status older than this many seconds renders as "likely dead".
STALE_AFTER_S = 30.0


class StatusWriter:
    """Throttled atomic writer for the ``status.json`` progress file."""

    def __init__(self, root: Union[str, os.PathLike], min_interval: float = 1.0) -> None:
        self.path = Path(root) / STATUS_NAME
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.min_interval = min_interval
        self._last_write = 0.0

    def write(self, doc: dict, force: bool = False) -> bool:
        """Write ``doc`` if the throttle allows (or ``force``); True if written."""
        now = time.monotonic()
        if not force and now - self._last_write < self.min_interval:
            return False
        self._last_write = now
        doc = {"format": STATUS_FORMAT, "updated_at": time.time(), **doc}
        tmp = self.path.with_name(self.path.name + ".tmp")
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, sort_keys=True, separators=(",", ":"))
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.path)
        return True


def read_status(run_dir: Union[str, os.PathLike]) -> dict:
    """Load the status document from a run directory (or a direct file path)."""
    path = Path(run_dir)
    if path.is_dir():
        path = path / STATUS_NAME
    if not path.is_file():
        raise ConfigError(f"no {STATUS_NAME} at {path}: not a supervised run directory")
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if not isinstance(doc, dict) or doc.get("format") != STATUS_FORMAT:
        raise ConfigError(f"{path} is not a format-{STATUS_FORMAT} status document")
    return doc


def _fmt_count(n: float) -> str:
    n = float(n)
    for scale, suffix in ((1e9, "G"), (1e6, "M"), (1e3, "k")):
        if n >= scale:
            return f"{n / scale:.1f}{suffix}"
    return f"{int(n)}"


def _fmt_secs(s: float) -> str:
    s = max(0.0, float(s))
    if s >= 3600:
        return f"{s / 3600:.1f}h"
    if s >= 60:
        return f"{s / 60:.1f}m"
    return f"{s:.0f}s"


def render_status(doc: dict, now: Optional[float] = None) -> str:
    """Human rendering of a status document (the ``status`` CLI artifact)."""
    now = time.time() if now is None else now
    age = now - float(doc.get("updated_at", now))
    done = bool(doc.get("done"))
    if done:
        liveness = "finished"
    elif age > STALE_AFTER_S:
        liveness = f"likely dead (no update for {_fmt_secs(age)})"
    else:
        liveness = f"running (updated {_fmt_secs(age)} ago)"

    tasks = doc.get("tasks", [])
    states: dict[str, int] = {}
    for task in tasks:
        state = str(task.get("state", "?"))
        states[state] = states.get(state, 0) + 1
    counts = ", ".join(f"{states[s]} {s}" for s in sorted(states)) or "no tasks"

    lines = [
        f"plan: {doc.get('plan', '?')}  [{liveness}]",
        f"tasks: {len(tasks)} total ({counts})",
    ]
    eta = doc.get("eta_s")
    if not done and isinstance(eta, (int, float)):
        lines.append(f"eta: ~{_fmt_secs(eta)}")

    header = f"  {'#':>3} {'workload':<16} {'level':<6} {'state':<9} {'attempts':>8} {'epoch':>5} {'icount':>8} {'cycles':>8} {'hit':>6} {'acc':>6}"
    lines.append(header)
    for task in tasks:
        lines.append(
            "  {index:>3} {workload:<16} {level:<6} {state:<9} {attempts:>8} {epoch:>5} {icount:>8} {cycles:>8} {hit:>6} {acc:>6}".format(
                index=task.get("index", "?"),
                workload=str(task.get("workload", "?"))[:16],
                level=str(task.get("level", "?"))[:6],
                state=str(task.get("state", "?"))[:9],
                attempts=task.get("attempts", 0),
                epoch=int(task.get("epoch", 0)),
                icount=_fmt_count(task.get("icount", 0)),
                cycles=_fmt_count(task.get("cycles", 0)),
                hit=f"{float(task.get('hit_ewma', 0.0)):.2f}",
                acc=f"{float(task.get('acc_ewma', 0.0)):.2f}",
            )
        )
    return "\n".join(lines)
