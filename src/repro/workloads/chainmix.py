"""The chain-mix workload generator: pointer-chasing with hot data streams.

All six benchmark analogues are instances of one template that captures the
memory behaviour the paper exploits:

* a population of linked chains (lists of 32-byte, block-aligned nodes),
  a few of which are *hot* — revisited over and over in the same order —
  and many of which are cold;
* several distinct *walker* procedures (real programs traverse different
  structures from different code), so stream-head pcs spread across the
  program;
* a driving schedule, replayed every pass, that interleaves hot and cold
  chain visits — giving the trace the "small number of hot data streams
  account for most references" shape reported in [8]; and
* a cold-array scrubber between visits that provides cache pressure, so hot
  chain nodes are usually not resident when revisited.

Crucially, chain nodes are (by default) allocated in an order *decorrelated*
from traversal order, which is why sequential prefetching fails on these
workloads (Figure 12's Seq-pref bars); ``sequential_alloc=True`` reproduces
the parser benchmark, whose hot streams are sequentially allocated and which
is the one Seq-pref winner.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import ConfigError
from repro.ir.builder import ProcedureBuilder, build_program
from repro.machine.memory import Memory
from repro.workloads.base import BuiltWorkload

NODE_BYTES = 32
NODE_NEXT_OFF = 0
NODE_VAL_OFF = 4
#: One word per schedule slot: the chain head pointer with the walker-group
#: id packed into the low bits (nodes are 32-byte aligned, so 5 bits free).
SCHED_ENTRY_BYTES = 4
GROUP_BITS_MASK = NODE_BYTES - 1


@dataclass(frozen=True)
class ChainMixParams:
    """Shape of one chain-mix workload (see module docstring).

    ``passes`` is the default number of schedule replays; the experiment
    runner can override it through the program's entry argument.
    """

    name: str
    groups: int = 4
    hot_chains: int = 12
    cold_chains: int = 120
    chain_len: int = 21
    hot_fraction: float = 0.8
    schedule_len: int = 96
    passes: int = 10
    cold_refs_per_step: int = 16
    cold_array_blocks: int = 2048
    node_compute: int = 2
    sequential_alloc: bool = False
    unroll: int = 4
    #: Number of program phases.  With ``phases > 1`` the workload owns
    #: ``phases * hot_chains`` hot chains but only one group of
    #: ``hot_chains`` is hot at a time; the active group advances every
    #: ``passes / phases`` worth of steps.  This models the "distinct phase
    #: behavior" of Section 1, where a dynamic scheme that re-profiles
    #: should beat a static profile-once scheme.
    phases: int = 1
    seed: int = 1

    def __post_init__(self) -> None:
        if not 1 <= self.groups <= NODE_BYTES:
            raise ConfigError(f"groups must be in 1..{NODE_BYTES} (packed into pointer bits)")
        if self.hot_chains < self.groups:
            raise ConfigError("need at least one hot chain per group")
        if self.chain_len < 2:
            raise ConfigError("chains must have at least two nodes")
        if self.unroll < 1 or (self.chain_len - 1) % self.unroll:
            raise ConfigError("chain_len must be 1 + a multiple of unroll (peeled first node)")
        if self.cold_chains == 0 and round(self.hot_fraction * 8) != 8:
            raise ConfigError("hot_fraction must be 1.0 when there are no cold chains")
        if self.cold_array_blocks & (self.cold_array_blocks - 1):
            raise ConfigError("cold_array_blocks must be a power of two")
        if not 0.0 <= self.hot_fraction <= 1.0:
            raise ConfigError("hot_fraction must be in [0, 1]")
        if self.phases < 1:
            raise ConfigError("phases must be >= 1")

    @property
    def hot_eighths(self) -> int:
        """``hot_fraction`` quantized to eighths for the in-ISA pick logic."""
        return max(0, min(8, round(self.hot_fraction * 8)))

    @property
    def total_chains(self) -> int:
        return self.hot_chains * self.phases + self.cold_chains

    @property
    def node_footprint_bytes(self) -> int:
        return self.total_chains * self.chain_len * NODE_BYTES


def _build_walker(
    group: int, node_compute: int, acc_addr: int, unroll: int
) -> ProcedureBuilder:
    """One chain-walking procedure; its pcs are unique to the group.

    The first node is *peeled* out of the loop and the remaining loop is
    unrolled ``unroll``-fold (chain lengths are ``1 + k*unroll``), as a
    compiler would transform a hot traversal loop.  The peel matters for the
    reproduction's overhead profile: a stream's second head reference is the
    first node's value load, and peeling gives that reference a pc that
    executes once per traversal instead of once per iteration — so the
    injected prefix-match check is not re-scanned on every loop trip.
    """
    b = ProcedureBuilder(f"walk{group}", params=("head",))
    node = b.reg("node")
    total = b.reg("total")

    def node_body() -> None:
        value = b.load(None, node, NODE_VAL_OFF)
        b.add(total, total, value)
        for _ in range(node_compute):
            b.muli(total, total, 3)
            b.addi(total, total, 1)
        b.load(node, node, NODE_NEXT_OFF)

    b.mov(node, b.param("head"))
    b.const(total, 0)
    node_body()  # peeled first node: head-match pcs, executed once per visit
    b.bz(node, "end")
    b.label("loop")
    for _ in range(unroll):
        node_body()
    b.bnz(node, "loop")
    b.label("end")
    base = b.reg("accbase")
    b.const(base, acc_addr)
    b.store(total, base, 0)
    b.ret(total)
    return b


COLD_UNROLL = 4


def _build_cold_walker(params: ChainMixParams, cold_base: int) -> ProcedureBuilder:
    """Pseudo-random strider over the cold array (cache pressure, no streams).

    The loop is unrolled ``COLD_UNROLL``-fold so a back-edge check guards a
    realistically-sized loop body rather than a single reference (the paper
    applies the check-reduction techniques of [15] for the same reason).
    """
    b = ProcedureBuilder("coldwalk", params=("idx",))
    idx = b.reg("idx2")
    b.mov(idx, b.param("idx"))
    count = b.const(b.reg("count"), 0)
    iters = max(1, params.cold_refs_per_step // COLD_UNROLL)
    limit = b.const(b.reg("limit"), iters)
    base = b.const(b.reg("base"), cold_base)
    sink = b.reg("sink")
    b.label("loop")
    cond = b.cmp("lt", None, count, limit)
    b.bz(cond, "end")
    for _ in range(COLD_UNROLL):
        b.muli(idx, idx, 5)
        b.addi(idx, idx, 7)
        b.alui("and", idx, idx, params.cold_array_blocks - 1)
        off = b.muli(None, idx, NODE_BYTES)
        addr = b.add(None, base, off)
        b.load(sink, addr, 0)
    b.addi(count, count, 1)
    b.jmp("loop")
    b.label("end")
    b.ret(idx)
    return b


#: LCG constants for the schedule-index generator (mod 2**24).
LCG_A = 1_103_515_245 & 0xFFFFFF
LCG_C = 12_345
LCG_MASK = (1 << 24) - 1


def _build_dispatch(params: ChainMixParams, sched_base: int) -> ProcedureBuilder:
    """Per-step worker: read a schedule slot, walk its chain, scrub cold data.

    This indirection layer matters for the reproduction: hot data streams
    begin with the slot loads here (or with the chain's first node in the
    walkers), and ``dispatch`` is re-entered every step, so dynamically
    injected detection code takes effect at the next call.  Code reached only
    from never-returning frames (like ``main``'s loop) would never execute
    its patches — the paper's stale-activation-record caveat (Section 3.2).
    """
    b = ProcedureBuilder("dispatch", params=("pick",))
    base = b.const(b.reg("base"), sched_base)
    off = b.muli(None, b.param("pick"), SCHED_ENTRY_BYTES)
    entry = b.add(None, base, off)
    tagged = b.load(None, entry, 0)
    group = b.alui("and", None, tagged, GROUP_BITS_MASK)
    head = b.alui("and", None, tagged, ~GROUP_BITS_MASK & 0xFFFFFFFF)
    group_consts = [b.const(b.reg(f"g{k}"), k) for k in range(params.groups)]
    result = b.const(b.reg("result"), 0)
    for k in range(params.groups):
        hit = b.cmp("eq", None, group, group_consts[k])
        b.bnz(hit, f"dispatch{k}")
    b.jmp("after_walk")
    for k in range(params.groups):
        b.label(f"dispatch{k}")
        b.call(result, f"walk{k}", (head,))
        b.jmp("after_walk")
    b.label("after_walk")
    b.ret(result)
    return b


def _build_main(params: ChainMixParams) -> ProcedureBuilder:
    """Driver: ``passes * schedule_len`` steps picking chains by LCG.

    Each step draws whether to visit a hot or a cold chain (probability
    ``hot_eighths / 8``), then a uniform chain within the class.  Schedule
    slots map 1:1 to chains (hot chains first), so every chain is entered
    through exactly one slot — giving it exactly one hot data stream, whose
    head is the pair of slot loads in ``dispatch``.

    The pseudo-random visit order makes the *global* reference sequence
    aperiodic, so the only subsequences that repeat exactly — and therefore
    become hot data streams — are the per-chain dispatch+traversal windows.
    """
    b = ProcedureBuilder("main", params=("passes",))
    step = b.const(b.reg("step"), 0)
    steps = b.muli(None, b.param("passes"), params.schedule_len)
    state = b.const(b.reg("state"), params.seed | 1)
    idx = b.const(b.reg("idx"), 1)
    acc = b.const(b.reg("acc"), 0)
    n_hot = b.const(b.reg("n_hot"), params.hot_chains)
    hot_eighths = b.const(b.reg("hot_eighths"), params.hot_eighths)
    n_all_hot = b.const(b.reg("n_all_hot"), params.hot_chains * params.phases)
    # Steps per phase (at least 1 to avoid division trouble on tiny runs).
    spp = b.reg("spp")
    b.alui("div", spp, steps, params.phases)
    one = b.const(b.reg("one"), 1)
    spp_ok = b.cmp("ge", None, spp, one)
    b.bnz(spp_ok, "spp_done")
    b.mov(spp, one)
    b.label("spp_done")
    result = b.reg("result")
    pick = b.reg("pick")
    b.label("step_loop")
    more = b.cmp("lt", None, step, steps)
    b.bz(more, "done")
    # Class draw: hot with probability hot_eighths/8.
    b.muli(state, state, LCG_A)
    b.addi(state, state, LCG_C)
    b.alui("and", state, state, LCG_MASK)
    octant = b.alui("shr", None, state, 6)
    b.alui("and", octant, octant, 7)
    is_hot = b.cmp("lt", None, octant, hot_eighths)
    # Index draw: uniform within the class.
    b.muli(state, state, LCG_A)
    b.addi(state, state, LCG_C)
    b.alui("and", state, state, LCG_MASK)
    draw = b.alui("shr", None, state, 6)
    b.bnz(is_hot, "pick_hot")
    b.alui("mod", pick, draw, max(1, params.cold_chains))
    b.add(pick, pick, n_all_hot)
    b.jmp("picked")
    b.label("pick_hot")
    b.alui("mod", pick, draw, params.hot_chains)
    if params.phases > 1:
        # The active hot group advances with the program phase.
        phase = b.alu("div", None, step, spp)
        b.alui("mod", phase, phase, params.phases)
        base = b.mul(None, phase, n_hot)
        b.add(pick, pick, base)
    b.label("picked")
    b.call(result, "dispatch", (pick,))
    b.add(acc, acc, result)
    b.call(idx, "coldwalk", (idx,))
    b.addi(step, step, 1)
    b.jmp("step_loop")
    b.label("done")
    b.ret(acc)
    return b


def build_chainmix(params: ChainMixParams, passes: int | None = None) -> BuiltWorkload:
    """Materialize the workload: memory image + program + entry args."""
    rng = random.Random(params.seed)
    memory = Memory()

    # Static data: schedule (one slot per chain), cold array, accumulators.
    sched_base = memory.allocate_static(params.total_chains * SCHED_ENTRY_BYTES)
    cold_base = memory.allocate_static(params.cold_array_blocks * NODE_BYTES)
    acc_base = memory.allocate_static(params.groups * 4)

    # Allocate chain nodes.  Hot streams are only sequentially allocated for
    # the parser-style workload (sequential_alloc=True).
    total = params.total_chains
    slots = [(chain, pos) for chain in range(total) for pos in range(params.chain_len)]
    if not params.sequential_alloc:
        rng.shuffle(slots)
    addr_of: dict[tuple[int, int], int] = {}
    for chain, pos in slots:
        addr_of[(chain, pos)] = memory.allocate(NODE_BYTES, align=NODE_BYTES)

    # Link the chains and give every node a value.
    for chain in range(total):
        for pos in range(params.chain_len):
            addr = addr_of[(chain, pos)]
            is_last = pos == params.chain_len - 1
            succ = 0 if is_last else addr_of[(chain, pos + 1)]
            memory.store(addr + NODE_NEXT_OFF, succ)
            memory.store(addr + NODE_VAL_OFF, chain * 131 + pos)

    # Chains round-robin over walker groups; hot chains are ids [0, hot).
    # Schedule slots map 1:1 to chains: slot i holds (group, head) of chain i.
    group_of = {chain: chain % params.groups for chain in range(total)}
    for chain in range(total):
        entry_addr = sched_base + chain * SCHED_ENTRY_BYTES
        memory.store(entry_addr, addr_of[(chain, 0)] | group_of[chain])

    walkers = [
        _build_walker(group, params.node_compute, acc_base + group * 4, params.unroll)
        for group in range(params.groups)
    ]
    cold_walker = _build_cold_walker(params, cold_base)
    dispatch = _build_dispatch(params, sched_base)
    main = _build_main(params)
    program = build_program([main, dispatch, cold_walker, *walkers], entry="main")

    return BuiltWorkload(
        name=params.name,
        program=program,
        memory=memory,
        args=(passes if passes is not None else params.passes,),
        info={
            "hot_chains": params.hot_chains,
            "phases": params.phases,
            "cold_chains": params.cold_chains,
            "chain_len": params.chain_len,
            "node_footprint_bytes": params.node_footprint_bytes,
            "cold_array_bytes": params.cold_array_blocks * NODE_BYTES,
            "schedule_len": params.schedule_len,
        },
    )
