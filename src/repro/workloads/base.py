"""Workload plumbing: a built workload is a program plus a memory image.

Workload builders lay out their pointer structures directly in simulated
memory (the analogue of a process image after initialization) and return the
program that traverses them.  Building in Python rather than in simulated
code keeps experiment runs affordable; the *traversal* — the part the paper's
system observes and optimizes — executes entirely in the simulated ISA.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.program import Program
from repro.machine.memory import Memory


@dataclass
class BuiltWorkload:
    """A ready-to-run benchmark: code, initialized memory, entry arguments."""

    name: str
    program: Program
    memory: Memory
    args: tuple[int, ...] = ()
    #: free-form facts about the build (footprints, chain counts, ...)
    info: dict[str, int] = field(default_factory=dict)
