"""The six benchmark analogues (Section 4.1's program set).

Each preset instantiates the chain-mix template with a shape chosen to echo
the corresponding program's memory behaviour.  These are synthetic
analogues, not the SPEC sources (see DESIGN.md's substitution table); what
they preserve is the *trace structure* the paper's system consumes: a small
set of hot data streams over pointer-chasing references, plus cold traffic.

The shapes also steer the Table 2 characterization: the number of hot chains
sets the detected stream count (paper: vpr 41, mcf 37, twolf 25, parser 21,
vortex 14, boxsim 23), and ``groups + 2`` bounds the procedures the dynamic
editor patches per cycle.

Key contrasts between presets:

* ``vpr`` — long net-like chains with a large hot visit share; the strongest
  prefetching winner in Figure 12.
* ``mcf`` — long network-simplex arc chains, few walker procedures.
* ``twolf`` — shorter neighbour chains, many walkers, heavy cold pressure;
  a strong Seq-pref victim.
* ``parser`` — dictionary chains **allocated sequentially in traversal
  order**: the single benchmark where the Seq-pref baseline wins.
* ``vortex`` — many walker procedures (an OO database's spread-out code),
  short chains, even hot/cold mix: the smallest Dyn-pref gain.
* ``boxsim`` — the graphics sphere simulation: medium chains, moderate
  pressure.

``passes`` defaults are sized so the default optimizer completes multiple
profile/optimize/hibernate cycles per run while keeping simulations fast;
the relative cycle counts follow the paper's ordering (twolf > mcf > vpr ~
boxsim > parser > vortex).
"""

from __future__ import annotations

from repro.workloads.base import BuiltWorkload
from repro.workloads.chainmix import ChainMixParams, build_chainmix

VPR = ChainMixParams(
    name="vpr",
    groups=6,
    hot_chains=41,
    cold_chains=200,
    chain_len=81,
    hot_fraction=0.875,
    schedule_len=512,
    passes=32,
    cold_refs_per_step=4,
    cold_array_blocks=2048,
    node_compute=1,
    unroll=4,
    seed=11,
)

MCF = ChainMixParams(
    name="mcf",
    groups=5,
    hot_chains=37,
    cold_chains=400,
    chain_len=65,
    hot_fraction=0.75,
    schedule_len=512,
    passes=40,
    cold_refs_per_step=8,
    cold_array_blocks=4096,
    node_compute=1,
    unroll=4,
    seed=22,
)

TWOLF = ChainMixParams(
    name="twolf",
    groups=10,
    hot_chains=25,
    cold_chains=480,
    chain_len=49,
    hot_fraction=0.875,
    schedule_len=512,
    passes=56,
    cold_refs_per_step=4,
    cold_array_blocks=4096,
    node_compute=2,
    unroll=4,
    seed=33,
)

PARSER = ChainMixParams(
    name="parser",
    groups=8,
    hot_chains=21,
    cold_chains=360,
    chain_len=49,
    hot_fraction=0.75,
    schedule_len=512,
    passes=24,
    cold_refs_per_step=8,
    cold_array_blocks=4096,
    node_compute=2,
    sequential_alloc=True,
    unroll=4,
    seed=44,
)

VORTEX = ChainMixParams(
    name="vortex",
    groups=11,
    hot_chains=14,
    cold_chains=420,
    chain_len=33,
    hot_fraction=0.75,
    schedule_len=512,
    passes=28,
    cold_refs_per_step=24,
    cold_array_blocks=4096,
    node_compute=2,
    unroll=4,
    seed=55,
)

BOXSIM = ChainMixParams(
    name="boxsim",
    groups=6,
    hot_chains=23,
    cold_chains=380,
    chain_len=65,
    hot_fraction=0.75,
    schedule_len=512,
    passes=32,
    cold_refs_per_step=8,
    cold_array_blocks=4096,
    node_compute=1,
    unroll=4,
    seed=66,
)

ALL_PARAMS = (VPR, MCF, TWOLF, PARSER, VORTEX, BOXSIM)


def params_for(name: str) -> ChainMixParams:
    """Look up a preset's parameters by benchmark name."""
    for params in ALL_PARAMS:
        if params.name == name:
            return params
    known = ", ".join(p.name for p in ALL_PARAMS)
    raise KeyError(f"unknown workload {name!r}; known: {known}")


def build(name: str, passes: int | None = None) -> BuiltWorkload:
    """Build a preset workload by benchmark name."""
    return build_chainmix(params_for(name), passes=passes)


def names() -> list[str]:
    """The benchmark names in the paper's presentation order."""
    return [p.name for p in ALL_PARAMS]
