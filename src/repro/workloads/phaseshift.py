"""Adversarial phase-shift workload: stale streams that turn purely harmful.

The chain-mix template's ``phases`` knob models *gradual* phase behaviour:
another group of chains becomes hot, the old streams simply stop matching,
and stale prefetch code decays into dead checks.  This workload is built to
be **adversarial** to an unguarded prefetcher instead: installed streams keep
*matching* after a phase change but every prefetch they issue is wrong.

Construction (per hot chain):

* one phase-invariant **head node** ``H``, entered through a schedule slot
  (the dispatch slot load and ``H``'s value load form the stream head —
  neither address ever changes);
* ``tail_sets`` pre-linked **tail sets** of ``tail_len`` nodes each, disjoint
  in memory; ``H.next`` points at the active set's first node, *rotated* by
  an in-ISA ``relink`` procedure every ``flip_every`` steps.  Rotation (not
  alternation) matters: a stale stream stays wrong for ``tail_sets - 1``
  consecutive phases instead of coming back into fashion at the next flip.

Because the stream *head* survives the flip, a handler installed before the
flip keeps firing afterwards — and prefetches the old tail's blocks, which
the new phase never touches: 100% wasted, pure pollution, plus the per-issue
cost.  The hot-stream analysis, by contrast, re-learns the new tail at the
next awake phase (a different stream identity, so the watchdog blacklist
never blocks it).  This is the workload where the per-stream watchdog earns
its keep: condemn the stale streams mid-hibernation, roll them back, return
to profiling early (``bench_ablation_watchdog.py`` measures exactly that).

The cold scrubber walks an array larger than the ablation machine's L2, so
stale prefetched blocks are *evicted* — and therefore classified wasted —
within a poll window or two rather than only at finalize.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import ConfigError
from repro.ir.builder import ProcedureBuilder, build_program
from repro.machine.memory import Memory
from repro.workloads.base import BuiltWorkload
from repro.workloads.chainmix import (
    GROUP_BITS_MASK,
    LCG_A,
    LCG_C,
    LCG_MASK,
    NODE_BYTES,
    NODE_NEXT_OFF,
    NODE_VAL_OFF,
    SCHED_ENTRY_BYTES,
)

def _table_entry_bytes(tail_sets: int) -> int:
    """Bytes per chain in the relink table: head addr + one addr per tail set."""
    return 4 * (1 + tail_sets)


@dataclass(frozen=True)
class PhaseShiftParams:
    """Shape of the adversarial phase-shift workload (see module docstring)."""

    name: str = "phaseshift"
    groups: int = 3
    chains: int = 9
    tail_len: int = 24
    #: pre-linked tail sets per chain; the active one rotates at every flip,
    #: so an installed stream stays stale for (tail_sets - 1) / tail_sets of
    #: each rotation instead of coming back into phase on the next flip
    tail_sets: int = 3
    unroll: int = 4
    steps_per_pass: int = 64
    passes: int = 84
    #: steps between ``H.next`` flips (tail-set rotation)
    flip_every: int = 400
    cold_refs_per_step: int = 24
    cold_array_blocks: int = 2048
    node_compute: int = 1
    seed: int = 7

    def __post_init__(self) -> None:
        if not 1 <= self.groups <= 8:
            raise ConfigError("groups must be in 1..8")
        if self.chains < self.groups:
            raise ConfigError("need at least one chain per group")
        if self.tail_len < self.unroll or self.tail_len % self.unroll:
            raise ConfigError("tail_len must be a positive multiple of unroll")
        if self.tail_sets < 2:
            raise ConfigError("tail_sets must be >= 2")
        if self.flip_every < 1:
            raise ConfigError("flip_every must be >= 1")
        if self.cold_array_blocks & (self.cold_array_blocks - 1):
            raise ConfigError("cold_array_blocks must be a power of two")

    @property
    def total_steps(self) -> int:
        return self.passes * self.steps_per_pass

    @property
    def node_footprint_bytes(self) -> int:
        return self.chains * (1 + self.tail_sets * self.tail_len) * NODE_BYTES


def _build_walker(group: int, node_compute: int, acc_addr: int, unroll: int) -> ProcedureBuilder:
    """Chain walker with a peeled head node (same shape as chain-mix's).

    The peel puts the head node's value load on a once-per-visit pc, making
    (slot load, head value load) the stream head the DFSM matches — both
    phase-invariant by construction.
    """
    b = ProcedureBuilder(f"walk{group}", params=("head",))
    node = b.reg("node")
    total = b.reg("total")

    def node_body() -> None:
        value = b.load(None, node, NODE_VAL_OFF)
        b.add(total, total, value)
        for _ in range(node_compute):
            b.muli(total, total, 3)
            b.addi(total, total, 1)
        b.load(node, node, NODE_NEXT_OFF)

    b.mov(node, b.param("head"))
    b.const(total, 0)
    node_body()  # peeled head node
    b.bz(node, "end")
    b.label("loop")
    for _ in range(unroll):
        node_body()
    b.bnz(node, "loop")
    b.label("end")
    base = b.reg("accbase")
    b.const(base, acc_addr)
    b.store(total, base, 0)
    b.ret(total)
    return b


_COLD_UNROLL = 4


def _build_cold_walker(params: PhaseShiftParams, cold_base: int) -> ProcedureBuilder:
    """Pseudo-random strider over the cold array (eviction pressure)."""
    b = ProcedureBuilder("coldwalk", params=("idx",))
    idx = b.reg("idx2")
    b.mov(idx, b.param("idx"))
    count = b.const(b.reg("count"), 0)
    iters = max(1, params.cold_refs_per_step // _COLD_UNROLL)
    limit = b.const(b.reg("limit"), iters)
    base = b.const(b.reg("base"), cold_base)
    sink = b.reg("sink")
    b.label("loop")
    cond = b.cmp("lt", None, count, limit)
    b.bz(cond, "end")
    for _ in range(_COLD_UNROLL):
        b.muli(idx, idx, 5)
        b.addi(idx, idx, 7)
        b.alui("and", idx, idx, params.cold_array_blocks - 1)
        off = b.muli(None, idx, NODE_BYTES)
        addr = b.add(None, base, off)
        b.load(sink, addr, 0)
    b.addi(count, count, 1)
    b.jmp("loop")
    b.label("end")
    b.ret(idx)
    return b


def _build_dispatch(params: PhaseShiftParams, sched_base: int) -> ProcedureBuilder:
    """Per-step worker: the slot load here is every stream's first head pc."""
    b = ProcedureBuilder("dispatch", params=("pick",))
    base = b.const(b.reg("base"), sched_base)
    off = b.muli(None, b.param("pick"), SCHED_ENTRY_BYTES)
    entry = b.add(None, base, off)
    tagged = b.load(None, entry, 0)
    group = b.alui("and", None, tagged, GROUP_BITS_MASK)
    head = b.alui("and", None, tagged, ~GROUP_BITS_MASK & 0xFFFFFFFF)
    group_consts = [b.const(b.reg(f"g{k}"), k) for k in range(params.groups)]
    result = b.const(b.reg("result"), 0)
    for k in range(params.groups):
        hit = b.cmp("eq", None, group, group_consts[k])
        b.bnz(hit, f"dispatch{k}")
    b.jmp("after_walk")
    for k in range(params.groups):
        b.label(f"dispatch{k}")
        b.call(result, f"walk{k}", (head,))
        b.jmp("after_walk")
    b.label("after_walk")
    b.ret(result)
    return b


def _build_relink(params: PhaseShiftParams, table_base: int) -> ProcedureBuilder:
    """Point every chain's ``H.next`` at the tail set selected by ``which``.

    Reads the (head, tail[0], tail[1], ...) address table and stores the
    chosen tail's first node into the head's next pointer.  This is the
    *program's own* phase change — no simulator magic involved.
    """
    b = ProcedureBuilder("relink", params=("which",))
    chain = b.const(b.reg("chain"), 0)
    nchains = b.const(b.reg("nchains"), params.chains)
    base = b.const(b.reg("tbase"), table_base)
    # Offset of the selected tail column within a table row.
    sel = b.muli(None, b.param("which"), 4)
    b.addi(sel, sel, 4)
    b.label("loop")
    more = b.cmp("lt", None, chain, nchains)
    b.bz(more, "end")
    row = b.muli(None, chain, _table_entry_bytes(params.tail_sets))
    b.add(row, row, base)
    head = b.load(None, row, 0)
    tail_ptr = b.add(None, row, sel)
    tail = b.load(None, tail_ptr, 0)
    b.store(tail, head, NODE_NEXT_OFF)
    b.addi(chain, chain, 1)
    b.jmp("loop")
    b.label("end")
    b.ret(chain)
    return b


def _build_main(params: PhaseShiftParams) -> ProcedureBuilder:
    """Driver: uniform pseudo-random hot visits, tail flip every flip_every."""
    b = ProcedureBuilder("main", params=("passes",))
    step = b.const(b.reg("step"), 0)
    steps = b.muli(None, b.param("passes"), params.steps_per_pass)
    state = b.const(b.reg("state"), params.seed | 1)
    idx = b.const(b.reg("idx"), 1)
    acc = b.const(b.reg("acc"), 0)
    which = b.const(b.reg("which"), 0)
    nsets = b.const(b.reg("nsets"), params.tail_sets)
    next_flip = b.const(b.reg("next_flip"), params.flip_every)
    one = b.const(b.reg("one"), 1)
    result = b.reg("result")
    pick = b.reg("pick")
    b.label("step_loop")
    more = b.cmp("lt", None, step, steps)
    b.bz(more, "done")
    # Phase flip: the program rotates to the next tail set.
    at_flip = b.cmp("eq", None, step, next_flip)
    b.bz(at_flip, "no_flip")
    b.add(which, which, one)
    wrapped = b.cmp("lt", None, which, nsets)
    b.bnz(wrapped, "no_wrap")
    b.const(which, 0)
    b.label("no_wrap")
    b.addi(next_flip, next_flip, params.flip_every)
    b.call(None, "relink", (which,))
    b.label("no_flip")
    # Uniform chain pick.
    b.muli(state, state, LCG_A)
    b.addi(state, state, LCG_C)
    b.alui("and", state, state, LCG_MASK)
    draw = b.alui("shr", None, state, 6)
    b.alui("mod", pick, draw, params.chains)
    b.call(result, "dispatch", (pick,))
    b.add(acc, acc, result)
    b.call(idx, "coldwalk", (idx,))
    b.add(step, step, one)
    b.jmp("step_loop")
    b.label("done")
    b.ret(acc)
    return b


def build_phaseshift(
    params: PhaseShiftParams | None = None, passes: int | None = None
) -> BuiltWorkload:
    """Materialize the workload: memory image + program + entry args."""
    params = params if params is not None else PhaseShiftParams()
    rng = random.Random(params.seed)
    memory = Memory()

    row_bytes = _table_entry_bytes(params.tail_sets)
    sched_base = memory.allocate_static(params.chains * SCHED_ENTRY_BYTES)
    table_base = memory.allocate_static(params.chains * row_bytes)
    cold_base = memory.allocate_static(params.cold_array_blocks * NODE_BYTES)
    acc_base = memory.allocate_static(params.groups * 4)

    # Allocate head + all tail sets, in an order decorrelated from traversal.
    slots = [
        (chain, pos)
        for chain in range(params.chains)
        for pos in range(1 + params.tail_sets * params.tail_len)
    ]
    rng.shuffle(slots)
    addr_of: dict[tuple[int, int], int] = {}
    for slot in slots:
        addr_of[slot] = memory.allocate(NODE_BYTES, align=NODE_BYTES)

    # Node positions: 0 = head H, then tail_len nodes per tail set.
    def tail(chain: int, sets: int, k: int) -> int:
        return addr_of[(chain, 1 + sets * params.tail_len + k)]

    for chain in range(params.chains):
        head = addr_of[(chain, 0)]
        memory.store(head + NODE_NEXT_OFF, tail(chain, 0, 0))  # phase 0 first
        memory.store(head + NODE_VAL_OFF, chain * 131)
        for sets in range(params.tail_sets):
            for k in range(params.tail_len):
                addr = tail(chain, sets, k)
                is_last = k == params.tail_len - 1
                succ = 0 if is_last else tail(chain, sets, k + 1)
                memory.store(addr + NODE_NEXT_OFF, succ)
                memory.store(addr + NODE_VAL_OFF, chain * 131 + sets * 1000 + k + 1)
        group = chain % params.groups
        memory.store(sched_base + chain * SCHED_ENTRY_BYTES, head | group)
        row = table_base + chain * row_bytes
        memory.store(row, head)
        for sets in range(params.tail_sets):
            memory.store(row + 4 * (1 + sets), tail(chain, sets, 0))

    walkers = [
        _build_walker(group, params.node_compute, acc_base + group * 4, params.unroll)
        for group in range(params.groups)
    ]
    program = build_program(
        [
            _build_main(params),
            _build_dispatch(params, sched_base),
            _build_relink(params, table_base),
            _build_cold_walker(params, cold_base),
            *walkers,
        ],
        entry="main",
    )

    return BuiltWorkload(
        name=params.name,
        program=program,
        memory=memory,
        args=(passes if passes is not None else params.passes,),
        info={
            "chains": params.chains,
            "tail_len": params.tail_len,
            "tail_sets": params.tail_sets,
            "flip_every": params.flip_every,
            "total_steps": params.total_steps,
            "node_footprint_bytes": params.node_footprint_bytes,
            "cold_array_bytes": params.cold_array_blocks * NODE_BYTES,
        },
    )
