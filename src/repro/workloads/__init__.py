"""Benchmark workloads: the chain-mix generator and the six paper analogues."""

from repro.workloads.base import BuiltWorkload
from repro.workloads.chainmix import (
    NODE_BYTES,
    ChainMixParams,
    build_chainmix,
)
from repro.workloads.presets import (
    ALL_PARAMS,
    BOXSIM,
    MCF,
    PARSER,
    TWOLF,
    VORTEX,
    VPR,
    build,
    names,
)

__all__ = [
    "BuiltWorkload",
    "ChainMixParams",
    "build_chainmix",
    "NODE_BYTES",
    "ALL_PARAMS",
    "VPR",
    "MCF",
    "TWOLF",
    "PARSER",
    "VORTEX",
    "BOXSIM",
    "build",
    "names",
]
