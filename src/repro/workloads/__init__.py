"""Benchmark workloads: the chain-mix generator and the six paper analogues."""

from repro.workloads.base import BuiltWorkload
from repro.workloads.chainmix import (
    NODE_BYTES,
    ChainMixParams,
    build_chainmix,
)
from repro.workloads.presets import (
    ALL_PARAMS,
    BOXSIM,
    MCF,
    PARSER,
    TWOLF,
    VORTEX,
    VPR,
    build,
    names,
)


def build_named(name: str, passes=None) -> BuiltWorkload:
    """Materialize any runnable workload by name, presets and ``phaseshift``
    alike (the lookup both :class:`~repro.engine.spec.RunSpec` and tenant
    plans share).  Raises :class:`~repro.errors.ConfigError` for unknown
    names."""
    from repro.errors import ConfigError
    from repro.workloads.phaseshift import build_phaseshift

    if name == "phaseshift":
        return build_phaseshift(passes=passes)
    try:
        return build(name, passes=passes)
    except KeyError as exc:
        raise ConfigError(str(exc)) from exc


__all__ = [
    "build_named",
    "BuiltWorkload",
    "ChainMixParams",
    "build_chainmix",
    "NODE_BYTES",
    "ALL_PARAMS",
    "VPR",
    "MCF",
    "TWOLF",
    "PARSER",
    "VORTEX",
    "BOXSIM",
    "build",
    "names",
]
