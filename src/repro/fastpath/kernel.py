"""Trampoline driving compiled procedure kernels with reference semantics.

The compiled kernels (:mod:`repro.fastpath.compiler`) only ever execute
straight-line traces inside one procedure version.  Everything else — calls,
returns, burst transitions, instruction limits, and any instruction pointer
the compiled dispatcher does not recognise — crosses back into this
trampoline, which replays the exact code the reference dispatch loop runs
for the same event.  For instruction-pointer positions that are not trace
leaders (a slice can park anywhere) and for the final instructions of a
bounded slice, the trampoline executes the *reference* ``_dispatch`` one
instruction at a time (``limit = icount + 1``), which is bit-identical by
construction — the slice-composition invariant pinned since PR 7 guarantees
that N single-instruction slices equal one N-instruction run.
"""

from __future__ import annotations

from typing import Optional

from repro.core.hwpref import MarkovPrefetcher, StridePrefetcher
from repro.errors import ExecutionError
from repro.interp.lowering import lower_procedure
from repro.telemetry.events import BurstBegin, BurstEnd

from repro.fastpath.compiler import (
    SIG_CALL,
    SIG_PARK,
    SIG_RET,
    SIG_TRANS,
    compiled_entry,
)
from repro.fastpath.hiermirror import (
    make_fast_access,
    make_fast_issue_prefetch,
    mirror_eligible,
)

_CHECKING, _INSTRUMENTED = 0, 1


class FastCtx:
    """Per-run bindings the compiled kernels read (rebuilt every entry).

    Nothing here is part of the architectural state: a checkpoint restore
    builds a fresh context (and recompiles procedures) transparently.
    """

    __slots__ = (
        "interp", "hier", "access", "issue_prefetch", "mem", "allocate",
        "check_cost", "trace_cost", "detect_base", "detect_per_case", "pf_cost",
        "mirror", "l1", "l1_sets", "l1_mask", "l1_assoc",
        "l2", "l2_sets", "l2_mask", "l2_assoc", "l2_lat", "mem_lat",
        "inflight", "pf_unused", "block_shift", "call", "ret_value",
    )

    def __init__(self, interp) -> None:
        hier = interp.hierarchy
        cfg = interp.config
        self.interp = interp
        self.hier = hier
        self.access = hier.access
        self.issue_prefetch = hier.issue_prefetch
        self.mem = interp.memory._words
        self.allocate = interp.memory.allocate
        self.check_cost = cfg.check_cost
        self.trace_cost = cfg.trace_cost
        self.detect_base = cfg.detect_base
        self.detect_per_case = cfg.detect_per_case
        self.pf_cost = cfg.prefetch_issue_cost
        # The inline L1-hit mirror and the specialized access/issue closures
        # are only sound against the plain hierarchy with unwrapped methods,
        # telemetry off and no ledger; tenancy's TenantHierarchy, sampled
        # telemetry runs and `explain` ledger runs go through the reference
        # bound methods (still fast-dispatched, just not cache-inlined).
        self.mirror = mirror_eligible(hier)
        if self.mirror:
            self.access = make_fast_access(hier)
            self.issue_prefetch = make_fast_issue_prefetch(hier)
            self.l1 = hier.l1
            self.l1_sets = hier.l1._sets
            self.l1_mask = hier.l1._set_mask
            self.l1_assoc = hier.l1.geometry.associativity
            self.l2 = hier.l2
            self.l2_sets = hier.l2._sets
            self.l2_mask = hier.l2._set_mask
            self.l2_assoc = hier.l2.geometry.associativity
            self.l2_lat = hier.config.l2_latency
            self.mem_lat = hier.config.memory_latency
            self.inflight = hier._inflight
            self.pf_unused = hier._prefetched_unused
            self.block_shift = hier._block_shift
        self.call = None
        self.ret_value = 0


def _final_stats(state):
    """Assemble ExecStats from a finished parked state (reference layout)."""
    from repro.interp.interpreter import ExecStats

    stats = ExecStats()
    stats.cycles = state.cycles
    stats.instructions = state.icount
    stats.memory_refs = state.mem_refs
    stats.mem_stall_cycles = state.mem_stall
    stats.checks_executed = state.nchecks
    stats.bursts = state.bursts
    stats.traced_refs = state.traced
    stats.trace_charges = state.trace_chg
    stats.detect_cycles = state.detect_cyc
    stats.detects_executed = state.detects
    stats.prefetches_issued = state.pf_issued
    stats.charged_cycles = state.charged
    stats.return_value = state.return_value
    return stats


def _burst_transition(interp, state) -> None:
    """Replay the reference CHECK-transition block on the parked state.

    The compiled kernel has already charged ``check_cost``, counted the
    check, driven the counter to zero and flushed everything (including
    ``interp.dfsm_state``); this performs the mode switch, telemetry and
    listener callback in exactly the reference order.  The listener may
    mutate reload values, tracing flags and ``dfsm_state`` — the next
    kernel entry (or reference single-step) re-reads them, just as the
    reference loop does after a callback.
    """
    telem = interp.telemetry
    listener = interp.check_listener
    if state.mode == _CHECKING:
        state.mode = _INSTRUMENTED
        state.n_instr = interp.n_instr0
        if telem.enabled:
            telem.emit(BurstBegin(state.cycles))
        if listener is not None:
            extra = listener.burst_begin(state.cycles)
            state.cycles += extra
            state.charged += extra
            state.n_instr = interp.n_instr0
    else:
        state.mode = _CHECKING
        state.n_check = interp.n_check0
        state.bursts += 1
        if telem.enabled:
            telem.emit(BurstEnd(state.cycles, state.bursts))
        if listener is not None:
            extra = listener.burst_end(state.cycles)
            state.cycles += extra
            state.charged += extra
            # New reload values take effect for the period starting now.
            state.n_check = interp.n_check0


def run_fast(interp, state, limit: int, raise_on_limit: bool):
    """Drive ``state`` to completion or to ``limit`` instructions.

    Mirrors ``Interpreter._dispatch``'s contract: returns the final
    :class:`~repro.interp.interpreter.ExecStats` when the program finishes,
    None when the instruction limit parks it (``raise_on_limit=False``), and
    raises :class:`~repro.errors.ExecutionError` on the limit otherwise.
    """
    ctx = FastCtx(interp)
    program = interp.program
    mirror = ctx.mirror
    hwpref = interp.hw_prefetcher
    # Exact-type match: a subclass may override observe(), so only the two
    # known implementations get their observers compiled inline.
    if hwpref is None:
        hwkind = ""
    elif type(hwpref) is StridePrefetcher:
        hwkind = "stride"
    elif type(hwpref) is MarkovPrefetcher:
        hwkind = "markov"
    else:
        hwkind = "other"
    # Per-procedure attribution: compiled kernels flush every counter back
    # into `state` before returning a signal, so charging the parked state at
    # each procedure boundary is exact — the same charge points the reference
    # loop uses (CALL before the switch, RET before the pop, park/finish).
    pattr = interp.proc_attr
    # Per-run memo over the weak-keyed compile cache: the trampoline is
    # crossed on every call/return, and the WeakKeyDictionary lookup is
    # measurable at that frequency.  Strong keys are fine here — every proc
    # in the memo is alive for the duration of the run anyway.
    memo: dict = {}

    while True:
        if state.icount >= limit:
            if raise_on_limit:
                raise ExecutionError(
                    f"instruction limit {limit} exceeded in {state.proc.name}"
                )
            if pattr is not None:
                pattr.charge_state(state)
            return None
        mkey = (id(state.proc), state.mode)
        entry = memo.get(mkey)
        if entry is None:
            entry = compiled_entry(state.proc, state.mode, mirror, hwkind)
            memo[mkey] = entry if entry is not None else False
        elif entry is False:
            entry = None
        if (
            entry is None
            or state.ip not in entry.leaders
            or state.icount + entry.max_trace > limit
        ):
            # Reference single-step: resynchronise onto a trace leader, or
            # finish a bounded slice with exact per-instruction limit checks.
            stats = interp._dispatch(state, state.icount + 1, False)
            if stats is not None:
                return stats
            continue
        sig = entry.fn(ctx, state, limit)
        if sig == SIG_PARK:
            continue
        if sig == SIG_CALL:
            if pattr is not None:
                pattr.charge_state(state)
            dst, name, arg_regs = ctx.call
            callee = program.resolve(name)
            new_regs = [0] * callee.num_regs
            regs = state.regs
            for k, a in enumerate(arg_regs):
                new_regs[k] = regs[a]
            state.stack.append((state.proc, state.code_pair, state.ip, regs, dst))
            state.proc = callee
            state.code_pair = lower_procedure(callee)
            state.regs = new_regs
            state.ip = 0
        elif sig == SIG_RET:
            if pattr is not None:
                pattr.charge_state(state)
            value = ctx.ret_value
            stack = state.stack
            if not stack:
                state.return_value = value
                state.finished = True
                return _final_stats(state)
            proc, code_pair, ip, regs, dst = stack.pop()
            state.proc = proc
            state.code_pair = code_pair
            state.ip = ip
            state.regs = regs
            if dst is not None:
                regs[dst] = value
        elif sig == SIG_TRANS:
            _burst_transition(interp, state)
        else:  # SIG_DONE (HALT)
            if pattr is not None:
                pattr.charge_state(state)
            state.finished = True
            return _final_stats(state)
