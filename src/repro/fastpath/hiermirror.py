"""Specialized closures mirroring the MemoryHierarchy hot path exactly.

``MemoryHierarchy.access`` and ``issue_prefetch`` spend most of their time
on attribute loads and ``Cache`` method calls.  These factories build
closures over one hierarchy's internals — set lists, masks, latencies, the
in-flight and prefetched-unused dicts, the stats objects — with every cache
operation inlined, and are *line-for-line transliterations* of the
reference methods for the configuration they are built for:

* telemetry disabled (no sampling countdowns to advance), and
* no prefetch lifecycle ledger attached.

Every counter increment, LRU promotion, eviction classification and
per-stream attribution happens in the reference order against the same
underlying objects, so the hierarchy state after N operations is
bit-identical to N reference calls — the property ``check_fastpath_identity``
and ``tests/test_fastpath_equiv.py`` pin.  When the configuration is not
eligible (telemetry on, ledger attached, subclassed or wrapped hierarchy),
:class:`~repro.fastpath.kernel.FastCtx` binds the reference bound methods
instead and nothing here runs.

The closures intentionally duplicate reference logic instead of calling
into it; any change to ``repro.machine.hierarchy`` must be mirrored here
(the differential suite fails loudly if the two drift apart).
"""

from __future__ import annotations

from repro.machine.hierarchy import StreamPrefetchStats


def mirror_eligible(hier) -> bool:
    """Whether the closures below are exact for this hierarchy *right now*."""
    from repro.machine.cache import Cache
    from repro.machine.hierarchy import MemoryHierarchy

    return (
        type(hier) is MemoryHierarchy
        and type(hier.l1) is Cache
        and type(hier.l2) is Cache
        and getattr(hier.access, "__func__", None) is MemoryHierarchy.access
        and getattr(hier.issue_prefetch, "__func__", None)
        is MemoryHierarchy.issue_prefetch
        and not hier.telemetry.enabled
        and hier.ledger is None
    )


def make_fast_access(hier):
    """Closure equivalent to ``MemoryHierarchy.access`` (telemetry off, no ledger)."""
    l1 = hier.l1
    l2 = hier.l2
    l1_sets = l1._sets
    l1_mask = l1._set_mask
    l1_assoc = l1.geometry.associativity
    l2_sets = l2._sets
    l2_mask = l2._set_mask
    l2_assoc = l2.geometry.associativity
    shift = hier._block_shift
    inflight = hier._inflight
    pf_unused = hier._prefetched_unused
    prefetch = hier.prefetch
    stream_of = hier._stream_of
    stream_stats = hier.stream_stats
    l2_lat = hier.config.l2_latency
    mem_lat = hier.config.memory_latency

    def note(block: int, outcome: str) -> None:
        # _note_outcome: credit a classified prefetch to its issuing stream.
        key = stream_of.pop(block, None)
        if key is None:
            return
        stats = stream_stats.get(key)
        if stats is None:
            stats = stream_stats[key] = StreamPrefetchStats()
        setattr(stats, outcome, getattr(stats, outcome) + 1)

    def fast_access(addr: int, now: int) -> int:
        hier.demand_accesses += 1
        block = addr >> shift
        stall = 0
        if block in inflight:
            ready = inflight.pop(block)
            if ready > now:
                stall = ready - now
                prefetch.late += 1
                if stream_of:
                    note(block, "late")
                pf_unused.pop(block, None)
            # on-time arrivals are counted below when the L1 lookup hits
        way = l1_sets[block & l1_mask]
        if block in way:
            # l1.lookup hit: promote to MRU, count
            l1.hits += 1
            if way[-1] != block:
                way.remove(block)
                way.append(block)
            if block in pf_unused:
                del pf_unused[block]
                prefetch.useful += 1
                if stream_of:
                    note(block, "useful")
            return stall
        l1.misses += 1
        way2 = l2_sets[block & l2_mask]
        if block in way2:
            # l2.lookup hit
            l2.hits += 1
            if way2[-1] != block:
                way2.remove(block)
                way2.append(block)
            stall += l2_lat
            if block in pf_unused:
                del pf_unused[block]
                prefetch.useful += 1
                if stream_of:
                    note(block, "useful")
        else:
            l2.misses += 1
            stall += mem_lat
            # _install_l2: install with inclusion — an L2 eviction also
            # removes the L1 copy, and an unused prefetched victim is wasted.
            if len(way2) >= l2_assoc:
                victim = way2.pop(0)
                l2.evictions += 1
                wv = l1_sets[victim & l1_mask]
                if victim in wv:
                    wv.remove(victim)
                if victim in pf_unused:
                    del pf_unused[victim]
                    inflight.pop(victim, None)
                    prefetch.wasted += 1
                    if stream_of:
                        note(victim, "wasted")
            way2.append(block)
        # _install_l1 (the looked-up block is never resident here)
        if len(way) >= l1_assoc:
            victim = way.pop(0)
            l1.evictions += 1
            if victim in pf_unused and victim not in l2_sets[victim & l2_mask]:
                del pf_unused[victim]
                inflight.pop(victim, None)
                prefetch.wasted += 1
                if stream_of:
                    note(victim, "wasted")
        way.append(block)
        return stall

    return fast_access


def make_fast_issue_prefetch(hier):
    """Closure equivalent to ``MemoryHierarchy.issue_prefetch`` (same terms)."""
    l1 = hier.l1
    l2 = hier.l2
    l1_sets = l1._sets
    l1_mask = l1._set_mask
    l1_assoc = l1.geometry.associativity
    l2_sets = l2._sets
    l2_mask = l2._set_mask
    l2_assoc = l2.geometry.associativity
    shift = hier._block_shift
    inflight = hier._inflight
    pf_unused = hier._prefetched_unused
    prefetch = hier.prefetch
    stream_of = hier._stream_of
    stream_stats = hier.stream_stats
    l2_lat = hier.config.l2_latency
    mem_lat = hier.config.memory_latency

    def note(block: int, outcome: str) -> None:
        key = stream_of.pop(block, None)
        if key is None:
            return
        stats = stream_stats.get(key)
        if stats is None:
            stats = stream_stats[key] = StreamPrefetchStats()
        setattr(stats, outcome, getattr(stats, outcome) + 1)

    def fast_issue_prefetch(addr: int, now: int, source: str = "sw") -> None:
        prefetch.issued += 1
        by_source = prefetch.by_source
        by_source[source] = by_source.get(source, 0) + 1
        block = addr >> shift
        # _stream_map is swapped by the optimizer at every install; re-read.
        smap = hier._stream_map
        skey = smap.get(block) if smap is not None else None
        if skey is not None:
            sstats = stream_stats.get(skey)
            if sstats is None:
                sstats = stream_stats[skey] = StreamPrefetchStats()
            sstats.issued += 1
        if block in l1_sets[block & l1_mask] or block in inflight:
            prefetch.redundant += 1
            if skey is not None:
                sstats.redundant += 1
            return
        if block in l2_sets[block & l2_mask]:
            # L2-resident: promote to L1 quickly.
            inflight[block] = now + l2_lat
        else:
            inflight[block] = now + mem_lat
            # _install_l2 with inclusion (see fast_access)
            way2 = l2_sets[block & l2_mask]
            if len(way2) >= l2_assoc:
                victim = way2.pop(0)
                l2.evictions += 1
                wv = l1_sets[victim & l1_mask]
                if victim in wv:
                    wv.remove(victim)
                if victim in pf_unused:
                    del pf_unused[victim]
                    inflight.pop(victim, None)
                    prefetch.wasted += 1
                    if stream_of:
                        note(victim, "wasted")
            way2.append(block)
        # _install_l1 (block is not resident: contains() above said no)
        way = l1_sets[block & l1_mask]
        if len(way) >= l1_assoc:
            victim = way.pop(0)
            l1.evictions += 1
            if victim in pf_unused and victim not in l2_sets[victim & l2_mask]:
                del pf_unused[victim]
                inflight.pop(victim, None)
                prefetch.wasted += 1
                if stream_of:
                    note(victim, "wasted")
        way.append(block)
        pf_unused[block] = now
        if skey is not None:
            stream_of[block] = skey

    return fast_issue_prefetch
