"""Trace compiler: lowered tuple code -> generated Python superblock kernels.

For one procedure version (checking or instrumented) the compiler emits a
single Python function of the shape::

    def _fp(ctx, state, limit):
        ... bind hierarchy/config/interpreter attributes to locals ...
        _r0 = regs[0]; _r1 = regs[1]; ...        # registers become locals
        while True:
            if icount + MAX_TRACE > limit:
                break                            # park: trampoline takes over
            if ip == 0:
                ... superblock trace from leader 0 ...
            elif ip == 17:
                ...
            else:
                break                            # unknown ip: single-step sync
        ... flush locals back into state ...
        return SIG_PARK

Each *trace* is the straight-line superblock starting at a leader: emission
walks forward through the tuple code, inlining ALU/compare/mov/const as
plain expressions, conditional branches as ``if reg: ip = T; continue``
(fallthrough stays inside the trace), and memory references as either an
inline L1-hit mirror (plain :class:`~repro.machine.hierarchy.MemoryHierarchy`
only) or a call to the real ``hierarchy.access``.  ``icount``/``cycles``
increments are batched between observation points, which is where most of
the speedup comes from.

Instructions that leave the procedure or mutate interpreter-global state
(CALL, RET, HALT, a CHECK whose counter reaches zero) flush the locals and
return a signal; the trampoline in :mod:`repro.fastpath.kernel` replays the
exact reference semantics for those rare events.

Bit-identity ground rules (see DESIGN.md §5h):

* every counter update, cost charge, telemetry emission and callback happens
  in exactly the reference order — the generated source for each opcode is a
  transliteration of the matching ``Interpreter._dispatch`` arm;
* the inline L1 mirror only short-circuits the one case where
  ``MemoryHierarchy.access`` does nothing but ``demand_accesses += 1``,
  ``l1.hits += 1`` and an LRU promotion (block resident in L1, not
  in-flight, not prefetched-and-unused); every other case calls the real
  ``access`` so classification, sampling and the ledger are untouched;
* anything the compiler cannot prove equivalent is not compiled — the
  trampoline falls back to the reference dispatch loop instruction by
  instruction.
"""

from __future__ import annotations

import operator
import weakref
from typing import Optional

from repro.interp.lowering import (
    OP_ALLOC,
    OP_ALU,
    OP_ALUI,
    OP_BNZ,
    OP_BZ,
    OP_CALL,
    OP_CHECK,
    OP_CMP,
    OP_CONST,
    OP_HALT,
    OP_JMP,
    OP_LOAD,
    OP_MOV,
    OP_NOP,
    OP_PREFETCH,
    OP_RET,
    OP_STORE,
    _shl,
    _shr,
    lower_procedure,
)
from repro.errors import MemoryFault

#: Signals a compiled kernel returns to the trampoline.
SIG_PARK = 0    #: limit proximity or unknown leader; state flushed, not done
SIG_DONE = 1    #: HALT (final RET is SIG_RET with an empty stack)
SIG_CALL = 2    #: OP_CALL pending; ``ctx.call`` holds (dst, name, arg_regs)
SIG_RET = 3     #: OP_RET pending; ``ctx.ret_value`` holds the value
SIG_TRANS = 4   #: CHECK counter hit zero; burst transition pending

#: Upper bound on instructions emitted into one superblock trace.  Also the
#: slack the dispatcher keeps from the instruction limit: once fewer than
#: this many instructions remain in the slice budget the kernel parks and
#: the trampoline finishes the tail through the reference dispatch loop.
TRACE_CAP = 96

_ALU_SYM = {
    operator.add: "+",
    operator.sub: "-",
    operator.mul: "*",
    operator.floordiv: "//",
    operator.mod: "%",
    operator.and_: "&",
    operator.or_: "|",
    operator.xor: "^",
    _shl: "<<",
    _shr: ">>",
}

_CMP_SYM = {
    operator.lt: "<",
    operator.le: "<=",
    operator.eq: "==",
    operator.ne: "!=",
    operator.gt: ">",
    operator.ge: ">=",
}


class CompiledMode:
    """One compiled procedure version plus the metadata the trampoline needs."""

    __slots__ = ("fn", "leaders", "max_trace", "source")

    def __init__(self, fn, leaders: frozenset, max_trace: int, source: str) -> None:
        self.fn = fn
        self.leaders = leaders
        self.max_trace = max_trace
        self.source = source


class _Emitter:
    """Indentation-aware line buffer for the generated source."""

    def __init__(self, indent: int = 0) -> None:
        self.lines: list[str] = []
        self.indent = indent

    def w(self, line: str) -> None:
        self.lines.append("    " * self.indent + line)


def _compile_mode(
    code: list[tuple], num_regs: int, mode: int, mirror: bool, hwkind: str
) -> CompiledMode:
    """Compile one lowered code list; raises on anything unrecognised."""
    n = len(code)
    counter_attr = "n_check" if mode == 0 else "n_instr"

    # ---- leaders: every ip the generated dispatcher must accept ----------
    leaders: set[int] = {0}
    refcount: dict[int, int] = {0: 1}

    def _lead(target: int) -> None:
        leaders.add(target)
        refcount[target] = refcount.get(target, 0) + 1

    for i, t in enumerate(code):
        op = t[0]
        if op in (OP_BZ, OP_BNZ):
            _lead(t[2])
        elif op == OP_JMP:
            _lead(t[1])
        elif op in (OP_CALL, OP_CHECK):
            # re-entry points after a trampoline crossing
            _lead(i + 1)
    # Targets outside the body (including == n) are left to the reference
    # loop, which raises the exact IndexError/ExecutionError the program earns.
    leaders = {L for L in leaders if 0 <= L < n}

    consts: list[object] = []
    const_ix: dict[int, int] = {}

    def K(obj: object) -> str:
        ix = const_ix.get(id(obj))
        if ix is None:
            ix = len(consts)
            consts.append(obj)
            const_ix[id(obj)] = ix
        return f"K{ix}"

    uses: set[str] = set()

    def _emit_trace(L: int, em: _Emitter) -> tuple[int, list[int]]:
        """Emit the superblock starting at leader ``L`` at em's indent.

        Returns (instructions emitted, extra leaders discovered via the
        trace cap)."""
        extra: list[int] = []
        pend_ic = 0  # batched icount increments not yet materialised
        pend_cy = 0  # batched cycles increments not yet materialised

        def flush_cy() -> None:
            nonlocal pend_cy
            if pend_cy:
                em.w(f"cycles += {pend_cy}")
                pend_cy = 0

        def flush_ic() -> None:
            nonlocal pend_ic
            if pend_ic:
                em.w(f"icount += {pend_ic}")
                pend_ic = 0

        def emit_exit(sig: int, park_ip: int, conditional: bool = False) -> None:
            # Inside a conditional branch the pending increments must be
            # materialised on the exit path *without* clearing them: the
            # fallthrough continues the trace and still owes them.
            nonlocal pend_ic, pend_cy
            if pend_ic:
                em.w(f"icount += {pend_ic}")
                if not conditional:
                    pend_ic = 0
            if pend_cy:
                em.w(f"cycles += {pend_cy}")
                if not conditional:
                    pend_cy = 0
            em.w(f"ip = {park_ip}")
            for line in _flush_stmts(num_regs, counter_attr):
                em.w(line)
            em.w(f"return {sig}")

        count = 0
        i = L
        while True:
            if i >= n:
                # fell off the end: the reference loop raises the IndexError
                flush_ic()
                flush_cy()
                em.w(f"ip = {n}")
                em.w("continue")
                break
            if count >= TRACE_CAP:
                flush_ic()
                flush_cy()
                em.w(f"ip = {i}")
                em.w("continue")
                extra.append(i)
                break
            t = code[i]
            op = t[0]
            pend_ic += 1
            pend_cy += 1
            count += 1

            if op in (OP_LOAD, OP_STORE):
                # (op, dst/src, base, offset, pc, traced, detect)
                uses.add("mem_ops")
                word = "load" if op == OP_LOAD else "store"
                off = t[3]
                if off:
                    em.w(f"addr = _r{t[2]} + {off}" if off > 0 else f"addr = _r{t[2]} - {-off}")
                else:
                    em.w(f"addr = _r{t[2]}")
                em.w("if addr & 3 or addr < 0:")
                em.indent += 1
                em.w(
                    f'raise MemoryFault(f"bad {word} address {{addr:#x}} at {{{K(t[4])}}}")'
                )
                em.indent -= 1
                flush_cy()
                if mirror:
                    # Inline L1-hit and pure-miss paths: exact while no
                    # prefetch state is outstanding (no in-flight blocks, no
                    # prefetched-unused blocks), because then the classify/
                    # ledger/attribution branches of ``access`` and the
                    # eviction accounting are all no-ops; anything else goes
                    # through ctx.access (the specialized closure, which is
                    # exact for every case).
                    #
                    # ``lblk`` memoizes the previous access's block: every
                    # inline path leaves its block MRU in L1 and outside the
                    # prefetch dicts, and nothing between two memory ops can
                    # disturb that (any prefetch issue or slow call resets
                    # the memo), so a back-to-back re-access is exactly a
                    # hit whose LRU promotion is a no-op.  Hit/miss/demand
                    # counters batch into locals (``hits1``/``miss1``/
                    # ``d_acc``) flushed by the function's finally block —
                    # pure monotonic counters nothing reads mid-kernel.
                    uses.add("mirror")
                    em.w("block = addr >> bshift")
                    em.w("if block == lblk:")
                    em.indent += 1
                    em.w("d_acc += 1")
                    em.w("hits1 += 1")
                    em.indent -= 1
                    em.w("else:")
                    em.indent += 1
                    em.w("way = l1_sets[block & l1_mask]")
                    em.w("if block in way:")
                    em.indent += 1
                    em.w("if block in inflight or block in pf_unused:")
                    em.indent += 1
                    em.w("stall = access(addr, cycles)")
                    em.w("cycles += stall")
                    em.w("mem_stall += stall")
                    em.w("lblk = -1")
                    em.indent -= 1
                    em.w("else:")
                    em.indent += 1
                    em.w("d_acc += 1")
                    em.w("hits1 += 1")
                    em.w("if way[-1] != block:")
                    em.indent += 1
                    em.w("way.remove(block)")
                    em.w("way.append(block)")
                    em.indent -= 1
                    em.w("lblk = block")
                    em.indent -= 1
                    em.indent -= 1
                    em.w("elif inflight or pf_unused:")
                    em.indent += 1
                    em.w("stall = access(addr, cycles)")
                    em.w("cycles += stall")
                    em.w("mem_stall += stall")
                    em.w("lblk = -1")
                    em.indent -= 1
                    em.w("else:")
                    em.indent += 1
                    em.w("d_acc += 1")
                    em.w("miss1 += 1")
                    em.w("way2 = l2_sets[block & l2_mask]")
                    em.w("if block in way2:")
                    em.indent += 1
                    em.w("l2.hits += 1")
                    em.w("if way2[-1] != block:")
                    em.indent += 1
                    em.w("way2.remove(block)")
                    em.w("way2.append(block)")
                    em.indent -= 1
                    em.w("cycles += l2_lat")
                    em.w("mem_stall += l2_lat")
                    em.indent -= 1
                    em.w("else:")
                    em.indent += 1
                    em.w("l2.misses += 1")
                    em.w("cycles += mem_lat")
                    em.w("mem_stall += mem_lat")
                    em.w("if len(way2) >= l2_assoc:")
                    em.indent += 1
                    em.w("victim = way2.pop(0)")
                    em.w("l2.evictions += 1")
                    em.w("wv = l1_sets[victim & l1_mask]")
                    em.w("if victim in wv:")
                    em.indent += 1
                    em.w("wv.remove(victim)")
                    em.indent -= 1
                    em.indent -= 1
                    em.w("way2.append(block)")
                    em.indent -= 1
                    em.w("if len(way) >= l1_assoc:")
                    em.indent += 1
                    em.w("way.pop(0)")
                    em.w("l1.evictions += 1")
                    em.indent -= 1
                    em.w("way.append(block)")
                    em.w("lblk = block")
                    em.indent -= 1
                    em.indent -= 1
                else:
                    em.w("stall = access(addr, cycles)")
                    em.w("cycles += stall")
                    em.w("mem_stall += stall")
                em.w("mem_refs += 1")
                if op == OP_LOAD:
                    em.w(f"_r{t[1]} = mget(addr, 0)")
                else:
                    em.w(f"mem[addr] = _r{t[1]}")
                if t[5]:
                    uses.add("trace")
                    em.w("cycles += trace_cost")
                    em.w("trace_chg += 1")
                    em.w("if tracing and sink is not None:")
                    em.indent += 1
                    em.w("traced += 1")
                    em.w("if rpush is not None:")
                    em.indent += 1
                    em.w(f"rpush(({K(t[4])}, addr))")
                    em.indent -= 1
                    em.w("else:")
                    em.indent += 1
                    em.w(f"sink({K(t[4])}, addr)")
                    em.indent -= 1
                    em.indent -= 1
                det = t[6]
                if det is not None:
                    uses.add("detect")
                    em.w(f"dstate, prefetches, cases = {K(det)}.step(dstate, addr)")
                    em.w("detects += 1")
                    em.w("extra = detect_base + detect_per_case * cases")
                    em.w("cycles += extra")
                    em.w("detect_cyc += extra")
                    em.w("if prefetches:")
                    em.indent += 1
                    em.w("for a in prefetches:")
                    em.indent += 1
                    em.w("issue_prefetch(a, cycles, pf_source)")
                    em.w("cycles += pf_cost")
                    em.indent -= 1
                    em.w("pf_issued += len(prefetches)")
                    if mirror:
                        em.w("lblk = -1")
                    em.indent -= 1
                if hwkind == "stride":
                    # Transliterated StridePrefetcher.observe with the table,
                    # bounds and block size bound at kernel entry.  The table
                    # lives on the prefetcher object, so state carries across
                    # kernel exits exactly as with the method call.
                    uses.add("hwstride")
                    em.w(f"entry = st_get({K(t[4])})")
                    em.w("if entry is None:")
                    em.indent += 1
                    em.w("if len(st_table) >= st_size:")
                    em.indent += 1
                    em.w("st_pop(last=False)")
                    em.indent -= 1
                    em.w(f"st_table[{K(t[4])}] = [addr, 0, 0]")
                    em.indent -= 1
                    em.w("else:")
                    em.indent += 1
                    em.w("delta = addr - entry[0]")
                    em.w("stride = entry[1]")
                    em.w("if delta == stride and delta != 0:")
                    em.indent += 1
                    em.w("confidence = entry[2] + 1")
                    em.indent -= 1
                    em.w("else:")
                    em.indent += 1
                    em.w("stride = delta")
                    em.w("confidence = 0")
                    em.indent -= 1
                    em.w("entry[0] = addr")
                    em.w("entry[1] = stride")
                    em.w("entry[2] = confidence")
                    em.w("if confidence >= st_min and stride != 0:")
                    em.indent += 1
                    em.w(
                        "step = stride if abs(stride) >= st_block"
                        " else (st_block if stride > 0 else -st_block)"
                    )
                    em.w("for _k in range(1, st_degree + 1):")
                    em.indent += 1
                    em.w("target = addr + step * _k")
                    em.w("if target >= 0:")
                    em.indent += 1
                    em.w('issue_prefetch(target, cycles, "stride")')
                    em.indent -= 1
                    em.indent -= 1
                    if mirror:
                        em.w("lblk = -1")
                    em.indent -= 1
                    em.indent -= 1
                elif hwkind == "markov":
                    # Transliterated MarkovPrefetcher.observe.  _last_block is
                    # read/written through the prefetcher attribute at each
                    # site so it survives kernel parks and trampoline
                    # crossings without a flush path of its own.
                    uses.add("hwmarkov")
                    em.w("block = addr >> mk_shift")
                    em.w("mk_last = hwpref._last_block")
                    em.w("if mk_last is not None and block != mk_last:")
                    em.indent += 1
                    em.w("successors = mk_get(mk_last)")
                    em.w("if successors is None:")
                    em.indent += 1
                    em.w("if len(mk_table) >= mk_size:")
                    em.indent += 1
                    em.w("mk_pop(last=False)")
                    em.indent -= 1
                    em.w("successors = {}")
                    em.w("mk_table[mk_last] = successors")
                    em.indent -= 1
                    em.w("successors[block] = successors.get(block, 0) + 1")
                    em.indent -= 1
                    em.w("if block != mk_last:")
                    em.indent += 1
                    em.w("predicted = mk_get(block)")
                    em.w("if predicted:")
                    em.indent += 1
                    em.w("for successor, _count in sorted(predicted.items(), key=_MK_RANK)[:mk_fanout]:")
                    em.indent += 1
                    em.w('issue_prefetch(successor << mk_shift, cycles, "markov")')
                    em.indent -= 1
                    if mirror:
                        em.w("lblk = -1")
                    em.indent -= 1
                    em.indent -= 1
                    em.w("hwpref._last_block = block")
                elif hwkind:
                    # Unknown prefetcher implementation: keep the method call.
                    uses.add("hwpref")
                    em.w(f"hwpref.observe({K(t[4])}, addr, cycles, hier)")
                    if mirror:
                        em.w("lblk = -1")

            elif op == OP_ALUI:
                # (op, func, dst, a, imm)
                sym = _ALU_SYM.get(t[1])
                if sym is not None:
                    em.w(f"_r{t[2]} = _r{t[3]} {sym} ({t[4]})")
                else:
                    em.w(f"_r{t[2]} = {K(t[1])}(_r{t[3]}, {t[4]})")
            elif op == OP_ALU:
                sym = _ALU_SYM.get(t[1])
                if sym is not None:
                    em.w(f"_r{t[2]} = _r{t[3]} {sym} _r{t[4]}")
                else:
                    em.w(f"_r{t[2]} = {K(t[1])}(_r{t[3]}, _r{t[4]})")
            elif op == OP_CMP:
                sym = _CMP_SYM.get(t[1])
                if sym is not None:
                    em.w(f"_r{t[2]} = 1 if _r{t[3]} {sym} _r{t[4]} else 0")
                else:
                    em.w(f"_r{t[2]} = 1 if {K(t[1])}(_r{t[3]}, _r{t[4]}) else 0")
            elif op in (OP_BZ, OP_BNZ):
                cmp = "==" if op == OP_BZ else "!="
                em.w(f"if _r{t[1]} {cmp} 0:")
                em.indent += 1
                if pend_ic:
                    em.w(f"icount += {pend_ic}")
                if pend_cy:
                    em.w(f"cycles += {pend_cy}")
                em.w(f"ip = {t[2]}")
                em.w("continue")
                em.indent -= 1
                # fallthrough continues the trace with the same pending costs
            elif op == OP_JMP:
                flush_ic()
                flush_cy()
                em.w(f"ip = {t[1]}")
                em.w("continue")
                break
            elif op == OP_MOV:
                em.w(f"_r{t[1]} = _r{t[2]}")
            elif op == OP_CONST:
                # Large constants go through the K table instead of the
                # source text: the dynamic editor's injected prefetch
                # targets are heap addresses that change every reinjection,
                # and keeping them out of the source lets all injected
                # copies share one exec'd maker (see _MAKERS).
                value = t[2]
                if isinstance(value, int) and abs(value) > 0xFFFF:
                    em.w(f"_r{t[1]} = {K(value)}")
                else:
                    em.w(f"_r{t[1]} = {value}")
            elif op == OP_CHECK:
                uses.add("check")
                flush_cy()
                em.w("cycles += check_cost")
                em.w("nchecks += 1")
                em.w("ncnt -= 1")
                em.w("if ncnt == 0:")
                em.indent += 1
                emit_exit(SIG_TRANS, i + 1, conditional=True)
                em.indent -= 1
            elif op == OP_CALL:
                # (op, dst, name, args) — trampoline performs the call
                em.w(f"ctx.call = {K((t[1], t[2], t[3]))}")
                emit_exit(SIG_CALL, i + 1)
                break
            elif op == OP_RET:
                if t[1] is not None:
                    em.w(f"ctx.ret_value = _r{t[1]}")
                else:
                    em.w("ctx.ret_value = 0")
                emit_exit(SIG_RET, i + 1)
                break
            elif op == OP_ALLOC:
                uses.add("alloc")
                em.w(f"_r{t[1]} = allocate(_r{t[2]})")
            elif op == OP_PREFETCH:
                uses.add("prefetch")
                flush_cy()
                if t[1]:
                    em.w(f"for a in {K(t[1])}:")
                    em.indent += 1
                    em.w("issue_prefetch(a, cycles, pf_source)")
                    em.w("cycles += pf_cost")
                    em.indent -= 1
                    em.w(f"pf_issued += {len(t[1])}")
                    if mirror:
                        em.w("lblk = -1")
            elif op == OP_HALT:
                emit_exit(SIG_DONE, i + 1)
                break
            elif op == OP_NOP:
                pass
            else:
                raise ValueError(f"fastpath: unknown opcode {op}")
            i += 1
        return count, extra

    # ---- emit all traces (the cap can mint new leaders) ------------------
    bodies: dict[int, list[str]] = {}
    max_trace = 1
    worklist = sorted(leaders)
    while worklist:
        L = worklist.pop()
        if L in bodies:
            continue
        em = _Emitter(indent=0)
        count, extra = _emit_trace(L, em)
        bodies[L] = em.lines
        max_trace = max(max_trace, count)
        for j in extra:
            if j not in leaders:
                leaders.add(j)
                worklist.append(j)
            refcount[j] = refcount.get(j, 0) + 1

    # ---- assemble the module source --------------------------------------
    out = _Emitter()
    out.w("def _make(K):")
    out.indent += 1
    for ix in range(len(consts)):
        out.w(f"K{ix} = K[{ix}]")
    out.w("def _fp(ctx, state, limit):")
    out.indent += 1
    out.w("interp = ctx.interp")
    if uses & {"mem_ops", "mirror", "hwpref"}:
        out.w("hier = ctx.hier")
    if "mem_ops" in uses:
        out.w("access = ctx.access")
        out.w("mem = ctx.mem")
        out.w("mget = mem.get")
    if uses & {"detect", "prefetch", "hwstride", "hwmarkov"}:
        out.w("issue_prefetch = ctx.issue_prefetch")
    if uses & {"detect", "prefetch"}:
        out.w("pf_cost = ctx.pf_cost")
        out.w("pf_source = interp.prefetch_source")
    if "alloc" in uses:
        out.w("allocate = ctx.allocate")
    if "trace" in uses:
        out.w("trace_cost = ctx.trace_cost")
        out.w("tracing = interp.tracing_enabled")
        out.w("sink = interp.trace_sink")
        out.w('rbuf = getattr(sink, "ref_buffer", None)')
        out.w("rpush = None if rbuf is None else rbuf.append")
    if "check" in uses:
        out.w("check_cost = ctx.check_cost")
    if "detect" in uses:
        out.w("detect_base = ctx.detect_base")
        out.w("detect_per_case = ctx.detect_per_case")
    if "hwpref" in uses:
        out.w("hwpref = interp.hw_prefetcher")
    if "hwstride" in uses:
        out.w("hwpref = interp.hw_prefetcher")
        out.w("st_table = hwpref._table")
        out.w("st_get = st_table.get")
        out.w("st_pop = st_table.popitem")
        out.w("st_size = hwpref.table_size")
        out.w("st_min = hwpref.min_confidence")
        out.w("st_degree = hwpref.degree")
        out.w("st_block = ctx.hier.config.block_bytes")
    if "hwmarkov" in uses:
        out.w("hwpref = interp.hw_prefetcher")
        out.w("mk_table = hwpref._table")
        out.w("mk_get = mk_table.get")
        out.w("mk_pop = mk_table.popitem")
        out.w("mk_size = hwpref.table_size")
        out.w("mk_fanout = hwpref.fanout")
        out.w("mk_shift = ctx.hier.config.block_bytes.bit_length() - 1")
    if "mirror" in uses:
        out.w("l1 = ctx.l1")
        out.w("l1_sets = ctx.l1_sets")
        out.w("l1_mask = ctx.l1_mask")
        out.w("l1_assoc = ctx.l1_assoc")
        out.w("l2 = ctx.l2")
        out.w("l2_sets = ctx.l2_sets")
        out.w("l2_mask = ctx.l2_mask")
        out.w("l2_assoc = ctx.l2_assoc")
        out.w("l2_lat = ctx.l2_lat")
        out.w("mem_lat = ctx.mem_lat")
        out.w("inflight = ctx.inflight")
        out.w("pf_unused = ctx.pf_unused")
        out.w("bshift = ctx.block_shift")
    out.w("dstate = interp.dfsm_state")
    out.w("regs = state.regs")
    for r in range(num_regs):
        out.w(f"_r{r} = regs[{r}]")
    out.w("ip = state.ip")
    out.w("cycles = state.cycles")
    out.w("icount = state.icount")
    out.w("mem_refs = state.mem_refs")
    out.w("mem_stall = state.mem_stall")
    out.w("nchecks = state.nchecks")
    out.w("traced = state.traced")
    out.w("trace_chg = state.trace_chg")
    out.w("detect_cyc = state.detect_cyc")
    out.w("detects = state.detects")
    out.w("pf_issued = state.pf_issued")
    out.w(f"ncnt = state.{counter_attr}")
    batched = "mirror" in uses
    if batched:
        # Monotonic hierarchy counters batch into locals; the finally block
        # flushes them on every exit — returns, limit parks, and exceptions
        # (MemoryFault / ZeroDivisionError abort mid-trace, and the reference
        # applies these counters eagerly, so the flush must still happen).
        out.w("d_acc = 0")
        out.w("hits1 = 0")
        out.w("miss1 = 0")
        out.w("lblk = -1")
        out.w("try:")
        out.indent += 1
    out.w("while True:")
    out.indent += 1
    out.w(f"if icount + {max_trace} > limit:")
    out.indent += 1
    out.w("break")
    out.indent -= 1
    order = sorted(bodies, key=lambda L: (-refcount.get(L, 0), L))
    for pos, L in enumerate(order):
        out.w(f"{'if' if pos == 0 else 'elif'} ip == {L}:")
        out.indent += 1
        for line in bodies[L]:
            out.w(line)
        out.indent -= 1
    out.w("else:")
    out.indent += 1
    out.w("break")
    out.indent -= 1
    out.indent -= 1
    for line in _flush_stmts(num_regs, counter_attr):
        out.w(line)
    out.w(f"return {SIG_PARK}")
    if batched:
        out.indent -= 1
        out.w("finally:")
        out.indent += 1
        out.w("if d_acc:")
        out.indent += 1
        out.w("hier.demand_accesses += d_acc")
        out.w("l1.hits += hits1")
        out.w("l1.misses += miss1")
        out.indent -= 1
        out.indent -= 1
    out.indent -= 1
    out.w("return _fp")

    source = "\n".join(out.lines) + "\n"
    # The dynamic editor re-injects detection by patching in fresh Procedure
    # copies every awake transition; their lowered code differs only in the
    # identity of baked-in constants (DetectHandler objects), never in the
    # generated source.  Memoising the exec'd maker on the source text turns
    # those recompiles into a dict hit plus a _make(consts) call.
    make = _MAKERS.get(source)
    if make is None:
        namespace: dict[str, object] = {"MemoryFault": MemoryFault, "_MK_RANK": _MK_RANK}
        exec(compile(source, f"<fastpath:{counter_attr}>", "exec"), namespace)
        make = namespace["_make"]
        _MAKERS[source] = make
    fn = make(consts)
    return CompiledMode(fn, frozenset(leaders), max_trace, source)


#: source text -> exec'd ``_make`` closure factory (see _compile_mode).
_MAKERS: dict = {}


def _MK_RANK(kv):
    """Markov successor ranking key (count-descending, insertion-stable)."""
    return -kv[1]


def _flush_stmts(num_regs: int, counter_attr: str) -> list[str]:
    """Statements writing every kernel local back into the parked state."""
    stmts = [f"regs[{r}] = _r{r}" for r in range(num_regs)]
    stmts += [
        "state.ip = ip",
        "state.cycles = cycles",
        "state.icount = icount",
        "state.mem_refs = mem_refs",
        "state.mem_stall = mem_stall",
        "state.nchecks = nchecks",
        "state.traced = traced",
        "state.trace_chg = trace_chg",
        "state.detect_cyc = detect_cyc",
        "state.detects = detects",
        "state.pf_issued = pf_issued",
        f"state.{counter_attr} = ncnt",
        "interp.dfsm_state = dstate",
    ]
    return stmts


#: proc -> {(mode, mirror, hwkind) -> CompiledMode | None}.  Keyed weakly so
#: compiled functions never become part of the procedure object (checkpoints
#: pickle procedures; generated functions are unpicklable and are instead
#: transparently recompiled after a restore).
_CACHE: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()

_MISSING = object()


def compiled_entry(proc, mode: int, mirror: bool, hwkind: str) -> Optional[CompiledMode]:
    """Compiled kernel for one procedure version, or None if not compilable.

    ``hwkind`` selects the hardware-prefetcher specialization: "" (none),
    "stride"/"markov" (inlined observers), or "other" (method call).
    """
    per = _CACHE.get(proc)
    if per is None:
        per = {}
        _CACHE[proc] = per
    key = (mode, mirror, hwkind)
    entry = per.get(key, _MISSING)
    if entry is _MISSING:
        try:
            code = lower_procedure(proc)[mode]
            entry = _compile_mode(code, proc.num_regs, mode, mirror, hwkind)
        except Exception:
            # Anything unrecognised falls back to the reference interpreter.
            entry = None
        per[key] = entry
    return entry


def clear_cache() -> None:
    """Drop all compiled code (tests use this to force recompilation)."""
    _CACHE.clear()
    _MAKERS.clear()
