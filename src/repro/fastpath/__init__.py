"""Compiled fast-path execution kernel (bit-identical to the interpreter).

``repro.fastpath`` lowers each procedure's dense tuple code into generated
Python source — straight-line superblock traces with registers held in local
variables, inline ALU/compare operators, and an inline L1-hit mirror for the
cache lookup — compiled once per (procedure, mode) with ``exec`` and driven
by a small trampoline (:mod:`repro.fastpath.kernel`) that handles calls,
returns, burst transitions and slice limits through the exact reference
code paths.

The contract is bit-identity, not approximate agreement: a fast run must
produce the same :class:`~repro.interp.interpreter.ExecStats`, hierarchy
counters, per-stream attribution and telemetry as the reference dispatch
loop (enforced by ``check_fastpath_identity`` in ``repro-bench verify`` and
by ``tests/test_fastpath_equiv.py``).

The toggle is layered:

* ``Interpreter.run(..., fast=True/False)`` / ``run_slice(..., fast=...)``
  force one execution;
* with ``fast=None`` (the default everywhere) the ``REPRO_FASTPATH``
  environment variable decides, so the flag reaches engine pool workers,
  tenancy slices and durability resume loops without any plumbing;
* ``repro-bench --fast`` simply sets ``REPRO_FASTPATH=1`` for the process
  (and therefore for its pool workers).

Compiled code is cached in a :class:`weakref.WeakKeyDictionary` keyed on the
procedure object — never on the procedure itself — so pickled checkpoints
(:mod:`repro.durability.checkpoint`) carry no unpicklable generated
functions and a restored run transparently recompiles on first use.
"""

from __future__ import annotations

import os
from typing import Optional

#: Environment toggle honoured when ``fast=None`` is passed (the default).
FASTPATH_ENV = "REPRO_FASTPATH"

_TRUTHY = ("1", "true", "on", "yes")


def fastpath_enabled(explicit: Optional[bool] = None) -> bool:
    """Resolve the fastpath toggle: explicit flag wins, else the environment."""
    if explicit is not None:
        return bool(explicit)
    return os.environ.get(FASTPATH_ENV, "").strip().lower() in _TRUTHY


def set_fastpath(enabled: bool) -> None:
    """Set :data:`FASTPATH_ENV` for this process (inherited by pool workers)."""
    if enabled:
        os.environ[FASTPATH_ENV] = "1"
    else:
        os.environ.pop(FASTPATH_ENV, None)


__all__ = ["FASTPATH_ENV", "fastpath_enabled", "set_fastpath"]
