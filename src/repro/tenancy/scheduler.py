"""Deterministic round-robin execution of a :class:`TenantPlan`.

Each tenant is set up exactly the way :func:`repro.engine.levels.execute_workload`
sets up a single run — same instrumentation, same level attach hook, same
telemetry wiring — except that every interpreter is constructed over one
shared :class:`~repro.tenancy.hierarchy.TenantHierarchy` and started in
sliced mode.  The scheduler then grants quantum-sized instruction slices in
fixed tenant order, carrying one global cycle clock across slices: before a
tenant runs, its parked clock is advanced to "now", so its memory operations
land on the shared caches at globally ordered times; after the slice, the
cycles it consumed advance the global clock for everyone else.

Determinism falls out of construction: no wall-clock, no OS threads, one
fixed interleaving — the same plan always produces byte-identical results.
A tenant's reported ``stats.cycles`` is its *occupancy* (cycles of machine
time it consumed), which for N=1 equals the global clock — that is the
pinned N=1 equivalence.

Results memoize in the engine's :class:`~repro.engine.cache.ResultStore`
under the plan fingerprint (:func:`run_tenant_plan_cached`), and
:func:`execute_tenant_plans` fans independent plans out over processes the
same way :func:`repro.engine.executor.execute_plan` does for single runs.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import replace
from typing import Optional, Sequence

from repro.engine.cache import ResultStore
from repro.engine.levels import LevelWiring, get_level
from repro.errors import ConfigError
from repro.interp.interpreter import Interpreter
from repro.telemetry.session import TelemetrySession
from repro.tenancy.hierarchy import TenantHierarchy
from repro.tenancy.plan import TenantPlan
from repro.tenancy.stats import PollutionMatrix, TenancyResult, TenantStats
from repro.vulcan.static_edit import instrument_program
from repro.workloads import build_named

#: ``ResultStore`` payload kind for memoized tenancy results.
TENANCY_PAYLOAD_KIND = "tenancy"


def run_tenant_plan(
    plan: TenantPlan,
    sessions: Optional[Sequence[TelemetrySession]] = None,
    fast: Optional[bool] = None,
) -> TenancyResult:
    """Interleave the plan's tenants to completion; returns their stats.

    ``sessions`` optionally supplies one pre-built telemetry session per
    tenant (event sinks and all); by default each tenant gets its own
    metrics-only session, mirroring the single-run engine.

    ``fast`` selects the compiled execution kernel for every tenant slice
    (None defers to ``REPRO_FASTPATH``).  Tenant runs share a
    :class:`~repro.tenancy.hierarchy.TenantHierarchy`, which the kernel's
    cache mirror does not specialize — the compiled dispatch still applies,
    the hierarchy is driven through its own (attribution-aware) methods, and
    results stay bit-identical either way.
    """
    if sessions is not None and len(sessions) != len(plan):
        raise ConfigError(
            f"need one telemetry session per tenant ({len(plan)}), got {len(sessions)}"
        )
    hier = TenantHierarchy(plan.machine, len(plan), plan.sharing)
    interps: list[Interpreter] = []
    tenant_sessions: list[TelemetrySession] = []
    summaries: list[object] = []
    for tid, spec in enumerate(plan.tenants):
        level_spec = get_level(spec.level)
        opt = spec.opt
        if opt.faults is not None:
            # Per-tenant fault derivation: adding tenant K never perturbs
            # tenant J's fault sequence (satellite fix; tested).
            opt = replace(opt, faults=opt.faults.for_tenant(tid))
        session = sessions[tid] if sessions is not None else TelemetrySession()
        if not session.context:
            session.begin_run(plan.tenant_name(tid), spec.level)
        workload = build_named(spec.workload, passes=spec.passes)
        program = workload.program
        if level_spec.instrument:
            program, _report = instrument_program(program)
        interp = Interpreter(program, workload.memory, plan.machine, hierarchy=hier)
        # Wiring and component construction happen with this tenant active,
        # so the session's bus/ledger land in this tenant's lane.
        hier.activate(tid)
        session.wire(interp)
        summary = None
        if level_spec.attach is not None:
            derived = (
                level_spec.configure(opt) if level_spec.configure is not None else opt
            )
            summary = level_spec.attach(
                LevelWiring(interp=interp, machine=plan.machine, opt=derived)
            )
        interp.start(workload.args)
        interps.append(interp)
        tenant_sessions.append(session)
        summaries.append(summary)

    n = len(plan)
    finished: list[object] = [None] * n
    occupancy = [0] * n
    slices = [0] * n
    remaining = n
    global_now = 0
    while remaining:
        for tid in range(n):
            if finished[tid] is not None:
                continue
            hier.activate(tid)
            interp = interps[tid]
            # Park-and-resume: the tenant's clock continues from global
            # "now", so its cache traffic is ordered after everyone else's.
            interp.exec_state.cycles = global_now
            out = interp.run_slice(plan.quantum, fast=fast)
            occupancy[tid] += interp.exec_state.cycles - global_now
            global_now = interp.exec_state.cycles
            slices[tid] += 1
            if out is not None:
                finished[tid] = out
                remaining -= 1
    hier.finalize(now=global_now)

    tenants: list[TenantStats] = []
    for tid, spec in enumerate(plan.tenants):
        stats = finished[tid]
        # A tenant's cycle count is its occupancy, not the shared clock it
        # happened to finish at (identical for N=1).
        stats.cycles = occupancy[tid]
        view = hier.view(tid)
        tenant_sessions[tid].finalize_run(stats, view, summaries[tid])
        tenants.append(
            TenantStats(
                tenant_id=tid,
                name=plan.tenant_name(tid),
                workload=spec.workload,
                level=spec.level,
                stats=stats,
                hierarchy=view.stats_snapshot(),
                summary=summaries[tid],
                metrics=tenant_sessions[tid].registry,
                slices=slices[tid],
            )
        )
    problems = hier.check_reconciliation()
    if problems:
        raise ConfigError(
            "tenancy accounting failed to reconcile: " + "; ".join(problems)
        )
    return TenancyResult(
        plan=plan,
        tenants=tuple(tenants),
        pollution=PollutionMatrix(dict(hier.pollution_counts)),
        global_cycles=global_now,
        demand_shared_evictions=hier.demand_shared_evictions,
        prefetch_shared_evictions=hier.prefetch_shared_evictions,
        shared_cache_evictions=hier.shared_eviction_total(),
    )


def run_tenant_plan_cached(
    plan: TenantPlan, store: Optional[ResultStore] = None
) -> TenancyResult:
    """Memoizing wrapper: replay from the result store when possible."""
    if store is None:
        return run_tenant_plan(plan)
    fingerprint = plan.fingerprint()
    cached = store.load_payload(fingerprint, TENANCY_PAYLOAD_KIND, plan.label)
    if cached is not None:
        result = TenancyResult.from_dict(cached)
        result.from_cache = True
        return result
    result = run_tenant_plan(plan)
    store.store_payload(fingerprint, TENANCY_PAYLOAD_KIND, plan.label, result.to_dict())
    return result


def _worker_run_plan(plan_doc: dict) -> dict:
    """Process-pool entry point: plans/results cross as plain dicts."""
    return run_tenant_plan(TenantPlan.from_dict(plan_doc)).to_dict()


def execute_tenant_plans(
    plans: Sequence[TenantPlan],
    jobs: int = 1,
    store: Optional[ResultStore] = None,
) -> list[TenancyResult]:
    """Run several independent co-run plans, optionally across processes.

    Mirrors :func:`repro.engine.executor.execute_plan`: cache hits replay
    first, misses fan out over a process pool (``jobs > 1``), and any worker
    failure falls back to a serial in-process run so one bad pickle never
    loses the batch.
    """
    if jobs < 1:
        raise ConfigError("jobs must be >= 1")
    results: dict[int, TenancyResult] = {}
    misses: list[int] = []
    for idx, plan in enumerate(plans):
        if store is not None:
            cached = store.load_payload(
                plan.fingerprint(), TENANCY_PAYLOAD_KIND, plan.label
            )
            if cached is not None:
                result = TenancyResult.from_dict(cached)
                result.from_cache = True
                results[idx] = result
                continue
        misses.append(idx)
    if misses and jobs > 1:
        docs = {idx: plans[idx].to_dict() for idx in misses}
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            futures = {idx: pool.submit(_worker_run_plan, docs[idx]) for idx in misses}
            still_missing: list[int] = []
            for idx in misses:
                try:
                    results[idx] = TenancyResult.from_dict(futures[idx].result())
                except Exception:
                    still_missing.append(idx)
            misses = still_missing
    for idx in misses:
        results[idx] = run_tenant_plan(plans[idx])
    if store is not None:
        for idx, result in results.items():
            if not result.from_cache:
                store.store_payload(
                    plans[idx].fingerprint(),
                    TENANCY_PAYLOAD_KIND,
                    plans[idx].label,
                    result.to_dict(),
                )
    return [results[idx] for idx in range(len(plans))]
