"""A shared memory hierarchy serving several interleaved tenants.

:class:`TenantHierarchy` mirrors :class:`~repro.machine.hierarchy.MemoryHierarchy`
operation for operation — same lookup order, same stall arithmetic, same
prefetch life cycle — and adds the tenancy bookkeeping the single-tenant
class never needs:

* **address-space disjointness** — every tenant's byte addresses are
  translated into a private block range (tenant id in the high block bits,
  a multiple of every power-of-two set count), so two tenants referencing
  the same virtual address contend for cache *capacity* without ever
  aliasing each other's data;
* **tenant-scoped stats** — per-tenant demand counts,
  :class:`~repro.machine.hierarchy.PrefetchStats`, per-level hit/miss/
  eviction counters (evictions are charged to the tenant that *caused*
  them) and per-stream attribution, all updated at exactly the same
  classification points as the aggregate counters;
* **per-tenant telemetry routing** — each tenant wires its own bus/ledger
  (via the same ``hierarchy.telemetry = ...`` surface
  :meth:`~repro.telemetry.session.TelemetrySession.wire` uses); lifecycle
  events for a block are routed to its owner, so one tenant's event log
  never absorbs another's prefetch outcomes;
* **the cross-tenant pollution matrix** — ``counts[(issuer, victim_owner)]``
  increments whenever a prefetch-triggered install evicts a line from a
  *shared* level, and reconciles exactly: the matrix total equals the
  prefetch-caused share of the shared caches' own eviction counters
  (:meth:`TenantHierarchy.check_reconciliation`).

Sharing modes: ``"shared"`` (one L1 + one L2) and ``"private-l1"``
(per-tenant L1s over a shared, inclusive L2).  With a single tenant, every
per-tenant counter coincides with its aggregate and the whole class is
observationally identical to ``MemoryHierarchy`` — the oracle pins that as
the N=1 equivalence invariant.
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.machine.cache import Cache
from repro.machine.config import MachineConfig
from repro.machine.hierarchy import (
    CacheLevelStats,
    HierarchyStats,
    PrefetchStats,
    StreamPrefetchStats,
)
from repro.telemetry.events import (
    CacheFlushed,
    CacheMiss,
    PrefetchEvicted,
    PrefetchIssued,
    PrefetchUsed,
)
from repro.telemetry.sinks import NULL_SINK

#: Block-number bits reserved per tenant address space.  The per-tenant block
#: offset is ``tid << _TENANT_SHIFT`` — a multiple of every power-of-two set
#: count, so translation preserves each address's set index while giving every
#: tenant distinct tags (capacity/conflict sharing without false hits).
_TENANT_SHIFT = 40


class _TenantLane:
    """Per-tenant bookkeeping: counters, attribution, telemetry wiring."""

    __slots__ = (
        "l1", "stats_l1", "stats_l2", "demand", "prefetch",
        "stream_map", "stream_stats", "stream_names", "bus", "ledger",
        "miss_sample_every", "prefetch_sample_every",
        "misses_since", "issued_since", "used_since", "evicted_since",
    )

    def __init__(self, l1: Cache) -> None:
        self.l1 = l1
        self.stats_l1 = CacheLevelStats()
        self.stats_l2 = CacheLevelStats()
        self.demand = 0
        self.prefetch = PrefetchStats()
        self.stream_map: dict[int, object] | None = None
        self.stream_stats: dict[object, StreamPrefetchStats] = {}
        self.stream_names: dict[object, str] = {}
        self.bus = NULL_SINK
        self.ledger = None
        self.miss_sample_every = 64
        self.prefetch_sample_every = 32
        self.misses_since = 0
        self.issued_since = 0
        self.used_since = 0
        self.evicted_since = 0


class TenantView:
    """One tenant's slice of a finished hierarchy, duck-typing the counter
    surface of :class:`~repro.machine.hierarchy.MemoryHierarchy` (``l1``/
    ``l2``/``demand_accesses``/``prefetch``/``stream_stats``/
    ``stream_names``/``l1_miss_rate``/``stats_snapshot``)."""

    def __init__(self, lane: _TenantLane) -> None:
        self.l1 = lane.stats_l1
        self.l2 = lane.stats_l2
        self.demand_accesses = lane.demand
        self.prefetch = lane.prefetch
        self.stream_stats = lane.stream_stats
        self.stream_names = lane.stream_names

    @property
    def l1_miss_rate(self) -> float:
        return self.l1.misses / self.l1.accesses if self.l1.accesses else 0.0

    def stats_snapshot(self) -> HierarchyStats:
        return HierarchyStats.capture(self)


class TenantHierarchy:
    """Shared L2 (and optionally L1) among N interleaved tenants."""

    def __init__(self, config: MachineConfig, tenants: int, sharing: str = "private-l1") -> None:
        if tenants < 1:
            raise ConfigError("TenantHierarchy needs at least one tenant")
        if sharing not in ("shared", "private-l1"):
            raise ConfigError(f"unknown sharing mode {sharing!r}")
        self.config = config
        self.sharing = sharing
        self.num_tenants = tenants
        self.l2 = Cache(config.l2, "L2")
        self._block_shift = config.block_bytes.bit_length() - 1
        if sharing == "shared":
            shared_l1 = Cache(config.l1, "L1")
            self._lanes = [_TenantLane(shared_l1) for _ in range(tenants)]
            self._l1_caches = [shared_l1]
        else:
            self._lanes = [_TenantLane(Cache(config.l1, f"L1[t{t}]")) for t in range(tenants)]
            self._l1_caches = [lane.l1 for lane in self._lanes]
        #: block -> cycle at which its in-flight prefetch completes
        self._inflight: dict[int, int] = {}
        #: prefetched-and-unused block -> issue cycle (owner = high block bits)
        self._prefetched_unused: dict[int, int] = {}
        #: prefetched-but-unclassified block -> (owner tenant, stream key)
        self._stream_of: dict[int, tuple[int, object]] = {}
        #: aggregate counters across all tenants (per-tenant slices must sum
        #: to these exactly; the oracle checks it)
        self.prefetch = PrefetchStats()
        self.demand_accesses = 0
        #: evictions in *shared* levels, split by the cause of the install
        self.demand_shared_evictions = 0
        self.prefetch_shared_evictions = 0
        #: (issuer tenant, victim-owner tenant) -> prefetch-caused evictions
        self.pollution_counts: dict[tuple[int, int], int] = {}
        self._active = 0
        self._lane = self._lanes[0]
        self.l1 = self._lane.l1
        self._offset = 0

    # ------------------------------------------------------------- scheduling

    def activate(self, tenant_id: int) -> None:
        """Make ``tenant_id`` the tenant whose accesses/prefetches follow."""
        self._active = tenant_id
        lane = self._lanes[tenant_id]
        self._lane = lane
        self.l1 = lane.l1
        self._offset = tenant_id << _TENANT_SHIFT

    @property
    def active_tenant(self) -> int:
        return self._active

    def owner_of(self, block: int) -> int:
        """The tenant whose address space a (translated) block belongs to."""
        return block >> _TENANT_SHIFT

    def block_of(self, addr: int) -> int:
        """Translated block number for the *active* tenant's byte address."""
        return (addr >> self._block_shift) + self._offset

    def view(self, tenant_id: int) -> TenantView:
        """Freeze one tenant's counter slice (after the co-run finishes)."""
        return TenantView(self._lanes[tenant_id])

    def shared_eviction_total(self) -> int:
        """Total evictions counted by the shared cache levels themselves."""
        total = self.l2.evictions
        if self.sharing == "shared":
            total += self._l1_caches[0].evictions
        return total

    def check_reconciliation(self) -> list[str]:
        """Exact accounting identities; returns human-readable violations.

        * matrix total == prefetch-caused shared evictions,
        * cause split sums to the shared caches' own eviction counters,
        * per-tenant slices sum to the aggregates.
        """
        problems: list[str] = []
        matrix_total = sum(self.pollution_counts.values())
        if matrix_total != self.prefetch_shared_evictions:
            problems.append(
                f"pollution matrix total {matrix_total} != "
                f"prefetch-caused shared evictions {self.prefetch_shared_evictions}"
            )
        cause_total = self.demand_shared_evictions + self.prefetch_shared_evictions
        if cause_total != self.shared_eviction_total():
            problems.append(
                f"cause split {cause_total} != shared cache evictions "
                f"{self.shared_eviction_total()}"
            )
        if sum(lane.demand for lane in self._lanes) != self.demand_accesses:
            problems.append("per-tenant demand counts do not sum to the aggregate")
        for field in ("issued", "redundant", "useful", "late", "wasted"):
            lanes = sum(getattr(lane.prefetch, field) for lane in self._lanes)
            if lanes != getattr(self.prefetch, field):
                problems.append(
                    f"per-tenant prefetch.{field} sums to {lanes}, "
                    f"aggregate says {getattr(self.prefetch, field)}"
                )
        if sum(lane.stats_l2.evictions for lane in self._lanes) != self.l2.evictions:
            problems.append("per-tenant L2 eviction charges do not sum to L2's counter")
        return problems

    # ----------------------------------------------- telemetry wiring surface
    # The same assignment surface TelemetrySession.wire uses on a plain
    # hierarchy, routed to whichever tenant is active at wiring time.

    @property
    def telemetry(self):
        return self._lane.bus

    @telemetry.setter
    def telemetry(self, bus) -> None:
        self._lane.bus = bus

    @property
    def ledger(self):
        return self._lane.ledger

    @ledger.setter
    def ledger(self, ledger) -> None:
        self._lane.ledger = ledger

    @property
    def miss_sample_every(self) -> int:
        return self._lane.miss_sample_every

    @miss_sample_every.setter
    def miss_sample_every(self, period: int) -> None:
        self._lane.miss_sample_every = period

    @property
    def prefetch_sample_every(self) -> int:
        return self._lane.prefetch_sample_every

    @prefetch_sample_every.setter
    def prefetch_sample_every(self, period: int) -> None:
        self._lane.prefetch_sample_every = period

    # --------------------------------------------------- per-stream attribution

    @property
    def stream_stats(self) -> dict[object, StreamPrefetchStats]:
        """The *active* tenant's per-stream scoreboard (watchdog input)."""
        return self._lane.stream_stats

    @property
    def stream_names(self) -> dict[object, str]:
        return self._lane.stream_names

    def set_stream_attribution(self, mapping: dict[int, object] | None) -> None:
        """Install the active tenant's block -> stream-key map.

        The optimizer builds the map from *its own* (untranslated) block
        numbers; :meth:`issue_prefetch` therefore consults it pre-translation.
        """
        self._lane.stream_map = mapping

    def _note_outcome(self, block: int, outcome: str) -> None:
        entry = self._stream_of.pop(block, None)
        if entry is None:
            return
        owner, key = entry
        lane = self._lanes[owner]
        stats = lane.stream_stats.get(key)
        if stats is None:
            stats = lane.stream_stats[key] = StreamPrefetchStats()
        setattr(stats, outcome, getattr(stats, outcome) + 1)

    # ------------------------------------------------------------ demand path

    def access(self, addr: int, now: int) -> int:
        """Demand access by the active tenant; returns stall cycles.

        Stall arithmetic is the single-tenant hierarchy's, verbatim; only
        which counters are credited differs.
        """
        lane = self._lane
        lane.demand += 1
        self.demand_accesses += 1
        block = (addr >> self._block_shift) + self._offset
        stall = 0
        telem = lane.bus
        inflight = self._inflight
        if block in inflight:
            ready = inflight.pop(block)
            if ready > now:
                stall = ready - now
                self.prefetch.late += 1
                lane.prefetch.late += 1
                if self._stream_of:
                    self._note_outcome(block, "late")
                issued_at = self._prefetched_unused.pop(block, now)
                if lane.ledger is not None:
                    lane.ledger.on_use(block, now, True, now - issued_at, stall)
                if telem.enabled:
                    n = lane.used_since + 1
                    if n >= lane.prefetch_sample_every:
                        n = 0
                        telem.emit(PrefetchUsed(now, block, True, now - issued_at))
                    lane.used_since = n
        if lane.l1.lookup(block):
            lane.stats_l1.hits += 1
            if block in self._prefetched_unused:
                issued_at = self._prefetched_unused.pop(block)
                self.prefetch.useful += 1
                lane.prefetch.useful += 1
                if self._stream_of:
                    self._note_outcome(block, "useful")
                if lane.ledger is not None:
                    lane.ledger.on_use(block, now, False, now - issued_at)
                if telem.enabled:
                    n = lane.used_since + 1
                    if n >= lane.prefetch_sample_every:
                        n = 0
                        telem.emit(PrefetchUsed(now, block, False, now - issued_at))
                    lane.used_since = n
            return stall
        lane.stats_l1.misses += 1
        if self.l2.lookup(block):
            lane.stats_l2.hits += 1
            stall += self.config.l2_latency
            if block in self._prefetched_unused:
                issued_at = self._prefetched_unused.pop(block)
                self.prefetch.useful += 1
                lane.prefetch.useful += 1
                if self._stream_of:
                    self._note_outcome(block, "useful")
                if lane.ledger is not None:
                    lane.ledger.on_use(block, now, False, now - issued_at)
                if telem.enabled:
                    n = lane.used_since + 1
                    if n >= lane.prefetch_sample_every:
                        n = 0
                        telem.emit(PrefetchUsed(now, block, False, now - issued_at))
                    lane.used_since = n
            level = "L1"
        else:
            lane.stats_l2.misses += 1
            stall += self.config.memory_latency
            self._install_l2(block, now, from_prefetch=False)
            level = "L2"
        if telem.enabled:
            lane.misses_since += 1
            if lane.misses_since >= lane.miss_sample_every:
                lane.misses_since = 0
                telem.emit(CacheMiss(now, level, block, stall))
        self._install_l1(block, now, from_prefetch=False)
        return stall

    # ---------------------------------------------------------- prefetch path

    def issue_prefetch(self, addr: int, now: int, source: str = "sw") -> None:
        """Prefetch by the active tenant (credited to it as issuer)."""
        lane = self._lane
        self.prefetch.issued += 1
        lane.prefetch.issued += 1
        by_source = self.prefetch.by_source
        by_source[source] = by_source.get(source, 0) + 1
        lane_by_source = lane.prefetch.by_source
        lane_by_source[source] = lane_by_source.get(source, 0) + 1
        raw = addr >> self._block_shift
        block = raw + self._offset
        telem = lane.bus
        ledger = lane.ledger
        smap = lane.stream_map
        skey = smap.get(raw) if smap is not None else None
        if skey is not None:
            sstats = lane.stream_stats.get(skey)
            if sstats is None:
                sstats = lane.stream_stats[skey] = StreamPrefetchStats()
            sstats.issued += 1
        if lane.l1.contains(block) or block in self._inflight:
            self.prefetch.redundant += 1
            lane.prefetch.redundant += 1
            if skey is not None:
                sstats.redundant += 1
            if ledger is not None:
                ledger.on_issue(block, now, source, skey, True)
            if telem.enabled:
                n = lane.issued_since + 1
                if n >= lane.prefetch_sample_every:
                    n = 0
                    telem.emit(PrefetchIssued(now, block, source, True))
                lane.issued_since = n
            return
        if ledger is not None:
            ledger.on_issue(block, now, source, skey, False)
        if telem.enabled:
            n = lane.issued_since + 1
            if n >= lane.prefetch_sample_every:
                n = 0
                telem.emit(PrefetchIssued(now, block, source, False))
            lane.issued_since = n
        if self.l2.contains(block):
            self._inflight[block] = now + self.config.l2_latency
        else:
            self._inflight[block] = now + self.config.memory_latency
            self._install_l2(block, now, from_prefetch=True)
        self._install_l1(block, now, from_prefetch=True)
        self._prefetched_unused[block] = now
        if skey is not None:
            self._stream_of[block] = (self._active, skey)

    # ------------------------------------------------------ installs/evictions

    def _emit_evicted(self, lane: _TenantLane, now: int, block: int, at_finalize: bool) -> None:
        lane.evicted_since += 1
        if lane.evicted_since >= lane.prefetch_sample_every:
            lane.evicted_since = 0
            lane.bus.emit(PrefetchEvicted(now, block, at_finalize))

    def _credit_shared_eviction(self, victim: int, from_prefetch: bool) -> None:
        if from_prefetch:
            self.prefetch_shared_evictions += 1
            key = (self._active, victim >> _TENANT_SHIFT)
            self.pollution_counts[key] = self.pollution_counts.get(key, 0) + 1
        else:
            self.demand_shared_evictions += 1

    def _install_l1(self, block: int, now: int, from_prefetch: bool) -> None:
        victim = self._lane.l1.install(block)
        if victim is not None:
            self._lane.stats_l1.evictions += 1
            if self.sharing == "shared":
                self._credit_shared_eviction(victim, from_prefetch)
            self._account_eviction(victim, l1_only=True, now=now)

    def _install_l2(self, block: int, now: int, from_prefetch: bool) -> None:
        victim = self.l2.install(block)
        if victim is not None:
            # Inclusion: an L2 eviction removes every tenant's L1 copy (at
            # most one L1 actually holds it — the owner's).
            for l1 in self._l1_caches:
                l1.invalidate(victim)
            self._lane.stats_l2.evictions += 1
            self._credit_shared_eviction(victim, from_prefetch)
            self._account_eviction(victim, l1_only=False, now=now)

    def _account_eviction(self, victim: int, l1_only: bool, now: int) -> None:
        if victim in self._prefetched_unused:
            if not l1_only or not self.l2.contains(victim):
                del self._prefetched_unused[victim]
                self._inflight.pop(victim, None)
                owner = self._lanes[victim >> _TENANT_SHIFT]
                self.prefetch.wasted += 1
                owner.prefetch.wasted += 1
                if self._stream_of:
                    self._note_outcome(victim, "wasted")
                if owner.ledger is not None:
                    owner.ledger.on_evict(victim, now)
                if owner.bus.enabled:
                    self._emit_evicted(owner, now, victim, False)

    # ------------------------------------------------------------ end of run

    def finalize(self, now: int = 0) -> None:
        """Classify still-unused prefetched blocks as wasted, per owner."""
        for block in self._prefetched_unused:
            owner = self._lanes[block >> _TENANT_SHIFT]
            if owner.bus.enabled:
                self._emit_evicted(owner, now, block, True)
        if self._stream_of:
            for block in self._prefetched_unused:
                self._note_outcome(block, "wasted")
        for block in self._prefetched_unused:
            owner = self._lanes[block >> _TENANT_SHIFT]
            if owner.ledger is not None:
                owner.ledger.on_expire(block, now)
            owner.prefetch.wasted += 1
        self.prefetch.wasted += len(self._prefetched_unused)
        self._prefetched_unused.clear()
        self._inflight.clear()

    def flush(self, now: int = 0) -> None:
        """Empty every cache level (a ``cache_flush`` fault hits everyone).

        Flushing the shared L2 necessarily clears all tenants' working sets
        (inclusion); counters are preserved, pending prefetches classify as
        wasted for their owners — the same invariants the single-tenant
        flush documents.
        """
        for block in self._prefetched_unused:
            owner = self._lanes[block >> _TENANT_SHIFT]
            if owner.bus.enabled:
                self._emit_evicted(owner, now, block, False)
        if self._stream_of:
            for block in self._prefetched_unused:
                self._note_outcome(block, "wasted")
        for block in self._prefetched_unused:
            owner = self._lanes[block >> _TENANT_SHIFT]
            if owner.ledger is not None:
                owner.ledger.on_expire(block, now)
            owner.prefetch.wasted += 1
        self.prefetch.wasted += len(self._prefetched_unused)
        telem = self._lane.bus
        if telem.enabled:
            telem.emit(
                CacheFlushed(
                    now,
                    len(self._lane.l1.resident_blocks()),
                    len(self.l2.resident_blocks()),
                )
            )
        for l1 in self._l1_caches:
            l1.flush()
        self.l2.flush()
        self._inflight.clear()
        self._prefetched_unused.clear()

    @property
    def l1_miss_rate(self) -> float:
        """Aggregate L1 miss rate over all tenants' demand accesses."""
        misses = sum(lane.stats_l1.misses for lane in self._lanes)
        accesses = sum(lane.stats_l1.accesses for lane in self._lanes)
        return misses / accesses if accesses else 0.0
