"""The shared-L2 ablation: does dyn survive a thrashing co-tenant?

The ROADMAP's server-scale question, answered head-on.  Tenant A is ``vpr``
measured at three levels — no prefetching, unguarded dyn, and dyn with the
watchdog — while tenant B is always the adversarial ``phaseshift`` thrasher
running unguarded dyn (stale streams, maximal pollution pressure).  All
co-runs share one small L2 (per-tenant L1s), so B's evictions land directly
on A's working set and the pollution matrix says exactly how many.

Three questions, one table:

* *pressure*: how much slower is A under the thrasher than alone
  (``vs_solo_pct``), independent of A's own prefetching;
* *does dyn still pay*: A's dyn rows vs. A's nopref row, all under the same
  co-tenant (``vs_nopref_pct``);
* *containment*: the ``dyn+watchdog`` variant arms the watchdog on *both*
  tenants.  On A it is inert (vpr's streams stay accurate, zero deopts);
  on the thrasher it condemns the stale streams, and the pollution matrix
  measures exactly how much cross-tenant damage that claws back
  (``pol<thr`` — shared-L2 evictions of A's blocks caused by the
  thrasher's prefetches).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from repro.bench.figures import (
    ABLATION_WATCHDOG_CONFIG,
    ABLATION_WATCHDOG_MACHINE,
    ABLATION_WATCHDOG_OPT,
)
from repro.engine.cache import ResultStore
from repro.engine.levels import execute_workload
from repro.tenancy.plan import TenantPlan, TenantSpec
from repro.tenancy.scheduler import execute_tenant_plans
from repro.tenancy.stats import TenancyResult
from repro.workloads import build_named

#: Round-robin quantum for the ablation co-runs (instructions).
ABLATION_QUANTUM = 2048


def _thrasher(passes: Optional[int], opt) -> TenantSpec:
    """The adversarial co-tenant: phaseshift at dyn."""
    return TenantSpec("phaseshift", "dyn", passes=passes, opt=opt, name="thrasher")


def tenancy_ablation_plans(passes: Optional[int] = None) -> list[tuple[str, TenantPlan]]:
    """The (label, plan) variants the ablation compares."""
    bare = ABLATION_WATCHDOG_OPT
    wd_opt = replace(bare, watchdog=ABLATION_WATCHDOG_CONFIG)
    variants: list[tuple[str, TenantSpec, TenantSpec]] = [
        ("nopref",
         TenantSpec("vpr", "nopref", passes=passes, opt=bare, name="vpr"),
         _thrasher(passes, bare)),
        ("dyn",
         TenantSpec("vpr", "dyn", passes=passes, opt=bare, name="vpr"),
         _thrasher(passes, bare)),
        ("dyn+watchdog",
         TenantSpec("vpr", "dyn", passes=passes, opt=wd_opt, name="vpr"),
         _thrasher(passes, wd_opt)),
    ]
    return [
        (
            label,
            TenantPlan(
                tenants=(spec_a, spec_b),
                quantum=ABLATION_QUANTUM,
                sharing="private-l1",
                machine=ABLATION_WATCHDOG_MACHINE,
            ),
        )
        for label, spec_a, spec_b in variants
    ]


def ablation_tenancy(
    passes: Optional[int] = None,
    store: Optional[ResultStore] = None,
    jobs: int = 1,
) -> list[dict]:
    """Per-variant rows for the shared-cache ablation table.

    ``vs_solo_pct`` normalizes each variant's tenant-A cycles against the
    same configuration run *alone* on the same machine (cache to itself);
    ``vs_nopref_pct`` normalizes against the nopref variant *under the same
    thrasher* — the in-contention analogue of Figure 12's overhead axis.
    """
    labelled = tenancy_ablation_plans(passes)
    results = execute_tenant_plans([plan for _, plan in labelled], jobs=jobs, store=store)
    rows: list[dict] = []
    baseline_a = results[0].tenants[0]
    for (label, plan), result in zip(labelled, results):
        spec_a = plan.tenants[0]
        solo = execute_workload(
            build_named(spec_a.workload, passes=spec_a.passes),
            spec_a.level,
            machine=plan.machine,
            opt=spec_a.opt,
        )
        a, b = result.tenants
        rows.append(
            {
                "variant": label,
                "cycles": a.stats.cycles,
                "solo_cycles": solo.stats.cycles,
                "vs_solo_pct": round(
                    100.0 * (a.stats.cycles - solo.stats.cycles) / solo.stats.cycles, 2
                ),
                "vs_nopref_pct": round(
                    100.0 * (a.stats.cycles - baseline_a.stats.cycles)
                    / baseline_a.stats.cycles, 2
                ),
                "issued": a.hierarchy.prefetch.issued,
                "useful": a.hierarchy.prefetch.useful,
                "wasted": a.hierarchy.prefetch.wasted,
                "deopts": 0 if a.summary is None else a.summary.stream_deopts,
                "thr_deopts": 0 if b.summary is None else b.summary.stream_deopts,
                "thr_wasted": b.hierarchy.prefetch.wasted,
                "polluted_by_thrasher": result.pollution.suffered_by(a.tenant_id),
                "thrasher_cycles": b.stats.cycles,
            }
        )
    return rows


def render_ablation(rows: list[dict]) -> str:
    """The ablation rows as an aligned table."""
    from repro.bench.reporting import format_table

    return format_table(
        ["variant", "cycles", "solo", "vs-solo%", "vs-nopref%", "issued",
         "useful", "wasted", "deopts", "thr-deopts", "thr-wasted", "pol<thr",
         "thr-cycles"],
        [
            [r["variant"], r["cycles"], r["solo_cycles"], r["vs_solo_pct"],
             r["vs_nopref_pct"], r["issued"], r["useful"], r["wasted"],
             r["deopts"], r["thr_deopts"], r["thr_wasted"],
             r["polluted_by_thrasher"], r["thrasher_cycles"]]
            for r in rows
        ],
        title="Shared-L2 tenancy ablation — vpr vs. the phaseshift thrasher",
    )


def check_result(result: TenancyResult) -> list[str]:
    """Re-verify a (possibly cache-replayed) result's accounting identities.

    The live scheduler already reconciles before returning; this re-checks
    the *serialized* counters, so a cache replay is held to the same
    standard.
    """
    problems: list[str] = []
    if result.pollution.total() != result.prefetch_shared_evictions:
        problems.append(
            f"pollution matrix total {result.pollution.total()} != "
            f"prefetch-caused shared evictions {result.prefetch_shared_evictions}"
        )
    cause_sum = result.demand_shared_evictions + result.prefetch_shared_evictions
    if cause_sum != result.shared_cache_evictions:
        problems.append(
            f"cause split {cause_sum} != shared-cache evictions "
            f"{result.shared_cache_evictions}"
        )
    occupancy = sum(t.stats.cycles for t in result.tenants)
    if occupancy != result.global_cycles:
        problems.append(
            f"tenant occupancy sum {occupancy} != global clock {result.global_cycles}"
        )
    return problems
