"""Tenant-scoped run outcomes and the cross-tenant pollution matrix.

The single-run world serializes one :class:`~repro.engine.result.RunResult`;
a co-run produces one :class:`TenantStats` per tenant (the same ingredients:
``ExecStats`` + a hierarchy snapshot + optimizer summary + metrics, re-keyed
by ``tenant_id``) plus co-run-level facts no single run has — the
:class:`PollutionMatrix` and the shared-cache eviction split by cause.
Everything round-trips through JSON bit-identically, which is what lets
:class:`TenancyResult` memoize in the engine's content-addressed store the
same way single runs do.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.stats import OptimizerSummary
from repro.errors import ConfigError
from repro.interp.interpreter import ExecStats
from repro.machine.hierarchy import HierarchyStats
from repro.telemetry.metrics import MetricsRegistry
from repro.tenancy.plan import TenantPlan

#: Format version stamped into serialized tenancy results.
TENANCY_RESULT_FORMAT = 1


@dataclass
class PollutionMatrix:
    """Who evicted whom: ``counts[(issuer, victim_owner)]`` is the number of
    lines tenant *issuer*'s prefetches evicted from a shared cache level
    that belonged to tenant *victim_owner*.

    The diagonal is self-pollution (a tenant's prefetch displacing its own
    line); off-diagonal entries are cross-tenant damage.  The matrix is
    exact, not sampled: its total equals the prefetch-caused share of the
    shared caches' eviction counters, and ``repro-bench verify`` pins that
    reconciliation.
    """

    counts: dict[tuple[int, int], int] = field(default_factory=dict)

    def total(self) -> int:
        return sum(self.counts.values())

    def get(self, issuer: int, victim: int) -> int:
        return self.counts.get((issuer, victim), 0)

    def inflicted_by(self, tenant_id: int) -> int:
        """Evictions of *other* tenants' lines caused by this tenant."""
        return sum(
            n for (issuer, victim), n in self.counts.items()
            if issuer == tenant_id and victim != tenant_id
        )

    def suffered_by(self, tenant_id: int) -> int:
        """This tenant's lines evicted by *other* tenants' prefetches."""
        return sum(
            n for (issuer, victim), n in self.counts.items()
            if victim == tenant_id and issuer != tenant_id
        )

    def self_inflicted(self, tenant_id: int) -> int:
        return self.counts.get((tenant_id, tenant_id), 0)

    def to_dict(self) -> dict[str, object]:
        """JSON view: sorted ``[issuer, victim, count]`` triples (tuple keys
        do not survive JSON)."""
        return {
            "cells": [
                [issuer, victim, n]
                for (issuer, victim), n in sorted(self.counts.items())
            ],
        }

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "PollutionMatrix":
        counts: dict[tuple[int, int], int] = {}
        for issuer, victim, n in data.get("cells", []):
            counts[(int(issuer), int(victim))] = int(n)
        return cls(counts=counts)


@dataclass
class TenantStats:
    """One tenant's slice of a co-run — a :class:`RunResult` re-keyed by
    ``tenant_id``, plus scheduling facts (slice count, cache occupancy is
    ``stats.cycles``)."""

    tenant_id: int
    name: str
    workload: str
    level: str
    stats: ExecStats
    hierarchy: HierarchyStats
    summary: Optional[OptimizerSummary] = None
    metrics: Optional[MetricsRegistry] = None
    #: number of scheduler slices this tenant ran (its quantum grants)
    slices: int = 0

    @property
    def cycles(self) -> int:
        """Cycles this tenant occupied the machine (its share of the clock)."""
        return self.stats.cycles

    def to_dict(self) -> dict[str, object]:
        return {
            "tenant_id": self.tenant_id,
            "name": self.name,
            "workload": self.workload,
            "level": self.level,
            "stats": self.stats.to_dict(),
            "hierarchy": self.hierarchy.to_dict(),
            "summary": None if self.summary is None else self.summary.to_dict(),
            "metrics": None if self.metrics is None else self.metrics.snapshot(),
            "slices": self.slices,
        }

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "TenantStats":
        summary = data.get("summary")
        metrics = data.get("metrics")
        return cls(
            tenant_id=int(data["tenant_id"]),
            name=str(data["name"]),
            workload=str(data["workload"]),
            level=str(data["level"]),
            stats=ExecStats.from_dict(data["stats"]),
            hierarchy=HierarchyStats.from_dict(data["hierarchy"]),
            summary=None if summary is None else OptimizerSummary.from_dict(summary),
            metrics=None if metrics is None else MetricsRegistry.from_snapshot(metrics),
            slices=int(data.get("slices", 0)),
        )


@dataclass
class TenancyResult:
    """Outcome of one deterministic co-run of a :class:`TenantPlan`."""

    plan: TenantPlan
    tenants: tuple[TenantStats, ...]
    pollution: PollutionMatrix
    #: final value of the global interleaved clock
    global_cycles: int
    #: shared-cache evictions split by the cause of the triggering install
    demand_shared_evictions: int
    prefetch_shared_evictions: int
    #: what the shared cache levels themselves counted (the reconciliation
    #: target: demand + prefetch causes must sum to this)
    shared_cache_evictions: int
    #: True when this result was replayed from the result cache
    from_cache: bool = False

    def tenant(self, tenant_id: int) -> TenantStats:
        return self.tenants[tenant_id]

    def to_dict(self) -> dict[str, object]:
        """Exact serialized form (``from_cache`` is transport state, not
        content, and is deliberately excluded — cached replays compare
        bit-identical to live runs)."""
        return {
            "format": TENANCY_RESULT_FORMAT,
            "plan": self.plan.to_dict(),
            "tenants": [t.to_dict() for t in self.tenants],
            "pollution": self.pollution.to_dict(),
            "global_cycles": self.global_cycles,
            "demand_shared_evictions": self.demand_shared_evictions,
            "prefetch_shared_evictions": self.prefetch_shared_evictions,
            "shared_cache_evictions": self.shared_cache_evictions,
        }

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "TenancyResult":
        fmt = data.get("format")
        if fmt != TENANCY_RESULT_FORMAT:
            raise ConfigError(f"unsupported serialized TenancyResult format {fmt!r}")
        return cls(
            plan=TenantPlan.from_dict(data["plan"]),
            tenants=tuple(TenantStats.from_dict(t) for t in data["tenants"]),
            pollution=PollutionMatrix.from_dict(data["pollution"]),
            global_cycles=int(data["global_cycles"]),
            demand_shared_evictions=int(data["demand_shared_evictions"]),
            prefetch_shared_evictions=int(data["prefetch_shared_evictions"]),
            shared_cache_evictions=int(data["shared_cache_evictions"]),
        )

    def as_single_run_result(self):
        """Collapse an N=1 co-run into the equivalent single-run result.

        This is the N=1 equivalence surface: for a one-tenant plan the
        returned object's ``to_dict()`` must be byte-identical to what
        ``run_workload`` produces for the same (workload, level, opt,
        machine) — the oracle pins it.
        """
        from repro.engine.result import RunResult

        if len(self.tenants) != 1:
            raise ConfigError(
                f"as_single_run_result needs exactly one tenant, have {len(self.tenants)}"
            )
        t = self.tenants[0]
        return RunResult(
            workload=t.workload,
            level=t.level,
            stats=t.stats,
            hierarchy=t.hierarchy,
            summary=t.summary,
            metrics=t.metrics,
            from_cache=self.from_cache,
        )
