"""Multi-tenant run descriptions: who runs, for how long, sharing what.

A :class:`TenantPlan` is the tenancy analogue of
:class:`~repro.engine.spec.RunSpec`: a frozen, serializable description of
one deterministic co-run — the tenant mix (each an existing workload at an
existing measurement level, with its own optimizer configuration), the
round-robin quantum and the hierarchy sharing mode — plus a content
fingerprint built from the same three ingredients as a run spec (canonical
JSON + :func:`~repro.engine.spec.code_version` + the cache salt), so
tenancy results memoize in the same :class:`~repro.engine.cache.ResultStore`
without ever colliding with single-run entries.

Sharing modes:

``shared``      one L1 and one L2 for everybody — full contention.
``private-l1``  per-tenant L1s over one shared L2 — the paper-era server
                configuration the ROADMAP's scenario asks about.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Optional

from repro.core.config import OptimizerConfig
from repro.engine.spec import CACHE_SALT_ENV, code_version
from repro.errors import ConfigError
from repro.machine.config import MachineConfig, PAPER_MACHINE

#: Format version stamped into serialized tenant plans; bump on schema changes.
TENANCY_FORMAT = 1

#: Valid hierarchy sharing modes.
SHARING_MODES = ("shared", "private-l1")


@dataclass(frozen=True)
class TenantSpec:
    """One tenant: a workload at a measurement level, plus its optimizer.

    ``name`` is a display label for scorecards; it never enters scheduling
    decisions.  ``passes=None`` means the workload preset's default, exactly
    as in :class:`~repro.engine.spec.RunSpec`.
    """

    workload: str
    level: str
    passes: Optional[int] = None
    opt: OptimizerConfig = field(default_factory=OptimizerConfig)
    name: Optional[str] = None

    @property
    def label(self) -> str:
        return self.name if self.name else self.workload

    def to_dict(self) -> dict[str, object]:
        return {
            "workload": self.workload,
            "level": self.level,
            "passes": self.passes,
            "opt": self.opt.to_dict(),
            "name": self.name,
        }

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "TenantSpec":
        passes = data.get("passes")
        name = data.get("name")
        return cls(
            workload=str(data["workload"]),
            level=str(data["level"]),
            passes=None if passes is None else int(passes),
            opt=OptimizerConfig.from_dict(data["opt"]),
            name=None if name is None else str(name),
        )

    def cache_key_dict(self) -> dict[str, object]:
        """``to_dict`` with the optimizer normalized away for levels that
        never read it (the same equivalence :class:`RunSpec` applies)."""
        from repro.engine.levels import get_level

        doc = self.to_dict()
        if not get_level(self.level).uses_opt:
            doc["opt"] = OptimizerConfig().to_dict()
        return doc


@dataclass(frozen=True)
class TenantPlan:
    """A deterministic co-run: tenant mix + quantum + sharing mode + machine."""

    tenants: tuple[TenantSpec, ...]
    quantum: int = 4096
    sharing: str = "private-l1"
    machine: MachineConfig = PAPER_MACHINE

    def __post_init__(self) -> None:
        if not self.tenants:
            raise ConfigError("a TenantPlan needs at least one tenant")
        if self.quantum < 1:
            raise ConfigError("quantum must be >= 1 instruction")
        if self.sharing not in SHARING_MODES:
            raise ConfigError(
                f"unknown sharing mode {self.sharing!r}; known: {SHARING_MODES}"
            )

    def __len__(self) -> int:
        return len(self.tenants)

    @property
    def label(self) -> str:
        mix = "+".join(f"{t.workload}:{t.level}" for t in self.tenants)
        return f"tenancy[{mix}]"

    def tenant_name(self, tenant_id: int) -> str:
        """Display name for one tenant (unique even for repeated workloads)."""
        spec = self.tenants[tenant_id]
        return spec.name if spec.name else f"t{tenant_id}:{spec.workload}"

    def to_dict(self) -> dict[str, object]:
        return {
            "format": TENANCY_FORMAT,
            "tenants": [t.to_dict() for t in self.tenants],
            "quantum": self.quantum,
            "sharing": self.sharing,
            "machine": self.machine.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "TenantPlan":
        fmt = data.get("format")
        if fmt != TENANCY_FORMAT:
            raise ConfigError(f"unsupported serialized TenantPlan format {fmt!r}")
        return cls(
            tenants=tuple(TenantSpec.from_dict(t) for t in data["tenants"]),
            quantum=int(data["quantum"]),
            sharing=str(data["sharing"]),
            machine=MachineConfig.from_dict(data["machine"]),
        )

    def cache_key_dict(self) -> dict[str, object]:
        doc = self.to_dict()
        doc["tenants"] = [t.cache_key_dict() for t in self.tenants]
        return doc

    def fingerprint(self) -> str:
        """Content address: plan + code version + salt, tagged ``tenancy``
        so it can never alias a :class:`RunSpec` fingerprint."""
        canonical = json.dumps(
            self.cache_key_dict(), sort_keys=True, separators=(",", ":")
        )
        digest = hashlib.sha256(b"tenancy-plan\0")
        digest.update(canonical.encode())
        digest.update(b"\0")
        digest.update(code_version().encode())
        digest.update(b"\0")
        digest.update(os.environ.get(CACHE_SALT_ENV, "").encode())
        return digest.hexdigest()
