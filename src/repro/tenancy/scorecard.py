"""Per-tenant scorecards for co-runs (the ``repro-bench tenancy`` output).

The explain-style report for a finished :class:`TenancyResult`: one row per
tenant with its occupancy, memory behaviour and prefetch outcome, the
cross-tenant pollution matrix, and the shared-eviction cause split with its
reconciliation stated inline — the same philosophy as ``repro-trace
explain``: every printed number is an exact counter, never an estimate.
"""

from __future__ import annotations

from repro.bench.reporting import Ratio, format_table
from repro.tenancy.stats import TenancyResult


def scorecard_rows(result: TenancyResult) -> list[dict[str, object]]:
    """One row of exact per-tenant facts per tenant."""
    rows = []
    for t in result.tenants:
        share = t.stats.cycles / result.global_cycles if result.global_cycles else 0.0
        rows.append({
            "tenant": t.name,
            "level": t.level,
            "cycles": t.stats.cycles,
            "share": share,
            "instructions": t.stats.instructions,
            "slices": t.slices,
            "l1_miss_rate": t.hierarchy.l1_miss_rate,
            "l2_misses": t.hierarchy.l2.misses,
            "pf_issued": t.hierarchy.prefetch.issued,
            "pf_useful": t.hierarchy.prefetch.useful,
            "pf_wasted": t.hierarchy.prefetch.wasted,
            "accuracy": t.hierarchy.prefetch.accuracy,
            "polluted_others": result.pollution.inflicted_by(t.tenant_id),
            "polluted_by_others": result.pollution.suffered_by(t.tenant_id),
            "self_pollution": result.pollution.self_inflicted(t.tenant_id),
        })
    return rows


def render_scorecard(result: TenancyResult) -> str:
    """The full human-readable co-run report."""
    plan = result.plan
    rows = scorecard_rows(result)
    table = format_table(
        ["tenant", "level", "cycles", "share", "instrs", "slices",
         "L1miss", "L2miss", "pf", "useful", "wasted", "acc",
         "pol>out", "pol<in", "pol=self"],
        [
            [r["tenant"], r["level"], r["cycles"], Ratio(r["share"]),
             r["instructions"], r["slices"], Ratio(r["l1_miss_rate"]),
             r["l2_misses"], r["pf_issued"], r["pf_useful"], r["pf_wasted"],
             Ratio(r["accuracy"]), r["polluted_others"],
             r["polluted_by_others"], r["self_pollution"]]
            for r in rows
        ],
        title=(
            f"Tenancy scorecard — {plan.label} "
            f"(quantum={plan.quantum}, sharing={plan.sharing})"
        ),
    )
    lines = [table, ""]
    lines.append(render_pollution_matrix(result))
    lines.append("")
    lines.append(
        f"shared-cache evictions: {result.shared_cache_evictions} total = "
        f"{result.demand_shared_evictions} demand-caused + "
        f"{result.prefetch_shared_evictions} prefetch-caused; "
        f"pollution matrix total {result.pollution.total()} "
        f"(reconciles exactly with the prefetch-caused count)"
    )
    lines.append(f"global interleaved clock: {result.global_cycles} cycles")
    return "\n".join(lines)


def render_pollution_matrix(result: TenancyResult) -> str:
    """The issuer-by-victim eviction matrix as an aligned table."""
    n = len(result.tenants)
    names = [t.name for t in result.tenants]
    headers = ["issuer \\ victim"] + names + ["total"]
    rows = []
    for issuer in range(n):
        row_total = sum(result.pollution.get(issuer, victim) for victim in range(n))
        rows.append(
            [names[issuer]]
            + [result.pollution.get(issuer, victim) for victim in range(n)]
            + [row_total]
        )
    rows.append(
        ["(evicted total)"]
        + [sum(result.pollution.get(i, v) for i in range(n)) for v in range(n)]
        + [result.pollution.total()]
    )
    return format_table(
        headers, rows,
        title="Cross-tenant pollution matrix (prefetch-caused shared-cache evictions)",
    )
