"""Multi-tenant interleaved execution on a shared memory hierarchy.

Answers the ROADMAP's server-scale question: does dynamic hot-data-stream
prefetching still pay off when other tenants contend for shared cache
capacity — and when one of them is an adversarial thrasher?

* :mod:`repro.tenancy.plan` — :class:`TenantPlan`/:class:`TenantSpec`:
  frozen, fingerprintable co-run descriptions.
* :mod:`repro.tenancy.hierarchy` — :class:`TenantHierarchy`: one shared
  hierarchy, tenant-scoped attribution, the cross-tenant pollution matrix.
* :mod:`repro.tenancy.scheduler` — deterministic round-robin interleaving,
  result-store memoization, multi-process plan execution.
* :mod:`repro.tenancy.stats` — :class:`TenantStats`/:class:`TenancyResult`/
  :class:`PollutionMatrix`, all JSON-round-trippable.
* :mod:`repro.tenancy.scorecard` — the ``repro-bench tenancy`` per-tenant
  scorecard and pollution-matrix rendering.
* :mod:`repro.tenancy.ablation` — dyn-vs-off under a thrashing co-tenant,
  with and without the watchdog (EXPERIMENTS.md §tenancy).
"""

from repro.tenancy.hierarchy import TenantHierarchy, TenantView
from repro.tenancy.plan import SHARING_MODES, TenantPlan, TenantSpec
from repro.tenancy.scheduler import (
    execute_tenant_plans,
    run_tenant_plan,
    run_tenant_plan_cached,
)
from repro.tenancy.stats import PollutionMatrix, TenancyResult, TenantStats

__all__ = [
    "SHARING_MODES",
    "PollutionMatrix",
    "TenancyResult",
    "TenantHierarchy",
    "TenantPlan",
    "TenantSpec",
    "TenantStats",
    "TenantView",
    "execute_tenant_plans",
    "run_tenant_plan",
    "run_tenant_plan_cached",
]
