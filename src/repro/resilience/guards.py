"""Pre-install validation of candidate streams and DFSMs (guarded optimization).

The optimizer's analysis phase consumes *sampled* data fed through an online
grammar; under burst truncation, trace corruption or plain bad luck it can
emit candidates that would be useless or harmful to install: streams with no
tail to prefetch, single-address churn, symbols that do not resolve in the
profiler's symbol table, or exact duplicates.  :class:`StreamGuard` vets every
candidate *before* the DFSM is built and code is injected; a rejected stream
is **quarantined** for a few optimization cycles so the analysis does not pay
to rediscover and re-reject it every awake phase.

The guard never raises for a bad candidate — rejection is the success path.
It *does* raise :class:`~repro.errors.AnalysisError` from
:meth:`StreamGuard.check_dfsm` when a built DFSM is internally inconsistent,
because that indicates corrupted analysis state rather than a bad input, and
the optimizer's failure handling (hibernate, run unoptimized) must take over.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.stream import HotDataStream
from repro.errors import AnalysisError, ConfigError

#: Rejection reason tags (stable strings: telemetry and tests key on them).
REASON_NO_TAIL = "no_tail"
REASON_DEGENERATE = "degenerate"
REASON_NO_HEAT = "no_heat"
REASON_OVERSIZED = "oversized"
REASON_UNKNOWN_SYMBOL = "unknown_symbol"
REASON_DUPLICATE = "duplicate"
REASON_QUARANTINED = "quarantined"
REASON_BLACKLISTED = "blacklisted"

#: Identity of a stream for quarantine/blacklist/attribution purposes.
StreamKey = tuple[int, ...]


def stream_key(stream: HotDataStream) -> StreamKey:
    """Stable identity of a stream: its full interned symbol sequence.

    Full-sequence identity (rather than head-only) keeps the watchdog's
    blacklist *precise*: after a program phase change, a stream with the same
    head but a different (now correct) tail is a different stream and is
    admitted immediately, while the stale variant stays blacklisted.
    """
    return stream.symbols


@dataclass(frozen=True)
class GuardConfig:
    """Bounds enforced on candidate streams before installation.

    Attributes:
        min_unique_refs: reject streams touching fewer distinct references
            (a single-address stream matches itself forever and prefetches
            nothing new).
        max_stream_length: sanity cap; anything longer indicates a runaway
            analysis (the optimizer's own config caps well below this).
        quarantine_cycles: optimization cycles a rejected stream identity is
            skipped without re-validation.
    """

    min_unique_refs: int = 2
    max_stream_length: int = 4096
    quarantine_cycles: int = 3

    def __post_init__(self) -> None:
        if self.min_unique_refs < 1:
            raise ConfigError("min_unique_refs must be >= 1")
        if self.max_stream_length < 2:
            raise ConfigError("max_stream_length must be >= 2")
        if self.quarantine_cycles < 0:
            raise ConfigError("quarantine_cycles must be >= 0")

    def to_dict(self) -> dict[str, int]:
        """JSON-serializable view (the :class:`~repro.engine.spec.RunSpec` wire form)."""
        return {
            "min_unique_refs": self.min_unique_refs,
            "max_stream_length": self.max_stream_length,
            "quarantine_cycles": self.quarantine_cycles,
        }

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "GuardConfig":
        """Inverse of :meth:`to_dict`."""
        return cls(
            min_unique_refs=int(data["min_unique_refs"]),
            max_stream_length=int(data["max_stream_length"]),
            quarantine_cycles=int(data["quarantine_cycles"]),
        )


@dataclass(frozen=True)
class GuardRejection:
    """One vetoed candidate: its identity, shape and the reason tag."""

    key: StreamKey
    reason: str
    length: int
    heat: int


class StreamGuard:
    """Vets candidate streams; remembers rejects; sanity-checks built DFSMs."""

    def __init__(self, config: GuardConfig | None = None) -> None:
        self.config = config if config is not None else GuardConfig()
        #: stream identity -> first optimization cycle it may be retried
        self._quarantine: dict[StreamKey, int] = {}
        self.rejections_total = 0

    # ------------------------------------------------------------- admission

    def admit(
        self,
        streams: list[HotDataStream],
        head_len: int,
        symbols,
        cycle: int,
    ) -> tuple[list[HotDataStream], list[GuardRejection]]:
        """Split candidates into (accepted, rejected) for optimization ``cycle``.

        ``symbols`` is the profiler's symbol table (only ``len()`` is used, so
        any sized container of interned ids works).  Rejected identities are
        quarantined until ``cycle + quarantine_cycles``.
        """
        num_symbols = len(symbols)
        accepted: list[HotDataStream] = []
        rejections: list[GuardRejection] = []
        seen: set[StreamKey] = set()
        for stream in streams:
            key = stream_key(stream)
            reason = self._vet(stream, key, head_len, num_symbols, cycle, seen)
            if reason is None:
                seen.add(key)
                accepted.append(stream)
                continue
            rejections.append(
                GuardRejection(key=key, reason=reason, length=stream.length, heat=stream.heat)
            )
            self.rejections_total += 1
            if reason not in (REASON_QUARANTINED, REASON_DUPLICATE):
                self._quarantine[key] = cycle + self.config.quarantine_cycles
        self._expire(cycle)
        return accepted, rejections

    def _vet(
        self,
        stream: HotDataStream,
        key: StreamKey,
        head_len: int,
        num_symbols: int,
        cycle: int,
        seen: set[StreamKey],
    ) -> str | None:
        """Reason tag for rejecting ``stream``, or None to accept."""
        until = self._quarantine.get(key)
        if until is not None and cycle < until:
            return REASON_QUARANTINED
        if key in seen:
            return REASON_DUPLICATE
        if stream.length <= head_len:
            return REASON_NO_TAIL
        if stream.length > self.config.max_stream_length:
            return REASON_OVERSIZED
        if stream.unique_refs < self.config.min_unique_refs:
            return REASON_DEGENERATE
        if stream.heat <= 0:
            return REASON_NO_HEAT
        for sym in stream.symbols:
            if not 0 <= sym < num_symbols:
                return REASON_UNKNOWN_SYMBOL
        return None

    def quarantine(self, key: StreamKey, cycle: int) -> None:
        """Explicitly quarantine an identity (used by failure handling)."""
        self._quarantine[key] = cycle + self.config.quarantine_cycles

    def is_quarantined(self, key: StreamKey, cycle: int) -> bool:
        until = self._quarantine.get(key)
        return until is not None and cycle < until

    def _expire(self, cycle: int) -> None:
        expired = [key for key, until in self._quarantine.items() if until <= cycle]
        for key in expired:
            del self._quarantine[key]

    # --------------------------------------------------------- DFSM sanity

    def check_dfsm(self, dfsm, streams: list[HotDataStream]) -> None:
        """Raise :class:`AnalysisError` if a built DFSM is inconsistent.

        ``dfsm`` is duck-typed (``states``/``edges``/``completions``) so this
        module does not import the DFSM package.  These are invariants of the
        Figure 9 construction; a violation means the analysis state is
        corrupt and nothing from this cycle should be installed.
        """
        num_states = len(dfsm.states)
        if num_states < 1:
            raise AnalysisError("DFSM has no states (missing initial state)")
        num_streams = len(streams)
        for state_id, completed in dfsm.completions.items():
            if not 0 <= state_id < num_states:
                raise AnalysisError(f"DFSM completion for unknown state {state_id}")
            for v in completed:
                if not 0 <= v < num_streams:
                    raise AnalysisError(f"DFSM state {state_id} completes unknown stream {v}")
        for (source, _symbol), target in dfsm.edges.items():
            if not 0 <= source < num_states or not 0 <= target < num_states:
                raise AnalysisError(
                    f"DFSM edge {source}->{target} references an unknown state"
                )
