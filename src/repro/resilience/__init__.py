"""Resilience layer: guarded optimization, prefetch watchdog, fault injection.

The paper's Figure 1 cycle ends in *deoptimize* for a reason: an installed
optimization is a bet, and bets go bad — profiles go stale across program
phases, polluting prefetches evict live data (the effect that sinks Seq-pref
in Figure 12), and an online analysis fed sampled data can produce garbage.
This package closes the loop:

* :mod:`repro.resilience.guards` — pre-install validation of candidate
  streams and the built DFSM; rejects-and-quarantines instead of installing
  garbage.
* :mod:`repro.resilience.watchdog` — a per-stream prefetch-quality
  scoreboard (EWMA over the hierarchy's per-stream attribution) that
  condemns harmful streams so the optimizer can roll them back individually.
* :mod:`repro.resilience.faults` — a deterministic, seeded fault-injection
  plan used by the robustness tests and the adversarial benchmarks.
"""

from repro.resilience.faults import (
    FAULT_KINDS,
    FaultInjector,
    FaultPlan,
    InjectedFault,
    derive_tenant_seed,
)
from repro.resilience.guards import GuardConfig, GuardRejection, StreamGuard
from repro.resilience.watchdog import PrefetchWatchdog, StreamScore, WatchdogConfig

__all__ = [
    "FAULT_KINDS",
    "FaultInjector",
    "FaultPlan",
    "GuardConfig",
    "GuardRejection",
    "InjectedFault",
    "PrefetchWatchdog",
    "StreamGuard",
    "StreamScore",
    "WatchdogConfig",
    "derive_tenant_seed",
]
