"""Per-stream prefetch-quality watchdog: the measure half of *deoptimize*.

The memory hierarchy attributes every software prefetch it classifies
(useful / late / wasted) to the hot data stream whose handler issued it
(:meth:`repro.machine.hierarchy.MemoryHierarchy.set_stream_attribution`).
:class:`PrefetchWatchdog` polls those per-stream counters during hibernation,
maintains an EWMA benefit score per installed stream, and *condemns* streams
whose prefetches have stopped paying: accuracy collapsed below
``accuracy_floor`` or pollution climbed above ``pollution_ceiling``.

Condemned streams are blacklisted for ``blacklist_cycles`` optimization
cycles so the next awake phase does not immediately reinstall the same stale
stream; because stream identity is the full symbol sequence
(:func:`repro.resilience.guards.stream_key`), a *re-learned* stream with the
same head but a corrected tail is a different identity and installs freely.

The watchdog is pure policy: it inspects counters and returns verdicts.  The
optimizer applies them (targeted rollback via
:func:`repro.vulcan.dynamic_edit.reinject_detection`, or a full deoptimize
and an early return to profiling when no stream survives).  Scoring happens
at burst boundaries on host-side counters only, so an idle watchdog leaves
simulated cycle counts bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.resilience.guards import StreamKey


@dataclass(frozen=True)
class WatchdogConfig:
    """Thresholds of the per-stream prefetch scoreboard.

    Attributes:
        check_every: hibernation burst-periods between scoreboard polls.
        min_samples: classified (non-redundant) prefetches a stream must
            accumulate before it can be judged; below this the EWMA is still
            warming up and a verdict would be noise.
        ewma_alpha: weight of the newest poll window in the running scores.
        accuracy_floor: condemn when the EWMA of (useful + late) / classified
            falls below this.
        pollution_ceiling: condemn when the EWMA of wasted / classified rises
            above this (late-but-used prefetches never count as pollution).
        blacklist_cycles: optimization cycles a condemned stream identity
            stays barred from reinstallation.
        wake_on_empty: when every installed stream has been rolled back,
            abandon the hibernation and re-enter profiling immediately.
    """

    check_every: int = 4
    min_samples: int = 24
    ewma_alpha: float = 0.35
    accuracy_floor: float = 0.25
    pollution_ceiling: float = 0.75
    blacklist_cycles: int = 2
    wake_on_empty: bool = True

    def __post_init__(self) -> None:
        if self.check_every < 1:
            raise ConfigError("check_every must be >= 1")
        if self.min_samples < 1:
            raise ConfigError("min_samples must be >= 1")
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ConfigError("ewma_alpha must be in (0, 1]")
        if not 0.0 <= self.accuracy_floor <= 1.0:
            raise ConfigError("accuracy_floor must be in [0, 1]")
        if not 0.0 <= self.pollution_ceiling <= 1.0:
            raise ConfigError("pollution_ceiling must be in [0, 1]")
        if self.blacklist_cycles < 0:
            raise ConfigError("blacklist_cycles must be >= 0")

    def to_dict(self) -> dict[str, object]:
        """JSON-serializable view (the :class:`~repro.engine.spec.RunSpec` wire form)."""
        return {
            "check_every": self.check_every,
            "min_samples": self.min_samples,
            "ewma_alpha": self.ewma_alpha,
            "accuracy_floor": self.accuracy_floor,
            "pollution_ceiling": self.pollution_ceiling,
            "blacklist_cycles": self.blacklist_cycles,
            "wake_on_empty": self.wake_on_empty,
        }

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "WatchdogConfig":
        """Inverse of :meth:`to_dict`."""
        return cls(
            check_every=int(data["check_every"]),
            min_samples=int(data["min_samples"]),
            ewma_alpha=float(data["ewma_alpha"]),
            accuracy_floor=float(data["accuracy_floor"]),
            pollution_ceiling=float(data["pollution_ceiling"]),
            blacklist_cycles=int(data["blacklist_cycles"]),
            wake_on_empty=bool(data["wake_on_empty"]),
        )


@dataclass
class StreamScore:
    """Running quality score of one installed stream."""

    key: StreamKey
    #: EWMA of the per-window used fraction ((useful + late) / classified).
    accuracy: float = 1.0
    #: EWMA of the per-window wasted fraction.
    pollution: float = 0.0
    #: total classified prefetches observed for this stream this install
    samples: int = 0
    #: counter snapshot (useful, late, wasted) at the previous poll
    last: tuple[int, int, int] = (0, 0, 0)
    warmed: bool = False

    def update(self, useful: int, late: int, wasted: int, alpha: float) -> None:
        """Fold the counter deltas since the last poll into the EWMAs."""
        du = useful - self.last[0]
        dl = late - self.last[1]
        dw = wasted - self.last[2]
        self.last = (useful, late, wasted)
        classified = du + dl + dw
        if classified <= 0:
            return
        window_accuracy = (du + dl) / classified
        window_pollution = dw / classified
        if not self.warmed:
            self.accuracy = window_accuracy
            self.pollution = window_pollution
            self.warmed = True
        else:
            self.accuracy += alpha * (window_accuracy - self.accuracy)
            self.pollution += alpha * (window_pollution - self.pollution)
        self.samples += classified


@dataclass
class Verdict:
    """One condemnation, with the evidence that drove it."""

    key: StreamKey
    accuracy: float
    pollution: float
    samples: int
    reason: str = ""

    def __post_init__(self) -> None:
        if not self.reason:
            self.reason = "accuracy" if self.accuracy <= self.pollution else "pollution"


@dataclass
class PrefetchWatchdog:
    """Scores installed streams from per-stream prefetch counters."""

    config: WatchdogConfig = field(default_factory=WatchdogConfig)
    scores: dict[StreamKey, StreamScore] = field(default_factory=dict)
    #: condemned identity -> first optimization cycle it may return
    blacklist: dict[StreamKey, int] = field(default_factory=dict)
    deopts_total: int = 0
    polls_total: int = 0

    # ------------------------------------------------------------- lifecycle

    def begin_install(self, keys: list[StreamKey], stream_stats: dict) -> None:
        """Start scoring a fresh install of ``keys``.

        Counter *snapshots* are taken from ``stream_stats`` (the hierarchy's
        cumulative per-stream counters) so deltas measured later belong
        entirely to this install, even for an identity seen before.
        """
        self.scores = {}
        for key in keys:
            score = StreamScore(key=key)
            stats = stream_stats.get(key)
            if stats is not None:
                score.last = (stats.useful, stats.late, stats.wasted)
            self.scores[key] = score

    def retain(self, keys: list[StreamKey], stream_stats: dict) -> None:
        """Narrow the scoreboard to ``keys`` after a targeted rollback.

        Surviving streams keep their EWMA history; keys the rebuild added
        back (DFSM backoff can reshuffle the set) start fresh snapshots.
        """
        wanted = set(keys)
        self.scores = {key: score for key, score in self.scores.items() if key in wanted}
        for key in wanted - set(self.scores):
            score = StreamScore(key=key)
            stats = stream_stats.get(key)
            if stats is not None:
                score.last = (stats.useful, stats.late, stats.wasted)
            self.scores[key] = score

    def end_install(self) -> None:
        """Stop scoring (full deoptimization happened)."""
        self.scores = {}

    # --------------------------------------------------------------- polling

    def poll(self, stream_stats: dict) -> list[Verdict]:
        """Update scores from the hierarchy counters; return condemnations.

        Condemned keys are removed from the scoreboard and blacklisted by
        the caller via :meth:`condemn` (split so the optimizer can emit
        telemetry between verdict and blacklist with the cycle index it
        owns).
        """
        self.polls_total += 1
        config = self.config
        verdicts: list[Verdict] = []
        for key, score in self.scores.items():
            stats = stream_stats.get(key)
            if stats is None:
                continue
            score.update(stats.useful, stats.late, stats.wasted, config.ewma_alpha)
            if score.samples < config.min_samples:
                continue
            if score.accuracy < config.accuracy_floor or (
                score.pollution > config.pollution_ceiling
            ):
                verdicts.append(
                    Verdict(
                        key=key,
                        accuracy=score.accuracy,
                        pollution=score.pollution,
                        samples=score.samples,
                    )
                )
        for verdict in verdicts:
            del self.scores[verdict.key]
        return verdicts

    # ------------------------------------------------------------- blacklist

    def condemn(self, key: StreamKey, cycle: int) -> None:
        """Blacklist ``key`` until ``cycle + blacklist_cycles``."""
        self.deopts_total += 1
        if self.config.blacklist_cycles > 0:
            self.blacklist[key] = cycle + self.config.blacklist_cycles

    def is_blacklisted(self, key: StreamKey, cycle: int) -> bool:
        until = self.blacklist.get(key)
        if until is None:
            return False
        if cycle >= until:
            del self.blacklist[key]
            return False
        return True
